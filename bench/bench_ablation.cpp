// Ablations of MadPipe's design choices (DESIGN.md experiment index):
//   1. special processor on/off (non-contiguous vs memory-aware contiguous);
//   2. discretization granularity of the DP grids;
//   3. phase-2 engine: branch-and-bound vs the in-house ILP;
//   4. the ⊕-delay communication-term variant (paper-literal vs
//      boundary-consistent, see DESIGN.md "known paper typo");
//   5. eager 1F1B execution vs 1F1B* memory floors (Proposition 1 in vivo);
//   6. the schedule-best-of-k extension.
#include <cstdio>

#include "common.hpp"
#include "cyclic/ilp_scheduler.hpp"
#include "cyclic/period_search.hpp"
#include "madpipe/search.hpp"
#include "pipedream/pipedream.hpp"
#include "schedule/eager.hpp"
#include "schedule/one_f_one_b.hpp"
#include "util/format.hpp"

using namespace madpipe;
using namespace madpipe::bench;

namespace {

void ablate_special_and_grids() {
  std::printf("-- Ablation 1+2: special processor and grid granularity "
              "(ResNet-50, beta = 12 GB/s, periods in ms) --\n");
  fmt::Table table({"P", "M(GB)", "full/paper", "full/coarse", "no-special",
                    "pipedream"});
  for (const int processors : {2, 4, 8}) {
    for (const double memory : {3.0, 6.0, 10.0, 16.0}) {
      const auto run = [&](bool special, Discretization grid) {
        CellConfig config;
        config.network = "resnet50";
        config.processors = processors;
        config.memory_gb = memory;
        config.madpipe.phase1.dp.grid = grid;
        config.madpipe.disable_special_processor = !special;
        return run_cell(config);
      };
      const CellResult paper_grid = run(true, Discretization::paper());
      const CellResult coarse_grid = run(true, Discretization::coarse());
      const CellResult no_special = run(false, Discretization::paper());
      table.add_row({std::to_string(processors), fmt::fixed(memory, 0),
                     period_cell(paper_grid.madpipe),
                     period_cell(coarse_grid.madpipe),
                     period_cell(no_special.madpipe),
                     period_cell(paper_grid.pipedream)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void ablate_phase2_engine() {
  std::printf("-- Ablation 3: phase-2 scheduler engines on non-contiguous "
              "allocations (ResNet-50) --\n");
  fmt::Table table({"P", "M(GB)", "phase1(ms)", "bb(ms)", "ilp(ms)"});
  for (const int processors : {2, 4}) {
    for (const double memory : {4.0, 8.0}) {
      const Chain& chain = evaluation_chain("resnet50");
      const Platform platform{processors, memory * GB, 12 * GB};
      Phase1Options options;
      options.dp.grid = Discretization::paper();
      const Phase1Result phase1 = madpipe_phase1(chain, platform, options);
      if (!phase1.feasible() || phase1.allocation->contiguous()) {
        table.add_row({std::to_string(processors), fmt::fixed(memory, 0),
                       phase1.feasible() ? "contiguous" : "inf", "-", "-"});
        continue;
      }
      const PeriodSearchResult bb =
          find_min_period(*phase1.allocation, chain, platform, phase1.period);
      // The ILP engine probes the same period the B&B settled on.
      std::string ilp_cell = "-";
      if (bb.feasible) {
        const CyclicProblem problem =
            build_cyclic_problem(*phase1.allocation, chain, platform);
        const ILPScheduleResult ilp = ilp_schedule(
            problem, *phase1.allocation, chain, platform, bb.period * 1.001);
        ilp_cell = ilp.feasible ? fmt::fixed(bb.period * 1.001 * 1e3, 1)
                                : "worst-case-mem blocks";
      }
      table.add_row({std::to_string(processors), fmt::fixed(memory, 0),
                     fmt::fixed(phase1.period * 1e3, 1),
                     bb.feasible ? fmt::fixed(bb.period * 1e3, 1) : "inf",
                     ilp_cell});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void ablate_delay_variant() {
  std::printf("-- Ablation 4: V-propagation communication term --\n");
  fmt::Table table({"P", "M(GB)", "boundary-consistent", "paper-literal"});
  for (const int processors : {4, 8}) {
    for (const double memory : {4.0, 8.0}) {
      std::vector<std::string> row{std::to_string(processors),
                                   fmt::fixed(memory, 0)};
      for (const auto variant : {DelayCommVariant::BoundaryConsistent,
                                 DelayCommVariant::PaperLiteral}) {
        CellConfig config;
        config.network = "resnet50";
        config.processors = processors;
        config.memory_gb = memory;
        config.madpipe.phase1.dp.grid = Discretization::paper();
        config.madpipe.phase1.dp.delay_comm_variant = variant;
        row.push_back(period_cell(run_cell(config).madpipe));
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void ablate_eager_memory() {
  std::printf("-- Ablation 5: eager 1F1B vs 1F1B* memory peaks "
              "(ResNet-50 on PipeDream's partition, M = 16 GB) --\n");
  fmt::Table table({"P", "eager-peak", "1f1b*-peak", "eager/1f1b*",
                    "eager-period(ms)", "1f1b*-period(ms)"});
  for (const int processors : {2, 4, 8}) {
    const Chain& chain = evaluation_chain("resnet50");
    const Platform platform{processors, 16 * GB, 12 * GB};
    const auto partition = pipedream_partition(chain, platform);
    if (!partition) continue;
    const auto eager = simulate_eager(partition->allocation, chain, platform,
                                      {0, 48, true});
    const auto plan = plan_one_f_one_b(partition->allocation, chain, platform);
    if (!plan) continue;
    const auto check =
        validate_pattern(plan->pattern, plan->allocation, chain, platform);
    Bytes eager_peak = 0.0, star_peak = 0.0;
    for (int p = 0; p < processors; ++p) {
      eager_peak = std::max(eager_peak, eager.processor_memory_peak[p]);
      star_peak = std::max(star_peak, check.processor_memory_peak[p]);
    }
    table.add_row({std::to_string(processors), fmt::bytes(eager_peak),
                   fmt::bytes(star_peak),
                   fmt::fixed(eager_peak / star_peak, 2),
                   fmt::fixed(eager.steady_period * 1e3, 1),
                   fmt::fixed(plan->period() * 1e3, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void ablate_best_of() {
  std::printf("-- Ablation 6: scheduling the best k phase-1 iterates "
              "(extension; k = 1 is the paper's algorithm) --\n");
  fmt::Table table({"P", "M(GB)", "k=1", "k=4"});
  for (const int processors : {2, 4, 8}) {
    for (const double memory : {4.0, 8.0}) {
      std::vector<std::string> row{std::to_string(processors),
                                   fmt::fixed(memory, 0)};
      for (const int k : {1, 4}) {
        CellConfig config;
        config.network = "resnet50";
        config.processors = processors;
        config.memory_gb = memory;
        config.madpipe.phase1.dp.grid = Discretization::paper();
        config.madpipe.schedule_best_of = k;
        row.push_back(period_cell(run_cell(config).madpipe));
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("=== MadPipe design-choice ablations ===\n\n");
  ablate_special_and_grids();
  ablate_phase2_engine();
  ablate_delay_variant();
  ablate_eager_memory();
  ablate_best_of();
  return 0;
}
