// Baseline shootout across scheduling schemes (extensions beyond the
// paper's PipeDream comparison): for each memory budget, the achieved
// period of
//   * GPipe (fill/drain micro-batching, 2W memory, bubble overhead),
//   * PipeDream + 1F1B* (the paper's baseline),
//   * recomputation + 1F1B* (activation checkpointing, §2 ref [3]),
//   * MadPipe (the paper's contribution),
// plus a batch-size sensitivity sweep (§5.1 argues small-memory scenarios
// stand in for larger batches/images — this shows the equivalence directly).
#include <cstdio>

#include "common.hpp"
#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "pipedream/pipedream.hpp"
#include "schedule/gpipe.hpp"
#include "schedule/recompute.hpp"
#include "util/format.hpp"

using namespace madpipe;
using namespace madpipe::bench;

namespace {

std::string period_or_dash(bool ok, Seconds period) {
  return ok ? fmt::fixed(period * 1e3, 1) : std::string("-");
}

void scheme_shootout() {
  std::printf("-- Scheme shootout: ResNet-50, P = 4, beta = 12 GB/s "
              "(periods in ms) --\n");
  const Chain& chain = evaluation_chain("resnet50");
  fmt::Table table({"M(GB)", "gpipe(m=8)", "pipedream", "recompute",
                    "madpipe"});
  for (const double memory : {2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
    const Platform platform{4, memory * GB, 12 * GB};
    const auto gp = plan_gpipe(chain, platform, {8});
    const auto pd = plan_pipedream(chain, platform);
    const auto rc = plan_recompute_pipeline(chain, platform);
    const auto mp = plan_madpipe(chain, platform, default_bench_options());
    table.add_row({fmt::fixed(memory, 0),
                   period_or_dash(gp.has_value(), gp ? gp->period : 0),
                   period_or_dash(pd.has_value(), pd ? pd->period() : 0),
                   period_or_dash(rc.has_value(), rc ? rc->plan.period() : 0),
                   period_or_dash(mp.has_value(), mp ? mp->period() : 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void micro_batch_sweep() {
  std::printf("-- GPipe micro-batch count (ResNet-50, P = 4, M = 8 GB) --\n");
  const Chain& chain = evaluation_chain("resnet50");
  const Platform platform{4, 8 * GB, 12 * GB};
  fmt::Table table({"m", "period(ms)", "speedup"});
  for (const int m : {1, 2, 4, 8, 16, 32}) {
    const auto plan = plan_gpipe(chain, platform, {m});
    if (!plan) {
      table.add_row({std::to_string(m), "-", "-"});
      continue;
    }
    table.add_row({std::to_string(m), fmt::fixed(plan->period * 1e3, 1),
                   fmt::fixed(plan->speedup(chain), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void batch_size_sensitivity() {
  std::printf("-- Batch-size sensitivity (ResNet-50, P = 4, M = 16 GB): the\n"
              "   paper's 'small memory stands in for large batches' claim --\n");
  fmt::Table table({"batch", "U(1,L)(ms)", "pipedream(ms)", "madpipe(ms)",
                    "PD/MP"});
  for (const int batch : {2, 4, 8, 16, 32}) {
    models::NetworkConfig config;
    config.network = "resnet50";
    config.image_size = 1000;
    config.batch = batch;
    config.chain_length = 24;
    const Chain chain = models::build_network(config);
    const Platform platform{4, 16 * GB, 12 * GB};
    const auto pd = plan_pipedream(chain, platform);
    const auto mp = plan_madpipe(chain, platform, default_bench_options());
    std::string ratio = "-";
    if (pd && mp) ratio = fmt::fixed(pd->period() / mp->period(), 2);
    table.add_row({std::to_string(batch),
                   fmt::fixed(chain.total_compute() * 1e3, 1),
                   period_or_dash(pd.has_value(), pd ? pd->period() : 0),
                   period_or_dash(mp.has_value(), mp ? mp->period() : 0),
                   ratio});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("=== Scheduling-scheme baselines beyond the paper ===\n\n");
  scheme_shootout();
  micro_batch_sweep();
  batch_size_sensitivity();
  return 0;
}
