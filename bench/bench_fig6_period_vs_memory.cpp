// Figure 6 of the paper: periods achieved on ResNet-50 (1000x1000 images,
// batch 8) as a function of the per-GPU memory limit, for P ∈ {2,4,8} and
// β ∈ {12,24} GB/s. For each algorithm we print the phase-1 partitioning
// period ("dashed" in the paper's plots) and the valid schedule's period
// ("solid"). Lower is better; throughput = 1/period.
#include <cstdio>

#include "common.hpp"
#include "util/format.hpp"

using namespace madpipe;
using namespace madpipe::bench;

int main() {
  std::printf("=== Figure 6: ResNet-50 period vs memory (values in ms) ===\n");
  std::printf("columns: PipeDream dashed/solid, MadPipe dashed/solid\n\n");

  for (const double bandwidth : paper_bandwidth_sweep()) {
    for (const int processors : paper_processor_sweep()) {
      std::printf("-- P = %d, beta = %.0f GB/s --\n", processors, bandwidth);
      fmt::Table table({"M(GB)", "PD-dash", "PD-solid", "MP-dash", "MP-solid",
                        "MP-contig", "PD/MP"});
      std::vector<CellConfig> configs;
      for (const double memory : paper_memory_sweep()) {
        CellConfig config;
        config.network = "resnet50";
        config.processors = processors;
        config.memory_gb = memory;
        config.bandwidth_gbs = bandwidth;
        config.run_contiguous_ablation = true;
        configs.push_back(config);
      }
      // The memory column of one panel is embarrassingly parallel; results
      // come back in sweep order.
      const std::vector<CellResult> cells = run_cells(configs);
      for (const CellResult& cell : cells) {
        const double memory = cell.config.memory_gb;
        std::string ratio = "-";
        if (cell.pipedream.feasible && cell.madpipe.feasible) {
          ratio = fmt::fixed(cell.pipedream.period / cell.madpipe.period, 2);
        }
        table.add_row({fmt::fixed(memory, 0),
                       cell.pipedream.feasible
                           ? fmt::fixed(cell.pipedream.phase1_period * 1e3, 1)
                           : "inf",
                       period_cell(cell.pipedream),
                       cell.madpipe.feasible
                           ? fmt::fixed(cell.madpipe.phase1_period * 1e3, 1)
                           : "inf",
                       period_cell(cell.madpipe),
                       period_cell(cell.madpipe_contiguous), ratio});
      }
      std::printf("%s\n", table.to_string().c_str());
    }
  }
  return 0;
}
