// Figure 7 of the paper: for each network and memory limit, the geometric
// mean over (P, β) of the ratio period(PipeDream)/period(MadPipe). Values
// above 1 mean MadPipe produces faster schedules. The paper reports this
// ratio consistently above 1.2 below 10 GB.
#include <cstdio>

#include "common.hpp"
#include "models/zoo.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

using namespace madpipe;
using namespace madpipe::bench;

int main() {
  std::printf(
      "=== Figure 7: geometric mean of PipeDream/MadPipe period ratios ===\n");
  std::printf("(over P in {2,4,8} and beta in {12,24} GB/s; >1 favors "
              "MadPipe; 'n/a' when no cell had both planners feasible)\n\n");

  fmt::Table table({"M(GB)", "resnet50", "resnet101", "inception_v3",
                    "densenet121"});
  for (const double memory : paper_memory_sweep()) {
    std::vector<std::string> row{fmt::fixed(memory, 0)};
    for (const std::string& network : models::list_networks()) {
      std::vector<double> ratios;
      for (const double bandwidth : paper_bandwidth_sweep()) {
        for (const int processors : paper_processor_sweep()) {
          CellConfig config;
          config.network = network;
          config.processors = processors;
          config.memory_gb = memory;
          config.bandwidth_gbs = bandwidth;
          const CellResult cell = run_cell(config);
          if (cell.pipedream.feasible && cell.madpipe.feasible) {
            ratios.push_back(cell.pipedream.period / cell.madpipe.period);
          } else if (cell.pipedream.feasible != cell.madpipe.feasible) {
            // One planner infeasible: score 2 against it, like an
            // off-the-chart point (keeps the geomean defined).
            ratios.push_back(cell.madpipe.feasible ? 2.0 : 0.5);
          }
        }
      }
      row.push_back(ratios.empty() ? "n/a"
                                   : fmt::fixed(stats::geometric_mean(ratios), 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
