// Figure 8 of the paper: speedup of the produced schedules over sequential
// execution (U(1,L)) as the number of processors grows, per network and
// memory limit. The paper's observations: good scalability at M = 12/16 GB,
// degradation when memory is tight, MadPipe scaling better than PipeDream,
// and little sensitivity to doubling the bandwidth.
#include <cstdio>

#include "common.hpp"
#include "models/zoo.hpp"
#include "util/format.hpp"

using namespace madpipe;
using namespace madpipe::bench;

int main() {
  std::printf("=== Figure 8: speedup vs sequential execution ===\n\n");

  const std::vector<int> processors{2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> memories{4.0, 8.0, 12.0, 16.0};

  for (const std::string& network : models::list_networks()) {
    const Chain& chain = evaluation_chain(network);
    std::printf("-- %s (sequential batch time %s) --\n", network.c_str(),
                fmt::seconds(chain.total_compute()).c_str());
    for (const double bandwidth : {12.0, 24.0}) {
      fmt::Table table({"P", "M=4 PD", "M=4 MP", "M=8 PD", "M=8 MP",
                        "M=12 PD", "M=12 MP", "M=16 PD", "M=16 MP"});
      for (const int p : processors) {
        std::vector<std::string> row{std::to_string(p)};
        for (const double memory : memories) {
          CellConfig config;
          config.network = network;
          config.processors = p;
          config.memory_gb = memory;
          config.bandwidth_gbs = bandwidth;
          const CellResult cell = run_cell(config);
          const auto speedup = [&](const PlannerOutcome& outcome) {
            return outcome.feasible
                       ? fmt::fixed(chain.total_compute() / outcome.period, 2)
                       : std::string("-");
          };
          row.push_back(speedup(cell.pipedream));
          row.push_back(speedup(cell.madpipe));
        }
        table.add_row(std::move(row));
      }
      std::printf("beta = %.0f GB/s\n%s\n", bandwidth,
                  table.to_string().c_str());
    }
  }
  return 0;
}
