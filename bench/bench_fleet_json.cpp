// Machine-readable fleet-simulator benchmark: runs the same seeded
// synthetic trace under all three placement policies and writes
// BENCH_fleet.json (schema madpipe-bench-fleet-v1) so the fleet layer's
// behavior can be tracked across PRs next to BENCH_serve/BENCH_net.
//
// Sections:
//   * policies    — per-policy utilization / queueing-delay (mean, p50,
//                   p99, max) / plan-cache traffic, with exact
//                   jobs-in == jobs-out accounting. Each policy gets a
//                   fresh PlanService so hit-rates are comparable; the
//                   affinity policy must beat FIFO's hit-rate (checked by
//                   tools/check_bench_schema.py — it is the policy's whole
//                   point, not a perf accident).
//   * determinism — the FIFO cell re-run: both runs must produce the same
//                   event-log hash (the CLI-level bit-identity criterion).
//   * engine      — calendar-queue churn microbench: push/pop a shuffled
//                   (util::Rng) stream of mostly-near, some-far events and
//                   verify the total (time, seq) pop order; events/s is the
//                   hardware-gated floor.
//
//   bench_fleet [-o FILE] [--smoke]   (default: BENCH_fleet.json;
//                                      --smoke = small trace + short churn)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "fleet/calendar_queue.hpp"
#include "fleet/simulator.hpp"
#include "fleet/trace.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace madpipe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string hash_hex(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

struct PolicyCell {
  fleet::FleetResult result;
  double wall_seconds = 0.0;
};

/// Calendar-queue churn: `events` pushes + pops in blocks, insertion order
/// shuffled by the seeded Rng, times mostly inside the fine/coarse windows
/// with a far-future tail. Returns events/s (a push+pop pair counts as one
/// event) and validates the pop order on the fly.
struct ChurnResult {
  long long events = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  std::uint64_t far_inserts = 0;
  std::uint64_t refills = 0;
  bool ordered = true;
};

ChurnResult run_churn(long long events, std::uint64_t seed) {
  util::Rng rng(seed);
  fleet::CalendarQueue queue;
  ChurnResult churn;
  churn.events = events;
  const long long block = 4096;
  std::vector<double> times(static_cast<std::size_t>(block));
  double horizon = 0.0;
  const Clock::time_point start = Clock::now();
  for (long long done = 0; done < events; done += block) {
    const long long n = std::min(block, events - done);
    for (long long i = 0; i < n; ++i) {
      // 1-in-64 far-future event; the rest land within ~2 fine windows.
      const double offset = rng.chance(1.0 / 64.0)
                                ? rng.uniform(5000.0, 50000.0)
                                : rng.exponential(4.0);
      times[static_cast<std::size_t>(i)] = horizon + offset;
    }
    times.resize(static_cast<std::size_t>(n));
    rng.shuffle(times);  // insertion order != time order, on purpose
    for (double t : times) {
      fleet::Event event;
      event.time = t;
      queue.push(event);
    }
    double last = -1.0;
    for (long long i = 0; i < n; ++i) {
      const fleet::Event event = queue.pop();
      if (event.time < last) churn.ordered = false;
      last = event.time;
    }
    horizon = last;
    times.resize(static_cast<std::size_t>(block));
  }
  churn.wall_seconds = seconds_since(start);
  churn.events_per_second =
      churn.wall_seconds > 0.0
          ? static_cast<double>(events) / churn.wall_seconds
          : 0.0;
  churn.far_inserts = queue.far_inserts();
  churn.refills = queue.refills();
  return churn;
}

void write_policy(json::Writer& w, const PolicyCell& cell) {
  const fleet::FleetResult& r = cell.result;
  w.begin_object();
  w.key("policy"); w.value(r.policy);
  w.key("jobs_in"); w.value(r.jobs_in);
  w.key("completed"); w.value(r.completed);
  w.key("failed"); w.value(r.failed);
  w.key("stranded"); w.value(r.stranded);
  w.key("accounting_exact"); w.value(r.accounting_exact());
  w.key("makespan_s"); w.value(r.makespan_s);
  w.key("utilization"); w.value(r.utilization);
  w.key("wait_mean_s"); w.value(r.wait_mean_s);
  w.key("wait_p50_s"); w.value(r.wait_p50_s);
  w.key("wait_p99_s"); w.value(r.wait_p99_s);
  w.key("wait_max_s"); w.value(r.wait_max_s);
  w.key("plans"); w.value(r.plans_requested);
  w.key("cache_hits"); w.value(r.cache_hits);
  w.key("cache_misses"); w.value(r.cache_misses);
  w.key("cache_hit_rate"); w.value(r.cache_hit_rate);
  w.key("replans"); w.value(r.replans);
  w.key("preemptions"); w.value(r.preemptions);
  w.key("deadlines_met"); w.value(r.deadlines_met);
  w.key("deadlines_missed"); w.value(r.deadlines_missed);
  w.key("events_dispatched"); w.value(r.events_dispatched);
  w.key("event_log_hash"); w.value(hash_hex(r.event_log_hash));
  w.key("wall_seconds"); w.value(cell.wall_seconds);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_fleet.json";
  bool smoke = false;
  bench::ObsSinkArgs sinks;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (sinks.parse(argc, argv, &i)) continue;
    if (arg == "-o" && i + 1 < argc) output = argv[++i];
    if (arg == "--smoke") smoke = true;
  }
  sinks.install();

  const std::uint64_t seed = 42;
  fleet::SyntheticTraceConfig trace_config;
  trace_config.seed = seed;
  trace_config.jobs = smoke ? 10 : 32;
  trace_config.pool_gpus = 8;
  const fleet::FleetTrace trace = fleet::synthesize_fleet_trace(trace_config);
  const long long churn_events = smoke ? 50'000 : 1'000'000;
  const int hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());

  std::vector<PolicyCell> cells;
  for (const std::string& policy : fleet::list_policies()) {
    fleet::FleetOptions options;
    options.policy = policy;
    const Clock::time_point start = Clock::now();
    PolicyCell cell;
    cell.result = fleet::run_fleet(trace, options);
    cell.wall_seconds = seconds_since(start);
    if (!cell.result.ok()) {
      std::fprintf(stderr, "fleet run failed (%s): %s\n", policy.c_str(),
                   cell.result.error.c_str());
      return 1;
    }
    std::printf(
        "%-9s util %5.1f%%  wait p99 %8.2f s  hit-rate %5.1f%%  "
        "(%d in / %d out)\n",
        policy.c_str(), 100.0 * cell.result.utilization,
        cell.result.wait_p99_s, 100.0 * cell.result.cache_hit_rate,
        cell.result.jobs_in, cell.result.completed);
    cells.push_back(std::move(cell));
  }

  // Determinism: the fifo cell again, fresh service — hashes must match.
  fleet::FleetOptions fifo_options;
  fifo_options.policy = "fifo";
  const fleet::FleetResult rerun = fleet::run_fleet(trace, fifo_options);
  const bool identical_logs =
      rerun.ok() && rerun.event_log_hash == cells[0].result.event_log_hash &&
      rerun.event_log == cells[0].result.event_log;
  std::printf("determinism: fifo rerun %s\n",
              identical_logs ? "bit-identical" : "DIVERGED");

  const ChurnResult churn = run_churn(churn_events, seed);
  std::printf("engine: %lld events in %.3f s -> %.2fM events/s%s\n",
              churn.events, churn.wall_seconds,
              churn.events_per_second / 1e6,
              churn.ordered ? "" : " (ORDER VIOLATION)");

  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("madpipe-bench-fleet-v1");
  w.key("smoke");
  w.value(smoke);
  w.key("hardware_threads");
  w.value(hardware_threads);
  w.key("workload");
  w.begin_object();
  w.key("seed"); w.value(static_cast<long long>(seed));
  w.key("jobs"); w.value(trace_config.jobs);
  w.key("pool_gpus"); w.value(trace_config.pool_gpus);
  w.key("resize_events"); w.value(trace.pool_events.size());
  w.key("networks");
  w.begin_array();
  for (const std::string& network : trace_config.networks) w.value(network);
  w.end_array();
  w.end_object();
  w.key("policies");
  w.begin_array();
  for (const PolicyCell& cell : cells) write_policy(w, cell);
  w.end_array();
  w.key("determinism");
  w.begin_object();
  w.key("policy"); w.value("fifo");
  w.key("runs"); w.value(2);
  w.key("identical_logs"); w.value(identical_logs);
  w.key("event_log_hash"); w.value(hash_hex(cells[0].result.event_log_hash));
  w.end_object();
  w.key("engine");
  w.begin_object();
  w.key("events"); w.value(churn.events);
  w.key("wall_seconds"); w.value(churn.wall_seconds);
  w.key("events_per_second"); w.value(churn.events_per_second);
  w.key("far_inserts"); w.value(static_cast<long long>(churn.far_inserts));
  w.key("refills"); w.value(static_cast<long long>(churn.refills));
  w.key("ordered"); w.value(churn.ordered);
  w.end_object();
  w.key("summary");
  w.begin_object();
  w.key("fifo_hit_rate"); w.value(cells[0].result.cache_hit_rate);
  w.key("affinity_hit_rate"); w.value(cells[2].result.cache_hit_rate);
  w.key("events_per_second"); w.value(churn.events_per_second);
  w.end_object();
  w.end_object();

  std::ofstream out(output);
  out << w.str() << "\n";
  std::printf("fleet benchmark JSON -> %s\n", output.c_str());
  sinks.flush();

  // Hard invariants: the bench itself fails before the schema checker does.
  for (const PolicyCell& cell : cells) {
    if (!cell.result.accounting_exact() || cell.result.stranded > 0) {
      std::fprintf(stderr, "accounting violation under %s\n",
                   cell.result.policy.c_str());
      return 1;
    }
  }
  if (!identical_logs || !churn.ordered) return 1;
  if (cells[2].result.cache_hit_rate <= cells[0].result.cache_hit_rate) {
    std::fprintf(stderr, "affinity hit-rate did not beat fifo\n");
    return 1;
  }
  return 0;
}
