// The scalability experiment sketched in the paper's introduction and named
// in its conclusion as the natural extension: combine pipelined model
// parallelism with data parallelism by replicating stages, so that G groups
// perform G smaller AllReduces. Compares, from 2 to 64 GPUs:
//   * pure data parallelism (one stage, P replicas, global AllReduce);
//   * pure pipelined model parallelism (PipeDream+1F1B*, capped by the
//     chain's depth and bottleneck);
//   * the hybrid planner (stage replication).
#include <cstdio>

#include "common.hpp"
#include "hybrid/hybrid.hpp"
#include "models/zoo.hpp"
#include "pipedream/pipedream.hpp"
#include "util/format.hpp"

using namespace madpipe;
using namespace madpipe::bench;

int main() {
  std::printf("=== Hybrid data+model parallelism: speedup vs GPU count ===\n");
  std::printf("(speedup over sequential execution; '-' = infeasible)\n\n");

  for (const std::string& network : {std::string("resnet50"),
                                     std::string("densenet121")}) {
    const Chain& chain = evaluation_chain(network);
    for (const double memory_gb : {8.0, 16.0}) {
      std::printf("-- %s, M = %.0f GB, beta = 12 GB/s --\n", network.c_str(),
                  memory_gb);
      fmt::Table table(
          {"P", "data-parallel", "model-parallel", "hybrid", "hybrid stages"});
      for (const int gpus : {2, 4, 8, 16, 32, 64}) {
        const Platform platform{gpus, memory_gb * GB, 12 * GB};

        const auto dp = hybrid::plan_data_parallel(chain, platform);
        const auto mp = plan_pipedream(chain, platform);
        const auto hy = hybrid::plan_hybrid(chain, platform);

        std::string stages = "-";
        if (hy) {
          stages.clear();
          for (const auto& stage : hy->stages) {
            stages += (stages.empty() ? "" : "+") +
                      std::to_string(stage.replication);
          }
        }
        const auto cell = [&](double speedup, bool ok) {
          return ok ? fmt::fixed(speedup, 2) : std::string("-");
        };
        table.add_row({std::to_string(gpus),
                       cell(dp ? dp->speedup(chain) : 0, dp.has_value()),
                       cell(mp ? mp->speedup(chain) : 0, mp.has_value()),
                       cell(hy ? hy->speedup(chain) : 0, hy.has_value()),
                       stages});
      }
      std::printf("%s\n", table.to_string().c_str());
    }
  }
  std::printf(
      "Reading: data parallelism pays a global AllReduce and replicates all\n"
      "weights; pure model parallelism saturates at the bottleneck stage;\n"
      "the hybrid replicates the heavy stages only (right column shows the\n"
      "per-stage replication vector) and keeps scaling.\n");
  return 0;
}
