// Machine-readable network-serve benchmark: drives the `madpipe serve
// --listen` TCP front-end (NetServer) over loopback and writes
// BENCH_net.json so the wire path's perf trajectory can be tracked across
// PRs, next to BENCH_serve.json (which measures PlanService without the
// socket layer in front).
//
// Phases:
//   * equivalence — the response served over TCP (miss and hit) must carry a
//     plan block bit-identical to batch-mode serve on a fresh service; the
//     bench exits non-zero if the wire ever changes an answer;
//   * latency — closed-loop (window 1) hit traffic on one connection,
//     p50/p95/p99 of the full round trip;
//   * throughput — pipelined clients (window 16) at 1/2/4 connections,
//     aggregate hit requests per second;
//   * mixed — rotating over a pool of distinct requests, half prewarmed, so
//     the stream interleaves hits with real planner runs;
//   * overload — open-loop burst against a rate-limited server
//     (tokens_per_second + burst), measuring the shed fraction: admission
//     control must reject, not queue.
//
//   bench_net [-o FILE] [--smoke]   (default: BENCH_net.json;
//                                    --smoke = minimal iteration counts)
//
// Floors (≥100k hits/s) live in tools/check_bench_schema.py and are gated on
// the recorded hardware_threads, like the planner bench's parallel_scaling.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/tail_sampler.hpp"
#include "serve/net/admin.hpp"
#include "serve/net/server.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/net.hpp"
#include "util/stats.hpp"

namespace {

using namespace madpipe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One blocking loopback client speaking newline-delimited madpipe-serve-v1.
class Client {
 public:
  Client(const std::string& host, std::uint16_t port)
      : fd_(net::connect_tcp(host, port)) {}

  bool ok() const { return fd_.valid(); }

  bool send(const std::string& frame) {
    return net::write_all(fd_.get(), frame.data(), frame.size());
  }

  bool recv(std::string& line) {
    line.clear();
    return net::read_line(fd_.get(), line, carry_);
  }

 private:
  net::FdGuard fd_;
  std::string carry_;
};

/// The wire request used throughout: a zoo network resolved server-side, so
/// the frame stays small (the hot path a real cache front-end would see).
std::string request_frame(const std::string& id, double memory_gb) {
  json::Writer w;
  w.begin_object();
  w.key("id"); w.value(id);
  w.key("network");
  w.begin_object();
  w.key("name"); w.value("resnet50");
  w.end_object();
  w.key("gpus"); w.value(2);
  w.key("memory_gb"); w.value(memory_gb);
  w.key("bandwidth_gbs"); w.value(12);
  w.key("planner"); w.value("madpipe");
  w.end_object();
  return w.str() + "\n";
}

/// Everything from `"plan":` onward — deterministic planner output (no
/// latency fields), the part of the response that must survive the wire
/// bit for bit.
std::string plan_tail(const std::string& response) {
  const std::size_t pos = response.find("\"plan\":");
  return pos == std::string::npos ? std::string() : response.substr(pos);
}

bool has_field(const std::string& response, const char* field,
               const char* value) {
  const std::string needle =
      std::string("\"") + field + "\": \"" + value + "\"";
  if (response.find(needle) != std::string::npos) return true;
  const std::string tight = std::string("\"") + field + "\":\"" + value + "\"";
  return response.find(tight) != std::string::npos;
}

struct EquivalenceRecord {
  std::string name;
  std::string net_cache;
  bool identical = false;
};

struct ThroughputRecord {
  int clients = 0;
  int window = 0;
  long long requests = 0;
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
};

/// `clients` pipelined connections (window frames in flight each) hammer the
/// warm cache for `duration` seconds.
ThroughputRecord pipelined_throughput(const std::string& host,
                                      std::uint16_t port,
                                      const std::string& frame, int clients,
                                      int window, double duration) {
  ThroughputRecord record;
  record.clients = clients;
  record.window = window;
  std::vector<std::thread> threads;
  std::vector<long long> counts(static_cast<std::size_t>(clients), 0);
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client(host, port);
      if (!client.ok()) return;
      std::string burst;
      for (int i = 0; i < window; ++i) burst += frame;
      if (!client.send(burst)) return;
      std::string line;
      long long local = 0;
      while (seconds_since(start) < duration) {
        if (!client.recv(line)) return;
        ++local;
        if (!client.send(frame)) return;
      }
      for (int i = 0; i < window; ++i) {
        if (!client.recv(line)) break;
        ++local;
      }
      counts[static_cast<std::size_t>(c)] = local;
    });
  }
  for (std::thread& thread : threads) thread.join();
  record.wall_seconds = seconds_since(start);
  for (long long count : counts) record.requests += count;
  record.requests_per_second =
      record.wall_seconds > 0.0
          ? static_cast<double>(record.requests) / record.wall_seconds
          : 0.0;
  std::printf("throughput %2d clients x window %2d: %8.0f req/s\n", clients,
              window, record.requests_per_second);
  return record;
}

/// One admin-endpoint scrape: fresh connection, GET, read to EOF (exactly
/// what a Prometheus scraper does). Returns the body; empty on failure.
std::string admin_scrape(const std::string& host, std::uint16_t port,
                         const std::string& path) {
  net::FdGuard fd = net::connect_tcp(host, port);
  if (!fd.valid()) return {};
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!net::write_all(fd.get(), request.data(), request.size())) return {};
  std::string out;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd.get(), buffer, sizeof(buffer))) > 0) {
    out.append(buffer, static_cast<std::size_t>(n));
  }
  const std::size_t sep = out.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : out.substr(sep + 4);
}

/// Exactly `count` pipelined hit requests on one connection; returns the
/// aggregate requests-per-second (0 on any transport failure).
double fixed_run_rps(const std::string& host, std::uint16_t port,
                     const std::string& frame, int count) {
  Client client(host, port);
  if (!client.ok()) return 0.0;
  const int window = std::min(16, count);
  const Clock::time_point start = Clock::now();
  int sent = 0, received = 0;
  std::string line;
  for (; sent < window; ++sent) {
    if (!client.send(frame)) return 0.0;
  }
  while (received < count) {
    if (!client.recv(line)) return 0.0;
    ++received;
    if (sent < count) {
      if (!client.send(frame)) return 0.0;
      ++sent;
    }
  }
  const double wall = seconds_since(start);
  return wall > 0.0 ? static_cast<double>(count) / wall : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_net.json";
  bool smoke = false;
  bench::ObsSinkArgs sinks;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (sinks.parse(argc, argv, &i)) continue;
    if (arg == "-o" && i + 1 < argc) output = argv[++i];
    if (arg == "--smoke") smoke = true;
  }
  sinks.install();
  const int latency_iterations = smoke ? 200 : 5000;
  const double throughput_seconds = smoke ? 0.05 : 0.4;
  const int mixed_rounds = smoke ? 64 : 512;
  const int overload_frames = smoke ? 500 : 2000;
  const int hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());

  const std::string host = "127.0.0.1";
  serve::ServiceOptions service_options;
  service_options.workers = 2;
  serve::PlanService service(service_options);
  serve::net::NetServerOptions server_options;
  server_options.host = host;
  server_options.port = 0;
  server_options.dispatch_workers = 2;
  serve::net::NetServer server(service, server_options);
  const std::uint16_t port = server.port();
  std::printf("bench_net: NetServer on %s:%u\n", host.c_str(), port);

  const std::string frame = request_frame("bench", 8.0);

  // --- equivalence: wire responses vs batch-mode serve on a fresh service.
  std::vector<EquivalenceRecord> equivalence;
  {
    serve::PlanService direct_service(service_options);
    const serve::BatchParse parsed =
        serve::parse_requests(frame.substr(0, frame.size() - 1));
    if (!parsed.ok() || parsed.requests.size() != 1 ||
        !parsed.requests[0].ok()) {
      std::fprintf(stderr, "bench request failed to parse\n");
      return 1;
    }
    const std::string direct_line = serve::response_to_json(
        direct_service.plan(*parsed.requests[0].request));

    Client client(host, port);
    if (!client.ok()) {
      std::fprintf(stderr, "cannot connect to bench server\n");
      return 1;
    }
    std::string miss_line, hit_line;
    if (!client.send(frame) || !client.recv(miss_line) ||
        !client.send(frame) || !client.recv(hit_line)) {
      std::fprintf(stderr, "equivalence round trip failed\n");
      return 1;
    }
    EquivalenceRecord miss;
    miss.name = "net_miss";
    miss.net_cache = has_field(miss_line, "cache", "miss") ? "miss" : "other";
    miss.identical = !plan_tail(miss_line).empty() &&
                     plan_tail(miss_line) == plan_tail(direct_line);
    equivalence.push_back(miss);
    EquivalenceRecord hit;
    hit.name = "net_hit";
    hit.net_cache = has_field(hit_line, "cache", "hit") ? "hit" : "other";
    hit.identical = !plan_tail(hit_line).empty() &&
                    plan_tail(hit_line) == plan_tail(direct_line);
    equivalence.push_back(hit);
    for (const EquivalenceRecord& record : equivalence) {
      std::printf("%-10s %-6s %s\n", record.name.c_str(),
                  record.net_cache.c_str(),
                  record.identical ? "bit-identical" : "MISMATCH");
    }
  }

  // --- latency: closed-loop hits, one request in flight. ---
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(latency_iterations));
  {
    Client client(host, port);
    std::string line;
    for (int i = 0; i < latency_iterations; ++i) {
      const Clock::time_point start = Clock::now();
      if (!client.send(frame) || !client.recv(line)) {
        std::fprintf(stderr, "latency round trip failed\n");
        return 1;
      }
      latencies.push_back(seconds_since(start));
    }
  }
  const double p50 = stats::percentile(latencies, 0.50);
  const double p95 = stats::percentile(latencies, 0.95);
  const double p99 = stats::percentile(latencies, 0.99);
  std::printf("hit latency: p50 %.1f us, p95 %.1f us, p99 %.1f us\n",
              p50 * 1e6, p95 * 1e6, p99 * 1e6);

  // --- throughput: pipelined hit traffic at 1/2/4 connections. ---
  std::vector<ThroughputRecord> throughput;
  double peak_rps = 0.0;
  for (int clients : {1, 2, 4}) {
    const ThroughputRecord record = pipelined_throughput(
        host, port, frame, clients, 16, throughput_seconds);
    peak_rps = std::max(peak_rps, record.requests_per_second);
    throughput.push_back(record);
  }

  // --- mixed: a pool of 8 distinct requests, 4 prewarmed — the stream
  // interleaves cache hits with real planner runs. ---
  long long mixed_hits = 0, mixed_misses = 0, mixed_requests = 0;
  double mixed_seconds = 0.0;
  {
    std::vector<std::string> pool;
    for (int k = 0; k < 8; ++k) {
      pool.push_back(request_frame("mix" + std::to_string(k),
                                   4.0 + static_cast<double>(k)));
    }
    Client warm(host, port);
    std::string line;
    for (int k = 0; k < 4; ++k) {
      if (!warm.send(pool[static_cast<std::size_t>(k)]) || !warm.recv(line)) {
        std::fprintf(stderr, "mixed warm-up failed\n");
        return 1;
      }
    }
    Client client(host, port);
    const Clock::time_point start = Clock::now();
    for (int i = 0; i < mixed_rounds; ++i) {
      const std::string& request = pool[static_cast<std::size_t>(i % 8)];
      if (!client.send(request) || !client.recv(line)) {
        std::fprintf(stderr, "mixed round trip failed\n");
        return 1;
      }
      ++mixed_requests;
      if (has_field(line, "cache", "hit")) ++mixed_hits;
      if (has_field(line, "cache", "miss")) ++mixed_misses;
    }
    mixed_seconds = seconds_since(start);
  }
  std::printf("mixed: %lld requests (%lld hits, %lld misses), %8.0f req/s\n",
              mixed_requests, mixed_hits, mixed_misses,
              mixed_seconds > 0.0 ? mixed_requests / mixed_seconds : 0.0);

  // --- overload: open-loop burst against a rate-limited server; admission
  // control must shed (reject) instead of queueing. ---
  const double overload_rate = 2000.0;
  const double overload_burst = 16.0;
  long long overload_rejected = 0, overload_served = 0;
  {
    serve::net::NetServerOptions limited = server_options;
    limited.tokens_per_second = overload_rate;
    limited.token_burst = overload_burst;
    serve::net::NetServer limited_server(service, limited);
    Client client(host, limited_server.port());
    std::string burst;
    for (int i = 0; i < overload_frames; ++i) burst += frame;
    if (!client.send(burst)) {
      std::fprintf(stderr, "overload burst send failed\n");
      return 1;
    }
    std::string line;
    for (int i = 0; i < overload_frames; ++i) {
      if (!client.recv(line)) {
        std::fprintf(stderr, "overload response %d missing\n", i);
        return 1;
      }
      if (has_field(line, "status", "rejected")) {
        ++overload_rejected;
      } else {
        ++overload_served;
      }
    }
    const serve::net::NetServerStats limited_stats = limited_server.stats();
    if (limited_stats.shed_rate != overload_rejected) {
      std::fprintf(stderr,
                   "shed accounting mismatch: %lld responses vs %lld stat\n",
                   overload_rejected, limited_stats.shed_rate);
      return 1;
    }
  }
  const double shed_fraction =
      static_cast<double>(overload_rejected) / overload_frames;
  std::printf("overload: %d frames at %d/s budget -> %lld served, %lld shed "
              "(%.1f%%)\n",
              overload_frames, static_cast<int>(overload_rate),
              overload_served, overload_rejected, shed_fraction * 100.0);

  // --- admin: scrape latency of the telemetry endpoint while the server
  // is warm. Every scrape is a fresh connection + GET /metrics, the
  // Prometheus pattern; /healthz must answer ok on a live server. ---
  const int admin_scrapes = smoke ? 50 : 200;
  std::vector<double> scrape_latencies;
  std::size_t metrics_bytes = 0;
  bool healthz_ok = false;
  {
    serve::net::AdminServerOptions admin_options;
    admin_options.host = host;
    admin_options.port = 0;
    admin_options.draining = [&server] { return server.draining(); };
    serve::net::AdminServer admin(admin_options);
    healthz_ok = admin_scrape(host, admin.port(), "/healthz") == "ok\n";
    scrape_latencies.reserve(static_cast<std::size_t>(admin_scrapes));
    for (int i = 0; i < admin_scrapes; ++i) {
      const Clock::time_point start = Clock::now();
      const std::string body = admin_scrape(host, admin.port(), "/metrics");
      if (body.empty() ||
          body.find("madpipe_net_connections") == std::string::npos) {
        std::fprintf(stderr, "admin scrape %d failed\n", i);
        return 1;
      }
      scrape_latencies.push_back(seconds_since(start));
      metrics_bytes = body.size();
    }
  }
  const double scrape_p50 = stats::percentile(scrape_latencies, 0.50);
  const double scrape_p95 = stats::percentile(scrape_latencies, 0.95);
  std::printf("admin: %d /metrics scrapes, p50 %.1f us, p95 %.1f us "
              "(%zu bytes), healthz %s\n",
              admin_scrapes, scrape_p50 * 1e6, scrape_p95 * 1e6,
              metrics_bytes, healthz_ok ? "ok" : "FAILED");

  // --- tail sampling: the same fixed hit run with the sampler disarmed and
  // armed. Arming must not cost throughput — the ratio is floor-checked
  // (hardware-gated) by tools/check_bench_schema.py. ---
  const int tail_requests = smoke ? 200 : 1000;
  obs::disarm_tail_sampling();
  const double tail_baseline_rps =
      fixed_run_rps(host, port, frame, tail_requests);
  obs::arm_tail_sampling({});
  const double tail_armed_rps = fixed_run_rps(host, port, frame, tail_requests);
  obs::disarm_tail_sampling();
  if (tail_baseline_rps <= 0.0 || tail_armed_rps <= 0.0) {
    std::fprintf(stderr, "tail-sampling run failed\n");
    return 1;
  }
  const double tail_ratio = tail_armed_rps / tail_baseline_rps;
  std::printf("tail sampling: %d requests, %8.0f req/s disarmed, "
              "%8.0f req/s armed (ratio %.2f)\n",
              tail_requests, tail_baseline_rps, tail_armed_rps, tail_ratio);

  const serve::net::NetServerStats server_stats = server.stats();
  server.stop();

  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("madpipe-bench-net-v1");
  w.key("smoke");
  w.value(smoke);
  w.key("hardware_threads");
  w.value(hardware_threads);
  w.key("workload");
  w.begin_object();
  w.key("name"); w.value("serve_resnet50_p2_m8_tcp");
  w.key("request_bytes"); w.value(frame.size());
  w.key("latency_iterations"); w.value(latency_iterations);
  w.end_object();
  w.key("equivalence");
  w.begin_array();
  for (const EquivalenceRecord& record : equivalence) {
    w.begin_object();
    w.key("name"); w.value(record.name);
    w.key("cache"); w.value(record.net_cache);
    w.key("identical"); w.value(record.identical);
    w.end_object();
  }
  w.end_array();
  w.key("latency");
  w.begin_object();
  w.key("p50_seconds"); w.value(p50);
  w.key("p95_seconds"); w.value(p95);
  w.key("p99_seconds"); w.value(p99);
  w.end_object();
  w.key("throughput");
  w.begin_array();
  for (const ThroughputRecord& record : throughput) {
    w.begin_object();
    w.key("clients"); w.value(record.clients);
    w.key("window"); w.value(record.window);
    w.key("requests"); w.value(record.requests);
    w.key("wall_seconds"); w.value(record.wall_seconds);
    w.key("requests_per_second"); w.value(record.requests_per_second);
    w.end_object();
  }
  w.end_array();
  w.key("mixed");
  w.begin_object();
  w.key("requests"); w.value(mixed_requests);
  w.key("hits"); w.value(mixed_hits);
  w.key("misses"); w.value(mixed_misses);
  w.key("wall_seconds"); w.value(mixed_seconds);
  w.key("requests_per_second");
  w.value(mixed_seconds > 0.0 ? mixed_requests / mixed_seconds : 0.0);
  w.end_object();
  w.key("overload");
  w.begin_object();
  w.key("frames"); w.value(overload_frames);
  w.key("tokens_per_second"); w.value(overload_rate);
  w.key("token_burst"); w.value(overload_burst);
  w.key("served"); w.value(overload_served);
  w.key("rejected"); w.value(overload_rejected);
  w.key("shed_fraction"); w.value(shed_fraction);
  w.end_object();
  w.key("admin");
  w.begin_object();
  w.key("scrapes"); w.value(admin_scrapes);
  w.key("scrape_p50_seconds"); w.value(scrape_p50);
  w.key("scrape_p95_seconds"); w.value(scrape_p95);
  w.key("metrics_bytes"); w.value(metrics_bytes);
  w.key("healthz_ok"); w.value(healthz_ok);
  w.end_object();
  w.key("tail_sampling");
  w.begin_object();
  w.key("requests"); w.value(tail_requests);
  w.key("baseline_requests_per_second"); w.value(tail_baseline_rps);
  w.key("armed_requests_per_second"); w.value(tail_armed_rps);
  w.key("throughput_ratio"); w.value(tail_ratio);
  w.end_object();
  w.key("server_stats");
  w.begin_object();
  w.key("accepted"); w.value(server_stats.accepted);
  w.key("closed"); w.value(server_stats.closed);
  w.key("frames"); w.value(server_stats.frames);
  w.key("responses"); w.value(server_stats.responses);
  w.key("shed_rate"); w.value(server_stats.shed_rate);
  w.key("shed_depth"); w.value(server_stats.shed_depth);
  w.key("protocol_errors"); w.value(server_stats.protocol_errors);
  w.key("oversized"); w.value(server_stats.oversized);
  w.key("bytes_in"); w.value(server_stats.bytes_in);
  w.key("bytes_out"); w.value(server_stats.bytes_out);
  w.end_object();
  w.key("summary");
  w.begin_object();
  w.key("hit_p50_seconds"); w.value(p50);
  w.key("hit_p99_seconds"); w.value(p99);
  w.key("peak_requests_per_second"); w.value(peak_rps);
  w.end_object();
  w.end_object();

  std::ofstream out(output);
  out << w.str() << "\n";
  std::printf("net benchmark JSON -> %s\n", output.c_str());
  sinks.flush();

  // The wire must never change an answer: fail loudly if it does. The
  // admin endpoint answering /healthz on a live server is equally load
  // bearing for the CI smoke.
  for (const EquivalenceRecord& record : equivalence) {
    if (!record.identical) return 1;
  }
  if (!healthz_ok) return 1;
  return 0;
}
