// Machine-readable planner benchmark: times the MadPipe planner hot path on
// fixed paper-scale workloads (end-to-end plan_madpipe, phase 1 alone, and a
// single MadPipe-DP probe) and writes the numbers to BENCH_planner.json so
// the planner's perf trajectory can be tracked across PRs — the planner-side
// sibling of bench_solver/BENCH_solver.json. Besides timings the records
// carry the achieved periods and an allocation fingerprint, so seed/fast-path
// equivalence can be checked by diffing two JSON files.
//
//   bench_planner [-o FILE] [--smoke]   (default: BENCH_planner.json;
//                                        --smoke = 1 repeat per workload)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "util/json.hpp"

namespace {

using namespace madpipe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Chain resnet101_chain(int length) {
  models::NetworkConfig config;
  config.network = "resnet101";
  config.image_size = 1000;
  config.batch = 8;
  config.chain_length = length;
  return models::build_network(config);
}

/// Compact allocation fingerprint: "first-last@proc;..." in stage order.
std::string allocation_fingerprint(const Allocation& allocation) {
  std::string out;
  const Partitioning& parts = allocation.partitioning();
  for (int s = 0; s < parts.num_stages(); ++s) {
    if (!out.empty()) out += ';';
    out += std::to_string(parts.stage(s).first) + '-' +
           std::to_string(parts.stage(s).last) + '@' +
           std::to_string(allocation.processor_of(s));
  }
  return out;
}

struct WorkloadRecord {
  std::string name;
  long long repeats = 0;
  double wall_seconds = 0.0;
  double per_solve_seconds = 0.0;
  bool feasible = false;
  double period = 0.0;
  double phase1_period = 0.0;
  std::string allocation;
  long long dp_states = 0;
#if defined(MADPIPE_PLANNER_STATS)
  madpipe::PlannerStats stats;
#endif
};

void print_record(const WorkloadRecord& record) {
  std::printf("%-28s %9.3f ms/solve  %s", record.name.c_str(),
              record.per_solve_seconds * 1e3,
              record.feasible ? "feasible" : "infeasible");
  if (record.feasible) {
    std::printf("  period %.3f ms", record.period * 1e3);
  }
  if (record.dp_states > 0) {
    std::printf("  %lld dp states", record.dp_states);
  }
  std::printf("\n");
}

/// Run `body` repeatedly (at least once) until `min_seconds` elapse and fill
/// the timing fields of `record`.
template <typename Body>
void time_workload(WorkloadRecord& record, double min_seconds,
                   const Body& body) {
  const Clock::time_point start = Clock::now();
  do {
    body();
    ++record.repeats;
  } while (seconds_since(start) < min_seconds);
  record.wall_seconds = seconds_since(start);
  record.per_solve_seconds =
      record.wall_seconds / static_cast<double>(record.repeats);
}

WorkloadRecord bench_plan(const std::string& name, const Chain& chain,
                          const Platform& platform,
                          const MadPipeOptions& options, double min_seconds) {
  WorkloadRecord record;
  record.name = name;
  std::optional<Plan> last;
  time_workload(record, min_seconds,
                [&] { last = plan_madpipe(chain, platform, options); });
  if (last.has_value()) {
    record.feasible = true;
    record.period = last->period();
    record.phase1_period = last->phase1_period;
    record.allocation = allocation_fingerprint(last->allocation);
#if defined(MADPIPE_PLANNER_STATS)
    record.stats = last->stats;
    record.dp_states = last->stats.dp_states;
#endif
  }
  print_record(record);
  return record;
}

WorkloadRecord bench_phase1(const std::string& name, const Chain& chain,
                            const Platform& platform,
                            const Phase1Options& options, double min_seconds) {
  WorkloadRecord record;
  record.name = name;
  Phase1Result last;
  time_workload(record, min_seconds,
                [&] { last = madpipe_phase1(chain, platform, options); });
  if (last.feasible()) {
    record.feasible = true;
    record.period = last.period;
    record.phase1_period = last.period;
    record.allocation = allocation_fingerprint(*last.allocation);
#if defined(MADPIPE_PLANNER_STATS)
    record.stats = last.stats;
    record.dp_states = last.stats.dp_states;
#endif
  }
  print_record(record);
  return record;
}

WorkloadRecord bench_dp_probe(const std::string& name, const Chain& chain,
                              const Platform& platform, Seconds target,
                              const MadPipeDPOptions& options,
                              double min_seconds) {
  WorkloadRecord record;
  record.name = name;
  MadPipeDPResult last;
  time_workload(record, min_seconds,
                [&] { last = madpipe_dp(chain, platform, target, options); });
  record.dp_states = static_cast<long long>(last.states_visited);
  if (last.allocation.has_value()) {
    record.feasible = true;
    record.period = last.period;
    record.phase1_period = last.period;
    record.allocation = allocation_fingerprint(*last.allocation);
  }
#if defined(MADPIPE_PLANNER_STATS)
  record.stats = last.stats;
#endif
  print_record(record);
  return record;
}

void write_json(const std::string& path,
                const std::vector<WorkloadRecord>& records) {
  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("madpipe-bench-planner-v1");
  w.key("planner_stats_instrumented");
#if defined(MADPIPE_PLANNER_STATS)
  w.value(true);
#else
  w.value(false);
#endif
  w.key("workloads");
  w.begin_array();
  for (const WorkloadRecord& record : records) {
    w.begin_object();
    w.key("name"); w.value(record.name);
    w.key("repeats"); w.value(record.repeats);
    w.key("wall_seconds"); w.value(record.wall_seconds);
    w.key("per_solve_seconds"); w.value(record.per_solve_seconds);
    w.key("feasible"); w.value(record.feasible);
    w.key("period"); w.value(record.period);
    w.key("phase1_period"); w.value(record.phase1_period);
    w.key("allocation"); w.value(record.allocation);
    w.key("dp_states"); w.value(record.dp_states);
#if defined(MADPIPE_PLANNER_STATS)
    w.key("stats");
    record.stats.write_json(w);
#endif
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path);
  out << w.str() << "\n";
  std::printf("planner benchmark JSON -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_planner.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) output = argv[++i];
    if (arg == "--smoke") smoke = true;
  }
  const double min_seconds = smoke ? 0.0 : 1.0;

  // The CLI's planning configuration: paper grids, default phase-2 budgets.
  MadPipeOptions plan_options;
  plan_options.phase1.dp.grid = Discretization::paper();

  const Chain r101 = resnet101_chain(24);
  const Chain& r50 = bench::evaluation_chain("resnet50");
  const Platform p4{4, 8 * GB, 12 * GB};
  const Platform p8{8, 8 * GB, 12 * GB};

  std::vector<WorkloadRecord> records;
  records.push_back(
      bench_plan("plan_resnet50_p4_m8", r50, p4, plan_options, min_seconds));
  records.push_back(bench_plan("plan_resnet101_24_p4_m8", r101, p4,
                               plan_options, min_seconds));
  records.push_back(bench_plan("plan_resnet101_24_p8_m8", r101, p8,
                               plan_options, min_seconds));
  records.push_back(bench_plan("plan_resnet101_24_p8_m16", r101,
                               Platform{8, 16 * GB, 12 * GB}, plan_options,
                               min_seconds));
  records.push_back(bench_phase1("phase1_resnet101_24_p8_m8", r101, p8,
                                 plan_options.phase1, min_seconds));
  records.push_back(bench_dp_probe("dp_resnet101_24_p4_m8", r101, p4,
                                   r101.total_compute() / 4,
                                   plan_options.phase1.dp, min_seconds));
  write_json(output, records);
  return 0;
}
