// Machine-readable planner benchmark: times the MadPipe planner hot path on
// fixed paper-scale workloads (end-to-end plan_madpipe, phase 1 alone, and a
// single MadPipe-DP probe) and writes the numbers to BENCH_planner.json so
// the planner's perf trajectory can be tracked across PRs — the planner-side
// sibling of bench_solver/BENCH_solver.json. Besides timings the records
// carry the achieved periods and an allocation fingerprint, so seed/fast-path
// equivalence can be checked by diffing two JSON files.
//
//   bench_planner [-o FILE] [--smoke] [--baseline FILE] [--min-seconds X]
//                 [--best-of N] [--trace-out FILE] [--metrics-out FILE]
//       (default output BENCH_planner.json; --smoke = 1 repeat per
//       workload). --baseline compares per-solve timings against a prior
//       BENCH_planner.json and records the ratios — the guard that keeping
//       obs::Span instrumentation permanently in the hot paths costs < 2%
//       when no sink is installed. --best-of N repeats each measurement
//       window N times and keeps the fastest (min-of-N is robust to
//       scheduler noise that swamps a single pass). The measured per-span
//       costs land in the "observability" block either way.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include <algorithm>

#include "common.hpp"
#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/threading.hpp"

namespace {

using namespace madpipe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Chain resnet101_chain(int length) {
  models::NetworkConfig config;
  config.network = "resnet101";
  config.image_size = 1000;
  config.batch = 8;
  config.chain_length = length;
  return models::build_network(config);
}

/// Compact allocation fingerprint: "first-last@proc;..." in stage order.
std::string allocation_fingerprint(const Allocation& allocation) {
  std::string out;
  const Partitioning& parts = allocation.partitioning();
  for (int s = 0; s < parts.num_stages(); ++s) {
    if (!out.empty()) out += ';';
    out += std::to_string(parts.stage(s).first) + '-' +
           std::to_string(parts.stage(s).last) + '@' +
           std::to_string(allocation.processor_of(s));
  }
  return out;
}

struct WorkloadRecord {
  std::string name;
  long long repeats = 0;
  double wall_seconds = 0.0;
  double per_solve_seconds = 0.0;
  bool feasible = false;
  double period = 0.0;
  double phase1_period = 0.0;
  std::string allocation;
  long long dp_states = 0;
  long long spans = -1;  ///< spans emitted by one solve (-1 = not counted)
#if defined(MADPIPE_PLANNER_STATS)
  madpipe::PlannerStats stats;
#endif
};

/// per_solve_seconds by workload name from a prior BENCH_planner.json, for
/// the --baseline regression ratios. Missing file or fields → empty map.
std::map<std::string, double> load_baseline(const std::string& path) {
  std::map<std::string, double> baseline;
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "warning: cannot read baseline %s\n", path.c_str());
    return baseline;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const json::ParseResult parsed = json::parse(text);
  if (!parsed.ok() || !parsed.value.is_object()) return baseline;
  const json::Value* workloads = parsed.value.find("workloads");
  if (workloads == nullptr || !workloads->is_array()) return baseline;
  for (const json::Value& record : workloads->items()) {
    if (!record.is_object()) continue;
    const json::Value* name = record.find("name");
    const json::Value* seconds = record.find("per_solve_seconds");
    if (name != nullptr && name->is_string() && seconds != nullptr &&
        seconds->is_number()) {
      baseline[name->as_string()] = seconds->as_number();
    }
  }
  return baseline;
}

void print_record(const WorkloadRecord& record) {
  std::printf("%-28s %9.3f ms/solve  %s", record.name.c_str(),
              record.per_solve_seconds * 1e3,
              record.feasible ? "feasible" : "infeasible");
  if (record.feasible) {
    std::printf("  period %.3f ms", record.period * 1e3);
  }
  if (record.dp_states > 0) {
    std::printf("  %lld dp states", record.dp_states);
  }
  std::printf("\n");
}

/// Measurement passes per workload; the record keeps the *fastest* pass
/// (min-of-N is robust to scheduler noise where a mean is not — see
/// --best-of).
int g_best_of = 1;

/// Run `body` repeatedly (at least once) until `min_seconds` elapse; repeat
/// that whole window `g_best_of` times and keep the fastest pass's timing
/// fields in `record`.
template <typename Body>
void time_workload(WorkloadRecord& record, double min_seconds,
                   const Body& body) {
  for (int pass = 0; pass < g_best_of; ++pass) {
    long long repeats = 0;
    const Clock::time_point start = Clock::now();
    do {
      body();
      ++repeats;
    } while (seconds_since(start) < min_seconds);
    const double wall = seconds_since(start);
    const double per_solve = wall / static_cast<double>(repeats);
    if (pass == 0 || per_solve < record.per_solve_seconds) {
      record.per_solve_seconds = per_solve;
      record.wall_seconds = wall;
      record.repeats = repeats;
    }
  }
}

/// One traced run of `body`: arms a throwaway sink, counts the spans the
/// solve emits, disarms. That count × the measured disabled-span cost is a
/// noise-free bound on what the permanent instrumentation costs a no-sink
/// solve (wall-clock A/B ratios swing ±10% on shared machines; this
/// doesn't). Returns -1 (skip) when a real --trace-out sink is armed —
/// draining would steal its events.
template <typename Body>
long long count_spans(const Body& body) {
  if (obs::trace_enabled()) return -1;
  obs::install_trace(1 << 16);
  body();
  const long long count = static_cast<long long>(obs::drain_trace().size());
  obs::uninstall_trace();
  return count;
}

WorkloadRecord bench_plan(const std::string& name, const Chain& chain,
                          const Platform& platform,
                          const MadPipeOptions& options, double min_seconds) {
  WorkloadRecord record;
  record.name = name;
  std::optional<Plan> last;
  time_workload(record, min_seconds,
                [&] { last = plan_madpipe(chain, platform, options); });
  record.spans =
      count_spans([&] { last = plan_madpipe(chain, platform, options); });
  if (last.has_value()) {
    record.feasible = true;
    record.period = last->period();
    record.phase1_period = last->phase1_period;
    record.allocation = allocation_fingerprint(last->allocation);
#if defined(MADPIPE_PLANNER_STATS)
    record.stats = last->stats;
    record.dp_states = last->stats.dp_states;
#endif
  }
  print_record(record);
  return record;
}

WorkloadRecord bench_phase1(const std::string& name, const Chain& chain,
                            const Platform& platform,
                            const Phase1Options& options, double min_seconds) {
  WorkloadRecord record;
  record.name = name;
  Phase1Result last;
  time_workload(record, min_seconds,
                [&] { last = madpipe_phase1(chain, platform, options); });
  record.spans =
      count_spans([&] { last = madpipe_phase1(chain, platform, options); });
  if (last.feasible()) {
    record.feasible = true;
    record.period = last.period;
    record.phase1_period = last.period;
    record.allocation = allocation_fingerprint(*last.allocation);
#if defined(MADPIPE_PLANNER_STATS)
    record.stats = last.stats;
    record.dp_states = last.stats.dp_states;
#endif
  }
  print_record(record);
  return record;
}

WorkloadRecord bench_dp_probe(const std::string& name, const Chain& chain,
                              const Platform& platform, Seconds target,
                              const MadPipeDPOptions& options,
                              double min_seconds) {
  WorkloadRecord record;
  record.name = name;
  MadPipeDPResult last;
  time_workload(record, min_seconds,
                [&] { last = madpipe_dp(chain, platform, target, options); });
  record.spans = count_spans(
      [&] { last = madpipe_dp(chain, platform, target, options); });
  record.dp_states = static_cast<long long>(last.states_visited);
  if (last.allocation.has_value()) {
    record.feasible = true;
    record.period = last.period;
    record.phase1_period = last.period;
    record.allocation = allocation_fingerprint(*last.allocation);
  }
#if defined(MADPIPE_PLANNER_STATS)
  record.stats = last.stats;
#endif
  print_record(record);
  return record;
}

/// One thread count of the wavefront-DP scaling table.
struct ScalingPoint {
  int threads = 1;
  double dp_probe_seconds = 0.0;
  double speedup = 1.0;  ///< vs the 1-thread point of the same workload
  bool feasible = false;
  double period = 0.0;
  std::string allocation;
  long long dp_states = 0;
};

struct ScalingRecord {
  std::string name;
  std::vector<ScalingPoint> points;
};

/// Time one DP probe on the wavefront engine at 1/2/4/8 shards. The period
/// and allocation land in every point so the schema checker can assert they
/// are bit-identical across thread counts; speedups are only meaningful
/// when the host has that many hardware threads (the checker gates on the
/// recorded hardware_threads).
ScalingRecord bench_parallel_scaling(const std::string& name,
                                     const Chain& chain,
                                     const Platform& platform, Seconds target,
                                     MadPipeDPOptions options,
                                     double min_seconds) {
  options.engine = DpEngine::ParallelWavefront;
  ScalingRecord record;
  record.name = name;
  for (const int threads : {1, 2, 4, 8}) {
    options.threads = threads;
    WorkloadRecord timing;
    timing.name = name + "_t" + std::to_string(threads);
    MadPipeDPResult last;
    time_workload(timing, min_seconds, [&] {
      last = madpipe_dp(chain, platform, target, options);
    });
    ScalingPoint point;
    point.threads = threads;
    point.dp_probe_seconds = timing.per_solve_seconds;
    point.dp_states = static_cast<long long>(last.states_visited);
    if (last.allocation.has_value()) {
      point.feasible = true;
      point.period = last.period;
      point.allocation = allocation_fingerprint(*last.allocation);
    }
    point.speedup = record.points.empty()
                        ? 1.0
                        : record.points.front().dp_probe_seconds /
                              point.dp_probe_seconds;
    std::printf("%-28s %9.3f ms/probe  x%.2f vs 1 thread\n",
                timing.name.c_str(), point.dp_probe_seconds * 1e3,
                point.speedup);
    record.points.push_back(std::move(point));
  }
  return record;
}

/// The LLM-scale record (ISSUE 9): the DP must complete a ≥2000-layer
/// transformer preset at P = 64 within the state budget. One full-depth DP
/// probe demonstrates that; a coarsened end-to-end plan (one stage per GPU)
/// demonstrates the practical planning recipe at that depth; a serve
/// cold/hit pair on a transformer preset demonstrates the cache on LLM
/// profiles. Everything runs once — these are scale demonstrations, not
/// microbenchmarks (the full-depth probe alone is tens of seconds).
struct LlmScaleRecord {
  std::string network;
  int layers = 0;
  int gpus = 0;
  double memory_gb = 0.0;
  // Full-depth DP probe at the balanced target U(1,L)/P.
  double full_dp_probe_seconds = 0.0;
  long long full_dp_states = 0;
  bool full_feasible = false;
  double full_period = 0.0;
  bool state_budget_hit = false;
  // Coarsened end-to-end plan_madpipe (chain_length = gpus).
  int coarsened_layers = 0;
  double plan_seconds = 0.0;
  bool plan_feasible = false;
  double plan_period = 0.0;
  double speedup_vs_sequential = 0.0;  ///< period ratio, not wall clock
  // Serve cold/hit on a smaller transformer preset (paper-scale platform).
  std::string serve_network;
  double serve_cold_seconds = 0.0;
  double serve_hit_seconds = 0.0;
  double serve_hit_speedup = 0.0;
};

Chain transformer_chain(const std::string& preset, int chain_length) {
  models::NetworkConfig config;
  config.network = preset;
  config.batch = 8;
  config.chain_length = chain_length;
  return models::build_network(config);
}

LlmScaleRecord bench_llm_scale(const MadPipeOptions& plan_options) {
  LlmScaleRecord record;
  record.network = "llm-2k";
  record.gpus = 64;
  record.memory_gb = 300.0;
  const Platform platform{record.gpus,
                          record.memory_gb * GB, 12 * GB};

  // Full depth: 2050 linearized layers, one DP probe at the balanced
  // period. This is the packed-state scale test — it must finish feasible
  // with zero state-budget hits.
  {
    const Chain full = transformer_chain(record.network, 0);
    record.layers = full.length();
    const Seconds target =
        full.total_compute() / static_cast<double>(record.gpus);
    const Clock::time_point start = Clock::now();
    const MadPipeDPResult probe =
        madpipe_dp(full, platform, target, plan_options.phase1.dp);
    record.full_dp_probe_seconds = seconds_since(start);
    record.full_dp_states = static_cast<long long>(probe.states_visited);
    record.state_budget_hit = probe.state_budget_hit;
    if (probe.allocation.has_value()) {
      record.full_feasible = true;
      record.full_period = probe.period;
    }
    std::printf("llm_scale full depth: %d layers, P=%d: %s in %.2f s "
                "(%lld states%s)\n",
                record.layers, record.gpus,
                record.full_feasible ? "feasible" : "infeasible",
                record.full_dp_probe_seconds, record.full_dp_states,
                record.state_budget_hit ? ", BUDGET HIT" : "");
  }

  // Coarsened: the practical LLM recipe — coarsen to one stage per GPU,
  // then run the full planner end to end. The speedup is the sequential
  // period over the planned period (deterministic, not wall clock).
  {
    const Chain coarse = transformer_chain(record.network, record.gpus);
    record.coarsened_layers = coarse.length();
    const Clock::time_point start = Clock::now();
    const std::optional<Plan> plan =
        plan_madpipe(coarse, platform, plan_options);
    record.plan_seconds = seconds_since(start);
    if (plan.has_value()) {
      record.plan_feasible = true;
      record.plan_period = plan->period();
      record.speedup_vs_sequential =
          coarse.total_compute() / plan->period();
    }
    std::printf("llm_scale coarsened:  %d layers, P=%d: %s, speedup "
                "%.2fx, %.3f s wall\n",
                record.coarsened_layers, record.gpus,
                record.plan_feasible ? "feasible" : "infeasible",
                record.speedup_vs_sequential, record.plan_seconds);
  }

  // Serve a transformer preset: cold plan through the cache, then the same
  // request again as a hit.
  {
    record.serve_network = "gpt2-xl";
    const Chain chain = transformer_chain(record.serve_network, 0);
    const Platform p4{4, 16 * GB, 12 * GB};
    serve::PlanService service{serve::ServiceOptions{}};
    const serve::PlanRequest request{
        "llm_scale", chain, p4, serve::PlannerKind::MadPipe, MadPipeOptions{},
        0.0};
    const Clock::time_point cold_start = Clock::now();
    const serve::PlanResponse cold = service.plan(request);
    record.serve_cold_seconds = seconds_since(cold_start);
    const Clock::time_point hit_start = Clock::now();
    const serve::PlanResponse hit = service.plan(request);
    record.serve_hit_seconds = seconds_since(hit_start);
    if (cold.status == serve::ResponseStatus::Ok &&
        hit.status == serve::ResponseStatus::Ok &&
        record.serve_hit_seconds > 0.0) {
      record.serve_hit_speedup =
          record.serve_cold_seconds / record.serve_hit_seconds;
    }
    std::printf("llm_scale serve:      %s cold %.3f s, hit %.1f us "
                "(%.0fx)\n",
                record.serve_network.c_str(), record.serve_cold_seconds,
                record.serve_hit_seconds * 1e6, record.serve_hit_speedup);
  }
  return record;
}

void write_json(const std::string& path,
                const std::vector<WorkloadRecord>& records,
                const std::vector<ScalingRecord>& scaling,
                const LlmScaleRecord& llm,
                const bench::SpanOverhead& overhead, bool trace_armed,
                const std::map<std::string, double>& baseline) {
  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("madpipe-bench-planner-v1");
  w.key("planner_stats_instrumented");
#if defined(MADPIPE_PLANNER_STATS)
  w.value(true);
#else
  w.value(false);
#endif
  w.key("observability");
  w.begin_object();
  w.key("span_overhead_disabled_ns"); w.value(overhead.disabled_ns);
  w.key("span_overhead_enabled_ns"); w.value(overhead.enabled_ns);
  w.key("trace_armed_during_timing"); w.value(trace_armed);
  if (!baseline.empty()) {
    double worst = 0.0;
    for (const WorkloadRecord& record : records) {
      const auto it = baseline.find(record.name);
      if (it == baseline.end() || it->second <= 0.0) continue;
      worst = std::max(worst, record.per_solve_seconds / it->second - 1.0);
    }
    w.key("max_regression_vs_baseline"); w.value(worst);
  }
  w.end_object();
  w.key("workloads");
  w.begin_array();
  for (const WorkloadRecord& record : records) {
    w.begin_object();
    w.key("name"); w.value(record.name);
    w.key("repeats"); w.value(record.repeats);
    w.key("wall_seconds"); w.value(record.wall_seconds);
    w.key("per_solve_seconds"); w.value(record.per_solve_seconds);
    w.key("feasible"); w.value(record.feasible);
    w.key("period"); w.value(record.period);
    w.key("phase1_period"); w.value(record.phase1_period);
    w.key("allocation"); w.value(record.allocation);
    w.key("dp_states"); w.value(record.dp_states);
    if (record.spans >= 0 && record.per_solve_seconds > 0.0) {
      w.key("spans_per_solve"); w.value(record.spans);
      // The provable no-sink instrumentation cost of this workload: spans
      // emitted x measured disabled-span cost, as a fraction of the solve.
      w.key("span_cost_fraction");
      w.value(static_cast<double>(record.spans) * overhead.disabled_ns *
              1e-9 / record.per_solve_seconds);
    }
    if (const auto it = baseline.find(record.name);
        it != baseline.end() && it->second > 0.0) {
      w.key("baseline_per_solve_seconds"); w.value(it->second);
      w.key("vs_baseline");
      w.value(record.per_solve_seconds / it->second);
    }
#if defined(MADPIPE_PLANNER_STATS)
    w.key("stats");
    record.stats.write_json(w);
#endif
    w.end_object();
  }
  w.end_array();
  w.key("parallel_scaling");
  w.begin_object();
  // Speedup expectations only bind when the host can actually run the
  // shards concurrently; the checker reads this field to decide.
  w.key("hardware_threads");
  w.value(static_cast<long long>(par::default_workers()));
  w.key("workloads");
  w.begin_array();
  for (const ScalingRecord& record : scaling) {
    w.begin_object();
    w.key("name"); w.value(record.name);
    w.key("points");
    w.begin_array();
    for (const ScalingPoint& point : record.points) {
      w.begin_object();
      w.key("threads"); w.value(static_cast<long long>(point.threads));
      w.key("dp_probe_seconds"); w.value(point.dp_probe_seconds);
      w.key("speedup"); w.value(point.speedup);
      w.key("feasible"); w.value(point.feasible);
      w.key("period"); w.value(point.period);
      w.key("allocation"); w.value(point.allocation);
      w.key("dp_states"); w.value(point.dp_states);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("llm_scale");
  w.begin_object();
  w.key("hardware_threads");
  w.value(static_cast<long long>(par::default_workers()));
  w.key("network"); w.value(llm.network);
  w.key("layers"); w.value(static_cast<long long>(llm.layers));
  w.key("gpus"); w.value(static_cast<long long>(llm.gpus));
  w.key("memory_gb"); w.value(llm.memory_gb);
  w.key("full_dp_probe_seconds"); w.value(llm.full_dp_probe_seconds);
  w.key("full_dp_states"); w.value(llm.full_dp_states);
  w.key("full_feasible"); w.value(llm.full_feasible);
  w.key("full_period"); w.value(llm.full_period);
  w.key("state_budget_hit"); w.value(llm.state_budget_hit);
  w.key("coarsened_layers");
  w.value(static_cast<long long>(llm.coarsened_layers));
  w.key("plan_seconds"); w.value(llm.plan_seconds);
  w.key("plan_feasible"); w.value(llm.plan_feasible);
  w.key("plan_period"); w.value(llm.plan_period);
  w.key("speedup_vs_sequential"); w.value(llm.speedup_vs_sequential);
  w.key("serve_network"); w.value(llm.serve_network);
  w.key("serve_cold_seconds"); w.value(llm.serve_cold_seconds);
  w.key("serve_hit_seconds"); w.value(llm.serve_hit_seconds);
  w.key("serve_hit_speedup"); w.value(llm.serve_hit_speedup);
  w.end_object();
  w.end_object();
  std::ofstream out(path);
  out << w.str() << "\n";
  std::printf("planner benchmark JSON -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_planner.json";
  std::string baseline_path;
  double min_seconds_arg = 1.0;
  bool smoke = false;
  bench::ObsSinkArgs sinks;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (sinks.parse(argc, argv, &i)) continue;
    if (arg == "-o" && i + 1 < argc) output = argv[++i];
    if (arg == "--baseline" && i + 1 < argc) baseline_path = argv[++i];
    if (arg == "--min-seconds" && i + 1 < argc)
      min_seconds_arg = std::atof(argv[++i]);
    if (arg == "--best-of" && i + 1 < argc)
      g_best_of = std::max(1, std::atoi(argv[++i]));
    if (arg == "--smoke") smoke = true;
  }
  const double min_seconds = smoke ? 0.0 : min_seconds_arg;

  // Span overhead first: it cycles the trace sink, which would clear any
  // events the workloads buffer.
  const bench::SpanOverhead overhead = bench::measure_span_overhead();
  std::printf("span overhead: %.2f ns disabled, %.1f ns enabled\n",
              overhead.disabled_ns, overhead.enabled_ns);
  sinks.install();

  // The CLI's planning configuration: paper grids, default phase-2 budgets.
  MadPipeOptions plan_options;
  plan_options.phase1.dp.grid = Discretization::paper();

  const Chain r101 = resnet101_chain(24);
  const Chain& r50 = bench::evaluation_chain("resnet50");
  const Platform p4{4, 8 * GB, 12 * GB};
  const Platform p8{8, 8 * GB, 12 * GB};

  std::vector<WorkloadRecord> records;
  records.push_back(
      bench_plan("plan_resnet50_p4_m8", r50, p4, plan_options, min_seconds));
  records.push_back(bench_plan("plan_resnet101_24_p4_m8", r101, p4,
                               plan_options, min_seconds));
  records.push_back(bench_plan("plan_resnet101_24_p8_m8", r101, p8,
                               plan_options, min_seconds));
  records.push_back(bench_plan("plan_resnet101_24_p8_m16", r101,
                               Platform{8, 16 * GB, 12 * GB}, plan_options,
                               min_seconds));
  records.push_back(bench_phase1("phase1_resnet101_24_p8_m8", r101, p8,
                                 plan_options.phase1, min_seconds));
  records.push_back(bench_dp_probe("dp_resnet101_24_p4_m8", r101, p4,
                                   r101.total_compute() / 4,
                                   plan_options.phase1.dp, min_seconds));
  std::vector<ScalingRecord> scaling;
  scaling.push_back(bench_parallel_scaling(
      "scale_resnet50_p4_m8", r50, p4, r50.total_compute() / 4,
      plan_options.phase1.dp, min_seconds));
  scaling.push_back(bench_parallel_scaling(
      "scale_resnet101_24_p8_m16", r101, Platform{8, 16 * GB, 12 * GB},
      r101.total_compute() / 8, plan_options.phase1.dp, min_seconds));
  const LlmScaleRecord llm = bench_llm_scale(plan_options);
  const std::map<std::string, double> baseline =
      baseline_path.empty() ? std::map<std::string, double>{}
                            : load_baseline(baseline_path);
  write_json(output, records, scaling, llm, overhead, obs::trace_enabled(),
             baseline);
  sinks.flush();
  return 0;
}
