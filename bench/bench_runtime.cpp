// Planner runtime microbenchmarks (google-benchmark): the cost of
// MadPipe-DP as a function of chain length, processor count and grid
// granularity, plus the supporting machinery (1F1B*, the cyclic scheduler
// and the simplex). The paper reports "several seconds … up to 15 minutes"
// at its discretization on its (longer) profiled chains; these measurements
// document where our implementation stands.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "cyclic/ilp_scheduler.hpp"
#include "cyclic/period_search.hpp"
#include "cyclic/stage_graph.hpp"
#include "madpipe/search.hpp"
#include "models/zoo.hpp"
#include "pipedream/pipedream.hpp"
#include "schedule/one_f_one_b.hpp"
#include "solver/lp.hpp"
#include "solver/milp.hpp"

namespace {

using namespace madpipe;

Chain bench_chain(int length) {
  models::NetworkConfig config;
  config.network = "resnet101";
  config.image_size = 1000;
  config.batch = 8;
  config.chain_length = length;
  return models::build_network(config);
}

void BM_MadPipeDP_ChainLength(benchmark::State& state) {
  const Chain chain = bench_chain(static_cast<int>(state.range(0)));
  const Platform platform{4, 8 * GB, 12 * GB};
  MadPipeDPOptions options;
  options.grid = Discretization::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        madpipe_dp(chain, platform, chain.total_compute() / 4, options));
  }
}
BENCHMARK(BM_MadPipeDP_ChainLength)->Arg(8)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_MadPipeDP_Processors(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{static_cast<int>(state.range(0)), 8 * GB, 12 * GB};
  MadPipeDPOptions options;
  options.grid = Discretization::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(madpipe_dp(
        chain, platform, chain.total_compute() / platform.processors,
        options));
  }
}
BENCHMARK(BM_MadPipeDP_Processors)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MadPipeDP_GridPoints(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{4, 8 * GB, 12 * GB};
  MadPipeDPOptions options;
  const int scale = static_cast<int>(state.range(0));
  options.grid = Discretization{25 * scale + 1, 5 * scale + 1, 12 * scale + 1,
                                RoundingMode::Nearest};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        madpipe_dp(chain, platform, chain.total_compute() / 4, options));
  }
}
BENCHMARK(BM_MadPipeDP_GridPoints)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MadPipePhase1_Full(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{static_cast<int>(state.range(0)), 8 * GB, 12 * GB};
  Phase1Options options;
  options.dp.grid = Discretization::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(madpipe_phase1(chain, platform, options));
  }
}
BENCHMARK(BM_MadPipePhase1_Full)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// One DP probe at paper discretization with state-rate and cache-behaviour
// counters: the unit of work every phase-1 iteration repeats.
void BM_MadPipeDPProbe(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{static_cast<int>(state.range(0)), 8 * GB, 12 * GB};
  MadPipeDPOptions options;
  options.grid = Discretization::paper();
  const Seconds target = chain.total_compute() / platform.processors;
#if defined(MADPIPE_PLANNER_STATS)
  PlannerStats total;
#endif
  std::size_t states = 0;
  for (auto _ : state) {
    const MadPipeDPResult dp = madpipe_dp(chain, platform, target, options);
    benchmark::DoNotOptimize(dp.period);
    states += dp.states_visited;
#if defined(MADPIPE_PLANNER_STATS)
    total.absorb(dp.stats);
#endif
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
#if defined(MADPIPE_PLANNER_STATS)
  if (total.memo_child_lookups > 0) {
    state.counters["memo_hit%"] =
        100.0 * static_cast<double>(total.memo_hits) /
        static_cast<double>(total.memo_child_lookups);
  }
  if (total.transition_lookups > 0) {
    state.counters["trans_hit%"] =
        100.0 * static_cast<double>(total.transition_hits) /
        static_cast<double>(total.transition_lookups);
  }
#endif
}
BENCHMARK(BM_MadPipeDPProbe)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Full Algorithm-1 bisection with the probe-level counters aggregated, so a
// states/s regression is visible end to end and not only per probe.
void BM_Phase1(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{static_cast<int>(state.range(0)), 8 * GB, 12 * GB};
  Phase1Options options;
  options.dp.grid = Discretization::paper();
#if defined(MADPIPE_PLANNER_STATS)
  PlannerStats total;
#endif
  for (auto _ : state) {
    const Phase1Result phase1 = madpipe_phase1(chain, platform, options);
    benchmark::DoNotOptimize(phase1.period);
#if defined(MADPIPE_PLANNER_STATS)
    total.absorb(phase1.stats);
#endif
  }
#if defined(MADPIPE_PLANNER_STATS)
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(total.dp_states), benchmark::Counter::kIsRate);
  state.counters["dp_probes"] = static_cast<double>(total.dp_probes);
  state.counters["spec_hits"] = static_cast<double>(total.speculative_hits);
#endif
}
BENCHMARK(BM_Phase1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_PipeDreamPartition(benchmark::State& state) {
  const Chain chain = bench_chain(static_cast<int>(state.range(0)));
  const Platform platform{8, 8 * GB, 12 * GB};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipedream_partition(chain, platform));
  }
}
BENCHMARK(BM_PipeDreamPartition)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_OneFOneBPlan(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{8, 8 * GB, 12 * GB};
  const auto partition = pipedream_partition(chain, platform);
  if (!partition) {
    state.SkipWithError("no partition");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        plan_one_f_one_b(partition->allocation, chain, platform));
  }
}
BENCHMARK(BM_OneFOneBPlan)->Unit(benchmark::kMicrosecond);

void BM_CyclicScheduler(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{4, 8 * GB, 12 * GB};
  // A representative non-contiguous allocation: split the PipeDream
  // partition's first stage off to a shared processor.
  Phase1Options options;
  options.dp.grid = Discretization::paper();
  const Phase1Result phase1 = madpipe_phase1(chain, platform, options);
  if (!phase1.feasible()) {
    state.SkipWithError("phase 1 infeasible");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_min_period(*phase1.allocation, chain,
                                             platform, phase1.period));
  }
}
BENCHMARK(BM_CyclicScheduler)->Unit(benchmark::kMillisecond);

void BM_SimplexDense(benchmark::State& state) {
  // Random-but-fixed LP of the given size.
  const int n = static_cast<int>(state.range(0));
  solver::Model model;
  model.set_sense(solver::Sense::Maximize);
  unsigned value = 12345;
  const auto next = [&value] {
    value = value * 1103515245u + 12345u;
    return static_cast<double>((value >> 16) & 0x7fff) / 32768.0;
  };
  for (int i = 0; i < n; ++i) {
    model.add_variable("x" + std::to_string(i), 0.0, 10.0, next());
  }
  for (int r = 0; r < n; ++r) {
    solver::LinearExpr expr;
    for (int i = 0; i < n; ++i) expr.add(i, next());
    model.add_constraint(std::move(expr), solver::Relation::LessEqual,
                         1.0 + 5.0 * next());
  }
  long long pivots = 0;
  for (auto _ : state) {
    const solver::LPResult lp = solver::solve_lp(model);
    pivots += lp.stats.pivots;
    benchmark::DoNotOptimize(lp);
  }
  state.counters["pivots/s"] =
      benchmark::Counter(static_cast<double>(pivots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimplexDense)->Arg(10)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMicrosecond);

void BM_MILPKnapsack(benchmark::State& state) {
  // Branchy 0/1 knapsack at ~45% capacity: the B&B tree, not any single
  // relaxation, dominates. Same generator as bench_solver's workload.
  const int items = static_cast<int>(state.range(0));
  solver::Model model;
  model.set_sense(solver::Sense::Maximize);
  unsigned value = 12345;
  const auto next = [&value] {
    value = value * 1103515245u + 12345u;
    return static_cast<double>((value >> 16) & 0x7fff) / 32768.0;
  };
  solver::LinearExpr total;
  double capacity = 0.0;
  for (int i = 0; i < items; ++i) {
    const double weight = 1.0 + 9.0 * next();
    const double worth = 1.0 + 9.0 * next();
    const int x = model.add_variable("x" + std::to_string(i), 0.0, 1.0, worth,
                                     solver::VarType::Integer);
    total.add(x, weight);
    capacity += weight;
  }
  model.add_constraint(std::move(total), solver::Relation::LessEqual,
                       0.45 * capacity);
  long long nodes = 0;
  long long pivots = 0;
  for (auto _ : state) {
    const solver::MILPResult milp = solver::solve_milp(model);
    nodes += milp.stats.nodes_explored;
    pivots += milp.stats.pivots;
    benchmark::DoNotOptimize(milp);
  }
  state.counters["nodes/s"] =
      benchmark::Counter(static_cast<double>(nodes), benchmark::Counter::kIsRate);
  state.counters["pivots/s"] =
      benchmark::Counter(static_cast<double>(pivots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MILPKnapsack)->Arg(16)->Arg(20)->Unit(benchmark::kMicrosecond);

void BM_ILPSchedulerProbe(benchmark::State& state) {
  // End-to-end solve_milp wall clock on the real phase-2 MILP: one
  // ilp_schedule probe at 1.05× the phase-1 period lower bound (the same
  // workload bench_solver records in BENCH_solver.json).
  const Chain& chain = bench::evaluation_chain("resnet50");
  const Platform platform{4, 8 * GB, 12 * GB};
  Phase1Options options;
  options.dp.grid = Discretization::paper();
  const Phase1Result phase1 = madpipe_phase1(chain, platform, options);
  if (!phase1.feasible()) {
    state.SkipWithError("phase 1 infeasible");
    return;
  }
  const CyclicProblem problem =
      build_cyclic_problem(*phase1.allocation, chain, platform);
  const Seconds period = phase1.period * 1.05;
  long long nodes = 0;
  for (auto _ : state) {
    const ILPScheduleResult probe = ilp_schedule(problem, *phase1.allocation,
                                                 chain, platform, period);
    nodes += probe.stats.nodes_explored;
    benchmark::DoNotOptimize(probe);
  }
  state.counters["nodes/s"] =
      benchmark::Counter(static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ILPSchedulerProbe)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
