// Planner runtime microbenchmarks (google-benchmark): the cost of
// MadPipe-DP as a function of chain length, processor count and grid
// granularity, plus the supporting machinery (1F1B*, the cyclic scheduler
// and the simplex). The paper reports "several seconds … up to 15 minutes"
// at its discretization on its (longer) profiled chains; these measurements
// document where our implementation stands.
#include <benchmark/benchmark.h>

#include "cyclic/period_search.hpp"
#include "madpipe/search.hpp"
#include "models/zoo.hpp"
#include "pipedream/pipedream.hpp"
#include "schedule/one_f_one_b.hpp"
#include "solver/lp.hpp"

namespace {

using namespace madpipe;

Chain bench_chain(int length) {
  models::NetworkConfig config;
  config.network = "resnet101";
  config.image_size = 1000;
  config.batch = 8;
  config.chain_length = length;
  return models::build_network(config);
}

void BM_MadPipeDP_ChainLength(benchmark::State& state) {
  const Chain chain = bench_chain(static_cast<int>(state.range(0)));
  const Platform platform{4, 8 * GB, 12 * GB};
  MadPipeDPOptions options;
  options.grid = Discretization::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        madpipe_dp(chain, platform, chain.total_compute() / 4, options));
  }
}
BENCHMARK(BM_MadPipeDP_ChainLength)->Arg(8)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_MadPipeDP_Processors(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{static_cast<int>(state.range(0)), 8 * GB, 12 * GB};
  MadPipeDPOptions options;
  options.grid = Discretization::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(madpipe_dp(
        chain, platform, chain.total_compute() / platform.processors,
        options));
  }
}
BENCHMARK(BM_MadPipeDP_Processors)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MadPipeDP_GridPoints(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{4, 8 * GB, 12 * GB};
  MadPipeDPOptions options;
  const int scale = static_cast<int>(state.range(0));
  options.grid = Discretization{25 * scale + 1, 5 * scale + 1, 12 * scale + 1,
                                RoundingMode::Nearest};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        madpipe_dp(chain, platform, chain.total_compute() / 4, options));
  }
}
BENCHMARK(BM_MadPipeDP_GridPoints)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MadPipePhase1_Full(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{static_cast<int>(state.range(0)), 8 * GB, 12 * GB};
  Phase1Options options;
  options.dp.grid = Discretization::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(madpipe_phase1(chain, platform, options));
  }
}
BENCHMARK(BM_MadPipePhase1_Full)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipeDreamPartition(benchmark::State& state) {
  const Chain chain = bench_chain(static_cast<int>(state.range(0)));
  const Platform platform{8, 8 * GB, 12 * GB};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipedream_partition(chain, platform));
  }
}
BENCHMARK(BM_PipeDreamPartition)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_OneFOneBPlan(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{8, 8 * GB, 12 * GB};
  const auto partition = pipedream_partition(chain, platform);
  if (!partition) {
    state.SkipWithError("no partition");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        plan_one_f_one_b(partition->allocation, chain, platform));
  }
}
BENCHMARK(BM_OneFOneBPlan)->Unit(benchmark::kMicrosecond);

void BM_CyclicScheduler(benchmark::State& state) {
  const Chain chain = bench_chain(24);
  const Platform platform{4, 8 * GB, 12 * GB};
  // A representative non-contiguous allocation: split the PipeDream
  // partition's first stage off to a shared processor.
  Phase1Options options;
  options.dp.grid = Discretization::paper();
  const Phase1Result phase1 = madpipe_phase1(chain, platform, options);
  if (!phase1.feasible()) {
    state.SkipWithError("phase 1 infeasible");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_min_period(*phase1.allocation, chain,
                                             platform, phase1.period));
  }
}
BENCHMARK(BM_CyclicScheduler)->Unit(benchmark::kMillisecond);

void BM_SimplexDense(benchmark::State& state) {
  // Random-but-fixed LP of the given size.
  const int n = static_cast<int>(state.range(0));
  solver::Model model;
  model.set_sense(solver::Sense::Maximize);
  unsigned value = 12345;
  const auto next = [&value] {
    value = value * 1103515245u + 12345u;
    return static_cast<double>((value >> 16) & 0x7fff) / 32768.0;
  };
  for (int i = 0; i < n; ++i) {
    model.add_variable("x" + std::to_string(i), 0.0, 10.0, next());
  }
  for (int r = 0; r < n; ++r) {
    solver::LinearExpr expr;
    for (int i = 0; i < n; ++i) expr.add(i, next());
    model.add_constraint(std::move(expr), solver::Relation::LessEqual,
                         1.0 + 5.0 * next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_lp(model));
  }
}
BENCHMARK(BM_SimplexDense)->Arg(10)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
