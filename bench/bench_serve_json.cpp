// Machine-readable serve benchmark: measures the plan-serving subsystem on a
// paper-scale workload — cold planning cost, cache-hit latency (p50/p99 and
// the speedup over a cold plan), request coalescing, and multi-client hit
// throughput — and writes BENCH_serve.json so the serving path's perf
// trajectory can be tracked across PRs, next to BENCH_planner.json and
// BENCH_solver.json.
//
// Besides timings the document carries *equivalence* records: the planner
// result served through the cache (cold, cached, and under an exact
// power-of-two rescale of the profile) is compared bit for bit against a
// direct plan_madpipe call, so the caching layer is continuously proven to
// change nothing about the answers.
//
//   bench_serve [-o FILE] [--smoke]   (default: BENCH_serve.json;
//                                      --smoke = minimal iteration counts)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace {

using namespace madpipe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Chain resnet101_chain(int length) {
  models::NetworkConfig config;
  config.network = "resnet101";
  config.image_size = 1000;
  config.batch = 8;
  config.chain_length = length;
  return models::build_network(config);
}

/// The chain with every duration × time_factor and every byte quantity ×
/// byte_factor (both powers of two in this bench, so the scaling is exact).
Chain scale_chain(const Chain& chain, double time_factor, double byte_factor) {
  std::vector<Layer> layers;
  layers.reserve(static_cast<std::size_t>(chain.length()));
  for (int l = 1; l <= chain.length(); ++l) {
    Layer layer = chain.layer(l);
    layer.forward_time *= time_factor;
    layer.backward_time *= time_factor;
    layer.weight_bytes *= byte_factor;
    layer.output_bytes *= byte_factor;
    layer.scratch_bytes *= byte_factor;
    layers.push_back(std::move(layer));
  }
  return Chain(chain.name() + "_scaled", chain.activation(0) * byte_factor,
               std::move(layers));
}

serve::PlanRequest make_request(const std::string& id, const Chain& chain,
                                const Platform& platform) {
  return serve::PlanRequest{id, chain, platform, serve::PlannerKind::MadPipe,
                            MadPipeOptions{}, 0.0};
}

struct EquivalenceRecord {
  std::string name;
  std::string cache;  ///< outcome on the serve side
  bool identical = false;
  double serve_period = 0.0;
  double direct_period = 0.0;
  std::string serve_allocation;
  std::string direct_allocation;
};

EquivalenceRecord check_equivalence(const std::string& name,
                                    const serve::PlanResponse& response,
                                    const std::optional<Plan>& direct) {
  EquivalenceRecord record;
  record.name = name;
  record.cache = serve::to_string(response.cache);
  if (response.plan.has_value() && direct.has_value()) {
    record.identical = serve::plans_bit_identical(*response.plan, *direct);
    record.serve_period = response.plan->period();
    record.direct_period = direct->period();
    record.serve_allocation =
        serve::allocation_fingerprint(response.plan->allocation);
    record.direct_allocation = serve::allocation_fingerprint(direct->allocation);
  }
  std::printf("%-24s %-9s %s\n", record.name.c_str(), record.cache.c_str(),
              record.identical ? "bit-identical" : "MISMATCH");
  return record;
}

struct ThroughputRecord {
  int clients = 0;
  long long requests = 0;
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
};

/// `clients` threads hammer the (warm) cache for `duration` seconds.
ThroughputRecord hit_throughput(serve::PlanService& service,
                                const serve::PlanRequest& request, int clients,
                                double duration) {
  ThroughputRecord record;
  record.clients = clients;
  std::vector<std::thread> threads;
  std::vector<long long> counts(static_cast<std::size_t>(clients), 0);
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      do {
        serve::PlanResponse response = service.plan(request);
        if (response.status == serve::ResponseStatus::Ok)
          ++counts[static_cast<std::size_t>(c)];
      } while (seconds_since(start) < duration);
    });
  }
  for (std::thread& thread : threads) thread.join();
  record.wall_seconds = seconds_since(start);
  for (long long count : counts) record.requests += count;
  record.requests_per_second =
      static_cast<double>(record.requests) / record.wall_seconds;
  std::printf("throughput %2d clients: %8.0f hits/s\n", clients,
              record.requests_per_second);
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_serve.json";
  bool smoke = false;
  bench::ObsSinkArgs sinks;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (sinks.parse(argc, argv, &i)) continue;
    if (arg == "-o" && i + 1 < argc) output = argv[++i];
    if (arg == "--smoke") smoke = true;
  }
  sinks.install();
  const int hit_iterations = smoke ? 200 : 5000;
  const double throughput_seconds = smoke ? 0.05 : 0.5;

  const Chain r101 = resnet101_chain(24);
  const Platform p4{4, 8 * GB, 12 * GB};
  const MadPipeOptions plan_options;  // defaults == the paper configuration

  // --- cold: the planner without any serving layer. ---
  const Clock::time_point cold_start = Clock::now();
  const std::optional<Plan> direct = plan_madpipe(r101, p4, plan_options);
  const double cold_plan_seconds = seconds_since(cold_start);
  std::printf("cold plan_madpipe: %.3f s\n", cold_plan_seconds);

  serve::ServiceOptions service_options;
  service_options.workers = 2;
  serve::PlanService service(service_options);
  const serve::PlanRequest request = make_request("bench", r101, p4);

  // --- miss through the service (equivalence check #1). ---
  const Clock::time_point miss_start = Clock::now();
  const serve::PlanResponse miss = service.plan(request);
  const double serve_miss_seconds = seconds_since(miss_start);
  std::vector<EquivalenceRecord> equivalence;
  equivalence.push_back(check_equivalence("serve_miss", miss, direct));

  // --- hits: latency distribution (equivalence check #2 on the first). ---
  std::vector<double> hit_latencies;
  hit_latencies.reserve(static_cast<std::size_t>(hit_iterations));
  for (int i = 0; i < hit_iterations; ++i) {
    const Clock::time_point start = Clock::now();
    const serve::PlanResponse hit = service.plan(request);
    hit_latencies.push_back(seconds_since(start));
    if (i == 0) equivalence.push_back(check_equivalence("serve_hit", hit, direct));
  }
  const double hit_p50 = stats::percentile(hit_latencies, 0.50);
  const double hit_p99 = stats::percentile(hit_latencies, 0.99);
  std::printf("cache hit: p50 %.1f us, p99 %.1f us over %d requests\n",
              hit_p50 * 1e6, hit_p99 * 1e6, hit_iterations);

  // --- scaled hit: durations ×4, bytes ×2 (M, β adjusted to match) is the
  // same canonical request; the served plan must equal planning the scaled
  // profile directly (equivalence check #3 — the key property of §request.hpp).
  const double time_factor = 4.0, byte_factor = 2.0;
  const Chain scaled = scale_chain(r101, time_factor, byte_factor);
  const Platform scaled_platform{p4.processors,
                                 p4.memory_per_processor * byte_factor,
                                 p4.bandwidth * byte_factor / time_factor};
  const serve::PlanRequest scaled_request =
      make_request("bench_scaled", scaled, scaled_platform);
  const serve::PlanResponse scaled_hit = service.plan(scaled_request);
  const std::optional<Plan> scaled_direct =
      plan_madpipe(scaled, scaled_platform, plan_options);
  equivalence.push_back(
      check_equivalence("serve_scaled_hit", scaled_hit, scaled_direct));

  // --- coalescing: 16 identical requests land before the first completes;
  // exactly one planner run feeds all of them. ---
  serve::ServiceOptions coalesce_options;
  coalesce_options.workers = 4;
  serve::PlanService coalesce_service(coalesce_options);
  const int coalesce_clients = 16;
  std::vector<std::future<serve::PlanResponse>> coalesce_futures;
  for (int c = 0; c < coalesce_clients; ++c) {
    coalesce_futures.push_back(coalesce_service.submit(request));
  }
  for (std::future<serve::PlanResponse>& future : coalesce_futures)
    future.get();
  const serve::ServeStats coalesce_stats = coalesce_service.stats();
  std::printf("coalesce %d clients: %lld planner runs, %lld coalesced\n",
              coalesce_clients, coalesce_stats.planner_runs,
              coalesce_stats.coalesced);

  // --- hit throughput at 1/4/16 client threads. ---
  std::vector<ThroughputRecord> throughput;
  for (int clients : {1, 4, 16}) {
    throughput.push_back(
        hit_throughput(service, request, clients, throughput_seconds));
  }

  const serve::ServeStats serve_stats = service.stats();
  const double hit_speedup =
      hit_p50 > 0.0 ? cold_plan_seconds / hit_p50 : 0.0;
  std::printf("summary: cold %.3f s, hit p50 %.1f us -> %.0fx\n",
              cold_plan_seconds, hit_p50 * 1e6, hit_speedup);

  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("madpipe-bench-serve-v1");
  w.key("smoke");
  w.value(smoke);
  w.key("workload");
  w.begin_object();
  w.key("name"); w.value("plan_resnet101_24_p4_m8");
  w.key("hit_iterations"); w.value(hit_iterations);
  w.end_object();
  w.key("equivalence");
  w.begin_array();
  for (const EquivalenceRecord& record : equivalence) {
    w.begin_object();
    w.key("name"); w.value(record.name);
    w.key("cache"); w.value(record.cache);
    w.key("identical"); w.value(record.identical);
    w.key("serve_period"); w.value(record.serve_period);
    w.key("direct_period"); w.value(record.direct_period);
    w.key("serve_allocation"); w.value(record.serve_allocation);
    w.key("direct_allocation"); w.value(record.direct_allocation);
    w.end_object();
  }
  w.end_array();
  w.key("coalesce");
  w.begin_object();
  w.key("clients"); w.value(coalesce_clients);
  w.key("planner_runs"); w.value(coalesce_stats.planner_runs);
  w.key("coalesced"); w.value(coalesce_stats.coalesced);
  w.end_object();
  w.key("throughput");
  w.begin_array();
  for (const ThroughputRecord& record : throughput) {
    w.begin_object();
    w.key("clients"); w.value(record.clients);
    w.key("requests"); w.value(record.requests);
    w.key("wall_seconds"); w.value(record.wall_seconds);
    w.key("requests_per_second"); w.value(record.requests_per_second);
    w.end_object();
  }
  w.end_array();
  w.key("stats");
  serve_stats.write_json(w);
  w.key("summary");
  w.begin_object();
  w.key("cold_plan_seconds"); w.value(cold_plan_seconds);
  w.key("serve_miss_seconds"); w.value(serve_miss_seconds);
  w.key("hit_p50_seconds"); w.value(hit_p50);
  w.key("hit_p99_seconds"); w.value(hit_p99);
  w.key("hit_speedup"); w.value(hit_speedup);
  w.end_object();
  w.end_object();

  std::ofstream out(output);
  out << w.str() << "\n";
  std::printf("serve benchmark JSON -> %s\n", output.c_str());
  sinks.flush();

  // Equivalence is the contract: fail the bench loudly if it ever breaks.
  for (const EquivalenceRecord& record : equivalence) {
    if (!record.identical) return 1;
  }
  return 0;
}
