// Machine-readable solver benchmark: times the LP and MILP hot paths on
// fixed workloads (a dense random LP, a branchy knapsack, and the real
// ILP-scheduler model from a phase-1 allocation) and writes the numbers to
// BENCH_solver.json so the solver's perf trajectory can be tracked across
// PRs. Human-readable numbers go to stdout as well.
//
//   bench_solver [-o FILE]     (default: BENCH_solver.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "common.hpp"
#include "cyclic/ilp_scheduler.hpp"
#include "cyclic/stage_graph.hpp"
#include "madpipe/search.hpp"
#include "solver/lp.hpp"
#include "solver/milp.hpp"
#include "util/json.hpp"

namespace {

using namespace madpipe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Deterministic LCG in [0,1), matching bench_runtime's BM_SimplexDense.
struct Lcg {
  unsigned value = 12345;
  double next() {
    value = value * 1103515245u + 12345u;
    return static_cast<double>((value >> 16) & 0x7fff) / 32768.0;
  }
};

solver::Model dense_lp(int n) {
  solver::Model model;
  model.set_sense(solver::Sense::Maximize);
  Lcg rng;
  for (int i = 0; i < n; ++i) {
    model.add_variable("x" + std::to_string(i), 0.0, 10.0, rng.next());
  }
  for (int r = 0; r < n; ++r) {
    solver::LinearExpr expr;
    for (int i = 0; i < n; ++i) expr.add(i, rng.next());
    model.add_constraint(std::move(expr), solver::Relation::LessEqual,
                         1.0 + 5.0 * rng.next());
  }
  return model;
}

solver::Model knapsack_milp(int items) {
  solver::Model model;
  model.set_sense(solver::Sense::Maximize);
  solver::LinearExpr total;
  Lcg rng;
  double capacity = 0.0;
  for (int i = 0; i < items; ++i) {
    const double weight = 1.0 + 9.0 * rng.next();
    const double value = 1.0 + 9.0 * rng.next();
    const int x = model.add_variable("x" + std::to_string(i), 0.0, 1.0, value,
                                     solver::VarType::Integer);
    total.add(x, weight);
    capacity += weight;
  }
  model.add_constraint(std::move(total), solver::Relation::LessEqual,
                       0.45 * capacity);
  return model;
}

struct WorkloadRecord {
  std::string name;
  long long repeats = 0;
  double wall_seconds = 0.0;
  double per_solve_seconds = 0.0;
  long long nodes = 0;
  double nodes_per_sec = 0.0;
  long long pivots = 0;
  double pivots_per_sec = 0.0;
  long long warm_start_hits = 0;
  std::string status;
};

void print_record(const WorkloadRecord& record) {
  std::printf("%-24s %8.3f ms/solve", record.name.c_str(),
              record.per_solve_seconds * 1e3);
  if (record.nodes > 0) {
    std::printf("  %8lld nodes  %10.0f nodes/s", record.nodes,
                record.nodes_per_sec);
  }
  if (record.pivots > 0) {
    std::printf("  %8lld pivots  %10.0f pivots/s", record.pivots,
                record.pivots_per_sec);
  }
  if (!record.status.empty()) std::printf("  [%s]", record.status.c_str());
  std::printf("\n");
}

WorkloadRecord bench_lp(const std::string& name, const solver::Model& model,
                        double min_seconds) {
  WorkloadRecord record;
  record.name = name;
  const Clock::time_point start = Clock::now();
  solver::LPResult last;
  do {
    last = solver::solve_lp(model);
    ++record.repeats;
  } while (seconds_since(start) < min_seconds);
  record.wall_seconds = seconds_since(start);
  record.per_solve_seconds =
      record.wall_seconds / static_cast<double>(record.repeats);
#if defined(MADPIPE_SOLVER_STATS)
  record.pivots = last.stats.pivots * record.repeats;
  record.pivots_per_sec =
      static_cast<double>(record.pivots) / record.wall_seconds;
#endif
  record.status = last.status == solver::LPStatus::Optimal ? "optimal" : "?";
  print_record(record);
  return record;
}

WorkloadRecord bench_milp(const std::string& name, const solver::Model& model,
                          double min_seconds,
                          const solver::MILPOptions& options = {}) {
  WorkloadRecord record;
  record.name = name;
  const Clock::time_point start = Clock::now();
  solver::MILPResult last;
  do {
    last = solver::solve_milp(model, options);
    ++record.repeats;
  } while (seconds_since(start) < min_seconds);
  record.wall_seconds = seconds_since(start);
  record.per_solve_seconds =
      record.wall_seconds / static_cast<double>(record.repeats);
  record.nodes = last.nodes_explored * record.repeats;
  record.nodes_per_sec =
      static_cast<double>(record.nodes) / record.wall_seconds;
#if defined(MADPIPE_SOLVER_STATS)
  record.pivots = last.stats.pivots * record.repeats;
  record.pivots_per_sec =
      static_cast<double>(record.pivots) / record.wall_seconds;
  record.warm_start_hits = last.stats.warm_start_hits;
#endif
  switch (last.status) {
    case solver::MILPStatus::Optimal: record.status = "optimal"; break;
    case solver::MILPStatus::Feasible: record.status = "feasible"; break;
    case solver::MILPStatus::Infeasible: record.status = "infeasible"; break;
    case solver::MILPStatus::Unbounded: record.status = "unbounded"; break;
    case solver::MILPStatus::Limit: record.status = "limit"; break;
  }
  print_record(record);
  return record;
}

/// The real phase-2 workload: the ILP scheduler's MILP on a ResNet-50
/// phase-1 allocation, probed at a slightly relaxed period (feasible) —
/// the shape `find_min_period` hammers the solver with.
WorkloadRecord bench_ilp_scheduler(double min_seconds) {
  WorkloadRecord record;
  record.name = "milp_ilp_scheduler";
  const Chain& chain = bench::evaluation_chain("resnet50");
  const Platform platform{4, 8 * GB, 12 * GB};
  Phase1Options options;
  options.dp.grid = Discretization::paper();
  const Phase1Result phase1 = madpipe_phase1(chain, platform, options);
  if (!phase1.feasible()) {
    record.status = "phase1-infeasible";
    print_record(record);
    return record;
  }
  const CyclicProblem problem =
      build_cyclic_problem(*phase1.allocation, chain, platform);
  const Seconds period = phase1.period * 1.05;

  const Clock::time_point start = Clock::now();
  ILPScheduleResult last;
  do {
    last = ilp_schedule(problem, *phase1.allocation, chain, platform, period);
    ++record.repeats;
  } while (seconds_since(start) < min_seconds);
  record.wall_seconds = seconds_since(start);
  record.per_solve_seconds =
      record.wall_seconds / static_cast<double>(record.repeats);
  record.nodes = last.nodes_explored * record.repeats;
  record.nodes_per_sec =
      static_cast<double>(record.nodes) / record.wall_seconds;
#if defined(MADPIPE_SOLVER_STATS)
  record.pivots = last.stats.pivots * record.repeats;
  record.pivots_per_sec =
      static_cast<double>(record.pivots) / record.wall_seconds;
  record.warm_start_hits = last.stats.warm_start_hits;
#endif
  record.status = last.feasible ? "feasible" : "infeasible";
  print_record(record);
  return record;
}

void write_json(const std::string& path,
                const std::vector<WorkloadRecord>& records) {
  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("madpipe-bench-solver-v1");
  w.key("solver_stats_instrumented");
#if defined(MADPIPE_SOLVER_STATS)
  w.value(true);
#else
  w.value(false);
#endif
  w.key("workloads");
  w.begin_array();
  for (const WorkloadRecord& record : records) {
    w.begin_object();
    w.key("name"); w.value(record.name);
    w.key("repeats"); w.value(record.repeats);
    w.key("wall_seconds"); w.value(record.wall_seconds);
    w.key("per_solve_seconds"); w.value(record.per_solve_seconds);
    w.key("nodes"); w.value(record.nodes);
    w.key("nodes_per_sec"); w.value(record.nodes_per_sec);
    w.key("pivots"); w.value(record.pivots);
    w.key("pivots_per_sec"); w.value(record.pivots_per_sec);
    w.key("warm_start_hits"); w.value(record.warm_start_hits);
    w.key("status"); w.value(record.status);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path);
  out << w.str() << "\n";
  std::printf("solver benchmark JSON -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_solver.json";
  madpipe::bench::ObsSinkArgs sinks;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (sinks.parse(argc, argv, &i)) continue;
    if (arg == "-o" && i + 1 < argc) output = argv[++i];
  }
  sinks.install();

  std::vector<WorkloadRecord> records;
  records.push_back(bench_lp("lp_dense_n30", dense_lp(30), 1.0));
  records.push_back(bench_lp("lp_dense_n60", dense_lp(60), 1.0));
  records.push_back(bench_milp("milp_knapsack16", knapsack_milp(16), 1.0));
  records.push_back(bench_ilp_scheduler(1.0));
  write_json(output, records);
  sinks.flush();
  return 0;
}
