#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include <chrono>
#include <fstream>

#include "core/pattern.hpp"
#include "models/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipedream/pipedream.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/threading.hpp"

namespace madpipe::bench {

const Chain& evaluation_chain(const std::string& name) {
  // Mutex-guarded: run_cells evaluates cells concurrently. Chains are never
  // erased, and std::map inserts don't invalidate element references, so a
  // returned reference stays valid after the lock drops.
  static std::mutex mutex;
  static std::map<std::string, Chain> cache;
  const std::scoped_lock lock(mutex);
  const auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  return cache.emplace(name, models::paper_network(name)).first->second;
}

namespace {

PlannerOutcome to_outcome(const std::optional<Plan>& plan, const Chain& chain,
                          const Platform& platform) {
  PlannerOutcome outcome;
  if (!plan) return outcome;
  const ValidationResult check =
      validate_pattern(plan->pattern, plan->allocation, chain, platform);
  if (!check.valid) {
    std::fprintf(stderr, "FATAL: planner %s produced an invalid pattern: %s\n",
                 plan->planner.c_str(),
                 check.errors.empty() ? "?" : check.errors[0].c_str());
    std::abort();
  }
  outcome.feasible = true;
  outcome.phase1_period = plan->phase1_period;
  outcome.period = plan->period();
  outcome.planning_seconds = plan->planning_seconds;
  return outcome;
}

}  // namespace

MadPipeOptions default_bench_options() {
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::paper();
  options.phase2.max_probes = 22;
  options.phase2.relative_precision = 2e-3;
  options.phase2.bb.max_nodes = 40'000;
  return options;
}

CellResult run_cell(const CellConfig& config) {
  const Chain& chain = evaluation_chain(config.network);
  const Platform platform{config.processors, config.memory_gb * GB,
                          config.bandwidth_gbs * GB};

  CellResult result;
  result.config = config;
  result.pipedream = to_outcome(plan_pipedream(chain, platform), chain, platform);
  result.madpipe =
      to_outcome(plan_madpipe(chain, platform, config.madpipe), chain, platform);
  if (config.run_contiguous_ablation) {
    MadPipeOptions contiguous = config.madpipe;
    contiguous.disable_special_processor = true;
    result.madpipe_contiguous =
        to_outcome(plan_madpipe(chain, platform, contiguous), chain, platform);
  }
  return result;
}

std::vector<CellResult> run_cells(const std::vector<CellConfig>& configs,
                                  std::size_t workers) {
  std::vector<CellResult> results(configs.size());
  par::parallel_for(
      0, configs.size(),
      [&](std::size_t i) { results[i] = run_cell(configs[i]); }, workers);
  return results;
}

std::vector<double> paper_memory_sweep() {
  return {3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0};
}

std::vector<int> paper_processor_sweep() { return {2, 4, 8}; }

std::vector<double> paper_bandwidth_sweep() { return {12.0, 24.0}; }

std::string period_cell(const PlannerOutcome& outcome, double scale) {
  if (!outcome.feasible) return "inf";
  return fmt::fixed(outcome.period * scale, 1);
}

bool ObsSinkArgs::parse(int argc, char** argv, int* i) {
  // Shared `--opt value` / `--opt=value` splitting (util/cli.hpp): exact
  // flag-name matching — the old hand-rolled prefix check here accepted
  // mistyped flags like --trace-outX.
  const cli::OptionArg option = cli::split_option(argv[*i]);
  if (option.name != "--trace-out" && option.name != "--metrics-out") {
    return false;
  }
  const std::optional<std::string> value =
      cli::take_value(option, argc, argv, i);
  if (!value.has_value()) {
    std::fprintf(stderr, "error: missing value for %s\n", option.name.c_str());
    std::exit(2);
  }
  if (option.name == "--trace-out") {
    trace_out = *value;
  } else {
    metrics_out = *value;
  }
  return true;
}

void ObsSinkArgs::install() const {
  if (!trace_out.empty()) obs::install_trace();
}

void ObsSinkArgs::flush() const {
  const auto write = [](const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    out << content;
    std::printf("obs sink -> %s\n", path.c_str());
  };
  if (!trace_out.empty()) {
    obs::uninstall_trace();
    write(trace_out, obs::trace_to_chrome_json());
  }
  if (!metrics_out.empty()) {
    write(metrics_out, obs::Registry::global().json());
  }
}

SpanOverhead measure_span_overhead() {
  using Clock = std::chrono::steady_clock;
  constexpr int kSpans = 1'000'000;
  const auto time_spans = [&] {
    const Clock::time_point start = Clock::now();
    for (int i = 0; i < kSpans; ++i) {
      obs::Span span("overhead_probe", obs::kCatPlanner);
    }
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
               .count() /
           kSpans;
  };
  SpanOverhead overhead;
  obs::uninstall_trace();
  overhead.disabled_ns = time_spans();
  obs::install_trace();
  overhead.enabled_ns = time_spans();
  obs::install_trace();  // drop the probe events (install resets buffers)
  obs::uninstall_trace();
  return overhead;
}

}  // namespace madpipe::bench
