// Shared experiment harness for the paper-reproduction benchmarks: runs one
// (network, P, M, β) cell through both planners and collects the phase-1
// ("dashed") and valid-schedule ("solid") periods, mirroring Figure 6's
// reading of the results.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/chain.hpp"
#include "core/platform.hpp"
#include "madpipe/planner.hpp"

namespace madpipe::bench {

/// MadPipe options tuned for full-sweep benchmarks: the paper's grids, with
/// a slightly tightened phase-2 probe budget so a 200-cell sweep finishes in
/// minutes on one core (the ablation bench quantifies the effect of these
/// budgets).
MadPipeOptions default_bench_options();

struct CellConfig {
  std::string network;
  int processors = 4;
  double memory_gb = 8.0;
  double bandwidth_gbs = 12.0;
  MadPipeOptions madpipe = default_bench_options();
  /// Also run the memory-aware contiguous ablation (MadPipe without the
  /// special processor).
  bool run_contiguous_ablation = false;
};

struct PlannerOutcome {
  bool feasible = false;
  Seconds phase1_period = 0.0;  ///< the dashed line
  Seconds period = 0.0;         ///< the solid line (valid schedule)
  Seconds planning_seconds = 0.0;
};

struct CellResult {
  CellConfig config;
  PlannerOutcome pipedream;
  PlannerOutcome madpipe;
  PlannerOutcome madpipe_contiguous;  ///< only with run_contiguous_ablation
};

/// The paper's evaluation chain for `name` (1000x1000 images, batch 8),
/// cached across calls.
const Chain& evaluation_chain(const std::string& name);

/// Run both planners on one cell. Every returned plan has been passed
/// through the exact pattern verifier (the harness aborts on an invalid
/// plan — that would be a library bug, not an experiment result).
CellResult run_cell(const CellConfig& config);

/// Run a whole sweep of cells, `workers` at a time (0 = hardware threads).
/// Results come back in input order, identical to looping run_cell.
std::vector<CellResult> run_cells(const std::vector<CellConfig>& configs,
                                  std::size_t workers = 0);

/// Paper sweep axes.
std::vector<double> paper_memory_sweep();      ///< {3..16} GB
std::vector<int> paper_processor_sweep();      ///< {2, 4, 8}
std::vector<double> paper_bandwidth_sweep();   ///< {12, 24} GB/s

/// "1.23" or "inf" for infeasible cells.
std::string period_cell(const PlannerOutcome& outcome, double scale = 1e3);

/// Observability sinks shared by the bench mains: `--trace-out FILE` arms
/// obs span tracing (timings then include the enabled-span cost — don't mix
/// with regression runs), `--metrics-out FILE` dumps the cumulative metrics
/// registry. parse() consumes the flag at argv[*i] when it matches; flush()
/// writes whichever sinks were requested.
struct ObsSinkArgs {
  std::string trace_out;
  std::string metrics_out;

  bool parse(int argc, char** argv, int* i);
  void install() const;
  void flush() const;
};

/// Measured per-span cost in nanoseconds. `disabled_ns` is the permanent
/// price instrumentation adds to a hot path when no sink is installed (one
/// relaxed atomic load + branch); `enabled_ns` is the full record cost with
/// a sink armed. Leaves tracing disarmed and the buffers empty — call it
/// *before* installing real sinks.
struct SpanOverhead {
  double disabled_ns = 0.0;
  double enabled_ns = 0.0;
};
SpanOverhead measure_span_overhead();

}  // namespace madpipe::bench
