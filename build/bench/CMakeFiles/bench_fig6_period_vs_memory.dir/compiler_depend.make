# Empty compiler generated dependencies file for bench_fig6_period_vs_memory.
# This may be replaced when dependencies are built.
