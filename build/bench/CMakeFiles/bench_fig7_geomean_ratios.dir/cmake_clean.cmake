file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_geomean_ratios.dir/bench_fig7_geomean_ratios.cpp.o"
  "CMakeFiles/bench_fig7_geomean_ratios.dir/bench_fig7_geomean_ratios.cpp.o.d"
  "bench_fig7_geomean_ratios"
  "bench_fig7_geomean_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_geomean_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
