# Empty dependencies file for bench_fig7_geomean_ratios.
# This may be replaced when dependencies are built.
