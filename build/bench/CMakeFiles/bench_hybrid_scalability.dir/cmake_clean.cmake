file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_scalability.dir/bench_hybrid_scalability.cpp.o"
  "CMakeFiles/bench_hybrid_scalability.dir/bench_hybrid_scalability.cpp.o.d"
  "bench_hybrid_scalability"
  "bench_hybrid_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
