# Empty dependencies file for bench_hybrid_scalability.
# This may be replaced when dependencies are built.
