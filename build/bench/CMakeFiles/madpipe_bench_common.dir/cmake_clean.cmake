file(REMOVE_RECURSE
  "CMakeFiles/madpipe_bench_common.dir/common.cpp.o"
  "CMakeFiles/madpipe_bench_common.dir/common.cpp.o.d"
  "libmadpipe_bench_common.a"
  "libmadpipe_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madpipe_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
