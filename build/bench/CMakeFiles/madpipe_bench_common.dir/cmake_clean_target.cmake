file(REMOVE_RECURSE
  "libmadpipe_bench_common.a"
)
