# Empty compiler generated dependencies file for madpipe_bench_common.
# This may be replaced when dependencies are built.
