file(REMOVE_RECURSE
  "CMakeFiles/gantt_visualizer.dir/gantt_visualizer.cpp.o"
  "CMakeFiles/gantt_visualizer.dir/gantt_visualizer.cpp.o.d"
  "gantt_visualizer"
  "gantt_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gantt_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
