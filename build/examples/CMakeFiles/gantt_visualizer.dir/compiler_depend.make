# Empty compiler generated dependencies file for gantt_visualizer.
# This may be replaced when dependencies are built.
