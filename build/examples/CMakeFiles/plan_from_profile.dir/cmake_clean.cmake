file(REMOVE_RECURSE
  "CMakeFiles/plan_from_profile.dir/plan_from_profile.cpp.o"
  "CMakeFiles/plan_from_profile.dir/plan_from_profile.cpp.o.d"
  "plan_from_profile"
  "plan_from_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_from_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
