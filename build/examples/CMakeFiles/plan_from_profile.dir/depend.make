# Empty dependencies file for plan_from_profile.
# This may be replaced when dependencies are built.
