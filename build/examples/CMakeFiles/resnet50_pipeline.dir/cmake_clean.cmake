file(REMOVE_RECURSE
  "CMakeFiles/resnet50_pipeline.dir/resnet50_pipeline.cpp.o"
  "CMakeFiles/resnet50_pipeline.dir/resnet50_pipeline.cpp.o.d"
  "resnet50_pipeline"
  "resnet50_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet50_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
