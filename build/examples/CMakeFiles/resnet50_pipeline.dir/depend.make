# Empty dependencies file for resnet50_pipeline.
# This may be replaced when dependencies are built.
