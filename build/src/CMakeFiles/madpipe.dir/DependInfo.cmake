
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chain.cpp" "src/CMakeFiles/madpipe.dir/core/chain.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/core/chain.cpp.o.d"
  "/root/repo/src/core/memory_model.cpp" "src/CMakeFiles/madpipe.dir/core/memory_model.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/core/memory_model.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/madpipe.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/CMakeFiles/madpipe.dir/core/pattern.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/core/pattern.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/CMakeFiles/madpipe.dir/core/plan.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/core/plan.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/CMakeFiles/madpipe.dir/core/platform.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/core/platform.cpp.o.d"
  "/root/repo/src/cyclic/bb_scheduler.cpp" "src/CMakeFiles/madpipe.dir/cyclic/bb_scheduler.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/cyclic/bb_scheduler.cpp.o.d"
  "/root/repo/src/cyclic/ilp_scheduler.cpp" "src/CMakeFiles/madpipe.dir/cyclic/ilp_scheduler.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/cyclic/ilp_scheduler.cpp.o.d"
  "/root/repo/src/cyclic/period_search.cpp" "src/CMakeFiles/madpipe.dir/cyclic/period_search.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/cyclic/period_search.cpp.o.d"
  "/root/repo/src/cyclic/stage_graph.cpp" "src/CMakeFiles/madpipe.dir/cyclic/stage_graph.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/cyclic/stage_graph.cpp.o.d"
  "/root/repo/src/hybrid/hybrid.cpp" "src/CMakeFiles/madpipe.dir/hybrid/hybrid.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/hybrid/hybrid.cpp.o.d"
  "/root/repo/src/madpipe/discretization.cpp" "src/CMakeFiles/madpipe.dir/madpipe/discretization.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/madpipe/discretization.cpp.o.d"
  "/root/repo/src/madpipe/dp.cpp" "src/CMakeFiles/madpipe.dir/madpipe/dp.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/madpipe/dp.cpp.o.d"
  "/root/repo/src/madpipe/planner.cpp" "src/CMakeFiles/madpipe.dir/madpipe/planner.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/madpipe/planner.cpp.o.d"
  "/root/repo/src/madpipe/search.cpp" "src/CMakeFiles/madpipe.dir/madpipe/search.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/madpipe/search.cpp.o.d"
  "/root/repo/src/models/cost_model.cpp" "src/CMakeFiles/madpipe.dir/models/cost_model.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/models/cost_model.cpp.o.d"
  "/root/repo/src/models/densenet.cpp" "src/CMakeFiles/madpipe.dir/models/densenet.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/models/densenet.cpp.o.d"
  "/root/repo/src/models/inception.cpp" "src/CMakeFiles/madpipe.dir/models/inception.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/models/inception.cpp.o.d"
  "/root/repo/src/models/linearize.cpp" "src/CMakeFiles/madpipe.dir/models/linearize.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/models/linearize.cpp.o.d"
  "/root/repo/src/models/netdef.cpp" "src/CMakeFiles/madpipe.dir/models/netdef.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/models/netdef.cpp.o.d"
  "/root/repo/src/models/profile_io.cpp" "src/CMakeFiles/madpipe.dir/models/profile_io.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/models/profile_io.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/CMakeFiles/madpipe.dir/models/resnet.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/models/resnet.cpp.o.d"
  "/root/repo/src/models/zoo.cpp" "src/CMakeFiles/madpipe.dir/models/zoo.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/models/zoo.cpp.o.d"
  "/root/repo/src/pipedream/pipedream.cpp" "src/CMakeFiles/madpipe.dir/pipedream/pipedream.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/pipedream/pipedream.cpp.o.d"
  "/root/repo/src/schedule/comm_transform.cpp" "src/CMakeFiles/madpipe.dir/schedule/comm_transform.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/schedule/comm_transform.cpp.o.d"
  "/root/repo/src/schedule/eager.cpp" "src/CMakeFiles/madpipe.dir/schedule/eager.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/schedule/eager.cpp.o.d"
  "/root/repo/src/schedule/gpipe.cpp" "src/CMakeFiles/madpipe.dir/schedule/gpipe.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/schedule/gpipe.cpp.o.d"
  "/root/repo/src/schedule/one_f_one_b.cpp" "src/CMakeFiles/madpipe.dir/schedule/one_f_one_b.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/schedule/one_f_one_b.cpp.o.d"
  "/root/repo/src/schedule/recompute.cpp" "src/CMakeFiles/madpipe.dir/schedule/recompute.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/schedule/recompute.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/CMakeFiles/madpipe.dir/sim/event_sim.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/sim/event_sim.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/madpipe.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/sim/trace.cpp.o.d"
  "/root/repo/src/solver/lp.cpp" "src/CMakeFiles/madpipe.dir/solver/lp.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/solver/lp.cpp.o.d"
  "/root/repo/src/solver/milp.cpp" "src/CMakeFiles/madpipe.dir/solver/milp.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/solver/milp.cpp.o.d"
  "/root/repo/src/solver/model.cpp" "src/CMakeFiles/madpipe.dir/solver/model.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/solver/model.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/madpipe.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/util/format.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/madpipe.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/util/json.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/madpipe.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/madpipe.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/threading.cpp" "src/CMakeFiles/madpipe.dir/util/threading.cpp.o" "gcc" "src/CMakeFiles/madpipe.dir/util/threading.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
