file(REMOVE_RECURSE
  "libmadpipe.a"
)
