# Empty compiler generated dependencies file for madpipe.
# This may be replaced when dependencies are built.
