
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bb_scheduler.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_bb_scheduler.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_bb_scheduler.cpp.o.d"
  "/root/repo/tests/test_chain.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_chain.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_chain.cpp.o.d"
  "/root/repo/tests/test_comm_transform.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_comm_transform.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_comm_transform.cpp.o.d"
  "/root/repo/tests/test_discretization.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_discretization.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_discretization.cpp.o.d"
  "/root/repo/tests/test_eager.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_eager.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_eager.cpp.o.d"
  "/root/repo/tests/test_event_sim.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_event_sim.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_event_sim.cpp.o.d"
  "/root/repo/tests/test_format.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_format.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_format.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gpipe.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_gpipe.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_gpipe.cpp.o.d"
  "/root/repo/tests/test_hybrid.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_hybrid.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_hybrid.cpp.o.d"
  "/root/repo/tests/test_ilp_scheduler.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_ilp_scheduler.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_ilp_scheduler.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_linearize.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_linearize.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_linearize.cpp.o.d"
  "/root/repo/tests/test_logging.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_logging.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_logging.cpp.o.d"
  "/root/repo/tests/test_lp.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_lp.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_lp.cpp.o.d"
  "/root/repo/tests/test_madpipe_dp.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_madpipe_dp.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_madpipe_dp.cpp.o.d"
  "/root/repo/tests/test_memory_model.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_memory_model.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_memory_model.cpp.o.d"
  "/root/repo/tests/test_milp.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_milp.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_milp.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_one_f_one_b.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_one_f_one_b.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_one_f_one_b.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_partition.cpp.o.d"
  "/root/repo/tests/test_pattern.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_pattern.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_pattern.cpp.o.d"
  "/root/repo/tests/test_pipedream.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_pipedream.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_pipedream.cpp.o.d"
  "/root/repo/tests/test_plan.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_plan.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_plan.cpp.o.d"
  "/root/repo/tests/test_planner.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_planner.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_planner.cpp.o.d"
  "/root/repo/tests/test_platform.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_platform.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_platform.cpp.o.d"
  "/root/repo/tests/test_profile_io.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_profile_io.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_profile_io.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_recompute.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_recompute.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_recompute.cpp.o.d"
  "/root/repo/tests/test_regression.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_regression.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_regression.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_search.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_search.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_threading.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_threading.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_threading.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/madpipe_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/madpipe_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/madpipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
