# Empty dependencies file for madpipe_tests.
# This may be replaced when dependencies are built.
