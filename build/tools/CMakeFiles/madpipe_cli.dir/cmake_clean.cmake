file(REMOVE_RECURSE
  "CMakeFiles/madpipe_cli.dir/madpipe_cli.cpp.o"
  "CMakeFiles/madpipe_cli.dir/madpipe_cli.cpp.o.d"
  "madpipe"
  "madpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madpipe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
