# Empty compiler generated dependencies file for madpipe_cli.
# This may be replaced when dependencies are built.
