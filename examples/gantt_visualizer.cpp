// Renders the periodic patterns of the paper's illustrations: the valid
// pattern of Figure 2 and a 1F1B* group schedule in the spirit of Figure 3,
// as ASCII Gantt charts, plus a MadPipe plan on a real network profile.
//
//   $ ./examples/gantt_visualizer
#include <cstdio>

#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "schedule/one_f_one_b.hpp"
#include "sim/trace.hpp"
#include "util/format.hpp"

using namespace madpipe;

namespace {

void show(const char* title, const Plan& plan, const Chain& chain) {
  std::printf("== %s ==\n", title);
  std::printf("%s", plan_to_string(plan, chain,
                                   Platform{plan.allocation.num_processors(),
                                            1e9 * GB, 12 * GB})
                        .c_str());
  std::printf("%s\n",
              render_gantt(plan.pattern, plan.allocation, chain, {96, 2})
                  .c_str());
}

}  // namespace

int main() {
  // A three-stage toy pipeline (Figure 2/3 scale): uneven stages so the
  // group structure of 1F1B* is visible.
  std::vector<Layer> layers{
      {"front", ms(12), ms(24), 4 * MB, 60 * MB},
      {"mid1", ms(6), ms(12), 8 * MB, 40 * MB},
      {"mid2", ms(5), ms(10), 8 * MB, 30 * MB},
      {"back", ms(4), ms(7), 16 * MB, 4 * MB},
  };
  const Chain toy("toy", 50 * MB, std::move(layers));
  const Platform platform{3, 2 * GB, 12 * GB};

  const Allocation allocation =
      make_contiguous_allocation(toy, {{1, 1}, {2, 3}, {4, 4}}, 3);
  const auto plan = plan_one_f_one_b(allocation, toy, platform);
  if (plan) show("1F1B* on a 3-stage toy pipeline", *plan, toy);

  // The same machinery on the paper's ResNet-50 profile with MadPipe.
  const Chain resnet = models::paper_network("resnet50");
  const Platform cluster{4, 8 * GB, 12 * GB};
  const auto madpipe_plan = plan_madpipe(resnet, cluster);
  if (madpipe_plan) {
    show("MadPipe on ResNet-50 @ 1000x1000 (4 GPUs, 8 GB)", *madpipe_plan,
         resnet);
  }
  return 0;
}
