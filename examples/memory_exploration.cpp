// How much GPU memory does a training setup actually need? This example
// walks a memory ladder for a chosen network and reports, per memory size,
// what each planning strategy can achieve — the single-machine what-if tool
// the paper's Figure 6 is built from, extended with the memory-aware
// contiguous ablation.
//
//   $ ./examples/memory_exploration [network] [num_gpus]
//     network in {resnet50, resnet101, inception_v3, densenet121}
#include <cstdio>
#include <cstdlib>
#include <string>

#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "pipedream/pipedream.hpp"
#include "util/format.hpp"

using namespace madpipe;

namespace {

std::string describe(const std::optional<Plan>& plan, const Chain& chain) {
  if (!plan) return "infeasible";
  return fmt::seconds(plan->period()) + " (" +
         fmt::fixed(plan->speedup(chain), 2) + "x)";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string network = argc > 1 ? argv[1] : "densenet121";
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 4;

  const Chain chain = models::paper_network(network);
  std::printf("%s @ 1000x1000 batch 8 on %d GPUs — period (speedup over "
              "sequential %s)\n\n", network.c_str(), gpus,
              fmt::seconds(chain.total_compute()).c_str());

  fmt::Table table({"memory", "pipedream", "madpipe", "madpipe-contiguous"});
  for (const double memory_gb : {2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0}) {
    const Platform platform{gpus, memory_gb * GB, 12 * GB};

    const auto pipedream = plan_pipedream(chain, platform);

    MadPipeOptions madpipe_options;
    const auto madpipe_plan = plan_madpipe(chain, platform, madpipe_options);

    MadPipeOptions contiguous_options;
    contiguous_options.disable_special_processor = true;
    const auto contiguous = plan_madpipe(chain, platform, contiguous_options);

    table.add_row({fmt::bytes(memory_gb * GB), describe(pipedream, chain),
                   describe(madpipe_plan, chain),
                   describe(contiguous, chain)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: 'infeasible' means weights plus a single in-flight\n"
              "batch of activations exceed the per-GPU memory under every\n"
              "possible split — more GPUs or more memory is required.\n");
  return 0;
}
