// Planning from a measured profile file — the workflow for users who have
// profiled their own model instead of using the synthetic zoo:
//
//   $ ./examples/plan_from_profile my_model.profile 4 8
//
// With no arguments it writes a sample profile (the ResNet-50 synthetic one)
// next to the binary and plans that, so the example is runnable standalone.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "madpipe/planner.hpp"
#include "models/profile_io.hpp"
#include "models/zoo.hpp"
#include "util/format.hpp"

using namespace madpipe;

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "";
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 4;
  const double memory_gb = argc > 3 ? std::atof(argv[3]) : 8.0;

  if (path.empty()) {
    path = "sample_resnet50.profile";
    models::save_profile(models::paper_network("resnet50"), path);
    std::printf("no profile given — wrote a sample to ./%s\n", path.c_str());
  }

  Chain chain = models::load_profile(path);
  std::printf("loaded '%s': %d layers, sequential batch time %s\n",
              chain.name().c_str(), chain.length(),
              fmt::seconds(chain.total_compute()).c_str());

  const Platform platform{gpus, memory_gb * GB, 12 * GB};
  const auto plan = plan_madpipe(chain, platform);
  if (!plan) {
    std::printf("MadPipe: infeasible on %d GPUs with %s each.\n", gpus,
                fmt::bytes(platform.memory_per_processor).c_str());
    return 1;
  }
  std::printf("\n%s", plan_to_string(*plan, chain, platform).c_str());

  const auto check =
      validate_pattern(plan->pattern, plan->allocation, chain, platform);
  std::printf("pattern %s; per-GPU peaks:", check.valid ? "valid" : "INVALID");
  for (const Bytes peak : check.processor_memory_peak) {
    std::printf(" %s", fmt::bytes(peak).c_str());
  }
  std::printf("\n");
  return 0;
}
