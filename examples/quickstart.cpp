// Quickstart: describe a model as a chain of layers, describe the platform,
// plan with MadPipe, inspect the result, and double-check it with the
// discrete-event simulator.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "madpipe/planner.hpp"
#include "pipedream/pipedream.hpp"
#include "sim/event_sim.hpp"
#include "util/format.hpp"

using namespace madpipe;

int main() {
  // 1. The model: a small 6-layer chain. Real profiles would come from
  //    measurements (or from models::build_network — see the other
  //    examples); here we type the numbers in directly. Early layers have
  //    big activations and few weights, late layers the reverse — the shape
  //    that makes pipelined model parallelism interesting.
  std::vector<Layer> layers{
      {"conv1", ms(8), ms(16), 2 * MB, 400 * MB},
      {"conv2", ms(12), ms(24), 10 * MB, 300 * MB},
      {"conv3", ms(10), ms(20), 40 * MB, 150 * MB},
      {"conv4", ms(10), ms(20), 80 * MB, 80 * MB},
      {"conv5", ms(9), ms(18), 120 * MB, 30 * MB},
      {"fc", ms(3), ms(5), 200 * MB, 1 * MB},
  };
  const Chain chain("quickstart-net", /*input_bytes=*/300 * MB,
                    std::move(layers));

  // 2. The platform: 4 GPUs, 3 GB each, all-pairs 12 GB/s links.
  const Platform platform{4, 3 * GB, 12 * GB};

  std::printf("model: %s, %d layers, sequential batch time %s\n",
              chain.name().c_str(), chain.length(),
              fmt::seconds(chain.total_compute()).c_str());

  // 3. Plan with MadPipe (and PipeDream, for comparison).
  const auto madpipe_plan = plan_madpipe(chain, platform);
  const auto pipedream_plan = plan_pipedream(chain, platform);

  if (!madpipe_plan) {
    std::printf("MadPipe: no allocation fits in memory.\n");
    return 1;
  }
  std::printf("\n%s\n", plan_to_string(*madpipe_plan, chain, platform).c_str());
  if (pipedream_plan) {
    std::printf("PipeDream period for comparison: %s (%.2fx MadPipe)\n",
                fmt::seconds(pipedream_plan->period()).c_str(),
                pipedream_plan->period() / madpipe_plan->period());
  }

  // 4. Verify the plan independently: exact pattern validation plus a
  //    64-batch discrete-event execution.
  const auto check = validate_pattern(madpipe_plan->pattern,
                                      madpipe_plan->allocation, chain,
                                      platform);
  std::printf("verifier: %s\n", check.valid ? "pattern valid" : "INVALID");
  for (std::size_t p = 0; p < check.processor_memory_peak.size(); ++p) {
    std::printf("  gpu%zu peak memory %s (limit %s)\n", p,
                fmt::bytes(check.processor_memory_peak[p]).c_str(),
                fmt::bytes(platform.memory_per_processor).c_str());
  }

  const auto sim = simulate_pattern(madpipe_plan->pattern,
                                    madpipe_plan->allocation, chain, platform,
                                    {64});
  std::printf("simulator: steady period %s (plan says %s), 64 batches in %s\n",
              fmt::seconds(sim.steady_period).c_str(),
              fmt::seconds(madpipe_plan->period()).c_str(),
              fmt::seconds(sim.makespan).c_str());
  for (const auto& [resource, utilization] : sim.resource_utilization) {
    std::printf("  %-10s %4.0f%% busy\n", resource.to_string().c_str(),
                utilization * 100.0);
  }
  return 0;
}
