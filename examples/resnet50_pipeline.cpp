// The paper's flagship workload: ResNet-50 on 1000x1000 images with batch
// size 8 — big activations that make single-GPU training impossible and
// pipelined model parallelism attractive. Plans the training pipeline on a
// GPU cluster, prints the stage map, memory accounting and the planner
// comparison, and dumps the MadPipe plan as JSON for external tooling.
//
//   $ ./examples/resnet50_pipeline [num_gpus] [memory_gb]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "pipedream/pipedream.hpp"
#include "util/format.hpp"

using namespace madpipe;

int main(int argc, char** argv) {
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 4;
  const double memory_gb = argc > 2 ? std::atof(argv[2]) : 8.0;

  // Build the profile chain from the architecture's shape arithmetic.
  models::NetworkConfig config;
  config.network = "resnet50";
  config.image_size = 1000;
  config.batch = 8;
  config.chain_length = 24;
  const Chain chain = models::build_network(config);

  std::printf("ResNet-50 @ 1000x1000, batch 8 — %d layers after "
              "linearization\n", chain.length());
  std::printf("  sequential batch time  %s\n",
              fmt::seconds(chain.total_compute()).c_str());
  std::printf("  total weights          %s (x3 resident for training)\n",
              fmt::bytes(chain.weight_sum(1, chain.length())).c_str());
  std::printf("  total activations      %s per in-flight batch\n",
              fmt::bytes(chain.stored_activation_sum(1, chain.length())).c_str());

  const Platform platform{gpus, memory_gb * GB, 12 * GB};
  std::printf("\nplatform: %d GPUs x %s, 12 GB/s links\n", gpus,
              fmt::bytes(platform.memory_per_processor).c_str());

  const auto plan = plan_madpipe(chain, platform);
  if (!plan) {
    std::printf("MadPipe: infeasible — the model cannot be trained on this "
                "platform at all (weights + one batch of activations exceed "
                "memory under every split).\n");
    return 1;
  }
  std::printf("\n%s\n", plan_to_string(*plan, chain, platform).c_str());
  std::printf("throughput: %.1f batches/s = %.1f images/s\n",
              plan->throughput(), plan->throughput() * config.batch);

  const auto baseline = plan_pipedream(chain, platform);
  if (baseline) {
    std::printf("PipeDream baseline: %s per batch (MadPipe is %.0f%% "
                "faster)\n", fmt::seconds(baseline->period()).c_str(),
                (baseline->period() / plan->period() - 1.0) * 100.0);
  } else {
    std::printf("PipeDream baseline: no partitioning fits its memory "
                "estimate.\n");
  }

  const std::string path = "resnet50_plan.json";
  std::ofstream out(path);
  out << plan_to_json(*plan, chain, platform);
  std::printf("\nfull plan written to ./%s\n", path.c_str());
  return 0;
}
