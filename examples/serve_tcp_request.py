#!/usr/bin/env python3
"""Minimal client for `madpipe serve --listen HOST:PORT`.

Speaks the newline-delimited madpipe-serve-v1 wire protocol: sends one JSON
request object per line, reads one JSON response object per line, in order.
Stdlib only — the point is to show how little a client needs.

    # terminal 1
    madpipe serve --listen 127.0.0.1:7077

    # terminal 2
    python3 examples/serve_tcp_request.py 127.0.0.1:7077 --count 3

The first response is a cache miss (a real planning run); every following
identical request is a microsecond-class hit. Exits non-zero if any response
is missing, unparseable, or has a status other than "ok" — which makes it
usable as a protocol smoke check in CI (--count 1000).
"""

import argparse
import json
import socket
import sys
import time

REQUEST = {
    "network": {"name": "resnet50"},
    "gpus": 2,
    "memory_gb": 8,
    "bandwidth_gbs": 12,
}

# Pipelining depth: frames in flight per socket write. The server answers in
# request order, so responses are matched by position.
WINDOW = 32


def connect(host, port, attempts=20, delay=0.25):
    """Retry the connect briefly so CI can start the server concurrently."""
    for attempt in range(attempts):
        try:
            return socket.create_connection((host, port), timeout=10)
        except OSError:
            if attempt == attempts - 1:
                raise
            time.sleep(delay)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("address", help="HOST:PORT of a running madpipe serve")
    parser.add_argument("--count", type=int, default=3,
                        help="number of requests to send (default 3)")
    parser.add_argument("--expect-cache", choices=["hit", "miss"],
                        help="require this cache outcome on the FIRST "
                             "response (e.g. 'hit' after --cache-load)")
    args = parser.parse_args()
    host, _, port = args.address.rpartition(":")

    frames = [
        (json.dumps({"id": f"r{i}", **REQUEST}) + "\n").encode()
        for i in range(args.count)
    ]

    sock = connect(host or "127.0.0.1", int(port))
    reader = sock.makefile("rb")
    statuses = {}
    first_cache = None
    start = time.monotonic()
    sent = 0
    for offset in range(0, args.count, WINDOW):
        batch = frames[offset:offset + WINDOW]
        sock.sendall(b"".join(batch))
        sent += len(batch)
        for i in range(offset, offset + len(batch)):
            line = reader.readline()
            if not line:
                print(f"FAIL: connection closed after {i} responses",
                      file=sys.stderr)
                return 1
            try:
                response = json.loads(line)
            except json.JSONDecodeError as error:
                print(f"FAIL: response {i} is not JSON: {error}",
                      file=sys.stderr)
                return 1
            if response.get("id") != f"r{i}":
                print(f"FAIL: response {i} has id {response.get('id')!r}, "
                      f"responses must arrive in request order",
                      file=sys.stderr)
                return 1
            status = response.get("status")
            statuses[status] = statuses.get(status, 0) + 1
            if i == 0:
                first_cache = response.get("cache")
    elapsed = time.monotonic() - start

    sock.close()
    print(f"{args.count} requests in {elapsed:.3f}s "
          f"({args.count / elapsed:.0f} req/s), statuses: {statuses}, "
          f"first cache outcome: {first_cache}")
    if set(statuses) != {"ok"}:
        print(f"FAIL: expected every status to be 'ok', got {statuses}",
              file=sys.stderr)
        return 1
    if args.expect_cache and first_cache != args.expect_cache:
        print(f"FAIL: first response cache outcome {first_cache!r}, "
              f"expected {args.expect_cache!r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
