#include "core/chain.hpp"

#include "util/expect.hpp"

namespace madpipe {

Chain::Chain(std::string name, Bytes input_bytes, std::vector<Layer> layers)
    : name_(std::move(name)), layers_(std::move(layers)) {
  MP_EXPECT(!layers_.empty(), "a chain needs at least one layer");
  MP_EXPECT(input_bytes >= 0.0, "input size must be non-negative");

  activation_.reserve(layers_.size() + 1);
  activation_.push_back(input_bytes);
  for (const Layer& layer : layers_) {
    MP_EXPECT(layer.forward_time >= 0.0 && layer.backward_time >= 0.0,
              "layer durations must be non-negative");
    MP_EXPECT(layer.weight_bytes >= 0.0 && layer.output_bytes >= 0.0,
              "layer sizes must be non-negative");
    MP_EXPECT(layer.forward_time + layer.backward_time > 0.0,
              "a layer must have strictly positive total compute");
    activation_.push_back(layer.output_bytes);
  }

  const std::size_t n = layers_.size();
  prefix_forward_.assign(n + 1, 0.0);
  prefix_backward_.assign(n + 1, 0.0);
  prefix_weight_.assign(n + 1, 0.0);
  prefix_scratch_.assign(n + 1, 0.0);
  prefix_activation_.assign(n + 2, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix_forward_[i + 1] = prefix_forward_[i] + layers_[i].forward_time;
    prefix_backward_[i + 1] = prefix_backward_[i] + layers_[i].backward_time;
    prefix_weight_[i + 1] = prefix_weight_[i] + layers_[i].weight_bytes;
    prefix_scratch_[i + 1] = prefix_scratch_[i] + layers_[i].scratch_bytes;
  }
  for (std::size_t i = 0; i <= n; ++i) {
    prefix_activation_[i + 1] = prefix_activation_[i] + activation_[i];
  }
}

const Layer& Chain::layer(int l) const {
  MP_EXPECT(l >= 1 && l <= length(), "layer index out of range (1-based)");
  return layers_[static_cast<std::size_t>(l - 1)];
}

Bytes Chain::activation(int l) const {
  MP_EXPECT(l >= 0 && l <= length(), "activation index out of range (0..L)");
  return activation_[static_cast<std::size_t>(l)];
}

void Chain::check_range(int k, int l) const {
  MP_EXPECT(k >= 1 && l <= length(), "layer range out of bounds");
}

Seconds Chain::compute_load(int k, int l) const {
  return forward_load(k, l) + backward_load(k, l);
}

Seconds Chain::forward_load(int k, int l) const {
  if (k > l) return 0.0;
  check_range(k, l);
  return prefix_forward_[static_cast<std::size_t>(l)] -
         prefix_forward_[static_cast<std::size_t>(k - 1)];
}

Seconds Chain::backward_load(int k, int l) const {
  if (k > l) return 0.0;
  check_range(k, l);
  return prefix_backward_[static_cast<std::size_t>(l)] -
         prefix_backward_[static_cast<std::size_t>(k - 1)];
}

Bytes Chain::weight_sum(int k, int l) const {
  if (k > l) return 0.0;
  check_range(k, l);
  return prefix_weight_[static_cast<std::size_t>(l)] -
         prefix_weight_[static_cast<std::size_t>(k - 1)];
}

Bytes Chain::scratch_sum(int k, int l) const {
  if (k > l) return 0.0;
  check_range(k, l);
  return prefix_scratch_[static_cast<std::size_t>(l)] -
         prefix_scratch_[static_cast<std::size_t>(k - 1)];
}

Bytes Chain::stored_activation_sum(int k, int l) const {
  if (k > l) return 0.0;
  check_range(k, l);
  // Σ_{i=k..l} a_{i-1} = prefix over activation indices k-1 .. l-1.
  return prefix_activation_[static_cast<std::size_t>(l)] -
         prefix_activation_[static_cast<std::size_t>(k - 1)];
}

Bytes Chain::total_activations() const {
  return prefix_activation_.back();
}

Chain make_uniform_chain(int length, Seconds forward_time, Seconds backward_time,
                         Bytes weight_bytes, Bytes activation_bytes,
                         Bytes input_bytes, const std::string& name) {
  MP_EXPECT(length >= 1, "chain length must be positive");
  std::vector<Layer> layers(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    auto& layer = layers[static_cast<std::size_t>(i)];
    layer.name = "layer" + std::to_string(i + 1);
    layer.forward_time = forward_time;
    layer.backward_time = backward_time;
    layer.weight_bytes = weight_bytes;
    layer.output_bytes = activation_bytes;
  }
  return Chain(name, input_bytes, std::move(layers));
}

}  // namespace madpipe
