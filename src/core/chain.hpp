// The linearized DNN model of the paper (§3): a chain of L layers, each with
// a forward duration u_F, backward duration u_B, parameter weight size W and
// output activation size a. Layers are 1-based like the paper; a(0) is the
// input tensor of the network.
//
// All range queries (U(k,l), Σ W_i, Σ a_{i-1}) are O(1) via prefix sums,
// which the dynamic programs rely on.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace madpipe {

/// One layer of the linearized chain.
struct Layer {
  std::string name;
  Seconds forward_time = 0.0;   ///< u_F: forward duration for one mini-batch
  Seconds backward_time = 0.0;  ///< u_B: backward duration for one mini-batch
  Bytes weight_bytes = 0.0;     ///< W: parameter size
  Bytes output_bytes = 0.0;     ///< a: activation produced by F_l (= size of b^(l))
  /// Always-resident scratch (e.g. the transient recomputation workspace of
  /// a merged recompute segment). Charged once, like weights, not per
  /// in-flight batch.
  Bytes scratch_bytes = 0.0;

  bool operator==(const Layer&) const = default;
};

/// Immutable chain of layers with O(1) range aggregates.
class Chain {
 public:
  /// `input_bytes` is a(0), the input tensor size (stored for the backward
  /// pass of layer 1 and communicated if layer 1 is not on the first GPU —
  /// in our model the input is resident, so only storage counts).
  Chain(std::string name, Bytes input_bytes, std::vector<Layer> layers);

  const std::string& name() const noexcept { return name_; }
  /// L, the number of layers.
  int length() const noexcept { return static_cast<int>(layers_.size()); }

  /// Layer l, 1-based.
  const Layer& layer(int l) const;

  /// a_l for l in [0, L]; a_0 is the input size.
  Bytes activation(int l) const;

  Seconds forward_time(int l) const { return layer(l).forward_time; }
  Seconds backward_time(int l) const { return layer(l).backward_time; }
  Bytes weight(int l) const { return layer(l).weight_bytes; }

  /// U(k,l) = Σ_{i=k..l} (u_F + u_B). Empty range (k > l) is 0.
  Seconds compute_load(int k, int l) const;
  /// Σ_{i=k..l} u_F.
  Seconds forward_load(int k, int l) const;
  /// Σ_{i=k..l} u_B.
  Seconds backward_load(int k, int l) const;
  /// U(1,L): the sequential execution time of one mini-batch.
  Seconds total_compute() const { return compute_load(1, length()); }

  /// Σ_{i=k..l} W_i.
  Bytes weight_sum(int k, int l) const;
  /// Σ_{i=k..l} scratch_bytes.
  Bytes scratch_sum(int k, int l) const;
  /// ā over layers k..l: Σ_{i=k..l} a_{i-1} — the activations a stage must
  /// store per in-flight batch (each layer keeps its *input*).
  Bytes stored_activation_sum(int k, int l) const;
  /// Σ_{l=0..L} a_l (useful for bounds).
  Bytes total_activations() const;

  bool operator==(const Chain& other) const = default;

 private:
  void check_range(int k, int l) const;

  std::string name_;
  std::vector<Layer> layers_;
  std::vector<Bytes> activation_;        // a_0..a_L
  std::vector<Seconds> prefix_forward_;  // prefix_forward_[l] = Σ_{i<=l} u_F
  std::vector<Seconds> prefix_backward_;
  std::vector<Bytes> prefix_weight_;
  std::vector<Bytes> prefix_scratch_;
  std::vector<Bytes> prefix_activation_;  // Σ_{i<=l} a_i, i from 0
};

/// Convenience builder for tests and examples: uniform chain of `length`
/// layers, every layer with the given parameters.
Chain make_uniform_chain(int length, Seconds forward_time, Seconds backward_time,
                         Bytes weight_bytes, Bytes activation_bytes,
                         Bytes input_bytes, const std::string& name = "uniform");

}  // namespace madpipe
