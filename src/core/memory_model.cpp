#include "core/memory_model.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace madpipe {

namespace {
/// ceil(x / t) computed robustly for non-negative x built from sums of
/// durations: values within kTimeEps·t of an integer snap to it, so that
/// e.g. U = 3T̂ yields 3 groups, not 4.
int robust_ceil_div(double x, double t) {
  MP_EXPECT(t > 0.0, "division step must be positive");
  MP_EXPECT(x >= 0.0, "delay must be non-negative");
  const double q = x / t;
  const double rounded = std::round(q);
  if (std::abs(q - rounded) <= kTimeEps * (1.0 + std::abs(q))) {
    return static_cast<int>(rounded);
  }
  return static_cast<int>(std::ceil(q));
}
}  // namespace

Bytes weights_memory(const Chain& chain, int k, int l) {
  return 3.0 * chain.weight_sum(k, l);
}

Bytes activations_memory_per_batch(const Chain& chain, int k, int l) {
  return chain.stored_activation_sum(k, l);
}

Bytes comm_buffers_memory(const Chain& chain, int k, int l) {
  Bytes total = 0.0;
  if (k > 1) total += 2.0 * chain.activation(k - 1);
  if (l < chain.length()) total += 2.0 * chain.activation(l);
  return total;
}

Bytes stage_memory(const Chain& chain, int k, int l, int active_batches) {
  MP_EXPECT(active_batches >= 0, "active batch count must be non-negative");
  return weights_memory(chain, k, l) +
         static_cast<double>(active_batches) *
             activations_memory_per_batch(chain, k, l) +
         comm_buffers_memory(chain, k, l) + chain.scratch_sum(k, l);
}

int activation_count(const Chain& chain, int k, int l, Seconds delay,
                     Seconds target_period) {
  MP_EXPECT(delay >= 0.0, "delay must be non-negative");
  MP_EXPECT(target_period > 0.0, "target period must be positive");
  const int g = robust_ceil_div(delay + chain.compute_load(k, l), target_period);
  return g < 1 ? 1 : g;
}

Seconds delay_advance(Seconds x, Seconds y, Seconds target_period) {
  MP_EXPECT(x >= 0.0 && y >= 0.0, "delays must be non-negative");
  MP_EXPECT(target_period > 0.0, "target period must be positive");
  if (y == 0.0) return x;
  const int before = robust_ceil_div(x, target_period);
  const int after = robust_ceil_div(x + y, target_period);
  if (before == after) return x + y;
  return static_cast<double>(before) * target_period + y;
}

}  // namespace madpipe
