// The memory model of §3 / §4.2.1 of the paper.
//
// A processor holding layers k..l with g in-flight batches uses
//   𝓜(k,l,g) = Σ_{i=k..l} (3·W_i + g·a_{i-1}) + 2·(a_{k-1} + a_l)
// where the boundary buffer terms vanish at the chain ends (k = 1 removes
// the a_{k-1} buffer, l = L removes the a_l buffer — no communication
// happens there).
#pragma once

#include "core/chain.hpp"
#include "core/types.hpp"

namespace madpipe {

/// 3·Σ W_i over layers k..l (two parameter versions + accumulated gradient,
/// the PipeDream-2BW storage scheme the paper adopts).
Bytes weights_memory(const Chain& chain, int k, int l);

/// Σ a_{i-1} over layers k..l: the stored activations of ONE in-flight
/// batch (each layer keeps its input for the backward pass).
Bytes activations_memory_per_batch(const Chain& chain, int k, int l);

/// 2·(a_{k-1} + a_l) with boundary terms dropped at chain ends.
Bytes comm_buffers_memory(const Chain& chain, int k, int l);

/// 𝓜(k,l,g): full memory footprint of layers k..l with g in-flight batches.
Bytes stage_memory(const Chain& chain, int k, int l, int active_batches);

/// g(k,l,V) of §4.2.1: number of in-flight batches for layers k..l when the
/// delay between F_l and B_l on a batch is at least V and the target period
/// is T̂: ceil((V + U(k,l)) / T̂). At least 1.
int activation_count(const Chain& chain, int k, int l, Seconds delay,
                     Seconds target_period);

/// The ⊕ operator of §4.2.2: x ⊕ y advances a delay x by a task of length y,
/// rounding x up to a multiple of T̂ when the addition crosses a period
/// boundary (i.e. when the task must start a new group).
Seconds delay_advance(Seconds x, Seconds y, Seconds target_period);

}  // namespace madpipe
