#include "core/partition.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace madpipe {

Partitioning::Partitioning(const Chain& chain, std::vector<Stage> stages)
    : stages_(std::move(stages)) {
  MP_EXPECT(!stages_.empty(), "a partitioning needs at least one stage");
  MP_EXPECT(stages_.front().first == 1, "stages must start at layer 1");
  MP_EXPECT(stages_.back().last == chain.length(),
            "stages must end at layer L");
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    MP_EXPECT(stages_[s].first <= stages_[s].last, "empty stage");
    if (s + 1 < stages_.size()) {
      MP_EXPECT(stages_[s + 1].first == stages_[s].last + 1,
                "stages must tile the chain contiguously");
    }
  }
}

const Stage& Partitioning::stage(int s) const {
  MP_EXPECT(s >= 0 && s < num_stages(), "stage index out of range");
  return stages_[static_cast<std::size_t>(s)];
}

Seconds Partitioning::stage_load(const Chain& chain, int s) const {
  const Stage& st = stage(s);
  return chain.compute_load(st.first, st.last);
}

Seconds Partitioning::stage_forward_load(const Chain& chain, int s) const {
  const Stage& st = stage(s);
  return chain.forward_load(st.first, st.last);
}

Seconds Partitioning::stage_backward_load(const Chain& chain, int s) const {
  const Stage& st = stage(s);
  return chain.backward_load(st.first, st.last);
}

Bytes Partitioning::stage_stored_activations(const Chain& chain, int s) const {
  const Stage& st = stage(s);
  return chain.stored_activation_sum(st.first, st.last);
}

int Partitioning::boundary_after(int s) const { return stage(s).last; }

Allocation::Allocation(Partitioning partitioning,
                       std::vector<int> processor_of_stage, int num_processors)
    : partitioning_(std::move(partitioning)),
      processor_of_stage_(std::move(processor_of_stage)),
      num_processors_(num_processors) {
  MP_EXPECT(num_processors_ >= 1, "allocation needs at least one processor");
  MP_EXPECT(static_cast<int>(processor_of_stage_.size()) ==
                partitioning_.num_stages(),
            "one processor per stage required");
  for (const int p : processor_of_stage_) {
    MP_EXPECT(p >= 0 && p < num_processors_, "processor index out of range");
  }
}

int Allocation::processor_of(int stage) const {
  MP_EXPECT(stage >= 0 && stage < partitioning_.num_stages(),
            "stage index out of range");
  return processor_of_stage_[static_cast<std::size_t>(stage)];
}

std::vector<int> Allocation::stages_on(int processor) const {
  MP_EXPECT(processor >= 0 && processor < num_processors_,
            "processor index out of range");
  std::vector<int> result;
  for (int s = 0; s < partitioning_.num_stages(); ++s) {
    if (processor_of(s) == processor) result.push_back(s);
  }
  return result;
}

bool Allocation::contiguous() const {
  std::vector<int> count(static_cast<std::size_t>(num_processors_), 0);
  for (const int p : processor_of_stage_) {
    if (++count[static_cast<std::size_t>(p)] > 1) return false;
  }
  return true;
}

bool Allocation::boundary_cut(int stage) const {
  MP_EXPECT(stage >= 0 && stage < partitioning_.num_stages(),
            "stage index out of range");
  if (stage + 1 >= partitioning_.num_stages()) return false;
  return processor_of(stage) != processor_of(stage + 1);
}

Seconds Allocation::processor_load(const Chain& chain, int processor) const {
  Seconds load = 0.0;
  for (const int s : stages_on(processor)) {
    load += partitioning_.stage_load(chain, s);
  }
  return load;
}

Seconds Allocation::boundary_comm_load(const Chain& chain,
                                       const Platform& platform,
                                       int stage) const {
  if (!boundary_cut(stage)) return 0.0;
  return platform.boundary_comm_time(chain, partitioning_.boundary_after(stage));
}

Seconds Allocation::period_lower_bound(const Chain& chain,
                                       const Platform& platform) const {
  Seconds bound = 0.0;
  for (int p = 0; p < num_processors_; ++p) {
    bound = std::max(bound, processor_load(chain, p));
  }
  // Links are per unordered processor pair: comm over boundaries joining the
  // same pair shares one link, so their loads add up.
  for (int s = 0; s < partitioning_.num_stages(); ++s) {
    if (!boundary_cut(s)) continue;
    Seconds pair_load = 0.0;
    const int a = processor_of(s);
    const int b = processor_of(s + 1);
    for (int s2 = 0; s2 < partitioning_.num_stages(); ++s2) {
      if (!boundary_cut(s2)) continue;
      const int a2 = processor_of(s2);
      const int b2 = processor_of(s2 + 1);
      if ((a2 == a && b2 == b) || (a2 == b && b2 == a)) {
        pair_load += boundary_comm_load(chain, platform, s2);
      }
    }
    bound = std::max(bound, pair_load);
  }
  return bound;
}

Bytes Allocation::static_memory(const Chain& chain, int processor) const {
  Bytes total = 0.0;
  for (const int s : stages_on(processor)) {
    const Stage& st = partitioning_.stage(s);
    total += 3.0 * chain.weight_sum(st.first, st.last);
    total += chain.scratch_sum(st.first, st.last);
    // Incoming buffer: boundary before the stage, if it is a cut (or the
    // stage starts at layer 1 — no communication there).
    if (s > 0 && processor_of(s - 1) != processor) {
      total += 2.0 * chain.activation(st.first - 1);
    }
    if (s + 1 < partitioning_.num_stages() && processor_of(s + 1) != processor) {
      total += 2.0 * chain.activation(st.last);
    }
  }
  return total;
}

Allocation make_contiguous_allocation(const Chain& chain,
                                      std::vector<Stage> stages,
                                      int num_processors) {
  Partitioning partitioning(chain, std::move(stages));
  MP_EXPECT(partitioning.num_stages() <= num_processors,
            "contiguous allocation needs a processor per stage");
  std::vector<int> procs(static_cast<std::size_t>(partitioning.num_stages()));
  for (int s = 0; s < partitioning.num_stages(); ++s) {
    procs[static_cast<std::size_t>(s)] = s;
  }
  return Allocation(std::move(partitioning), std::move(procs), num_processors);
}

}  // namespace madpipe
