// Partitionings (chain → stages) and allocations (stages → processors),
// following the terminology of §3 of the paper:
//   * a *stage* is a contiguous range of layers,
//   * a *partitioning* is an ordered cover of the chain by stages,
//   * an *allocation* assigns each stage to a processor; it is *contiguous*
//     when every processor holds at most one stage.
#pragma once

#include <vector>

#include "core/chain.hpp"
#include "core/platform.hpp"
#include "core/types.hpp"

namespace madpipe {

/// Contiguous layer range [first, last], 1-based inclusive like the paper.
struct Stage {
  int first = 0;
  int last = 0;

  int size() const noexcept { return last - first + 1; }
  bool operator==(const Stage&) const = default;
};

/// Ordered list of stages covering layers 1..L without gaps or overlaps.
class Partitioning {
 public:
  Partitioning(const Chain& chain, std::vector<Stage> stages);

  int num_stages() const noexcept { return static_cast<int>(stages_.size()); }
  const Stage& stage(int s) const;
  const std::vector<Stage>& stages() const noexcept { return stages_; }

  /// U(s): total compute of stage s on `chain`.
  Seconds stage_load(const Chain& chain, int s) const;
  Seconds stage_forward_load(const Chain& chain, int s) const;
  Seconds stage_backward_load(const Chain& chain, int s) const;

  /// ā_s = Σ_{i in s} a_{i-1}: activations stored per in-flight batch.
  Bytes stage_stored_activations(const Chain& chain, int s) const;

  /// Boundary index after stage s (i.e. `stage(s).last`); the activation
  /// a^(boundary) crosses it when s and s+1 live on different processors.
  int boundary_after(int s) const;

  bool operator==(const Partitioning&) const = default;

 private:
  std::vector<Stage> stages_;
};

/// A partitioning plus the processor of each stage.
class Allocation {
 public:
  Allocation(Partitioning partitioning, std::vector<int> processor_of_stage,
             int num_processors);

  const Partitioning& partitioning() const noexcept { return partitioning_; }
  int num_processors() const noexcept { return num_processors_; }
  int processor_of(int stage) const;
  /// All stage indices living on processor p, in chain order.
  std::vector<int> stages_on(int processor) const;

  /// True when every processor holds at most one stage.
  bool contiguous() const;

  /// True when the boundary after stage s crosses processors (s < N-1).
  bool boundary_cut(int stage) const;

  /// Compute load of processor p: Σ U(s) over its stages.
  Seconds processor_load(const Chain& chain, int processor) const;

  /// Link load of the boundary after stage s: C(boundary) when cut, else 0.
  Seconds boundary_comm_load(const Chain& chain, const Platform& platform,
                             int stage) const;

  /// Lower bound on any valid period for this allocation, ignoring memory:
  /// max over processors of compute load and over cut boundaries of comm
  /// load. (The paper's "period of an allocation", §4.2.)
  Seconds period_lower_bound(const Chain& chain, const Platform& platform) const;

  /// Static memory terms on processor p: 3·W for all its layers plus 2·a
  /// communication buffers at each of its cut boundaries.
  Bytes static_memory(const Chain& chain, int processor) const;

  bool operator==(const Allocation&) const = default;

 private:
  Partitioning partitioning_;
  std::vector<int> processor_of_stage_;
  int num_processors_ = 0;
};

/// Build a contiguous allocation: stage i on processor i.
Allocation make_contiguous_allocation(const Chain& chain,
                                      std::vector<Stage> stages,
                                      int num_processors);

}  // namespace madpipe
