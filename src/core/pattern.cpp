#include "core/pattern.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace madpipe {

const char* to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::Forward: return "F";
    case OpKind::Backward: return "B";
    case OpKind::CommForward: return "CF";
    case OpKind::CommBackward: return "CB";
  }
  return "?";
}

ResourceId ResourceId::link(int p, int q) {
  MP_EXPECT(p != q, "a link joins two distinct processors");
  if (p > q) std::swap(p, q);
  return {Kind::Link, p, q};
}

bool ResourceId::operator<(const ResourceId& other) const {
  if (kind != other.kind) return kind < other.kind;
  if (a != other.a) return a < other.a;
  return b < other.b;
}

std::string ResourceId::to_string() const {
  if (kind == Kind::Processor) return "gpu" + std::to_string(a);
  return "link" + std::to_string(a) + "-" + std::to_string(b);
}

PatternOp PeriodicPattern::make_op(OpKind kind, int stage, ResourceId resource,
                                   Seconds virtual_time, Seconds duration,
                                   Seconds period) {
  MP_EXPECT(period > 0.0, "period must be positive");
  MP_EXPECT(virtual_time >= -kTimeEps * period, "virtual time must be >= 0");
  MP_EXPECT(duration >= 0.0, "duration must be non-negative");
  if (virtual_time < 0.0) virtual_time = 0.0;
  auto shift = static_cast<long long>(
      std::floor(virtual_time / period + kTimeEps));
  if (shift < 0) shift = 0;
  Seconds start = virtual_time - static_cast<double>(shift) * period;
  if (start < 0.0) start = 0.0;
  if (start >= period) {  // numeric edge: z an exact multiple of T
    start = 0.0;
    ++shift;
  }
  return PatternOp{kind, stage, resource, start, duration, shift};
}

void ValidationResult::fail(std::string message) {
  valid = false;
  errors.push_back(std::move(message));
}

namespace {

/// floor(x) with snapping: values within eps of an integer round to it.
long long robust_floor(double x, double eps) {
  const double r = std::round(x);
  if (std::abs(x - r) <= eps) return static_cast<long long>(r);
  return static_cast<long long>(std::floor(x));
}

/// In-flight batches of a stage at (steady-state) time τ ∈ [0,T): the number
/// of F completions minus B completions by τ, counted with closed semantics
/// (a completion at exactly τ counts).
long long inflight_at(const PatternOp& fwd, const PatternOp& bwd, Seconds tau,
                      Seconds period, double eps) {
  const double f = (tau - fwd.start - fwd.duration) / period;
  const double b = (tau - bwd.start - bwd.duration) / period;
  return (bwd.shift - fwd.shift) + robust_floor(f, eps) - robust_floor(b, eps);
}

struct Interval {
  Seconds begin;
  Seconds end;  // begin + duration, may exceed the period (wraps)
  const PatternOp* op;
};

/// The event sweep shared by validate_pattern and sweep_processor_memory:
/// evaluate the in-flight activation bytes of `stages` at every F/B
/// completion instant (mod T). `fwd`/`bwd` are indexed by stage.
MemorySweep sweep_memory_events(const std::vector<const PatternOp*>& fwd,
                                const std::vector<const PatternOp*>& bwd,
                                const std::vector<int>& stages,
                                const Partitioning& parts, const Chain& chain,
                                Seconds T, double tol) {
  MemorySweep sweep;
  sweep.stages = stages;
  sweep.stage_max_inflight.assign(stages.size(), 0);

  // Event times: all F/B completion instants (mod T) on this processor.
  std::vector<Seconds> events{0.0};
  for (const int s : stages) {
    events.push_back(std::fmod(fwd[s]->start + fwd[s]->duration, T));
    events.push_back(std::fmod(bwd[s]->start + bwd[s]->duration, T));
  }

  for (const Seconds tau : events) {
    Bytes inflight_bytes = 0.0;
    for (std::size_t j = 0; j < stages.size(); ++j) {
      const int s = stages[j];
      const long long q = inflight_at(*fwd[s], *bwd[s], tau, T, tol);
      if (q < 0) {
        sweep.error = "negative in-flight count for stage " +
                      std::to_string(s) + " (backward ahead of forward)";
        return sweep;
      }
      sweep.stage_max_inflight[j] =
          std::max(sweep.stage_max_inflight[j], static_cast<int>(q));
      inflight_bytes += static_cast<double>(q) *
                        parts.stage_stored_activations(chain, s);
    }
    sweep.points.push_back({tau, inflight_bytes});
    sweep.peak_activation_bytes =
        std::max(sweep.peak_activation_bytes, inflight_bytes);
  }
  return sweep;
}

std::string op_name(const PatternOp& op) {
  std::ostringstream os;
  os << to_string(op.kind) << "[stage " << op.stage << " on "
     << op.resource.to_string() << ", t=" << op.start << ", h=" << op.shift
     << "]";
  return os.str();
}

/// Circular-disjointness check of all intervals on one resource.
void check_resource_packing(const std::vector<Interval>& intervals,
                            Seconds period, double tol,
                            ValidationResult& result) {
  Seconds busy = 0.0;
  for (const Interval& iv : intervals) busy += iv.end - iv.begin;
  if (busy > period * (1.0 + tol)) {
    result.fail("resource " + intervals.front().op->resource.to_string() +
                " is overcommitted: busy " + std::to_string(busy) +
                " > period " + std::to_string(period));
    return;
  }
  // Unroll each interval (possibly wrapping) into segments in [0, 2T) and
  // sweep; segments from distinct ops must not overlap.
  struct Segment {
    Seconds begin, end;
    const PatternOp* op;
  };
  std::vector<Segment> segments;
  for (const Interval& iv : intervals) {
    if (iv.end - iv.begin <= 0.0) continue;
    if (iv.end <= period + tol * period) {
      segments.push_back({iv.begin, std::min(iv.end, period), iv.op});
    } else {
      segments.push_back({iv.begin, period, iv.op});
      segments.push_back({0.0, iv.end - period, iv.op});
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const Segment& x, const Segment& y) { return x.begin < y.begin; });
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].begin < segments[i].end - tol * period) {
      result.fail("overlap on " + segments[i].op->resource.to_string() + ": " +
                  op_name(*segments[i].op) + " and " +
                  op_name(*segments[i + 1].op));
      return;
    }
  }
}

}  // namespace

MemorySweep sweep_processor_memory(const PeriodicPattern& pattern,
                                   const Allocation& allocation,
                                   const Chain& chain, int processor,
                                   double tolerance) {
  const Partitioning& parts = allocation.partitioning();
  const int num_stages = parts.num_stages();
  std::vector<const PatternOp*> fwd(num_stages, nullptr);
  std::vector<const PatternOp*> bwd(num_stages, nullptr);
  for (const PatternOp& op : pattern.ops) {
    if (op.stage < 0 || op.stage >= num_stages) continue;
    if (op.kind == OpKind::Forward && fwd[op.stage] == nullptr) {
      fwd[op.stage] = &op;
    } else if (op.kind == OpKind::Backward && bwd[op.stage] == nullptr) {
      bwd[op.stage] = &op;
    }
  }
  const std::vector<int> stages = allocation.stages_on(processor);
  for (const int s : stages) {
    if (fwd[s] == nullptr || bwd[s] == nullptr) {
      MemorySweep sweep;
      sweep.error =
          "stage " + std::to_string(s) + " misses its F or B op";
      return sweep;
    }
  }
  return sweep_memory_events(fwd, bwd, stages, parts, chain, pattern.period,
                             tolerance);
}

ValidationResult validate_pattern(const PeriodicPattern& pattern,
                                  const Allocation& allocation,
                                  const Chain& chain, const Platform& platform,
                                  const ValidationOptions& options) {
  obs::Span span("validate_pattern", obs::kCatVerify);
  span.arg("ops", static_cast<long long>(pattern.ops.size()));
  span.arg("stages",
           static_cast<long long>(allocation.partitioning().num_stages()));
  ValidationResult result;
  const Seconds T = pattern.period;
  const double tol = options.tolerance;
  const Partitioning& parts = allocation.partitioning();
  const int num_stages = parts.num_stages();

  if (!(T > 0.0)) {
    result.fail("period must be positive");
    return result;
  }

  // --- 1. Structure ---------------------------------------------------
  std::vector<const PatternOp*> fwd(num_stages, nullptr);
  std::vector<const PatternOp*> bwd(num_stages, nullptr);
  std::vector<const PatternOp*> comm_fwd(num_stages, nullptr);
  std::vector<const PatternOp*> comm_bwd(num_stages, nullptr);

  for (const PatternOp& op : pattern.ops) {
    if (op.stage < 0 || op.stage >= num_stages) {
      result.fail("op references stage out of range: " + op_name(op));
      return result;
    }
    if (op.start < -tol * T || op.start >= T * (1.0 + tol)) {
      result.fail("start time outside [0, T): " + op_name(op));
    }
    if (op.shift < 0) {
      result.fail("negative index shift: " + op_name(op));
    }
    auto& slot = (op.kind == OpKind::Forward)       ? fwd
                 : (op.kind == OpKind::Backward)    ? bwd
                 : (op.kind == OpKind::CommForward) ? comm_fwd
                                                    : comm_bwd;
    if (slot[op.stage] != nullptr) {
      result.fail("duplicate op: " + op_name(op));
      return result;
    }
    slot[op.stage] = &op;
  }

  for (int s = 0; s < num_stages; ++s) {
    const Stage& st = parts.stage(s);
    const ResourceId proc = ResourceId::processor(allocation.processor_of(s));
    const bool cut = allocation.boundary_cut(s);

    if (fwd[s] == nullptr || bwd[s] == nullptr) {
      result.fail("stage " + std::to_string(s) + " misses its F or B op");
      return result;
    }
    const auto check_compute = [&](const PatternOp& op, Seconds expected) {
      if (!(op.resource == proc)) {
        result.fail(op_name(op) + " placed on wrong resource, expected " +
                    proc.to_string());
      }
      if (std::abs(op.duration - expected) > tol * std::max(1.0, expected)) {
        result.fail(op_name(op) + " has wrong duration, expected " +
                    std::to_string(expected));
      }
    };
    check_compute(*fwd[s], chain.forward_load(st.first, st.last));
    check_compute(*bwd[s], chain.backward_load(st.first, st.last));

    if (cut) {
      const ResourceId link = ResourceId::link(allocation.processor_of(s),
                                               allocation.processor_of(s + 1));
      const Seconds expected =
          platform.boundary_oneway_time(chain, parts.boundary_after(s));
      if (comm_fwd[s] == nullptr || comm_bwd[s] == nullptr) {
        result.fail("cut boundary after stage " + std::to_string(s) +
                    " misses its communication ops");
        return result;
      }
      for (const PatternOp* op : {comm_fwd[s], comm_bwd[s]}) {
        if (!(op->resource == link)) {
          result.fail(op_name(*op) + " placed on wrong link, expected " +
                      link.to_string());
        }
        if (std::abs(op->duration - expected) > tol * std::max(1.0, expected)) {
          result.fail(op_name(*op) + " has wrong duration, expected " +
                      std::to_string(expected));
        }
      }
    } else if (comm_fwd[s] != nullptr || comm_bwd[s] != nullptr) {
      result.fail("communication ops present on uncut boundary after stage " +
                  std::to_string(s));
    }
  }
  if (!result.valid) return result;

  // --- 2. Dependencies in virtual time --------------------------------
  std::vector<const PatternOp*> sequence;
  for (int s = 0; s < num_stages; ++s) {
    sequence.push_back(fwd[s]);
    if (comm_fwd[s] != nullptr) sequence.push_back(comm_fwd[s]);
  }
  for (int s = num_stages - 1; s >= 0; --s) {
    sequence.push_back(bwd[s]);
    if (s > 0 && comm_bwd[s - 1] != nullptr) sequence.push_back(comm_bwd[s - 1]);
  }
  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    const Seconds ready =
        sequence[i]->virtual_time(T) + sequence[i]->duration;
    const Seconds begin = sequence[i + 1]->virtual_time(T);
    if (begin < ready - tol * T) {
      result.fail("dependency violated: " + op_name(*sequence[i + 1]) +
                  " starts before " + op_name(*sequence[i]) + " completes");
    }
  }

  // --- 3. Resource exclusivity ----------------------------------------
  std::map<ResourceId, std::vector<Interval>> by_resource;
  for (const PatternOp& op : pattern.ops) {
    by_resource[op.resource].push_back(
        Interval{op.start, op.start + op.duration, &op});
  }
  for (auto& [resource, intervals] : by_resource) {
    check_resource_packing(intervals, T, tol, result);
  }

  // --- 4. Memory -------------------------------------------------------
  result.stage_active_batches.assign(num_stages, 0);
  result.processor_memory_peak.assign(allocation.num_processors(), 0.0);

  for (int p = 0; p < allocation.num_processors(); ++p) {
    const std::vector<int> stages = allocation.stages_on(p);
    const Bytes static_mem = allocation.static_memory(chain, p);

    const MemorySweep sweep =
        sweep_memory_events(fwd, bwd, stages, parts, chain, T, tol);
    if (!sweep.ok()) {
      result.fail(sweep.error);
      return result;
    }
    for (std::size_t j = 0; j < stages.size(); ++j) {
      result.stage_active_batches[stages[j]] = std::max(
          result.stage_active_batches[stages[j]], sweep.stage_max_inflight[j]);
    }
    result.processor_memory_peak[p] = static_mem + sweep.peak_activation_bytes;

    if (options.check_memory &&
        result.processor_memory_peak[p] >
            platform.memory_per_processor * (1.0 + tol)) {
      result.fail("memory exceeded on processor " + std::to_string(p) + ": " +
                  std::to_string(result.processor_memory_peak[p]) + " > " +
                  std::to_string(platform.memory_per_processor));
    }
  }

  return result;
}

}  // namespace madpipe
