// Periodic patterns (§3 of the paper) and their exact verification.
//
// A pattern of period T assigns every operation (stage forward/backward,
// boundary communications) a resource, a start time t ∈ [0,T) and an index
// shift h: in the k-th period the operation starts at kT + t and processes
// mini-batch k − h. The *virtual time* z = t + h·T is the time at which the
// operation processes batch 0; chain dependencies are plain precedences in
// z, which is how all schedulers in this library reason about patterns.
//
// `validate_pattern` checks, exactly:
//   1. structure — one F/B per stage on its processor, one comm pair per cut
//      boundary on the right link, durations consistent with the chain;
//   2. dependencies — the full F...F B...B chain in virtual time;
//   3. resource exclusivity — circular (mod T) disjointness per resource;
//   4. memory — event-sweep of in-flight activation counts per processor,
//      plus static weights and communication buffers, against M.
#pragma once

#include <string>
#include <vector>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/platform.hpp"
#include "core/types.hpp"

namespace madpipe {

enum class OpKind {
  Forward,       ///< F of a stage
  Backward,      ///< B of a stage
  CommForward,   ///< activation a^(boundary) moving downstream
  CommBackward,  ///< gradient b^(boundary) moving upstream
};

const char* to_string(OpKind kind) noexcept;

/// A compute or communication resource of the platform.
struct ResourceId {
  enum class Kind { Processor, Link };
  Kind kind = Kind::Processor;
  int a = 0;  ///< processor index; for links, the smaller endpoint
  int b = 0;  ///< for links, the larger endpoint; unused for processors

  static ResourceId processor(int p) { return {Kind::Processor, p, 0}; }
  static ResourceId link(int p, int q);

  bool operator==(const ResourceId&) const = default;
  bool operator<(const ResourceId& other) const;
  std::string to_string() const;
};

/// One operation of the periodic pattern.
struct PatternOp {
  OpKind kind = OpKind::Forward;
  int stage = 0;  ///< stage index; for comms, the boundary *after* this stage
  ResourceId resource;
  Seconds start = 0.0;     ///< t ∈ [0, period)
  Seconds duration = 0.0;
  long long shift = 0;     ///< h ≥ 0

  /// z = t + h·T: the absolute time this op processes batch 0.
  Seconds virtual_time(Seconds period) const {
    return start + static_cast<double>(shift) * period;
  }
};

/// A periodic pattern: period plus its operations.
struct PeriodicPattern {
  Seconds period = 0.0;
  std::vector<PatternOp> ops;

  /// Build an op from a virtual time z ≥ 0, splitting it into (start, shift).
  static PatternOp make_op(OpKind kind, int stage, ResourceId resource,
                           Seconds virtual_time, Seconds duration,
                           Seconds period);
};

struct ValidationOptions {
  bool check_memory = true;
  /// Relative tolerance for time comparisons (scaled by the period).
  double tolerance = 1e-7;
};

/// One instant of a processor's steady-state activation occupancy.
struct MemorySweepPoint {
  Seconds time = 0.0;            ///< event instant in [0, T)
  Bytes activation_bytes = 0.0;  ///< in-flight stored activations at `time`
};

/// Steady-state memory sweep of one processor: the in-flight activation
/// bytes at every F/B completion instant (mod T) of the stages living on it.
/// This is the exact event sweep `validate_pattern` checks memory with; the
/// report subsystem builds its memory-over-time curves from the same data,
/// so both sides agree bit for bit. The processor's total footprint at any
/// point is Allocation::static_memory + activation_bytes.
struct MemorySweep {
  std::vector<MemorySweepPoint> points;  ///< sweep order, not time-sorted
  Bytes peak_activation_bytes = 0.0;
  std::vector<int> stages;             ///< stage indices on the processor
  std::vector<int> stage_max_inflight; ///< parallel to `stages`
  std::string error;  ///< non-empty when F/B ops are missing or inconsistent
  bool ok() const { return error.empty(); }
};

/// Sweep the steady-state activation memory of `processor`. Fails (with a
/// message in `error`) when the pattern misses a stage's F/B op or a stage's
/// backward runs ahead of its forward.
MemorySweep sweep_processor_memory(const PeriodicPattern& pattern,
                                   const Allocation& allocation,
                                   const Chain& chain, int processor,
                                   double tolerance = 1e-7);

struct ValidationResult {
  bool valid = true;
  std::vector<std::string> errors;
  /// Peak memory per processor (weights + buffers + in-flight activations).
  std::vector<Bytes> processor_memory_peak;
  /// Max in-flight batches per stage (the stage's "group number").
  std::vector<int> stage_active_batches;

  void fail(std::string message);
};

/// Exact verification of `pattern` against the allocation it claims to
/// schedule. Always fills the memory/active-batch diagnostics when the
/// structure is sound, even if memory exceeds M (the error list says so).
ValidationResult validate_pattern(const PeriodicPattern& pattern,
                                  const Allocation& allocation,
                                  const Chain& chain, const Platform& platform,
                                  const ValidationOptions& options = {});

}  // namespace madpipe
