#include "core/plan.hpp"

#include <sstream>

#include "util/format.hpp"
#include "util/json.hpp"

namespace madpipe {

std::string plan_to_json(const Plan& plan, const Chain& chain,
                         const Platform& platform) {
  json::Writer w;
  w.begin_object();
  w.key("planner");
  w.value(plan.planner);
  w.key("network");
  w.value(chain.name());
  w.key("processors");
  w.value(platform.processors);
  w.key("memory_per_processor");
  w.value(platform.memory_per_processor);
  w.key("bandwidth");
  w.value(platform.bandwidth);
  w.key("period");
  w.value(plan.pattern.period);
  w.key("phase1_period");
  w.value(plan.phase1_period);
  w.key("planning_seconds");
  w.value(plan.planning_seconds);

  w.key("stages");
  w.begin_array();
  const Partitioning& parts = plan.allocation.partitioning();
  for (int s = 0; s < parts.num_stages(); ++s) {
    w.begin_object();
    w.key("first_layer");
    w.value(parts.stage(s).first);
    w.key("last_layer");
    w.value(parts.stage(s).last);
    w.key("processor");
    w.value(plan.allocation.processor_of(s));
    w.key("compute_load");
    w.value(parts.stage_load(chain, s));
    w.end_object();
  }
  w.end_array();

  w.key("ops");
  w.begin_array();
  for (const PatternOp& op : plan.pattern.ops) {
    w.begin_object();
    w.key("kind");
    w.value(to_string(op.kind));
    w.key("stage");
    w.value(op.stage);
    w.key("resource");
    w.value(op.resource.to_string());
    w.key("start");
    w.value(op.start);
    w.key("duration");
    w.value(op.duration);
    w.key("shift");
    w.value(op.shift);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string plan_to_string(const Plan& plan, const Chain& chain,
                           const Platform& platform) {
  std::ostringstream os;
  os << plan.planner << " plan for " << chain.name() << " on "
     << platform.processors << " GPUs (" << fmt::bytes(platform.memory_per_processor)
     << " each, " << fmt::bytes(platform.bandwidth) << "/s links)\n";
  os << "  period " << fmt::seconds(plan.pattern.period) << " (phase-1 "
     << fmt::seconds(plan.phase1_period) << "), speedup "
     << fmt::fixed(plan.speedup(chain), 2) << "x over sequential\n";
  const Partitioning& parts = plan.allocation.partitioning();
  for (int s = 0; s < parts.num_stages(); ++s) {
    os << "  stage " << s << ": layers [" << parts.stage(s).first << ", "
       << parts.stage(s).last << "] on gpu" << plan.allocation.processor_of(s)
       << ", load " << fmt::seconds(parts.stage_load(chain, s)) << "\n";
  }
  return os.str();
}

}  // namespace madpipe
