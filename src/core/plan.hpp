// A Plan is the end product of a planner: the chosen allocation, the valid
// periodic pattern scheduling it, and provenance (which planner, what the
// optimistic phase-1 period was — the "dashed lines" of the paper's
// Figure 6).
#pragma once

#include <optional>
#include <string>

#include "core/partition.hpp"
#include "core/pattern.hpp"
#include "core/types.hpp"
#include "madpipe/planner_stats.hpp"

namespace madpipe {

struct Plan {
  std::string planner;      ///< e.g. "madpipe", "pipedream"
  Allocation allocation;
  PeriodicPattern pattern;  ///< valid schedule; pattern.period is the result
  /// Period the partitioning phase believed it could achieve (before
  /// scheduling made memory costs exact). phase1 ≤ period() in general.
  Seconds phase1_period = 0.0;
  Seconds planning_seconds = 0.0;  ///< wall time spent planning
  /// Aggregated hot-path counters from every DP probe and period search the
  /// planner ran; zero-initialized for planners that don't instrument.
  PlannerStats stats;

  Seconds period() const noexcept { return pattern.period; }
  /// Throughput in batches per second.
  double throughput() const { return 1.0 / pattern.period; }
  /// Speedup over the sequential execution U(1,L) of the chain.
  double speedup(const Chain& chain) const {
    return chain.total_compute() / pattern.period;
  }
};

/// JSON dump of a plan (allocation + full pattern), for external tooling.
std::string plan_to_json(const Plan& plan, const Chain& chain,
                         const Platform& platform);

/// Human-readable multi-line description of the allocation and period.
std::string plan_to_string(const Plan& plan, const Chain& chain,
                           const Platform& platform);

}  // namespace madpipe
