#include "core/platform.hpp"

#include "util/expect.hpp"

namespace madpipe {

Seconds Platform::transfer_time(Bytes size) const {
  MP_EXPECT(size >= 0.0, "transfer size must be non-negative");
  return size / bandwidth;
}

Seconds Platform::boundary_comm_time(const Chain& chain, int boundary) const {
  MP_EXPECT(boundary >= 0 && boundary <= chain.length(),
            "boundary index out of range");
  if (boundary == 0 || boundary == chain.length()) return 0.0;
  return 2.0 * chain.activation(boundary) / bandwidth;
}

Seconds Platform::boundary_oneway_time(const Chain& chain, int boundary) const {
  MP_EXPECT(boundary >= 0 && boundary <= chain.length(),
            "boundary index out of range");
  if (boundary == 0 || boundary == chain.length()) return 0.0;
  return chain.activation(boundary) / bandwidth;
}

void Platform::validate() const {
  MP_EXPECT(processors >= 1, "platform needs at least one processor");
  MP_EXPECT(memory_per_processor > 0.0, "memory capacity must be positive");
  MP_EXPECT(bandwidth > 0.0, "bandwidth must be positive");
}

}  // namespace madpipe
