// Execution platform of the paper (§3): P identical GPUs with memory M,
// all pairs connected by dedicated full-duplex-equivalent links of
// bandwidth β. (As in PipeDream/MadPipe, each unordered pair of GPUs has
// its own link; activation and gradient transfers over one boundary share
// that link.)
#pragma once

#include "core/chain.hpp"
#include "core/types.hpp"

namespace madpipe {

struct Platform {
  int processors = 1;            ///< P
  Bytes memory_per_processor = 0;  ///< M
  double bandwidth = 1.0;        ///< β in bytes/second

  /// Time to move `size` bytes over one link.
  Seconds transfer_time(Bytes size) const;

  /// C(j) of the paper for boundary j (between layers j and j+1): the total
  /// link occupancy of one batch crossing the cut — a^(j) forward plus
  /// b^(j) backward, i.e. 2*a_j/β. Zero for the chain ends (j = 0 or j = L:
  /// no cut exists there).
  Seconds boundary_comm_time(const Chain& chain, int boundary) const;

  /// One-direction transfer over boundary j: a_j/β.
  Seconds boundary_oneway_time(const Chain& chain, int boundary) const;

  /// Throws ContractViolation unless the description is sane.
  void validate() const;
};

}  // namespace madpipe
