// Common scalar types and unit helpers.
//
// Durations are seconds, sizes are bytes, both as double: activation sizes
// reach tens of GB and periods fractions of a millisecond, so a single
// floating-point representation with named constructors keeps the arithmetic
// (prefix sums, ratios, ceilings) simple while staying readable at call
// sites (`3 * GB`, `ms(12.5)`).
#pragma once

namespace madpipe {

using Seconds = double;
using Bytes = double;

/// Decimal units, like the paper (memory limits quoted in GB = 1e9).
inline constexpr Bytes KB = 1e3;
inline constexpr Bytes MB = 1e6;
inline constexpr Bytes GB = 1e9;

constexpr Seconds ms(double v) noexcept { return v * 1e-3; }
constexpr Seconds us(double v) noexcept { return v * 1e-6; }

/// Tolerance for schedule arithmetic (comparisons of times built from sums
/// of layer durations). Scaled comparisons should use `a <= b + kTimeEps *
/// scale` with `scale` around the period.
inline constexpr double kTimeEps = 1e-9;

}  // namespace madpipe
