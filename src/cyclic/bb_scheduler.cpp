#include "cyclic/bb_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace madpipe {

namespace {

struct CircleInterval {
  Seconds position;  ///< start on the circle, in [0, T)
  Seconds duration;
};

/// Search state for one resource: placed circle intervals, kept sorted.
using ResourceState = std::vector<CircleInterval>;

class Search {
 public:
  Search(const CyclicProblem& problem, const Allocation& allocation,
         const Chain& chain, const Platform& platform, Seconds period,
         const BBOptions& options)
      : problem_(problem),
        allocation_(allocation),
        chain_(chain),
        platform_(platform),
        period_(period),
        options_(options),
        eps_(1e-9 * period) {
    // Dense resource indexing.
    for (const CyclicOp& op : problem.ops) {
      if (!resource_index_.contains(op.resource)) {
        const int index = static_cast<int>(resource_index_.size());
        resource_index_.emplace(op.resource, index);
      }
    }
    occupied_.resize(resource_index_.size());
    z_.assign(problem.ops.size(), 0.0);

    const int num_stages = allocation.partitioning().num_stages();
    forward_shift_.assign(num_stages, 0);
    stage_bytes_.resize(num_stages);
    for (int s = 0; s < num_stages; ++s) {
      stage_bytes_[s] =
          allocation.partitioning().stage_stored_activations(chain, s);
    }
    const int procs = allocation.num_processors();
    static_memory_.resize(procs);
    resident_floor_.assign(procs, 0.0);
    for (int p = 0; p < procs; ++p) {
      static_memory_[p] = allocation.static_memory(chain, p);
    }
  }

  BBResult run() {
    BBResult result;
    if (try_compact_construction(result) || dfs(0, 0.0, result)) {
      result.feasible = true;
    }
    result.nodes_visited = nodes_;
    result.node_budget_hit = budget_hit_;
    return result;
  }

 private:
  long long shift_of(Seconds z) const {
    return static_cast<long long>(std::floor(z / period_ + 1e-9));
  }

  /// Free gaps on a resource circle, as (start, length) with start ∈ [0,T).
  /// `state` is sorted by position; at most the last interval wraps past T,
  /// and disjointness guarantees the first interval starts after its tail.
  std::vector<CircleInterval> free_gaps(const ResourceState& state) const {
    if (state.empty()) return {CircleInterval{0.0, period_}};
    std::vector<CircleInterval> gaps;
    Seconds cursor = state.front().position + state.front().duration;
    for (std::size_t i = 1; i < state.size(); ++i) {
      const Seconds gap = state[i].position - cursor;
      if (gap > eps_) gaps.push_back(CircleInterval{cursor, gap});
      cursor = std::max(cursor, state[i].position + state[i].duration);
    }
    // Wrap-around gap: from the last end back to the first start (+T).
    const Seconds wrap_gap = state.front().position + period_ - cursor;
    if (wrap_gap > eps_) {
      gaps.push_back(CircleInterval{std::fmod(cursor, period_), wrap_gap});
    }
    return gaps;
  }

  /// Earliest z ≥ ready whose circle position lies in [w0, w0+width]
  /// (width ≥ 0; the window may wrap past T).
  Seconds earliest_in_window(Seconds ready, Seconds w0, Seconds width) const {
    const Seconds r0 = std::fmod(ready, period_);
    const Seconds base = ready - r0;
    const Seconds w1 = w0 + width;
    if (w1 < period_ + eps_) {
      if (r0 <= w1 + eps_) return base + std::max(r0, w0);
      return base + period_ + w0;
    }
    // Wrapped window: [w0, T) ∪ [0, w1 − T].
    if (r0 >= w0 - eps_ || r0 <= (w1 - period_) + eps_) return ready;
    return base + w0;
  }

  std::vector<Seconds> candidates(const CyclicOp& op, Seconds ready) const {
    if (op.duration <= eps_) return {ready};
    const ResourceState& state =
        occupied_[resource_index_.at(op.resource)];
    std::vector<Seconds> zs;
    for (const CircleInterval& gap : free_gaps(state)) {
      if (gap.duration + eps_ < op.duration) continue;
      const Seconds slack = gap.duration - op.duration;
      // Earliest fit in the gap (memory-cheapest), plus the left- and
      // right-aligned placements: packing an op against a gap edge keeps
      // the remaining free space contiguous for later ops, which
      // earliest-fit alone can fragment.
      zs.push_back(earliest_in_window(ready, gap.position, slack));
      if (slack > eps_) {
        zs.push_back(earliest_in_window(ready, gap.position, 0.0));
        const Seconds right = std::fmod(gap.position + slack, period_);
        zs.push_back(earliest_in_window(ready, right, 0.0));
      }
    }
    std::sort(zs.begin(), zs.end());
    zs.erase(std::unique(zs.begin(), zs.end(),
                         [this](Seconds a, Seconds b) {
                           return std::abs(a - b) <= eps_;
                         }),
             zs.end());
    if (static_cast<int>(zs.size()) > options_.max_candidates_per_op) {
      zs.resize(static_cast<std::size_t>(options_.max_candidates_per_op));
    }
    return zs;
  }

  void place(const CyclicOp& op, Seconds z) {
    if (op.duration <= eps_) return;
    ResourceState& state = occupied_[resource_index_.at(op.resource)];
    const Seconds phi = std::fmod(z, period_);
    const auto it = std::lower_bound(
        state.begin(), state.end(), phi,
        [](const CircleInterval& iv, Seconds p) { return iv.position < p; });
    state.insert(it, CircleInterval{phi, op.duration});
  }

  void unplace(const CyclicOp& op, Seconds z) {
    if (op.duration <= eps_) return;
    ResourceState& state = occupied_[resource_index_.at(op.resource)];
    const Seconds phi = std::fmod(z, period_);
    const auto it = std::find_if(
        state.begin(), state.end(), [&](const CircleInterval& iv) {
          return std::abs(iv.position - phi) <= eps_ &&
                 std::abs(iv.duration - op.duration) <= eps_;
        });
    MP_ENSURE(it != state.end(), "unplace of an interval that is not placed");
    state.erase(it);
  }

  bool dfs(std::size_t index, Seconds ready, BBResult& result) {
    if (index == problem_.ops.size()) {
      return try_leaf(result);
    }
    if (nodes_ >= options_.max_nodes) {
      budget_hit_ = true;
      return false;
    }
    ++nodes_;

    const CyclicOp& op = problem_.ops[index];
    for (const Seconds z : candidates(op, ready)) {
      z_[index] = z;
      place(op, z);

      // Memory floor pruning once a stage's backward lands: in steady state
      // a stage whose shifts differ by δ = h_B − h_F keeps at least δ − 1
      // activations resident at all times (often δ).
      bool pruned = false;
      int touched_proc = -1;
      Bytes floor_delta = 0.0;
      if (op.kind == OpKind::Forward) {
        forward_shift_[op.stage] = shift_of(z);
      } else if (op.kind == OpKind::Backward) {
        const long long delta = shift_of(z) - forward_shift_[op.stage];
        if (delta < 0) {
          pruned = true;  // backward cannot trail forward by a negative lag
        } else {
          touched_proc = allocation_.processor_of(op.stage);
          floor_delta = static_cast<double>(std::max<long long>(0, delta - 1)) *
                        stage_bytes_[op.stage];
          resident_floor_[touched_proc] += floor_delta;
          if (static_memory_[touched_proc] + resident_floor_[touched_proc] >
              platform_.memory_per_processor * (1.0 + 1e-9)) {
            pruned = true;
          }
        }
      }

      if (!pruned && dfs(index + 1, z + op.duration, result)) {
        return true;
      }
      if (touched_proc >= 0) resident_floor_[touched_proc] -= floor_delta;
      unplace(op, z);
      if (budget_hit_) return false;
    }
    return false;
  }

  /// O(K) constructive attempt run before the search: pack every resource's
  /// ops back-to-back (in chain order) on the circle, then pick the minimal
  /// index shift satisfying each chain dependency. Resource exclusivity
  /// holds by construction whenever Σd ≤ T, and with unbounded shifts the
  /// chain is always satisfiable — so this certifies feasibility at the
  /// max-load period immediately whenever its (pipelining-deep) memory
  /// profile fits. When memory is tight it usually fails and the DFS takes
  /// over with its shift-minimizing placements.
  bool try_compact_construction(BBResult& result) {
    std::map<ResourceId, Seconds> cursor;
    Seconds ready = 0.0;
    for (std::size_t i = 0; i < problem_.ops.size(); ++i) {
      const CyclicOp& op = problem_.ops[i];
      Seconds& phi = cursor[op.resource];
      if (phi + op.duration > period_ * (1.0 + 1e-9)) return false;
      // Smallest z ≥ ready with z mod T == phi.
      const Seconds base = std::floor(ready / period_) * period_;
      Seconds z = base + phi;
      if (z < ready - eps_) z += period_;
      z_[i] = z;
      phi += op.duration;
      ready = z + op.duration;
    }
    return try_leaf(result);
  }

  bool try_leaf(BBResult& result) {
    PeriodicPattern pattern;
    pattern.period = period_;
    for (std::size_t i = 0; i < problem_.ops.size(); ++i) {
      const CyclicOp& op = problem_.ops[i];
      pattern.ops.push_back(PeriodicPattern::make_op(
          op.kind, op.stage, op.resource, z_[i], op.duration, period_));
    }
    const ValidationResult check =
        validate_pattern(pattern, allocation_, chain_, platform_);
    if (!check.valid) return false;
    result.pattern = std::move(pattern);
    return true;
  }

  const CyclicProblem& problem_;
  const Allocation& allocation_;
  const Chain& chain_;
  const Platform& platform_;
  Seconds period_;
  BBOptions options_;
  double eps_;

  std::map<ResourceId, int> resource_index_;
  std::vector<ResourceState> occupied_;
  std::vector<Seconds> z_;
  std::vector<long long> forward_shift_;
  std::vector<Bytes> stage_bytes_;
  std::vector<Bytes> static_memory_;
  std::vector<Bytes> resident_floor_;

  std::size_t nodes_ = 0;
  bool budget_hit_ = false;
};

}  // namespace

BBResult bb_schedule(const CyclicProblem& problem, const Allocation& allocation,
                     const Chain& chain, const Platform& platform,
                     Seconds period, const BBOptions& options) {
  MP_EXPECT(period > 0.0, "period must be positive");
  // Categorized "solver": this branch-and-bound is the phase-2 scheduling
  // solver (the paper's ILP stand-in), the sibling of solver::solve_milp.
  obs::Span span("bb_probe", obs::kCatSolver);
  Search search(problem, allocation, chain, platform, period, options);
  BBResult result = search.run();
  span.arg("nodes", static_cast<long long>(result.nodes_visited));
  span.arg("feasible", result.feasible ? 1 : 0);
  return result;
}

}  // namespace madpipe
