// Branch-and-bound cyclic scheduler: the phase-2 engine of our MadPipe
// implementation (the paper delegates this step to the ILP of its reference
// [1] with a one-minute solver time limit; we solve the same problem with a
// dedicated combinatorial search — see DESIGN.md for the substitution).
//
// For a fixed period T, operations are placed in dependency-chain order at
// virtual times z (z = t + h·T). Two observations keep the search small:
//   * an op's circle footprint [z mod T, z mod T + d) is independent of the
//     period it lands in, so for each free gap on its resource only the
//     earliest z ≥ ready matters — later wraps only add index shifts (and
//     memory) without changing packability;
//   * trying candidates in increasing z explores memory-cheapest placements
//     first.
// Leaves are verified exactly with validate_pattern (the event-sweep memory
// check), and partial placements are pruned with a safe lower bound on the
// always-resident activation floor (a stage in "group" g keeps at least
// g − 1 activations at all times, §4.2.1).
#pragma once

#include "core/plan.hpp"
#include "cyclic/stage_graph.hpp"

namespace madpipe {

struct BBOptions {
  /// DFS node budget; when exhausted the probe reports infeasible-at-T
  /// (conservative, like the paper's ILP time limit).
  std::size_t max_nodes = 60'000;
  /// Candidate placements explored per operation (sorted by z).
  int max_candidates_per_op = 10;
};

struct BBResult {
  bool feasible = false;
  PeriodicPattern pattern;  ///< valid pattern when feasible
  std::size_t nodes_visited = 0;
  bool node_budget_hit = false;
};

/// Try to build a valid pattern at exactly `period`.
BBResult bb_schedule(const CyclicProblem& problem, const Allocation& allocation,
                     const Chain& chain, const Platform& platform,
                     Seconds period, const BBOptions& options = {});

}  // namespace madpipe
