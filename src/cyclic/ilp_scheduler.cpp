#include "cyclic/ilp_scheduler.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/logging.hpp"

namespace madpipe {

ILPScheduleResult ilp_schedule(const CyclicProblem& problem,
                               const Allocation& allocation, const Chain& chain,
                               const Platform& platform, Seconds period,
                               const ILPScheduleOptions& options) {
  MP_EXPECT(period > 0.0, "period must be positive");
  obs::Span span("ilp_probe", obs::kCatSolver);
  ILPScheduleResult result;

  const std::size_t num_ops = problem.ops.size();
  for (const CyclicOp& op : problem.ops) {
    if (op.duration > period * (1.0 + kTimeEps)) return result;  // cannot fit
  }

  solver::Model model;
  model.set_sense(solver::Sense::Minimize);

  // Variables: t_i then h_i per op (h carries the stored-activation
  // objective weight for backward ops, negative for forwards).
  std::vector<int> t_var(num_ops);
  std::vector<int> h_var(num_ops);
  const Partitioning& parts = allocation.partitioning();
  for (std::size_t i = 0; i < num_ops; ++i) {
    const CyclicOp& op = problem.ops[i];
    double weight = 0.0;
    if (op.kind == OpKind::Forward || op.kind == OpKind::Backward) {
      const Bytes bytes = parts.stage_stored_activations(chain, op.stage);
      weight = (op.kind == OpKind::Backward ? 1.0 : -1.0) * bytes;
    }
    t_var[i] = model.add_variable("t" + std::to_string(i), 0.0,
                                  std::max(0.0, period - op.duration), 0.0);
    const double h_upper = (i == 0) ? 0.0 : options.max_shift;  // h_0 = 0
    h_var[i] = model.add_variable("h" + std::to_string(i), 0.0, h_upper,
                                  weight, solver::VarType::Integer);
  }

  // Chain precedences in virtual time.
  for (std::size_t i = 0; i + 1 < num_ops; ++i) {
    solver::LinearExpr expr;
    expr.add(t_var[i + 1], 1.0).add(h_var[i + 1], period);
    expr.add(t_var[i], -1.0).add(h_var[i], -period);
    model.add_constraint(std::move(expr), solver::Relation::GreaterEqual,
                         problem.ops[i].duration, "chain" + std::to_string(i));
  }

  // Circular disjunctions per same-resource pair.
  for (std::size_t i = 0; i < num_ops; ++i) {
    for (std::size_t j = i + 1; j < num_ops; ++j) {
      const CyclicOp& a = problem.ops[i];
      const CyclicOp& b = problem.ops[j];
      if (!(a.resource == b.resource)) continue;
      if (a.duration <= 0.0 && b.duration <= 0.0) continue;
      const int k = model.add_variable(
          "k" + std::to_string(i) + "_" + std::to_string(j), 0.0, 1.0, 0.0,
          solver::VarType::Integer);
      solver::LinearExpr first;  // b after a, unless k flips the order
      first.add(t_var[j], 1.0).add(t_var[i], -1.0).add(k, period);
      model.add_constraint(std::move(first), solver::Relation::GreaterEqual,
                           a.duration);
      solver::LinearExpr second;  // a after b when k = 1
      second.add(t_var[i], 1.0).add(t_var[j], -1.0).add(k, -period);
      model.add_constraint(std::move(second), solver::Relation::GreaterEqual,
                           b.duration - period);
    }
  }

  // Worst-case memory per processor, plus h_B ≥ h_F per stage.
  std::vector<int> forward_op(parts.num_stages(), -1);
  std::vector<int> backward_op(parts.num_stages(), -1);
  for (std::size_t i = 0; i < num_ops; ++i) {
    if (problem.ops[i].kind == OpKind::Forward) {
      forward_op[problem.ops[i].stage] = static_cast<int>(i);
    } else if (problem.ops[i].kind == OpKind::Backward) {
      backward_op[problem.ops[i].stage] = static_cast<int>(i);
    }
  }
  for (int s = 0; s < parts.num_stages(); ++s) {
    solver::LinearExpr order;
    order.add(h_var[static_cast<std::size_t>(backward_op[s])], 1.0);
    order.add(h_var[static_cast<std::size_t>(forward_op[s])], -1.0);
    model.add_constraint(std::move(order), solver::Relation::GreaterEqual, 0.0);
  }
  for (int p = 0; p < allocation.num_processors(); ++p) {
    const std::vector<int> stages = allocation.stages_on(p);
    if (stages.empty()) continue;
    solver::LinearExpr memory;
    Bytes budget =
        platform.memory_per_processor - allocation.static_memory(chain, p);
    for (const int s : stages) {
      const Bytes bytes = parts.stage_stored_activations(chain, s);
      memory.add(h_var[static_cast<std::size_t>(backward_op[s])], bytes);
      memory.add(h_var[static_cast<std::size_t>(forward_op[s])], -bytes);
      budget -= bytes;  // the +1 in (h_B − h_F + 1)
    }
    if (budget < 0.0) return result;  // static + floor already exceeds M
    model.add_constraint(std::move(memory), solver::Relation::LessEqual, budget,
                         "mem" + std::to_string(p));
  }

  const solver::MILPResult milp = solver::solve_milp(model, options.milp);
  result.status = milp.status;
  result.nodes_explored = milp.nodes_explored;
  result.stats = milp.stats;
  if (milp.status != solver::MILPStatus::Optimal &&
      milp.status != solver::MILPStatus::Feasible) {
    return result;
  }

  PeriodicPattern pattern;
  pattern.period = period;
  for (std::size_t i = 0; i < num_ops; ++i) {
    const CyclicOp& op = problem.ops[i];
    const double z = milp.values[static_cast<std::size_t>(t_var[i])] +
                     milp.values[static_cast<std::size_t>(h_var[i])] * period;
    pattern.ops.push_back(PeriodicPattern::make_op(op.kind, op.stage,
                                                   op.resource, z, op.duration,
                                                   period));
  }
  const ValidationResult check =
      validate_pattern(pattern, allocation, chain, platform);
  if (!check.valid) {
    log::warn("ILP schedule failed exact validation: ", check.errors.front());
    return result;
  }
  result.feasible = true;
  result.pattern = std::move(pattern);
  return result;
}

}  // namespace madpipe
