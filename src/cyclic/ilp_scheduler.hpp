// Mixed-integer formulation of the periodic scheduling problem (§4.3),
// solved with the in-house branch-and-bound solver. This mirrors the role
// of the ILP of the paper's reference [1]:
//
//   per op i:  t_i ∈ [0, T − d_i],  h_i ∈ Z≥0  (z_i = t_i + h_i·T)
//   chain:     z_{i+1} ≥ z_i + d_i
//   resources: for same-resource ops, a binary picks the circular order:
//              t_j − t_i + T·k ≥ d_i  and  t_i − t_j + T·(1−k) ≥ d_j
//   memory:    Σ_{stage s on p} ā_s · (h_{B_s} − h_{F_s} + 1) ≤ M − static_p
//
// The memory constraint uses the worst-case in-flight count (Figure 5a of
// the paper) and is therefore conservative: an ILP-feasible solution is
// always exactly feasible (leaves are still verified with validate_pattern),
// while ILP-infeasibility does not prove real infeasibility. The primary
// phase-2 engine is the exact branch-and-bound scheduler; this module
// cross-checks it and powers the scheduler-variant ablation.
#pragma once

#include "core/plan.hpp"
#include "cyclic/stage_graph.hpp"
#include "solver/milp.hpp"

namespace madpipe {

struct ILPScheduleOptions {
  solver::MILPOptions milp;
  /// Upper bound on any index shift h_i.
  int max_shift = 12;

  ILPScheduleOptions() { milp.time_limit_seconds = 10.0; }
};

struct ILPScheduleResult {
  bool feasible = false;
  PeriodicPattern pattern;
  solver::MILPStatus status = solver::MILPStatus::Limit;
  long long nodes_explored = 0;
  /// Solver counters of the underlying branch-and-bound run (pivots,
  /// warm-start hits, wall time, …).
  solver::SolverStats stats;
};

/// Try to build a valid pattern at exactly `period` via the MILP.
ILPScheduleResult ilp_schedule(const CyclicProblem& problem,
                               const Allocation& allocation, const Chain& chain,
                               const Platform& platform, Seconds period,
                               const ILPScheduleOptions& options = {});

}  // namespace madpipe
