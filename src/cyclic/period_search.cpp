#include "cyclic/period_search.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/logging.hpp"
#include "util/threading.hpp"

namespace madpipe {

namespace {

std::uint64_t period_key(Seconds period) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(period));
  std::memcpy(&bits, &period, sizeof(bits));
  return bits;
}

int auto_speculation(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min<unsigned>(4, std::max<unsigned>(hw, 1)));
}

/// Speculative branch-and-bound probe runner.
///
/// The bisection's control flow depends on each probe only through its
/// boolean feasibility, so the set of periods the search *may* probe next
/// forms an exact two-way outcome tree: from loop state (lb, ub, probes),
/// the next period is 0.5·(lb+ub), after which the state is (lb, mid) or
/// (mid, ub). On a cache miss we expand that tree breadth-first — with the
/// search's own floating-point expressions and stopping rules, so every
/// predicted period is bit-identical to a period the search could demand —
/// and run the batch of probes concurrently. Consumed results (and thus the
/// final pattern/period/probe count) match a sequential run for every W.
class ProbeRunner {
 public:
  ProbeRunner(const CyclicProblem& problem, const Allocation& allocation,
              const Chain& chain, const Platform& platform,
              const PeriodSearchOptions& options)
      : problem_(problem),
        allocation_(allocation),
        chain_(chain),
        platform_(platform),
        options_(options),
        width_(auto_speculation(options.speculation)) {}

  /// A node of the outcome tree: the period to probe plus enough state to
  /// predict both children. `phase` 0 = the initial ub probe, 1 = the lb
  /// probe, 2 = a midpoint probe of the main loop.
  struct Node {
    Seconds period;
    int phase;
    Seconds lb, ub;
    int probes;  ///< consumed count *after* this probe
  };

  const BBResult& demand(const Node& node, int* speculative_hits) {
    const std::uint64_t key = period_key(node.period);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++*speculative_hits;
      return it->second;
    }
    launch_batch(node);
    const auto it = cache_.find(key);
    MP_ENSURE(it != cache_.end(), "demanded probe missing from its batch");
    return it->second;
  }

  int speculative_probes() const noexcept { return speculative_probes_; }

 private:
  void children(const Node& node, std::vector<Node>& out) const {
    switch (node.phase) {
      case 0:
        // Feasible → probe lb next; infeasible → the search returns.
        out.push_back({node.lb, 1, node.lb, node.ub, node.probes + 1});
        return;
      case 1:
        // Feasible → optimal, return; infeasible → enter the loop.
        loop_child(node.lb, node.ub, node.probes, out);
        return;
      default:
        // mid feasible → (lb, mid); infeasible → (mid, ub).
        loop_child(node.lb, node.period, node.probes, out);
        loop_child(node.period, node.ub, node.probes, out);
        return;
    }
  }

  /// Append the loop's next probe from state (lb, ub, probes) — exactly the
  /// sequential loop's guard and midpoint expression.
  void loop_child(Seconds lb, Seconds ub, int probes,
                  std::vector<Node>& out) const {
    if (probes >= options_.max_probes ||
        ub - lb <= options_.relative_precision * ub) {
      return;
    }
    const Seconds mid = 0.5 * (lb + ub);
    out.push_back({mid, 2, lb, ub, probes + 1});
  }

  void launch_batch(const Node& root) {
    std::vector<Node> batch;
    batch.push_back(root);
    std::vector<Node> next;
    for (std::size_t i = 0;
         i < batch.size() && batch.size() < static_cast<std::size_t>(width_);
         ++i) {
      next.clear();
      children(batch[i], next);
      for (const Node& child : next) {
        if (batch.size() >= static_cast<std::size_t>(width_)) break;
        const std::uint64_t key = period_key(child.period);
        if (cache_.count(key)) continue;
        bool queued = false;
        for (const Node& pending : batch) {
          if (period_key(pending.period) == key) {
            queued = true;
            break;
          }
        }
        if (!queued) batch.push_back(child);
      }
    }

    std::vector<BBResult> results(batch.size());
    const std::size_t workers =
        options_.workers != 0
            ? std::min<std::size_t>(options_.workers, batch.size())
            : batch.size();
    par::parallel_for(
        0, batch.size(),
        [&](std::size_t i) {
          results[i] = bb_schedule(problem_, allocation_, chain_, platform_,
                                   batch[i].period, options_.bb);
        },
        workers);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      cache_.emplace(period_key(batch[i].period), std::move(results[i]));
    }
    speculative_probes_ += static_cast<int>(batch.size()) - 1;
  }

  const CyclicProblem& problem_;
  const Allocation& allocation_;
  const Chain& chain_;
  const Platform& platform_;
  const PeriodSearchOptions& options_;
  const int width_;
  std::unordered_map<std::uint64_t, BBResult> cache_;
  int speculative_probes_ = 0;
};

}  // namespace

PeriodSearchResult find_min_period(const Allocation& allocation,
                                   const Chain& chain, const Platform& platform,
                                   Seconds lower_hint,
                                   const PeriodSearchOptions& options) {
  obs::Span span("phase2_period_search", obs::kCatPlanner);
  const auto t0 = std::chrono::steady_clock::now();
  const CyclicProblem problem =
      build_cyclic_problem(allocation, chain, platform);

  PeriodSearchResult result;
  Seconds lb = std::max(problem.min_period, lower_hint);
  Seconds ub = std::max(problem.serial_period, lb);

  ProbeRunner runner(problem, allocation, chain, platform, options);

  const auto probe = [&](const ProbeRunner::Node& node) -> bool {
    ++result.probes;
    const BBResult& bb = runner.demand(node, &result.speculative_hits);
    if (bb.node_budget_hit) {
      log::debug("cyclic probe at T=", node.period, " hit the node budget");
    }
    if (bb.feasible) {
      result.feasible = true;
      result.pattern = bb.pattern;
      result.period = node.period;
    }
    return bb.feasible;
  };
  const auto finish = [&] {
    span.arg("probes", result.probes);
    span.arg("feasible", result.feasible ? 1 : 0);
    result.speculative_probes = runner.speculative_probes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  // The serial period is schedulable whenever anything is: if it fails, the
  // allocation's activation floor alone exceeds memory.
  if (!probe({ub, 0, lb, ub, 1})) {
    finish();
    return result;
  }

  if (probe({lb, 1, lb, ub, 2})) {  // lower bound already feasible: optimal
    finish();
    return result;
  }

  // Invariant: lb infeasible, ub feasible (with its pattern retained).
  while (result.probes < options.max_probes &&
         ub - lb > options.relative_precision * ub) {
    const Seconds mid = 0.5 * (lb + ub);
    if (probe({mid, 2, lb, ub, result.probes + 1})) {
      ub = mid;
    } else {
      lb = mid;
    }
  }
  finish();
  return result;
}

}  // namespace madpipe
