#include "cyclic/period_search.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/logging.hpp"

namespace madpipe {

PeriodSearchResult find_min_period(const Allocation& allocation,
                                   const Chain& chain, const Platform& platform,
                                   Seconds lower_hint,
                                   const PeriodSearchOptions& options) {
  const CyclicProblem problem =
      build_cyclic_problem(allocation, chain, platform);

  PeriodSearchResult result;
  Seconds lb = std::max(problem.min_period, lower_hint);
  Seconds ub = std::max(problem.serial_period, lb);

  const auto probe = [&](Seconds period) -> bool {
    ++result.probes;
    const BBResult bb =
        bb_schedule(problem, allocation, chain, platform, period, options.bb);
    if (bb.node_budget_hit) {
      log::debug("cyclic probe at T=", period, " hit the node budget");
    }
    if (bb.feasible) {
      result.feasible = true;
      result.pattern = bb.pattern;
      result.period = period;
    }
    return bb.feasible;
  };

  // The serial period is schedulable whenever anything is: if it fails, the
  // allocation's activation floor alone exceeds memory.
  if (!probe(ub)) return result;

  if (probe(lb)) return result;  // lower bound already feasible: optimal

  // Invariant: lb infeasible, ub feasible (with its pattern retained).
  while (result.probes < options.max_probes &&
         ub - lb > options.relative_precision * ub) {
    const Seconds mid = 0.5 * (lb + ub);
    if (probe(mid)) {
      ub = mid;
    } else {
      lb = mid;
    }
  }
  return result;
}

}  // namespace madpipe
