// Minimal-period search for the cyclic scheduler: binary search over the
// period with branch-and-bound feasibility probes, between the resource-load
// lower bound and the fully-serial upper bound (at which a schedule exists
// whenever the allocation is memory-schedulable at all: every stage then
// keeps a single in-flight batch, the activation floor).
#pragma once

#include <optional>

#include "core/plan.hpp"
#include "cyclic/bb_scheduler.hpp"

namespace madpipe {

struct PeriodSearchOptions {
  /// Stop when ub − lb ≤ relative_precision · ub.
  double relative_precision = 1e-3;
  int max_probes = 28;
  BBOptions bb;
  /// Speculation width W: up to W branch-and-bound probes run concurrently.
  /// Unlike phase 1, every probe outcome here is boolean, so the two-way
  /// outcome tree predicts future probe periods *exactly*; results are
  /// bit-identical to the sequential search for every W. 0 = auto
  /// (min(4, hardware threads)); 1 = sequential.
  int speculation = 0;
  /// Worker threads for speculative probes; 0 = one per in-flight probe.
  std::size_t workers = 0;
};

struct PeriodSearchResult {
  bool feasible = false;
  PeriodicPattern pattern;  ///< pattern at the best (smallest) feasible period
  Seconds period = 0.0;
  int probes = 0;  ///< probes the search consumed (as in a sequential run)
  /// Extra probes launched ahead of need, and consumed probes that were
  /// served by an earlier speculative batch.
  int speculative_probes = 0;
  int speculative_hits = 0;
  double wall_seconds = 0.0;
};

/// Find (approximately) the smallest period at which `allocation` can be
/// scheduled within memory. `lower_hint` tightens the initial lower bound
/// (e.g. the phase-1 period, which is a valid lower bound by construction).
PeriodSearchResult find_min_period(const Allocation& allocation,
                                   const Chain& chain, const Platform& platform,
                                   Seconds lower_hint = 0.0,
                                   const PeriodSearchOptions& options = {});

}  // namespace madpipe
