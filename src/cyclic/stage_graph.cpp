#include "cyclic/stage_graph.hpp"

#include <algorithm>
#include <map>

#include "util/expect.hpp"

namespace madpipe {

CyclicProblem build_cyclic_problem(const Allocation& allocation,
                                   const Chain& chain,
                                   const Platform& platform) {
  const Partitioning& parts = allocation.partitioning();
  const int num_stages = parts.num_stages();

  CyclicProblem problem;
  problem.ops.reserve(static_cast<std::size_t>(4 * num_stages));

  for (int s = 0; s < num_stages; ++s) {
    const ResourceId proc = ResourceId::processor(allocation.processor_of(s));
    problem.ops.push_back(CyclicOp{OpKind::Forward, s, proc,
                                   parts.stage_forward_load(chain, s)});
    if (allocation.boundary_cut(s)) {
      const ResourceId link = ResourceId::link(allocation.processor_of(s),
                                               allocation.processor_of(s + 1));
      problem.ops.push_back(CyclicOp{
          OpKind::CommForward, s, link,
          platform.boundary_oneway_time(chain, parts.boundary_after(s))});
    }
  }
  for (int s = num_stages - 1; s >= 0; --s) {
    const ResourceId proc = ResourceId::processor(allocation.processor_of(s));
    problem.ops.push_back(CyclicOp{OpKind::Backward, s, proc,
                                   parts.stage_backward_load(chain, s)});
    if (s > 0 && allocation.boundary_cut(s - 1)) {
      const ResourceId link = ResourceId::link(allocation.processor_of(s - 1),
                                               allocation.processor_of(s));
      problem.ops.push_back(CyclicOp{
          OpKind::CommBackward, s - 1, link,
          platform.boundary_oneway_time(chain, parts.boundary_after(s - 1))});
    }
  }

  std::map<ResourceId, Seconds> load;
  for (const CyclicOp& op : problem.ops) {
    load[op.resource] += op.duration;
    problem.serial_period += op.duration;
  }
  for (const auto& [resource, total] : load) {
    problem.min_period = std::max(problem.min_period, total);
  }
  MP_ENSURE(problem.min_period > 0.0, "degenerate cyclic problem");
  return problem;
}

}  // namespace madpipe
