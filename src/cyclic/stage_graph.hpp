// Reduction of an (arbitrary, possibly non-contiguous) allocation to a
// cyclic scheduling problem (§4.3 of the paper): the stage chain becomes a
// single dependency chain of operations
//   F_1 [CF_1] F_2 ... F_N  B_N [CB_{N-1}] B_{N-1} ... B_1
// where comm ops appear at cut boundaries, each op tied to its resource
// (processor or link). A valid periodic pattern gives each op a virtual
// time z = t + h·T respecting the chain, with circular (mod T) exclusivity
// per resource and the memory sweep within budget.
#pragma once

#include <vector>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/pattern.hpp"
#include "core/platform.hpp"

namespace madpipe {

struct CyclicOp {
  OpKind kind = OpKind::Forward;
  int stage = 0;  ///< stage index; for comms, the boundary after this stage
  ResourceId resource;
  Seconds duration = 0.0;
};

struct CyclicProblem {
  /// Operations in dependency-chain order.
  std::vector<CyclicOp> ops;
  /// Max resource load: no pattern with a smaller period exists.
  Seconds min_period = 0.0;
  /// Sum of all durations: a pattern always exists at this period when the
  /// allocation is memory-schedulable at all.
  Seconds serial_period = 0.0;
};

CyclicProblem build_cyclic_problem(const Allocation& allocation,
                                   const Chain& chain,
                                   const Platform& platform);

}  // namespace madpipe
