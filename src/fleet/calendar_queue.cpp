#include "fleet/calendar_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/expect.hpp"

namespace madpipe::fleet {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::JobArrival: return "arrival";
    case EventKind::JobCompletion: return "completion";
    case EventKind::PoolResize: return "resize";
  }
  return "unknown";
}

CalendarQueue::CalendarQueue(const CalendarQueueOptions& options)
    : options_(options) {
  MP_EXPECT(options_.dt > 0.0, "fine bucket width must be positive");
  MP_EXPECT(options_.fine_buckets >= 2, "need at least two fine buckets");
  MP_EXPECT(options_.coarse_buckets >= 2, "need at least two coarse buckets");
  coarse_dt_ = options_.dt * static_cast<double>(options_.fine_buckets);
  fine_.resize(options_.fine_buckets);
  coarse_.resize(options_.coarse_buckets);
}

double CalendarQueue::fine_end() const noexcept {
  return fine_start_ + coarse_dt_;  // coarse_dt_ == fine window span
}

double CalendarQueue::coarse_end() const noexcept {
  return fine_end() +
         coarse_dt_ * static_cast<double>(options_.coarse_buckets);
}

void CalendarQueue::insert_positioned(const Event& event) {
  if (event.time < fine_end()) {
    const double offset = (event.time - fine_start_) / options_.dt;
    std::size_t index =
        offset <= 0.0 ? 0 : static_cast<std::size_t>(offset);
    index = std::min(index, options_.fine_buckets - 1);
    // Never behind the cursor: a clamped-to-now event must still be seen.
    index = std::max(index, std::min(fine_index_, options_.fine_buckets - 1));
    fine_[index].push_back(event);
    ++fine_size_;
    return;
  }
  if (event.time < coarse_end()) {
    const double offset = (event.time - fine_end()) / coarse_dt_;
    std::size_t logical =
        offset <= 0.0 ? 0 : static_cast<std::size_t>(offset);
    logical = std::min(logical, options_.coarse_buckets - 1);
    const std::size_t physical =
        (coarse_index_ + logical) % options_.coarse_buckets;
    coarse_[physical].push_back(event);
    ++coarse_size_;
    return;
  }
  far_.push_back(event);
}

void CalendarQueue::push(Event event) {
  event.seq = next_seq_++;
  if (event.time < now_) event.time = now_;  // the past is dispatched "now"
  if (event.time >= coarse_end()) ++far_inserts_;
  insert_positioned(event);
  ++size_;
}

void CalendarQueue::advance() {
  MP_ASSERT(fine_size_ == 0, "advance() with fine events pending");
  ++refills_;
  if (coarse_size_ == 0) {
    // Nothing on the calendar for whole coarse laps: jump the window
    // straight to the earliest far event instead of idling through empty
    // buckets one lap at a time.
    MP_ENSURE(!far_.empty(), "advance() with no events anywhere");
    double min_time = far_.front().time;
    for (const Event& event : far_) min_time = std::min(min_time, event.time);
    fine_start_ = min_time;
    fine_index_ = 0;
    coarse_index_ = 0;
    std::vector<Event> rest;
    rest.reserve(far_.size());
    for (Event& event : far_) {
      if (event.time < coarse_end()) {
        insert_positioned(event);
      } else {
        rest.push_back(event);
      }
    }
    far_.swap(rest);
    return;
  }
  // Slide the fine window up one coarse bucket and pour that bucket down.
  fine_start_ = fine_end();
  fine_index_ = 0;
  std::vector<Event> pour = std::move(coarse_[coarse_index_]);
  coarse_[coarse_index_].clear();
  coarse_size_ -= pour.size();
  coarse_index_ = (coarse_index_ + 1) % options_.coarse_buckets;
  for (const Event& event : pour) insert_positioned(event);
  // The coarse horizon moved up one bucket; adopt far events it now covers.
  if (!far_.empty()) {
    const double horizon = coarse_end();
    std::vector<Event> rest;
    rest.reserve(far_.size());
    for (Event& event : far_) {
      if (event.time < horizon) {
        insert_positioned(event);
      } else {
        rest.push_back(event);
      }
    }
    far_.swap(rest);
  }
}

Event CalendarQueue::pop() {
  MP_EXPECT(size_ > 0, "pop() on an empty calendar queue");
  while (true) {
    while (fine_index_ < options_.fine_buckets &&
           fine_[fine_index_].empty()) {
      ++fine_index_;
    }
    if (fine_index_ < options_.fine_buckets) break;
    advance();
  }
  std::vector<Event>& bucket = fine_[fine_index_];
  std::size_t best = 0;
  for (std::size_t i = 1; i < bucket.size(); ++i) {
    const Event& a = bucket[i];
    const Event& b = bucket[best];
    if (a.time < b.time || (a.time == b.time && a.seq < b.seq)) best = i;
  }
  const Event event = bucket[best];
  bucket[best] = bucket.back();
  bucket.pop_back();
  --fine_size_;
  --size_;
  now_ = std::max(now_, event.time);
  return event;
}

}  // namespace madpipe::fleet
