// Multi-scale calendar queue: the fleet simulator's event engine.
//
// A binary heap costs O(log n) per operation and, worse for a
// discrete-event simulator, gives no locality: a year-long fleet trace with
// millions of events keeps paying for the far future on every pop. The
// calendar-queue idiom (SNIPPETS.md §2, mcell's sched_util) exploits what
// simulators know about their own event population — most pending events
// are *near* — by bucketing time like a desk calendar:
//
//   * a FINE ring of `fine_buckets` circular buckets of width `dt` covers
//     the imminent window [fine_start, fine_start + fine_buckets*dt);
//     insert and pop inside the window are O(1) amortized;
//   * a COARSE ring one scale up (bucket width fine_buckets*dt) covers the
//     next `coarse_buckets` fine windows; when the fine ring is exhausted
//     the next coarse bucket is poured down into fine buckets (each event
//     is touched O(#scales) = O(2) times total);
//   * everything beyond the coarse horizon sits in an unsorted FAR list,
//     re-bucketed when the coarse ring advances past it. A far event is a
//     trace's "retire the pool in an hour" — rare by construction.
//
// Ordering contract (what the golden tests pin): events pop in strictly
// increasing (time, seq) order, where `seq` is the global insertion number
// — ties in time resolve FIFO, and an insert during dispatch at the
// current time is popped before the engine moves past it. Events inserted
// in the past (time < the last popped time) are clamped to "now" and
// dispatched next: the simulator never travels backwards.
//
// The queue is deliberately single-threaded: determinism of the fleet
// event log is the acceptance criterion, and one event loop feeding the
// (thread-safe) PlanService is the proven serve-front-end shape.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace madpipe::fleet {

/// What a scheduled event does when it fires. The engine itself only
/// orders events; the simulator interprets the kind.
enum class EventKind : std::uint8_t {
  JobArrival,    ///< a job enters the wait queue (payload: job index)
  JobCompletion, ///< a placed job finished its batches (payload: job, epoch)
  PoolResize,    ///< the elastic pool capacity changes (payload: new size)
};

const char* to_string(EventKind kind) noexcept;

/// One scheduled event. `seq` is assigned by the queue at insert time and
/// makes the pop order a total order.
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::JobArrival;
  std::int32_t job = -1;    ///< job index; -1 for pool events
  std::int64_t arg = 0;     ///< kind-specific: epoch / new capacity
};

struct CalendarQueueOptions {
  double dt = 1.0 / 64.0;          ///< fine bucket width, seconds
  std::size_t fine_buckets = 512;  ///< fine window = dt * fine_buckets
  std::size_t coarse_buckets = 512;
};

class CalendarQueue {
 public:
  explicit CalendarQueue(const CalendarQueueOptions& options = {});

  /// Schedule `event` at event.time (seq is overwritten). Times before the
  /// last popped time are clamped to it.
  void push(Event event);

  /// True iff no events remain.
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Remove and return the earliest event by (time, seq). Precondition:
  /// !empty().
  Event pop();

  /// Time of the last popped event (0 before the first pop).
  double now() const noexcept { return now_; }

  /// Events that sat beyond the coarse horizon at insert time — the
  /// far-list traffic the multi-scale layout exists to keep rare.
  std::uint64_t far_inserts() const noexcept { return far_inserts_; }
  /// Coarse-bucket pours into the fine ring so far.
  std::uint64_t refills() const noexcept { return refills_; }

 private:
  double fine_end() const noexcept;
  double coarse_end() const noexcept;
  void insert_positioned(const Event& event);
  /// Advance the fine window onto the next coarse bucket (pouring it down),
  /// cascading the far list into the coarse ring when it wraps. Requires
  /// size_ > 0; leaves at least one fine bucket non-empty.
  void advance();

  CalendarQueueOptions options_;
  double coarse_dt_ = 0.0;
  std::vector<std::vector<Event>> fine_;
  std::vector<std::vector<Event>> coarse_;
  std::vector<Event> far_;
  double fine_start_ = 0.0;    ///< time at fine_[0]'s left edge
  std::size_t fine_index_ = 0; ///< current fine bucket
  std::size_t coarse_index_ = 0; ///< physical bucket of the logical front
  std::size_t size_ = 0;
  std::size_t fine_size_ = 0;
  std::size_t coarse_size_ = 0;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t far_inserts_ = 0;
  std::uint64_t refills_ = 0;
};

}  // namespace madpipe::fleet
