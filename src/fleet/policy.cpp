#include "fleet/policy.hpp"

#include <algorithm>
#include <limits>

#include "util/expect.hpp"

namespace madpipe::fleet {

int fit_width(const JobSpec& job, int free) noexcept {
  if (free < job.min_gpus) return 0;
  return std::min(job.gpus, free);
}

namespace {

/// The queue position holding the smallest admission order — the queue is
/// appended in order and erased from the middle, so position 0 is not
/// guaranteed to be the oldest.
std::optional<std::size_t> oldest(const std::vector<WaitingJob>& queue) {
  if (queue.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    if (queue[i].order < queue[best].order) best = i;
  }
  return best;
}

class FifoPolicy final : public PlacementPolicy {
 public:
  const char* name() const noexcept override { return "fifo"; }

  std::optional<PlacementDecision> select(
      const PlacementView& view) const override {
    MP_EXPECT(view.queue != nullptr, "placement view missing queue");
    const std::optional<std::size_t> head = oldest(*view.queue);
    if (!head) return std::nullopt;
    const WaitingJob& job = (*view.queue)[*head];
    const int width = fit_width(*job.spec, view.free_gpus);
    if (width == 0) return std::nullopt;  // head of line blocks
    return PlacementDecision{*head, width};
  }
};

class DeadlinePolicy final : public PlacementPolicy {
 public:
  const char* name() const noexcept override { return "deadline"; }

  std::optional<PlacementDecision> select(
      const PlacementView& view) const override {
    MP_EXPECT(view.queue != nullptr, "placement view missing queue");
    const std::vector<WaitingJob>& queue = *view.queue;
    std::optional<std::size_t> best;
    double best_deadline = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const WaitingJob& job = queue[i];
      if (fit_width(*job.spec, view.free_gpus) == 0) continue;
      const double deadline =
          job.spec->deadline_s > 0.0
              ? job.spec->deadline_s
              : std::numeric_limits<double>::infinity();
      const bool earlier =
          !best || deadline < best_deadline ||
          (deadline == best_deadline && job.order < queue[*best].order);
      if (earlier) {
        best = i;
        best_deadline = deadline;
      }
    }
    if (!best) return std::nullopt;
    const WaitingJob& job = queue[*best];
    return PlacementDecision{*best, fit_width(*job.spec, view.free_gpus)};
  }
};

class AffinityPolicy final : public PlacementPolicy {
 public:
  const char* name() const noexcept override { return "affinity"; }

  std::optional<PlacementDecision> select(
      const PlacementView& view) const override {
    MP_EXPECT(view.queue != nullptr, "placement view missing queue");
    MP_EXPECT(view.warm != nullptr, "affinity policy needs a warm set");
    const std::vector<WaitingJob>& queue = *view.queue;
    // Pass 1: a job placeable at an already-planned (network, width).
    // Widths scan downward from shrink-to-fit so a warm narrower plan is
    // still found; ties between jobs resolve by admission order.
    std::optional<std::size_t> warm_job;
    int warm_width = 0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const WaitingJob& job = queue[i];
      const int max_width = fit_width(*job.spec, view.free_gpus);
      if (max_width == 0) continue;
      for (int width = max_width; width >= job.spec->min_gpus; --width) {
        if (view.warm->count({job.spec->network, width}) == 0) continue;
        const bool better =
            !warm_job || width > warm_width ||
            (width == warm_width && job.order < queue[*warm_job].order);
        if (better) {
          warm_job = i;
          warm_width = width;
        }
        break;  // widths below this one reuse less of the pool
      }
    }
    if (warm_job) return PlacementDecision{*warm_job, warm_width};
    // Pass 2: nothing warm fits — first fit by admission order, full
    // shrink-to-fit width (the plan it creates warms the set for later).
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (fit_width(*queue[i].spec, view.free_gpus) == 0) continue;
      if (!best || queue[i].order < queue[*best].order) best = i;
    }
    if (!best) return std::nullopt;
    return PlacementDecision{*best,
                             fit_width(*queue[*best].spec, view.free_gpus)};
  }
};

}  // namespace

std::vector<std::string> list_policies() {
  return {"fifo", "deadline", "affinity"};
}

std::unique_ptr<PlacementPolicy> make_policy(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "deadline") return std::make_unique<DeadlinePolicy>();
  if (name == "affinity") return std::make_unique<AffinityPolicy>();
  return nullptr;
}

}  // namespace madpipe::fleet
