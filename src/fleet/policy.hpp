// Placement policies: who gets GPUs next, and how many.
//
// The simulator keeps a wait queue of admitted-but-unplaced jobs and asks
// the policy, every time capacity might have opened up (arrival, completion,
// pool grow), to pick ONE job and a width. The policy is called in a loop
// until it declines, so "place everything that fits" emerges from repeated
// single picks — which keeps every policy a pure function of the view and
// makes the event log a pure function of (trace, policy, seed).
//
// Width selection is elastic: a job asks for `gpus` but accepts anything
// down to `min_gpus`, so the default width is shrink-to-fit
// (min(requested, free)). This is what differentiates the policies in the
// plan cache: the same job placed at a different width is a different
// canonical cache key (the platform's processor count is part of the key),
// so a width-aware policy can steer the fleet onto already-planned
// (network, width) pairs.
//
//   * fifo      — strict head of line. The oldest waiting job either fits
//                 (shrunk if needed) or blocks everyone behind it. The
//                 honest baseline: no bypass, convoy effects and all.
//   * deadline  — EDF with backfill: among jobs that fit RIGHT NOW, pick
//                 the earliest simulated deadline (no deadline = +inf,
//                 ties by arrival order). Urgent-but-too-wide jobs do not
//                 block narrower ones.
//   * affinity  — cache-affinity: among fitting jobs, prefer one that can
//                 be placed at a width whose (network, width) plan is
//                 already warm — maximizing PlanService cache hits — and
//                 fall back to first-fit by arrival order. The bench
//                 acceptance criterion (affinity hit-rate > fifo) is this
//                 policy working as designed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fleet/trace.hpp"

namespace madpipe::fleet {

/// One waiting job as the policy sees it.
struct WaitingJob {
  std::int32_t job = -1;          ///< index into the trace's job list
  const JobSpec* spec = nullptr;  ///< the trace entry (never null)
  double enqueued_s = 0.0;        ///< when it entered the wait queue
  std::uint64_t order = 0;        ///< global admission order (FIFO ties)
};

/// Plans the simulator has already obtained, keyed by (network, width).
/// Tracked simulator-side rather than probed from the PlanService cache so
/// that policy deliberation never perturbs the cache counters the bench
/// reports.
using WarmSet = std::set<std::pair<std::string, int>>;

struct PlacementView {
  const std::vector<WaitingJob>* queue = nullptr;
  int free_gpus = 0;
  const WarmSet* warm = nullptr;
};

struct PlacementDecision {
  std::size_t queue_index = 0;  ///< position in view.queue
  int gpus = 0;                 ///< placement width (min_gpus..gpus)
};

/// Shrink-to-fit width for `job` given `free` GPUs; 0 when it cannot fit.
int fit_width(const JobSpec& job, int free) noexcept;

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const noexcept = 0;
  /// Pick the next job to place, or nullopt to wait for more capacity.
  /// Must only return decisions with fit_width(...) > 0 semantics:
  /// min_gpus <= gpus <= min(requested, free).
  virtual std::optional<PlacementDecision> select(
      const PlacementView& view) const = 0;
};

/// Policy names accepted by make_policy, in documented order.
std::vector<std::string> list_policies();

/// Factory for "fifo" / "deadline" / "affinity"; nullptr on unknown names.
std::unique_ptr<PlacementPolicy> make_policy(const std::string& name);

}  // namespace madpipe::fleet
