#include "fleet/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "core/platform.hpp"
#include "core/types.hpp"
#include "models/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace madpipe::fleet {

namespace {

std::string time_tag(double t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "t=%.6f", t);
  return buf;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Per-job mutable state during a run.
struct RunJob {
  const JobSpec* spec = nullptr;
  long long remaining_batches = 0;
  std::int64_t epoch = 0;       ///< bumped on preemption; stale completions skip
  std::uint64_t order = 0;      ///< admission order; KEPT across preemptions so
                                ///< FIFO resumes preempted work first
  bool admitted = false;
  bool waiting = false;
  bool running = false;
  bool completed = false;
  bool failed = false;
  double enqueued_s = 0.0;
  double start_s = 0.0;         ///< current placement start
  double first_start_s = -1.0;
  double finish_s = 0.0;
  double wait_s = 0.0;
  double period = 0.0;          ///< current placement's plan period
  int width = 0;                ///< current placement width
  int plans = 0;
  int preemptions = 0;
  bool deadline_met = true;
};

}  // namespace

std::uint64_t hash_event_log(const std::vector<std::string>& log) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (const std::string& line : log) {
    for (const unsigned char c : line) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    h ^= static_cast<unsigned char>('\n');
    h *= 0x100000001b3ull;
  }
  return h;
}

FleetSimulator::FleetSimulator(const FleetTrace& trace,
                               const FleetOptions& options,
                               serve::PlanService& service)
    : trace_(trace), options_(options), service_(service) {}

FleetResult FleetSimulator::run() {
  FleetResult result;
  result.policy = options_.policy;
  if (std::string err = fleet_trace_validate(trace_); !err.empty()) {
    result.error = "invalid trace: " + err;
    return result;
  }
  const std::unique_ptr<PlacementPolicy> policy = make_policy(options_.policy);
  if (policy == nullptr) {
    result.error = "unknown policy \"" + options_.policy + "\"";
    return result;
  }

  obs::Registry& registry = obs::Registry::global();
  obs::Counter& events_counter = registry.counter(
      "madpipe_fleet_events_total", "Fleet simulator events dispatched");
  obs::Counter& completed_counter = registry.counter(
      "madpipe_fleet_jobs_completed_total", "Fleet jobs run to completion");
  obs::Counter& preempt_counter = registry.counter(
      "madpipe_fleet_preemptions_total", "Jobs preempted by pool shrinks");
  obs::Counter& replan_counter = registry.counter(
      "madpipe_fleet_replans_total",
      "Placements of previously preempted jobs (forced replans)");
  obs::Gauge& capacity_gauge = registry.gauge(
      "madpipe_fleet_pool_capacity", "Elastic GPU pool capacity");
  obs::Gauge& in_use_gauge =
      registry.gauge("madpipe_fleet_pool_in_use", "GPUs currently placed");
  obs::Gauge& depth_gauge = registry.gauge(
      "madpipe_fleet_queue_depth", "Jobs waiting for placement");
  obs::Histogram& wait_histogram = registry.histogram(
      "madpipe_fleet_queue_wait_seconds", obs::latency_bounds_seconds(),
      "Simulated queueing delay per placement");

  // One linearized chain per network name; the profile is trace-wide so a
  // (network, width) pair maps to exactly one canonical cache key.
  std::map<std::string, Chain> chains;
  const auto chain_for = [&](const std::string& network) -> const Chain& {
    auto it = chains.find(network);
    if (it == chains.end()) {
      models::NetworkConfig config;
      config.network = network;
      config.image_size = trace_.profile.image_size;
      config.batch = trace_.profile.batch;
      config.chain_length = trace_.profile.chain_length;
      it = chains.emplace(network, models::build_network(config)).first;
    }
    return it->second;
  };

  CalendarQueue calendar(options_.queue);
  for (std::size_t i = 0; i < trace_.jobs.size(); ++i) {
    Event event;
    event.time = trace_.jobs[i].arrival_s;
    event.kind = EventKind::JobArrival;
    event.job = static_cast<std::int32_t>(i);
    calendar.push(event);
  }
  for (const PoolEvent& pool_event : trace_.pool_events) {
    Event event;
    event.time = pool_event.time_s;
    event.kind = EventKind::PoolResize;
    event.arg = pool_event.gpus;
    calendar.push(event);
  }

  std::vector<RunJob> jobs(trace_.jobs.size());
  for (std::size_t i = 0; i < trace_.jobs.size(); ++i) {
    jobs[i].spec = &trace_.jobs[i];
    jobs[i].remaining_batches = trace_.jobs[i].batches;
  }
  result.jobs_in = static_cast<int>(trace_.jobs.size());

  std::vector<WaitingJob> queue;
  WarmSet warm;
  std::vector<std::int32_t> placed;  ///< running jobs, placement order
  int capacity = trace_.pool_gpus;
  int in_use = 0;
  double last_time = 0.0;
  std::uint64_t next_order = 0;
  std::vector<double> wait_samples;

  const auto log_line = [&](std::string line) {
    if (options_.record_event_log) result.event_log.push_back(std::move(line));
  };

  const auto refresh_gauges = [&] {
    capacity_gauge.set(static_cast<double>(capacity));
    in_use_gauge.set(static_cast<double>(in_use));
    depth_gauge.set(static_cast<double>(queue.size()));
  };

  // Place as many waiting jobs as the policy will admit at `now`. Every
  // placement asks PlanService for a real plan — the cache outcome and the
  // period are deterministic, so they may be logged.
  const auto try_place = [&](double now) {
    while (!queue.empty()) {
      PlacementView view;
      view.queue = &queue;
      view.free_gpus = capacity - in_use;
      view.warm = &warm;
      const std::optional<PlacementDecision> decision = policy->select(view);
      if (!decision) break;
      MP_ASSERT(decision->queue_index < queue.size(),
                "policy returned an out-of-range queue index");
      const WaitingJob waiting = queue[decision->queue_index];
      queue.erase(queue.begin() +
                  static_cast<std::ptrdiff_t>(decision->queue_index));
      RunJob& job = jobs[static_cast<std::size_t>(waiting.job)];
      MP_ASSERT(decision->gpus >= job.spec->min_gpus &&
                    decision->gpus <=
                        std::min(job.spec->gpus, capacity - in_use),
                "policy returned an out-of-range width");

      serve::PlanRequest request{
          job.spec->id,
          chain_for(job.spec->network),
          Platform{decision->gpus, trace_.memory_gb * GB,
                   trace_.bandwidth_gbs * GB},
          serve::PlannerKind::MadPipe,
          MadPipeOptions{},
          job.spec->plan_deadline_ms / 1000.0,
          /*report_timings=*/false,
          /*report_explain=*/false};
      const bool is_replan = job.preemptions > 0;
      // Every placement is one traced request: the fleet span and the
      // serve/planner spans underneath share one trace id, so a slow
      // placement shows up in /slow with its full cross-layer tree. The
      // id never reaches the event log — the log stays bit-identical
      // across runs regardless of telemetry.
      request.trace_id = obs::next_trace_id();
      serve::PlanResponse response;
      {
        obs::TraceContextScope trace_scope(request.trace_id);
        obs::Span span(is_replan ? "fleet_replan" : "fleet_plan",
                       obs::kCatFleet);
        span.arg("gpus", decision->gpus);
        response = service_.plan(std::move(request));
      }
      ++job.plans;
      ++result.plans_requested;
      result.plan_wall_seconds += response.latency_seconds;
      if (response.cache == serve::CacheOutcome::Hit) {
        ++result.cache_hits;
      } else if (response.cache == serve::CacheOutcome::Miss ||
                 response.cache == serve::CacheOutcome::Coalesced) {
        ++result.cache_misses;
      }
      if (response.degraded) ++result.degraded_plans;

      if (response.status != serve::ResponseStatus::Ok) {
        job.waiting = false;
        job.failed = true;
        ++result.failed;
        log_line(time_tag(now) + " fail job=" + job.spec->id + " gpus=" +
                 std::to_string(decision->gpus) + " status=" +
                 serve::to_string(response.status));
        continue;
      }

      warm.insert({job.spec->network, decision->gpus});
      const double wait = now - job.enqueued_s;
      job.wait_s += wait;
      wait_samples.push_back(wait);
      wait_histogram.observe(wait);
      job.waiting = false;
      job.running = true;
      job.width = decision->gpus;
      job.period = response.plan->period();
      job.start_s = now;
      if (job.first_start_s < 0.0) job.first_start_s = now;
      if (is_replan) {
        ++result.replans;
        replan_counter.increment();
      }
      in_use += job.width;
      placed.push_back(waiting.job);

      Event completion;
      completion.time =
          now + static_cast<double>(job.remaining_batches) * job.period;
      completion.kind = EventKind::JobCompletion;
      completion.job = waiting.job;
      completion.arg = job.epoch;
      calendar.push(completion);

      log_line(time_tag(now) + " place job=" + job.spec->id + " gpus=" +
               std::to_string(job.width) + " cache=" +
               serve::to_string(response.cache) + " period=" +
               num(job.period) + " batches=" +
               std::to_string(job.remaining_batches) +
               (is_replan ? " replan" : ""));
    }
  };

  while (!calendar.empty()) {
    const Event event = calendar.pop();
    obs::Span span("fleet_dispatch", obs::kCatFleet);
    span.arg("kind", static_cast<long long>(event.kind));
    // Utilization integrals advance on every dispatch.
    const double dt = event.time - last_time;
    MP_ASSERT(dt >= 0.0, "calendar popped events out of order");
    result.busy_gpu_seconds += static_cast<double>(in_use) * dt;
    result.capacity_gpu_seconds += static_cast<double>(capacity) * dt;
    last_time = event.time;
    ++result.events_dispatched;
    events_counter.increment();

    switch (event.kind) {
      case EventKind::JobArrival: {
        RunJob& job = jobs[static_cast<std::size_t>(event.job)];
        MP_ASSERT(!job.admitted, "duplicate arrival event");
        job.admitted = true;
        job.waiting = true;
        job.order = next_order++;
        job.enqueued_s = event.time;
        queue.push_back({event.job, job.spec, event.time, job.order});
        log_line(time_tag(event.time) + " arrival job=" + job.spec->id +
                 " net=" + job.spec->network + " want=" +
                 std::to_string(job.spec->gpus) + " min=" +
                 std::to_string(job.spec->min_gpus));
        try_place(event.time);
        break;
      }
      case EventKind::PoolResize: {
        capacity = static_cast<int>(event.arg);
        log_line(time_tag(event.time) + " resize gpus=" +
                 std::to_string(capacity));
        // Shrink below usage: preempt most-recently-placed first (the jobs
        // with the least sunk progress), re-queue the remainder of their
        // batch budget, and let the next placement replan them.
        while (in_use > capacity) {
          MP_ASSERT(!placed.empty(), "in_use > 0 with nothing placed");
          const std::int32_t victim_index = placed.back();
          placed.pop_back();
          RunJob& victim = jobs[static_cast<std::size_t>(victim_index)];
          MP_ASSERT(victim.running, "placed stack holds a non-running job");
          const double elapsed = event.time - victim.start_s;
          long long done = static_cast<long long>(
              std::floor(elapsed / victim.period + kTimeEps));
          done = std::min(done, victim.remaining_batches - 1);
          done = std::max(done, 0ll);
          victim.remaining_batches -= done;
          ++victim.epoch;  // invalidates the scheduled completion
          ++victim.preemptions;
          ++result.preemptions;
          preempt_counter.increment();
          in_use -= victim.width;
          victim.running = false;
          victim.waiting = true;
          victim.width = 0;
          victim.enqueued_s = event.time;
          queue.push_back(
              {victim_index, victim.spec, event.time, victim.order});
          log_line(time_tag(event.time) + " preempt job=" + victim.spec->id +
                   " remaining=" + std::to_string(victim.remaining_batches));
        }
        try_place(event.time);
        break;
      }
      case EventKind::JobCompletion: {
        RunJob& job = jobs[static_cast<std::size_t>(event.job)];
        if (event.arg != job.epoch) {
          ++result.stale_events;  // preempted since this was scheduled
          break;
        }
        MP_ASSERT(job.running, "live completion for a non-running job");
        job.running = false;
        job.completed = true;
        job.finish_s = event.time;
        job.remaining_batches = 0;
        in_use -= job.width;
        placed.erase(std::find(placed.begin(), placed.end(), event.job));
        ++result.completed;
        completed_counter.increment();
        if (job.spec->deadline_s > 0.0) {
          job.deadline_met = event.time <= job.spec->deadline_s + kTimeEps;
          if (job.deadline_met) {
            ++result.deadlines_met;
          } else {
            ++result.deadlines_missed;
          }
        }
        log_line(time_tag(event.time) + " complete job=" + job.spec->id +
                 " gpus=" + std::to_string(job.width));
        try_place(event.time);
        break;
      }
    }
    refresh_gauges();
  }

  result.makespan_s = last_time;
  for (const RunJob& job : jobs) {
    if (!job.completed && !job.failed) ++result.stranded;
  }
  MP_ASSERT(result.accounting_exact(), "jobs_in != completed+failed+stranded");

  result.utilization = result.capacity_gpu_seconds > 0.0
                           ? result.busy_gpu_seconds /
                                 result.capacity_gpu_seconds
                           : 0.0;
  if (!wait_samples.empty()) {
    result.wait_mean_s = stats::mean(wait_samples);
    result.wait_p50_s = stats::percentile(wait_samples, 0.50);
    result.wait_p99_s = stats::percentile(wait_samples, 0.99);
    result.wait_max_s = stats::max(wait_samples);
  }
  result.cache_hit_rate =
      result.plans_requested > 0
          ? static_cast<double>(result.cache_hits) /
                static_cast<double>(result.plans_requested)
          : 0.0;
  result.far_inserts = calendar.far_inserts();
  result.refills = calendar.refills();

  result.jobs.reserve(jobs.size());
  for (const RunJob& job : jobs) {
    JobOutcome outcome;
    outcome.id = job.spec->id;
    outcome.network = job.spec->network;
    outcome.arrival_s = job.spec->arrival_s;
    outcome.first_start_s = std::max(job.first_start_s, 0.0);
    outcome.finish_s = job.finish_s;
    outcome.wait_s = job.wait_s;
    outcome.placed_gpus = job.width;
    outcome.plans = job.plans;
    outcome.preemptions = job.preemptions;
    outcome.completed = job.completed;
    outcome.failed = job.failed;
    outcome.deadline_met = job.deadline_met;
    result.jobs.push_back(std::move(outcome));
  }
  result.event_log_hash = hash_event_log(result.event_log);
  return result;
}

FleetResult run_fleet(const FleetTrace& trace, const FleetOptions& options,
                      const serve::ServiceOptions& service_options) {
  serve::PlanService service(service_options);
  FleetSimulator simulator(trace, options, service);
  return simulator.run();
}

std::string fleet_result_to_json(const FleetResult& result,
                                 bool include_event_log) {
  char hash_buf[24];
  std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                static_cast<unsigned long long>(result.event_log_hash));
  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value(kFleetReportSchema);
  w.key("policy");
  w.value(result.policy);
  if (!result.ok()) {
    w.key("error");
    w.value(result.error);
    w.end_object();
    return w.str();
  }
  w.key("accounting");
  w.begin_object();
  w.key("jobs_in");
  w.value(result.jobs_in);
  w.key("completed");
  w.value(result.completed);
  w.key("failed");
  w.value(result.failed);
  w.key("stranded");
  w.value(result.stranded);
  w.key("exact");
  w.value(result.accounting_exact());
  w.end_object();
  w.key("makespan_s");
  w.value(result.makespan_s);
  w.key("utilization");
  w.value(result.utilization);
  w.key("busy_gpu_seconds");
  w.value(result.busy_gpu_seconds);
  w.key("capacity_gpu_seconds");
  w.value(result.capacity_gpu_seconds);
  w.key("wait");
  w.begin_object();
  w.key("mean_s");
  w.value(result.wait_mean_s);
  w.key("p50_s");
  w.value(result.wait_p50_s);
  w.key("p99_s");
  w.value(result.wait_p99_s);
  w.key("max_s");
  w.value(result.wait_max_s);
  w.end_object();
  w.key("planning");
  w.begin_object();
  w.key("requests");
  w.value(result.plans_requested);
  w.key("cache_hits");
  w.value(result.cache_hits);
  w.key("cache_misses");
  w.value(result.cache_misses);
  w.key("cache_hit_rate");
  w.value(result.cache_hit_rate);
  w.key("degraded");
  w.value(result.degraded_plans);
  w.key("wall_seconds");
  w.value(result.plan_wall_seconds);
  w.key("replans");
  w.value(result.replans);
  w.end_object();
  w.key("preemptions");
  w.value(result.preemptions);
  w.key("deadlines");
  w.begin_object();
  w.key("met");
  w.value(result.deadlines_met);
  w.key("missed");
  w.value(result.deadlines_missed);
  w.end_object();
  w.key("engine");
  w.begin_object();
  w.key("events_dispatched");
  w.value(result.events_dispatched);
  w.key("stale_events");
  w.value(result.stale_events);
  w.key("far_inserts");
  w.value(static_cast<long long>(result.far_inserts));
  w.key("refills");
  w.value(static_cast<long long>(result.refills));
  w.end_object();
  w.key("jobs");
  w.begin_array();
  for (const JobOutcome& job : result.jobs) {
    w.begin_object();
    w.key("id");
    w.value(job.id);
    w.key("network");
    w.value(job.network);
    w.key("arrival_s");
    w.value(job.arrival_s);
    w.key("first_start_s");
    w.value(job.first_start_s);
    w.key("finish_s");
    w.value(job.finish_s);
    w.key("wait_s");
    w.value(job.wait_s);
    w.key("gpus");
    w.value(job.placed_gpus);
    w.key("plans");
    w.value(job.plans);
    w.key("preemptions");
    w.value(job.preemptions);
    w.key("completed");
    w.value(job.completed);
    w.key("failed");
    w.value(job.failed);
    w.key("deadline_met");
    w.value(job.deadline_met);
    w.end_object();
  }
  w.end_array();
  w.key("event_log_hash");
  w.value(hash_buf);
  if (include_event_log) {
    w.key("event_log");
    w.begin_array();
    for (const std::string& line : result.event_log) w.value(line);
    w.end_array();
  }
  w.end_object();
  return w.str();
}

std::string fleet_result_report(const FleetResult& result) {
  if (!result.ok()) return "fleet: " + result.error + "\n";
  std::string out;
  out += "fleet policy=" + result.policy + "\n";
  out += "  jobs: " + std::to_string(result.jobs_in) + " in, " +
         std::to_string(result.completed) + " completed, " +
         std::to_string(result.failed) + " failed, " +
         std::to_string(result.stranded) + " stranded\n";
  out += "  makespan: " + fmt::seconds(result.makespan_s) +
         "  utilization: " + fmt::fixed(100.0 * result.utilization, 1) +
         "%\n";
  out += "  wait: mean " + fmt::seconds(result.wait_mean_s) + ", p50 " +
         fmt::seconds(result.wait_p50_s) + ", p99 " +
         fmt::seconds(result.wait_p99_s) + ", max " +
         fmt::seconds(result.wait_max_s) + "\n";
  out += "  plans: " + std::to_string(result.plans_requested) + " (" +
         std::to_string(result.cache_hits) + " hits, " +
         std::to_string(result.cache_misses) + " misses, hit-rate " +
         fmt::fixed(100.0 * result.cache_hit_rate, 1) + "%), replans " +
         std::to_string(result.replans) + ", preemptions " +
         std::to_string(result.preemptions) + "\n";
  if (result.deadlines_met + result.deadlines_missed > 0) {
    out += "  deadlines: " + std::to_string(result.deadlines_met) + " met, " +
           std::to_string(result.deadlines_missed) + " missed\n";
  }
  out += "  engine: " + std::to_string(result.events_dispatched) +
         " events (" + std::to_string(result.stale_events) + " stale), " +
         std::to_string(static_cast<long long>(result.far_inserts)) +
         " far inserts, " +
         std::to_string(static_cast<long long>(result.refills)) +
         " refills\n";
  char hash_buf[24];
  std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                static_cast<unsigned long long>(result.event_log_hash));
  out += "  event-log hash: ";
  out += hash_buf;
  out += "\n";

  fmt::Table table({"job", "network", "arrival", "start", "finish", "wait",
                    "gpus", "plans", "state"});
  for (const JobOutcome& job : result.jobs) {
    const char* state =
        job.completed ? (job.deadline_met ? "done" : "done(late)")
                      : (job.failed ? "failed" : "stranded");
    table.add_row({job.id, job.network, fmt::seconds(job.arrival_s),
                   fmt::seconds(job.first_start_s),
                   fmt::seconds(job.finish_s), fmt::seconds(job.wait_s),
                   std::to_string(job.placed_gpus),
                   std::to_string(job.plans), state});
  }
  out += table.to_string();
  return out;
}

}  // namespace madpipe::fleet
