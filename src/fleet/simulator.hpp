// FleetSimulator: discrete-event execution of a fleet trace.
//
// One single-threaded event loop (ROADMAP item 3) over a CalendarQueue:
// job arrivals enter a wait queue, the placement policy admits jobs against
// the elastic GPU pool, each placement obtains a real plan from the
// existing serve::PlanService — exercising the plan cache exactly as a
// datacenter control loop would — and runs for batches × period() of
// SIMULATED time. Pool-resize events shrink or grow the pool; a shrink
// below current usage preempts the most recently placed jobs, which
// re-enter the wait queue with their remaining batches and are REPLANNED
// on their next placement (possibly at a different width → a different
// canonical cache key).
//
// Determinism contract (the acceptance criterion): the event log is a pure
// function of (trace, policy). Three design choices make that true —
//   1. planning is synchronous from the sim thread and costs zero SIM
//      time, so wall-clock planning latency never enters the timeline;
//   2. every logged fact is sim-time state or a deterministic planner
//      output (periods, widths, cache outcomes); wall-clock facts
//      (latency, degraded flags) are reported but never logged;
//   3. the event engine pops in total (time, seq) order and all policy
//      tie-breaks are by admission order.
// The one escape hatch is JobSpec::plan_deadline_ms — a wall-clock DP
// budget that can make the degradation valve fire run-dependently; traces
// carrying it still run, but bit-identity is only promised without it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/calendar_queue.hpp"
#include "fleet/policy.hpp"
#include "fleet/trace.hpp"
#include "serve/service.hpp"

namespace madpipe::fleet {

inline constexpr const char* kFleetReportSchema = "madpipe-fleet-report-v1";

struct FleetOptions {
  std::string policy = "fifo";
  CalendarQueueOptions queue;
  bool record_event_log = true;  ///< keep the full per-event text log
};

/// Per-job outcome, in trace order.
struct JobOutcome {
  std::string id;
  std::string network;
  double arrival_s = 0.0;
  double first_start_s = 0.0;  ///< first placement time
  double finish_s = 0.0;
  double wait_s = 0.0;      ///< total time spent in the wait queue
  int placed_gpus = 0;      ///< width of the final (completing) placement
  int plans = 0;            ///< PlanService calls (1 + replans)
  int preemptions = 0;
  bool completed = false;
  bool failed = false;      ///< planner said infeasible/error — job dropped
  bool deadline_met = true; ///< false iff deadline_s > 0 and finish was late
};

struct FleetResult {
  std::string policy;
  std::string error;  ///< non-empty → the run never started (bad trace/policy)

  // Accounting (the jobs_in == jobs_out criterion):
  int jobs_in = 0;
  int completed = 0;
  int failed = 0;
  int stranded = 0;  ///< still waiting/running when events ran out (bug if >0)

  double makespan_s = 0.0;        ///< time of the last dispatched event
  double utilization = 0.0;       ///< busy GPU-seconds / capacity GPU-seconds
  double busy_gpu_seconds = 0.0;
  double capacity_gpu_seconds = 0.0;

  // Queueing delay (sim-time, over all placements including re-placements).
  double wait_mean_s = 0.0;
  double wait_p50_s = 0.0;
  double wait_p99_s = 0.0;
  double wait_max_s = 0.0;

  // Planning traffic (PlanService view of this run).
  long long plans_requested = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  double cache_hit_rate = 0.0;
  long long degraded_plans = 0;
  double plan_wall_seconds = 0.0;  ///< wall clock spent planning (not sim time)

  long long replans = 0;      ///< placements of previously preempted jobs
  long long preemptions = 0;
  int deadlines_met = 0;      ///< among jobs with a deadline
  int deadlines_missed = 0;

  // Engine counters.
  long long events_dispatched = 0;
  long long stale_events = 0;  ///< completions invalidated by preemption
  std::uint64_t far_inserts = 0;
  std::uint64_t refills = 0;

  std::vector<JobOutcome> jobs;

  /// The deterministic event log: one line per logged transition, and its
  /// FNV-1a hash (the cheap thing to compare across runs/hosts).
  std::vector<std::string> event_log;
  std::uint64_t event_log_hash = 0;

  bool ok() const noexcept { return error.empty(); }
  bool accounting_exact() const noexcept {
    return jobs_in == completed + failed + stranded;
  }
};

/// FNV-1a over the log lines (each line hashed with a trailing '\n'); the
/// hash two runs must agree on bit-for-bit.
std::uint64_t hash_event_log(const std::vector<std::string>& log);

class FleetSimulator {
 public:
  /// `service` outlives the simulator; its cache carries across runs only
  /// if the caller reuses the service (the bench gives each policy a fresh
  /// one so hit-rates are comparable).
  FleetSimulator(const FleetTrace& trace, const FleetOptions& options,
                 serve::PlanService& service);

  /// Run to event-queue exhaustion. Never throws for trace-level problems
  /// (they land in FleetResult::error); contract violations still throw.
  FleetResult run();

 private:
  const FleetTrace& trace_;
  FleetOptions options_;
  serve::PlanService& service_;
};

/// Convenience: validate, build a PlanService from `service_options`, run.
FleetResult run_fleet(const FleetTrace& trace, const FleetOptions& options,
                      const serve::ServiceOptions& service_options = {});

/// Full JSON report (kFleetReportSchema) — the `madpipe fleet --json` body.
std::string fleet_result_to_json(const FleetResult& result,
                                 bool include_event_log);

/// Human-readable summary table + headline numbers.
std::string fleet_result_report(const FleetResult& result);

}  // namespace madpipe::fleet
