#include "fleet/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string_view>

#include "models/zoo.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace madpipe::fleet {

namespace {

bool known_network(const std::string& name) {
  const std::vector<std::string> names = models::list_networks();
  return std::find(names.begin(), names.end(), name) != names.end();
}

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

/// Strict-object helper: every member must be consumed by `allowed`.
std::string reject_unknown_keys(const json::Value& object,
                                std::initializer_list<std::string_view> allowed,
                                const std::string& where) {
  for (const auto& [key, value] : object.members()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      return "unknown key \"" + key + "\" in " + where;
    }
  }
  return {};
}

/// Optional-field reads that are strict about TYPE: an absent key keeps
/// the default, a present-but-mistyped value is an error (the lax
/// number_or/string_or accessors would silently swallow it — exactly the
/// kind of typo a strict trace parser exists to catch).
std::string read_number(const json::Value& object, const char* key,
                        const std::string& where, double* out) {
  const json::Value* v = object.find(key);
  if (v == nullptr) return {};
  if (!v->is_number()) {
    return where + ": \"" + key + "\" must be a number";
  }
  *out = v->as_number();
  return {};
}

std::string read_string(const json::Value& object, const char* key,
                        const std::string& where, std::string* out) {
  const json::Value* v = object.find(key);
  if (v == nullptr) return {};
  if (!v->is_string()) {
    return where + ": \"" + key + "\" must be a string";
  }
  *out = v->as_string();
  return {};
}

std::string parse_profile(const json::Value& value, ProfileConfig* out) {
  if (!value.is_object()) return "\"profile\" must be an object";
  if (std::string err = reject_unknown_keys(
          value, {"image_size", "batch", "chain_length"}, "profile");
      !err.empty()) {
    return err;
  }
  double image_size = out->image_size;
  double batch = out->batch;
  double chain_length = out->chain_length;
  for (std::string err :
       {read_number(value, "image_size", "profile", &image_size),
        read_number(value, "batch", "profile", &batch),
        read_number(value, "chain_length", "profile", &chain_length)}) {
    if (!err.empty()) return err;
  }
  out->image_size = static_cast<int>(image_size);
  out->batch = static_cast<int>(batch);
  out->chain_length = static_cast<int>(chain_length);
  return {};
}

std::string parse_job(const json::Value& value, std::size_t index,
                      JobSpec* out) {
  const std::string where = "jobs[" + std::to_string(index) + "]";
  if (!value.is_object()) return where + " must be an object";
  if (std::string err = reject_unknown_keys(
          value,
          {"id", "arrival_s", "network", "gpus", "min_gpus", "batches",
           "deadline_s", "plan_deadline_ms"},
          where);
      !err.empty()) {
    return err;
  }
  const json::Value* id = value.find("id");
  if (id == nullptr || !id->is_string()) {
    return where + " needs a string \"id\"";
  }
  out->id = id->as_string();
  double arrival_s = 0.0;
  double gpus = out->gpus;
  double batches = static_cast<double>(out->batches);
  double deadline_s = 0.0;
  double plan_deadline_ms = 0.0;
  for (std::string err :
       {read_number(value, "arrival_s", where, &arrival_s),
        read_string(value, "network", where, &out->network),
        read_number(value, "gpus", where, &gpus),
        read_number(value, "batches", where, &batches),
        read_number(value, "deadline_s", where, &deadline_s),
        read_number(value, "plan_deadline_ms", where, &plan_deadline_ms)}) {
    if (!err.empty()) return err;
  }
  out->gpus = static_cast<int>(gpus);
  double min_gpus = out->gpus;  // default: not elastic below the request
  if (std::string err = read_number(value, "min_gpus", where, &min_gpus);
      !err.empty()) {
    return err;
  }
  out->arrival_s = arrival_s;
  out->min_gpus = static_cast<int>(min_gpus);
  out->batches = static_cast<long long>(batches);
  out->deadline_s = deadline_s;
  out->plan_deadline_ms = plan_deadline_ms;
  return {};
}

std::string parse_pool_event(const json::Value& value, std::size_t index,
                             PoolEvent* out) {
  const std::string where =
      "pool_events[" + std::to_string(index) + "]";
  if (!value.is_object()) return where + " must be an object";
  if (std::string err =
          reject_unknown_keys(value, {"time_s", "gpus"}, where);
      !err.empty()) {
    return err;
  }
  const json::Value* time = value.find("time_s");
  const json::Value* gpus = value.find("gpus");
  if (time == nullptr || !time->is_number() || gpus == nullptr ||
      !gpus->is_number()) {
    return where + " needs numbers \"time_s\" and \"gpus\"";
  }
  out->time_s = time->as_number();
  out->gpus = static_cast<int>(gpus->as_number());
  return {};
}

}  // namespace

std::string fleet_trace_validate(const FleetTrace& trace) {
  if (trace.pool_gpus < 1) return "pool_gpus must be >= 1";
  if (!(trace.memory_gb > 0.0) || !std::isfinite(trace.memory_gb)) {
    return "memory_gb must be positive";
  }
  if (!(trace.bandwidth_gbs > 0.0) || !std::isfinite(trace.bandwidth_gbs)) {
    return "bandwidth_gbs must be positive";
  }
  if (trace.profile.image_size < 1 || trace.profile.batch < 1 ||
      trace.profile.chain_length < 0) {
    return "profile settings out of range";
  }
  if (trace.jobs.empty()) return "trace has no jobs";
  std::set<std::string> ids;
  double previous_arrival = 0.0;
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    const JobSpec& job = trace.jobs[i];
    const std::string where = "jobs[" + std::to_string(i) + "]";
    if (job.id.empty()) return where + ": empty id";
    if (!ids.insert(job.id).second) {
      return where + ": duplicate id \"" + job.id + "\"";
    }
    if (!known_network(job.network)) {
      return where + ": unknown network \"" + job.network + "\"";
    }
    if (!finite_nonneg(job.arrival_s)) {
      return where + ": arrival_s must be finite and >= 0";
    }
    if (job.arrival_s < previous_arrival) {
      return where + ": jobs must be sorted by arrival_s";
    }
    previous_arrival = job.arrival_s;
    if (job.min_gpus < 1 || job.gpus < job.min_gpus) {
      return where + ": need 1 <= min_gpus <= gpus";
    }
    if (job.batches < 1) return where + ": batches must be >= 1";
    if (!finite_nonneg(job.deadline_s)) {
      return where + ": deadline_s must be finite and >= 0";
    }
    if (!finite_nonneg(job.plan_deadline_ms)) {
      return where + ": plan_deadline_ms must be finite and >= 0";
    }
  }
  double previous_time = 0.0;
  for (std::size_t i = 0; i < trace.pool_events.size(); ++i) {
    const PoolEvent& event = trace.pool_events[i];
    const std::string where = "pool_events[" + std::to_string(i) + "]";
    if (!finite_nonneg(event.time_s)) {
      return where + ": time_s must be finite and >= 0";
    }
    if (event.time_s < previous_time) {
      return where + ": pool_events must be sorted by time_s";
    }
    previous_time = event.time_s;
    if (event.gpus < 1) return where + ": gpus must be >= 1";
  }
  // Every job must be placeable at the FINAL capacity, or the simulation
  // strands it forever — reject the trace up front rather than deadlock.
  int final_gpus = trace.pool_gpus;
  if (!trace.pool_events.empty()) final_gpus = trace.pool_events.back().gpus;
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    if (trace.jobs[i].min_gpus > final_gpus) {
      return "jobs[" + std::to_string(i) + "]: min_gpus " +
             std::to_string(trace.jobs[i].min_gpus) +
             " exceeds final pool capacity " + std::to_string(final_gpus);
    }
  }
  return {};
}

bool fleet_trace_has_plan_deadlines(const FleetTrace& trace) {
  for (const JobSpec& job : trace.jobs) {
    if (job.plan_deadline_ms > 0.0) return true;
  }
  return false;
}

FleetTraceParse fleet_trace_from_json(const std::string& text) {
  FleetTraceParse result;
  const json::ParseResult parsed = json::parse(text);
  if (!parsed.ok()) {
    result.error = "invalid JSON: " + parsed.error;
    return result;
  }
  const json::Value& root = parsed.value;
  if (!root.is_object()) {
    result.error = "trace document must be a JSON object";
    return result;
  }
  if (std::string err = reject_unknown_keys(
          root,
          {"schema", "pool_gpus", "memory_gb", "bandwidth_gbs", "profile",
           "jobs", "pool_events"},
          "trace");
      !err.empty()) {
    result.error = err;
    return result;
  }
  const std::string schema = root.string_or("schema", "");
  if (schema != kFleetTraceSchema) {
    result.error = std::string("schema must be \"") + kFleetTraceSchema +
                   "\" (got \"" + schema + "\")";
    return result;
  }
  FleetTrace& trace = result.trace;
  double pool_gpus = trace.pool_gpus;
  for (std::string err :
       {read_number(root, "pool_gpus", "trace", &pool_gpus),
        read_number(root, "memory_gb", "trace", &trace.memory_gb),
        read_number(root, "bandwidth_gbs", "trace", &trace.bandwidth_gbs)}) {
    if (!err.empty()) {
      result.error = err;
      return result;
    }
  }
  trace.pool_gpus = static_cast<int>(pool_gpus);
  if (const json::Value* profile = root.find("profile")) {
    if (std::string err = parse_profile(*profile, &trace.profile);
        !err.empty()) {
      result.error = err;
      return result;
    }
  }
  const json::Value* jobs = root.find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    result.error = "trace needs a \"jobs\" array";
    return result;
  }
  for (std::size_t i = 0; i < jobs->items().size(); ++i) {
    JobSpec job;
    if (std::string err = parse_job(jobs->items()[i], i, &job); !err.empty()) {
      result.error = err;
      return result;
    }
    trace.jobs.push_back(std::move(job));
  }
  if (const json::Value* events = root.find("pool_events")) {
    if (!events->is_array()) {
      result.error = "\"pool_events\" must be an array";
      return result;
    }
    for (std::size_t i = 0; i < events->items().size(); ++i) {
      PoolEvent event;
      if (std::string err = parse_pool_event(events->items()[i], i, &event);
          !err.empty()) {
        result.error = err;
        return result;
      }
      trace.pool_events.push_back(event);
    }
  }
  result.error = fleet_trace_validate(trace);
  return result;
}

std::string fleet_trace_to_json(const FleetTrace& trace) {
  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value(kFleetTraceSchema);
  w.key("pool_gpus");
  w.value(trace.pool_gpus);
  w.key("memory_gb");
  w.value(trace.memory_gb);
  w.key("bandwidth_gbs");
  w.value(trace.bandwidth_gbs);
  w.key("profile");
  w.begin_object();
  w.key("image_size");
  w.value(trace.profile.image_size);
  w.key("batch");
  w.value(trace.profile.batch);
  w.key("chain_length");
  w.value(trace.profile.chain_length);
  w.end_object();
  w.key("jobs");
  w.begin_array();
  for (const JobSpec& job : trace.jobs) {
    w.begin_object();
    w.key("id");
    w.value(job.id);
    w.key("arrival_s");
    w.value(job.arrival_s);
    w.key("network");
    w.value(job.network);
    w.key("gpus");
    w.value(job.gpus);
    w.key("min_gpus");
    w.value(job.min_gpus);
    w.key("batches");
    w.value(job.batches);
    if (job.deadline_s > 0.0) {
      w.key("deadline_s");
      w.value(job.deadline_s);
    }
    if (job.plan_deadline_ms > 0.0) {
      w.key("plan_deadline_ms");
      w.value(job.plan_deadline_ms);
    }
    w.end_object();
  }
  w.end_array();
  w.key("pool_events");
  w.begin_array();
  for (const PoolEvent& event : trace.pool_events) {
    w.begin_object();
    w.key("time_s");
    w.value(event.time_s);
    w.key("gpus");
    w.value(event.gpus);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

FleetTrace synthesize_fleet_trace(const SyntheticTraceConfig& config) {
  util::Rng rng(config.seed);
  FleetTrace trace;
  trace.pool_gpus = std::max(1, config.pool_gpus);
  trace.memory_gb = config.memory_gb;
  trace.bandwidth_gbs = config.bandwidth_gbs;
  trace.profile = config.profile;

  const std::vector<std::string>& networks =
      config.networks.empty() ? std::vector<std::string>{"resnet50"}
                              : config.networks;
  double arrival = 0.0;
  double last_arrival = 0.0;
  for (int i = 0; i < std::max(1, config.jobs); ++i) {
    JobSpec job;
    char id_buf[24];
    std::snprintf(id_buf, sizeof id_buf, "job-%03d", i);
    job.id = id_buf;
    if (i > 0) arrival += rng.exponential(config.arrival_mean_gap_s);
    job.arrival_s = arrival;
    last_arrival = arrival;
    job.network = networks[rng.below(networks.size())];
    // Widths biased toward small-and-elastic: the pool can pack several
    // jobs, policies get real choices, and shrink-to-fit actually happens.
    job.gpus = static_cast<int>(
        rng.range(2, std::max(2, trace.pool_gpus / 2 + 1)));
    job.min_gpus = static_cast<int>(rng.range(1, job.gpus));
    job.batches = rng.range(config.min_batches,
                            std::max(config.min_batches, config.max_batches));
    if (rng.chance(config.deadline_fraction)) {
      // Job runtimes land in tens-to-hundreds of simulated seconds (batches
      // x period plus queueing), so this range makes some deadlines
      // satisfiable and some not — EDF gets real choices either way.
      job.deadline_s = job.arrival_s + rng.uniform(60.0, 400.0);
    }
    trace.jobs.push_back(std::move(job));
  }

  // Shrink/restore cycles spread over the arrival span force preemption
  // and replanning; the final event always restores full capacity so the
  // trace validates (every min_gpus fits at the end).
  const int shrink_to = std::max(1, trace.pool_gpus / 2);
  const double span = std::max(last_arrival, 1.0);
  double t = 0.0;
  for (int cycle = 0; cycle < config.resize_cycles; ++cycle) {
    t += rng.uniform(0.2 * span, 0.6 * span);
    trace.pool_events.push_back({t, shrink_to});
    t += rng.uniform(0.1 * span, 0.4 * span);
    trace.pool_events.push_back({t, trace.pool_gpus});
  }

  return trace;
}

}  // namespace madpipe::fleet
