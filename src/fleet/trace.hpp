// Fleet traces: the workload a fleet simulation runs.
//
// A trace is (a) a shared profile configuration — every job's network is
// built from the model zoo at one image/batch/chain-length setting, so a
// (network, gpus) pair maps to exactly one canonical plan-cache key —
// (b) an elastic GPU pool with optional resize events, and (c) a list of
// training jobs, each naming a zoo network, a requested GPU count (with an
// elastic minimum the placement policies may shrink to under pressure),
// a batch budget that determines its runtime via the plan's period, and
// optional deadlines.
//
// Two deadline fields exist because two different clocks do:
//   * `deadline_s` is SIMULATED time — the job wants to be done by then;
//     only the deadline-aware (EDF) policy reads it, as a priority.
//   * `plan_deadline_ms` is WALL-CLOCK planning budget, forwarded to
//     PlanService so a tight value exercises the deadline→DP-state-budget
//     degradation valve. Because the valve reacts to real elapsed time, a
//     nonzero value makes the event log run-dependent — seeded traces used
//     for bit-identity checks keep it 0 (fleet_trace_validate warns).
//
// Traces come from a JSON file (`madpipe-fleet-trace-v1`, documented in
// docs/BENCH_SCHEMAS.md) or from synthesize_fleet_trace: a util::Rng
// (splitmix64) seeded generator, so `--seed S` reproduces the same
// workload bit for bit on every host.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace madpipe::fleet {

inline constexpr const char* kFleetTraceSchema = "madpipe-fleet-trace-v1";

/// Zoo profile settings shared by every job in a trace.
struct ProfileConfig {
  int image_size = 1000;
  int batch = 8;
  int chain_length = 8;
};

struct JobSpec {
  std::string id;
  double arrival_s = 0.0;
  std::string network = "resnet50";  ///< a models::list_networks() name
  int gpus = 4;                       ///< requested placement width
  int min_gpus = 4;                   ///< elastic floor (<= gpus)
  long long batches = 256;            ///< training budget; runtime = batches x period
  double deadline_s = 0.0;            ///< simulated completion deadline; 0 = none
  double plan_deadline_ms = 0.0;      ///< wall planning budget (degradation valve)
};

struct PoolEvent {
  double time_s = 0.0;
  int gpus = 0;  ///< new absolute pool capacity
};

struct FleetTrace {
  int pool_gpus = 8;          ///< initial pool capacity
  double memory_gb = 8.0;     ///< per-GPU memory M
  double bandwidth_gbs = 12.0;///< link bandwidth beta
  ProfileConfig profile;
  std::vector<JobSpec> jobs;        ///< sorted by (arrival_s, input order)
  std::vector<PoolEvent> pool_events;  ///< sorted by time_s
};

/// Structural validation shared by the JSON loader and the simulator:
/// returns the first problem as a message, empty when the trace is sane
/// (ids unique and non-empty, networks known, 1 <= min_gpus <= gpus,
/// batches >= 1, times finite and non-negative, capacities >= 1).
std::string fleet_trace_validate(const FleetTrace& trace);

/// True when any job carries a wall-clock planning deadline — the one
/// field that makes event logs run-dependent (see header comment).
bool fleet_trace_has_plan_deadlines(const FleetTrace& trace);

struct FleetTraceParse {
  FleetTrace trace;
  std::string error;  ///< empty on success

  bool ok() const noexcept { return error.empty(); }
};

/// Parse a madpipe-fleet-trace-v1 document. Strict like the serve
/// protocol: unknown keys, wrong types and schema mismatches are errors.
FleetTraceParse fleet_trace_from_json(const std::string& text);

/// Serialize (the canonical way to commit an example trace).
std::string fleet_trace_to_json(const FleetTrace& trace);

/// Knobs of the synthetic generator. Defaults make a pool under real
/// pressure: bursts deeper than the pool, elastic widths, and a mid-trace
/// shrink/restore cycle that forces preemption + replanning.
struct SyntheticTraceConfig {
  std::uint64_t seed = 42;
  int jobs = 24;
  int pool_gpus = 8;
  double memory_gb = 8.0;
  double bandwidth_gbs = 12.0;
  ProfileConfig profile;
  std::vector<std::string> networks = {"resnet50", "resnet101"};
  double arrival_mean_gap_s = 0.4;  ///< exponential inter-arrival mean
  long long min_batches = 64;
  long long max_batches = 512;
  double deadline_fraction = 0.5;   ///< jobs given a simulated deadline
  int resize_cycles = 1;            ///< shrink-to-half + restore pairs
};

/// Deterministic function of the config (all randomness from util::Rng
/// seeded with config.seed). The result always validates, never carries
/// plan deadlines, and ends with the pool restored to full capacity so
/// every job can eventually be placed.
FleetTrace synthesize_fleet_trace(const SyntheticTraceConfig& config);

}  // namespace madpipe::fleet
