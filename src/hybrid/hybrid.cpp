#include "hybrid/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "util/expect.hpp"
#include "util/format.hpp"

namespace madpipe::hybrid {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

std::vector<int> replication_factors(int max, bool power_of_two) {
  std::vector<int> factors;
  if (power_of_two) {
    for (int r = 1; r <= max; r *= 2) factors.push_back(r);
  } else {
    for (int r = 1; r <= max; ++r) factors.push_back(r);
  }
  return factors;
}

/// Per-replica memory of stage k..l replicated r ways with g in-flight
/// batches: full parameter replica, sharded activations/buffers/scratch.
Bytes replica_memory(const Chain& chain, int k, int l, int r, int g) {
  Bytes buffers = 0.0;
  if (k > 1) buffers += 2.0 * chain.activation(k - 1);
  if (l < chain.length()) buffers += 2.0 * chain.activation(l);
  return 3.0 * chain.weight_sum(k, l) +
         (static_cast<double>(g) * chain.stored_activation_sum(k, l) +
          chain.scratch_sum(k, l) + buffers) /
             r;
}

struct MemoEntry {
  double value = kInfinity;
  std::int16_t stage_start = -1;
  std::int16_t replication = 0;
};

class HybridSolver {
 public:
  HybridSolver(const Chain& chain, const Platform& platform,
               const HybridOptions& options)
      : chain_(chain), platform_(platform), options_(options) {}

  std::optional<HybridPlan> run() {
    const double root = solve(chain_.length(), platform_.processors, 0, 0);
    if (!std::isfinite(root)) return std::nullopt;

    HybridPlan plan;
    plan.period = root;
    int l = chain_.length();
    int p = platform_.processors;
    int r_next = 0;
    int depth = 0;
    while (l > 0) {
      const auto it = memo_.find(key(l, p, r_next, depth));
      MP_ENSURE(it != memo_.end() && it->second.stage_start >= 1,
                "hybrid reconstruction fell off the memoized path");
      const int k = it->second.stage_start;
      const int r = it->second.replication;
      HybridStage stage;
      stage.layers = Stage{k, l};
      stage.replication = r;
      stage.effective_load = effective_load(k, l, r);
      stage.replica_memory =
          replica_memory(chain_, k, l, r, in_flight(depth));
      plan.stages.push_back(stage);
      plan.gpus_used += r;
      p -= r;
      r_next = r;
      depth = std::min(depth + 1, options_.max_stages);
      l = k - 1;
    }
    std::reverse(plan.stages.begin(), plan.stages.end());
    return plan;
  }

 private:
  static std::uint64_t key(int l, int p, int r_next, int depth) {
    return (static_cast<std::uint64_t>(l) << 24) |
           (static_cast<std::uint64_t>(p) << 16) |
           (static_cast<std::uint64_t>(r_next) << 8) |
           static_cast<std::uint64_t>(depth);
  }

  int in_flight(int depth) const {
    return std::min(depth + 1, options_.max_stages);
  }

  Seconds effective_load(int k, int l, int r) const {
    return chain_.compute_load(k, l) / r +
           allreduce_time(chain_.weight_sum(k, l), r, platform_.bandwidth);
  }

  /// Best achievable bottleneck for layers 1..l with p GPUs left, given the
  /// stage to the right replicates r_next ways (0: none) and sits `depth`
  /// stages from the pipeline end.
  double solve(int l, int p, int r_next, int depth) {
    if (l == 0) return 0.0;
    if (p <= 0) return kInfinity;
    const std::uint64_t k0 = key(l, p, r_next, depth);
    if (const auto it = memo_.find(k0); it != memo_.end()) {
      return it->second.value;
    }
    memo_.emplace(k0, MemoEntry{});

    MemoEntry best;
    const int g = in_flight(depth);
    for (const int r : replication_factors(p, options_.power_of_two_replication)) {
      for (int k = l; k >= 1; --k) {
        if (replica_memory(chain_, k, l, r, g) >
            platform_.memory_per_processor) {
          continue;
        }
        Seconds comm_out = 0.0;
        if (r_next > 0) {
          comm_out =
              2.0 * sharded_transfer_time(chain_.activation(l), r, r_next,
                                          platform_.bandwidth);
        }
        const double sub =
            solve(k - 1, p - r, r, std::min(depth + 1, options_.max_stages));
        const double value =
            std::max({effective_load(k, l, r), comm_out, sub});
        if (value < best.value) {
          best = MemoEntry{value, static_cast<std::int16_t>(k),
                           static_cast<std::int16_t>(r)};
        }
      }
    }
    memo_[k0] = best;
    return best.value;
  }

  const Chain& chain_;
  const Platform& platform_;
  HybridOptions options_;
  std::unordered_map<std::uint64_t, MemoEntry> memo_;
};

}  // namespace

Seconds allreduce_time(Bytes bytes, int replicas, double bandwidth) {
  MP_EXPECT(replicas >= 1, "need at least one replica");
  MP_EXPECT(bytes >= 0.0 && bandwidth > 0.0, "invalid AllReduce parameters");
  if (replicas == 1) return 0.0;
  return 2.0 * (replicas - 1) / static_cast<double>(replicas) * bytes /
         bandwidth;
}

Seconds sharded_transfer_time(Bytes bytes, int senders, int receivers,
                              double bandwidth) {
  MP_EXPECT(senders >= 1 && receivers >= 1, "need positive endpoint counts");
  return bytes / (bandwidth * std::min(senders, receivers));
}

std::optional<HybridPlan> plan_hybrid(const Chain& chain,
                                      const Platform& platform,
                                      const HybridOptions& options) {
  platform.validate();
  MP_EXPECT(options.max_stages >= 1, "max_stages must be positive");
  HybridSolver solver(chain, platform, options);
  return solver.run();
}

std::optional<HybridPlan> plan_data_parallel(const Chain& chain,
                                             const Platform& platform) {
  platform.validate();
  const int P = platform.processors;
  const int L = chain.length();
  if (replica_memory(chain, 1, L, P, 1) > platform.memory_per_processor) {
    return std::nullopt;
  }
  HybridPlan plan;
  HybridStage stage;
  stage.layers = Stage{1, L};
  stage.replication = P;
  stage.effective_load =
      chain.total_compute() / P +
      allreduce_time(chain.weight_sum(1, L), P, platform.bandwidth);
  stage.replica_memory = replica_memory(chain, 1, L, P, 1);
  plan.period = stage.effective_load;
  plan.gpus_used = P;
  plan.stages.push_back(stage);
  return plan;
}

std::string hybrid_plan_to_string(const HybridPlan& plan, const Chain& chain) {
  std::ostringstream os;
  os << "hybrid plan: period " << fmt::seconds(plan.period) << ", speedup "
     << fmt::fixed(plan.speedup(chain), 2) << "x, " << plan.gpus_used
     << " GPUs\n";
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    const HybridStage& stage = plan.stages[s];
    os << "  stage " << s << ": layers [" << stage.layers.first << ", "
       << stage.layers.last << "] x" << stage.replication << " replicas, "
       << fmt::seconds(stage.effective_load) << "/batch, "
       << fmt::bytes(stage.replica_memory) << "/replica\n";
  }
  return os.str();
}

}  // namespace madpipe::hybrid
