// Hybrid data + pipelined-model parallelism — the combination the paper's
// introduction sketches and its conclusion names as the natural extension:
// partition the chain into contiguous stages and replicate each stage s over
// r_s GPUs with data parallelism inside the stage, so that G ≈ P/r smaller
// collective communications replace one huge AllReduce (§1 of the paper).
//
// Planning model (analytic, DAPPLE/PipeDream-planner style):
//   * each mini-batch is sharded across a stage's replicas: per-batch stage
//     compute = U(s)/r_s;
//   * gradient synchronization per batch: ring AllReduce over r replicas of
//     the stage's W_s gradient bytes, 2·(r−1)/r · W_s/β;
//   * boundary activations are redistributed shard-wise: one direction costs
//     a/(β·min(r_s, r_{s+1}));
//   * per-replica memory: 3·W_s (full parameter replica) + g·ā_s/r_s
//     in-flight activation shards + sharded communication buffers, with g
//     estimated as the stage's distance from the end of the pipeline (the
//     1F1B in-flight depth, as in the PipeDream baseline).
//
// The planner is a memoized suffix DP over (first layer, GPUs left,
// replication of the current stage, distance from the end), with
// power-of-two replication factors by default. Its output is an analytic
// plan (stages + replication + period); replicated steady states are beyond
// the periodic-pattern engine, which models one op per resource per period.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/platform.hpp"
#include "core/types.hpp"

namespace madpipe::hybrid {

struct HybridOptions {
  /// Cap on the pipeline depth considered for the in-flight estimate.
  int max_stages = 10;
  /// Restrict replication factors to powers of two (common practice; keeps
  /// the search space small). When false any factor is allowed.
  bool power_of_two_replication = true;
};

struct HybridStage {
  Stage layers;
  int replication = 1;
  /// Per-batch effective load: U/r + gradient AllReduce.
  Seconds effective_load = 0.0;
  /// Estimated per-replica memory at the planner's in-flight depth.
  Bytes replica_memory = 0.0;
};

struct HybridPlan {
  std::vector<HybridStage> stages;
  Seconds period = 0.0;  ///< analytic steady-state seconds per mini-batch
  int gpus_used = 0;

  double throughput() const { return 1.0 / period; }
  double speedup(const Chain& chain) const {
    return chain.total_compute() / period;
  }
};

/// Ring-AllReduce time for `bytes` of gradients over `replicas` links of
/// bandwidth `bandwidth`: 2·(r−1)/r · bytes/β. Zero for a single replica.
Seconds allreduce_time(Bytes bytes, int replicas, double bandwidth);

/// Shard-wise boundary transfer time (one direction).
Seconds sharded_transfer_time(Bytes bytes, int senders, int receivers,
                              double bandwidth);

/// Plan hybrid data+model parallelism. Returns nullopt when no assignment
/// fits the memory model.
std::optional<HybridPlan> plan_hybrid(const Chain& chain,
                                      const Platform& platform,
                                      const HybridOptions& options = {});

/// Pure data parallelism (one stage replicated over all P GPUs): the
/// classical baseline the paper argues against at scale.
std::optional<HybridPlan> plan_data_parallel(const Chain& chain,
                                             const Platform& platform);

/// Human-readable description of a hybrid plan.
std::string hybrid_plan_to_string(const HybridPlan& plan, const Chain& chain);

}  // namespace madpipe::hybrid
