#include "madpipe/discretization.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace madpipe {

Grid::Grid(double max_value, int points)
    : max_value_(max_value), points_(points) {
  MP_EXPECT(points_ >= 2, "a grid needs at least two points");
  MP_EXPECT(max_value_ > 0.0, "grid range must be positive");
  step_ = max_value_ / static_cast<double>(points_ - 1);
}

double Grid::value(int index) const {
  index = std::clamp(index, 0, points_ - 1);
  return static_cast<double>(index) * step_;
}

int Grid::index(double v, RoundingMode mode) const {
  MP_EXPECT(v >= -kTimeEps * max_value_, "grid values must be non-negative");
  double raw = v / step_;
  switch (mode) {
    case RoundingMode::Nearest:
      raw = std::round(raw);
      break;
    case RoundingMode::Up:
      // Snap tiny numeric overshoots down before taking the ceiling.
      raw = std::ceil(raw - kTimeEps);
      break;
  }
  return std::clamp(static_cast<int>(raw), 0, points_ - 1);
}

}  // namespace madpipe
