// Discretization grids for the continuous state variables of MadPipe-DP
// (§5.1 of the paper): t_P (special-processor load), m_P (special-processor
// memory) and V (forward/backward delay). The paper uses 101 / 11 / 51
// equally-spaced points respectively; the granularity is configurable and
// its effect is quantified by the ablation benchmark.
#pragma once

#include "core/types.hpp"

namespace madpipe {

enum class RoundingMode {
  Nearest,  ///< highest fidelity (paper behaviour, default)
  Up,       ///< conservative: never underestimate load/memory/delay
};

/// Uniform grid over [0, max_value] with `points` samples.
class Grid {
 public:
  Grid(double max_value, int points);

  int points() const noexcept { return points_; }
  double max_value() const noexcept { return max_value_; }

  /// Grid value of index i (clamped to the grid).
  double value(int index) const;

  /// Index of `v` under the rounding mode; values beyond max clamp to the
  /// top index (callers must treat the top as "at least this much").
  int index(double v, RoundingMode mode = RoundingMode::Nearest) const;

  /// Round `v` onto the grid.
  double snap(double v, RoundingMode mode = RoundingMode::Nearest) const {
    return value(index(v, mode));
  }

 private:
  double max_value_;
  double step_;
  int points_;
};

/// The three DP grids.
struct Discretization {
  int load_points = 101;    ///< t_P grid over [0, U(1,L)]
  int memory_points = 11;   ///< m_P grid over [0, M]
  int delay_points = 51;    ///< V grid over [0, U(1,L) + Σ C]
  RoundingMode rounding = RoundingMode::Nearest;

  /// A coarser grid preset that keeps full-sweep benchmarks fast.
  static Discretization coarse() {
    return Discretization{41, 9, 21, RoundingMode::Nearest};
  }
  /// The paper's granularity.
  static Discretization paper() { return Discretization{}; }
};

}  // namespace madpipe
