// Two engines evaluate the MadPipe-DP recurrence (see dp.hpp for the
// dispatch contract):
//
//  * FlatDpSolver — the fast path. An explicit work-stack replaces the deep
//    recursion (L can be 4095), the memo is a flat open-addressing table
//    with 16-byte entries probed at most twice per state (placeholder
//    insert + final update), and everything a transition determines that
//    depends only on (k, l, delay_idx) — stage/link loads, the advanced
//    delay, g(k,l,V) and both memory footprints — is computed once per
//    distinct triple in a transition cache shared with reconstruction.
//    Dominated candidates (whose load/link floor already reaches the best
//    value, which the strict-improvement rule can never accept) are pruned
//    before recursing; this changes which states are memoized but provably
//    not the achieved period or allocation.
//
//  * WavefrontDpSolver — the parallel path (DESIGN.md §11). States are
//    grouped into per-layer structure-of-arrays slabs; every transition
//    strictly decreases l, so a layer's slab is complete before any lower
//    layer is expanded, and each wavefront can be expanded by concurrent
//    shards whose per-target-layer emission buffers are merged
//    deterministically at the barrier. Periods and allocations are
//    bit-identical to both other engines and across shard counts.
//
//  * ReferenceDpSolver — the original recursive, unordered_map-memoized
//    implementation, kept verbatim as the semantic reference for the
//    golden-equivalence tests.
#include "madpipe/dp.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/memory_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/flat_hash.hpp"
#include "util/logging.hpp"
#include "util/threading.hpp"

namespace madpipe {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Packed DP state: l at 12 bits, p at 7, grid indices at 10 each (49 bits
/// total). Budgets: l ≤ 4095, p ≤ 64, grid indices ≤ 1023 each — sized for
/// LLM-scale chains (thousands of linearized transformer layers, P up to 64).
/// p needs the full 7 bits: with the special stage disabled the root state
/// carries p = P itself, not P - 1.
std::uint64_t pack_state(int l, int p, int load_idx, int mem_idx,
                         int delay_idx) {
  return (static_cast<std::uint64_t>(l) << 37) |
         (static_cast<std::uint64_t>(p) << 30) |
         (static_cast<std::uint64_t>(load_idx) << 20) |
         (static_cast<std::uint64_t>(mem_idx) << 10) |
         static_cast<std::uint64_t>(delay_idx);
}

/// Packed transition-cache key: k and l at 12 bits, delay_idx at 10.
std::uint64_t pack_transition(int k, int l, int delay_idx) {
  return (static_cast<std::uint64_t>(k) << 22) |
         (static_cast<std::uint64_t>(l) << 10) |
         static_cast<std::uint64_t>(delay_idx);
}

/// Lower bound of 𝓜(k,l,g) over every g ≥ 0 and both placement options: the
/// always-resident weights + scratch term (activation and comm-buffer terms
/// are non-negative, and the special option only adds m_P ≥ 0 on top). The
/// bound grows monotonically as k falls, so once it exceeds M no smaller k
/// can be feasible and the candidate scans break there. Every skipped
/// candidate fails both options' memory checks in every engine, so the break
/// changes no memoized state, value, or reconstruction choice — it only
/// keeps the scans O(stage window) instead of O(L) on multi-GiB chains.
bool stage_static_memory_exceeds(const Chain& chain, int k, int l,
                                 Bytes limit) {
  return weights_memory(chain, k, l) + chain.scratch_sum(k, l) > limit;
}

/// Per-engine atomic once-guards for the state-budget warning. Engines run
/// concurrently (speculative bisection probes, serve workers), so a plain
/// per-instance bool would emit one warning per probe; the exchange below
/// elects exactly one emitter per engine kind. log::write assembles each
/// line before a single locked write, so the elected line cannot interleave.
std::atomic<bool> g_flat_budget_warned{false};
std::atomic<bool> g_wavefront_budget_warned{false};
std::atomic<bool> g_reference_budget_warned{false};
std::atomic<long long> g_budget_warnings_emitted{0};

void warn_state_budget_once(std::atomic<bool>& guard) {
  if (guard.exchange(true, std::memory_order_relaxed)) return;
  g_budget_warnings_emitted.fetch_add(1, std::memory_order_relaxed);
  log::warn("MadPipe-DP state budget exhausted; treating unexplored states "
            "as infeasible");
}

Seconds delay_upper_bound(const Chain& chain, const Platform& platform) {
  Seconds total = chain.total_compute();
  for (int j = 1; j < chain.length(); ++j) {
    total += platform.boundary_comm_time(chain, j);
  }
  return total;
}

/// Everything a transition taking stage k..l out of a state with delay
/// index delay_idx determines, independent of (p, load_idx, mem_idx).
struct TransitionEntry {
  Seconds stage_load = 0.0;
  Seconds link_load = 0.0;        ///< C(k−1), lower bound on the front link
  Bytes normal_memory = 0.0;      ///< 𝓜(k,l,g): the normal-processor cost
  Bytes special_stage_memory = 0.0;  ///< 𝓜(k,l,g−1): §4.2.1's underestimate
  int next_delay_idx = 0;
  int active_batches = 0;  ///< g(k,l,V)
};

/// The transition math, shared by every engine (and reconstruction) so the
/// bit-identity guarantees rest on literally the same float expressions.
TransitionEntry compute_transition(const Chain& chain, const Platform& platform,
                                   const Grid& delay_grid, Seconds target,
                                   const MadPipeDPOptions& options, int k,
                                   int l, int delay_idx) {
  TransitionEntry entry;
  entry.stage_load = chain.compute_load(k, l);
  entry.link_load = k > 1 ? platform.boundary_comm_time(chain, k - 1) : 0.0;
  const Seconds delay = delay_grid.value(delay_idx);
  Seconds comm_for_delay = 0.0;
  switch (options.delay_comm_variant) {
    case DelayCommVariant::BoundaryConsistent:
      comm_for_delay = entry.link_load;
      break;
    case DelayCommVariant::PaperLiteral:
      comm_for_delay = platform.boundary_comm_time(chain, k);
      break;
  }
  const Seconds next_delay = delay_advance(
      delay_advance(delay, entry.stage_load, target), comm_for_delay, target);
  entry.next_delay_idx = delay_grid.index(next_delay, options.grid.rounding);
  entry.active_batches = activation_count(chain, k, l, delay, target);
  entry.normal_memory = stage_memory(chain, k, l, entry.active_batches);
  entry.special_stage_memory =
      stage_memory(chain, k, l, entry.active_batches - 1);
  return entry;
}

// ---------------------------------------------------------------------------
// Fast path
// ---------------------------------------------------------------------------

class FlatDpSolver {
 public:
  FlatDpSolver(const Chain& chain, const Platform& platform, Seconds target,
               const MadPipeDPOptions& options)
      : chain_(chain),
        platform_(platform),
        target_(target),
        options_(options),
        load_grid_(chain.total_compute(), options.grid.load_points),
        memory_grid_(platform.memory_per_processor, options.grid.memory_points),
        delay_grid_(delay_upper_bound(chain, platform),
                    options.grid.delay_points),
        transitions_(transition_size_heuristic()) {
    // reserve() (not the sizing constructor) so the avoided growth rehashes
    // are counted into the stats below.
    memo_.reserve(memo_size_heuristic());
  }

  MadPipeDPResult run() {
    MadPipeDPResult result;
    const int root_p = root_processors();
    result.period = solve_root(chain_.length(), root_p);
    result.states_visited = memo_.size();
    result.state_budget_hit = budget_hit_;
    if (std::isfinite(result.period)) {
      reconstruct(result);
    }
    stats_.dp_probes = 1;
    stats_.dp_states = static_cast<long long>(memo_.size());
    stats_.memo_max_load_factor = memo_.load_factor();
    stats_.memo_rehashes = static_cast<long long>(memo_.rehashes());
    stats_.memo_rehashes_avoided =
        static_cast<long long>(memo_.rehashes_avoided());
    stats_.state_budget_hits = budget_hit_ ? 1 : 0;
    result.stats = stats_;
    return result;
  }

 private:
  /// One suspended evaluation of T(l, p, load, mem, delay). `k`/`opt` are
  /// the resume position in the candidate scan (opt 0 = normal option of k
  /// still to do, 1 = special option of k still to do).
  struct Frame {
    std::uint64_t key = 0;
    int l = 0, p = 0, load_idx = 0, mem_idx = 0, delay_idx = 0;
    int k = 0;
    std::uint8_t opt = 0;
    bool waiting = false;     ///< a child was pushed; consume last_value_
    double pending_floor = 0.0;  ///< max(load, link) of the suspended option
    double best = kInfinity;
  };

  int root_processors() const {
    return options_.allow_special ? platform_.processors - 1
                                  : platform_.processors;
  }

  std::size_t memo_size_heuristic() const {
    // Reachable states per layer scale with the delay grid and, when the
    // special processor may absorb stages, with a handful of distinct
    // (load, mem) pairs; sized so typical probes never grow the table
    // without over-reserving it (BENCH showed a ×8 factor left the table at
    // ~0.26 occupancy; ×4 lands near 0.5 with zero growth rehashes — the
    // memo_rehashes counter keeps this honest).
    const std::size_t per_layer =
        static_cast<std::size_t>(options_.grid.delay_points) *
        (options_.allow_special ? 4 : 1);
    const std::size_t guess = static_cast<std::size_t>(chain_.length()) *
                              static_cast<std::size_t>(std::max(
                                  root_processors(), 1)) *
                              per_layer;
    return std::min({guess, options_.max_states,
                     static_cast<std::size_t>(1) << 20});
  }

  std::size_t transition_size_heuristic() const {
    const std::size_t pairs = static_cast<std::size_t>(chain_.length()) *
                              static_cast<std::size_t>(chain_.length() + 1) /
                              2;
    return std::min(pairs * static_cast<std::size_t>(
                                options_.grid.delay_points),
                    static_cast<std::size_t>(1) << 17);
  }

  /// compute_transition, cached per distinct (k, l, delay_idx) triple.
  TransitionEntry transition(int k, int l, int delay_idx) {
    ++stats_.transition_lookups;
    const std::uint64_t key = pack_transition(k, l, delay_idx);
    if (const TransitionEntry* hit = transitions_.find(key)) {
      ++stats_.transition_hits;
      return *hit;
    }
    const TransitionEntry entry = compute_transition(
        chain_, platform_, delay_grid_, target_, options_, k, l, delay_idx);
    transitions_.emplace(key, entry);
    return entry;
  }

  double base_l0(int load_idx) const { return load_grid_.value(load_idx); }

  /// p == 0: all remaining layers become one stage on the special processor.
  double special_base(int l, int load_idx, int mem_idx, int delay_idx) const {
    if (!options_.allow_special) return kInfinity;
    const Seconds delay = delay_grid_.value(delay_idx);
    const int g = activation_count(chain_, 1, l, delay, target_);
    const Bytes memory = memory_grid_.value(mem_idx) +
                         stage_memory(chain_, 1, l, g - 1);
    if (memory > platform_.memory_per_processor) return kInfinity;
    return chain_.compute_load(1, l) + load_grid_.value(load_idx);
  }

  void note_budget() {
    if (budget_hit_) return;
    budget_hit_ = true;
    warn_state_budget_once(g_flat_budget_warned);
  }

  void push_frame(int l, int p, int load_idx, int mem_idx, int delay_idx) {
    Frame frame;
    frame.key = pack_state(l, p, load_idx, mem_idx, delay_idx);
    frame.l = l;
    frame.p = p;
    frame.load_idx = load_idx;
    frame.mem_idx = mem_idx;
    frame.delay_idx = delay_idx;
    frame.k = l;
    stack_.push_back(frame);
    ++stats_.dp_state_visits;
    // Reserve the state immediately (probe 1 of 2): keeps max_states
    // accounting aligned with the recursive reference, which counted
    // in-progress states. The placeholder is never read — a lookup can only
    // reach a state with strictly smaller l than every in-progress one.
    memo_.emplace(frame.key, kInfinity);
    ++stats_.memo_probes;
  }

  /// Value of (l, p, load, mem, delay) if immediately available; otherwise
  /// pushes a frame for it and returns nullopt — the value arrives in
  /// last_value_ once that frame finalizes.
  std::optional<double> child_value(int l, int p, int load_idx, int mem_idx,
                                    int delay_idx) {
    if (l == 0) return base_l0(load_idx);
    if (p == 0) return special_base(l, load_idx, mem_idx, delay_idx);
    ++stats_.memo_child_lookups;
    if (const double* value =
            memo_.find(pack_state(l, p, load_idx, mem_idx, delay_idx))) {
      ++stats_.memo_hits;
      return *value;
    }
    if (memo_.size() >= options_.max_states) {
      note_budget();
      return kInfinity;
    }
    push_frame(l, p, load_idx, mem_idx, delay_idx);
    return std::nullopt;
  }

  double solve_root(int l, int p) {
    if (l == 0) return base_l0(0);
    if (p == 0) return special_base(l, 0, 0, 0);
    if (memo_.size() >= options_.max_states) {
      note_budget();
      return kInfinity;
    }
    push_frame(l, p, 0, 0, 0);
    while (!stack_.empty()) step();
    return last_value_;
  }

  /// Run the top frame until it suspends on a child or finalizes.
  void step() {
    // Index, not reference: child_value can push a frame and reallocate the
    // stack, so suspension writes must re-acquire through `fi`.
    const std::size_t fi = stack_.size() - 1;
    Frame& f = stack_[fi];
    if (f.waiting) {
      f.waiting = false;
      const double value = std::max(f.pending_floor, last_value_);
      if (value < f.best) f.best = value;
    }
    const Bytes limit = platform_.memory_per_processor;
    while (f.k >= 1) {
      if (stage_static_memory_exceeds(chain_, f.k, f.l, limit)) break;
      const TransitionEntry e = transition(f.k, f.l, f.delay_idx);

      if (f.opt == 0) {
        // Option 1: stage k..l on a fresh normal processor.
        f.opt = 1;
        if (e.normal_memory <= limit) {
          const double floor = std::max(e.stage_load, e.link_load);
          if (floor < f.best) {  // dominated candidates can never win
            const auto sub = child_value(f.k - 1, f.p - 1, f.load_idx,
                                         f.mem_idx, e.next_delay_idx);
            if (!sub.has_value()) {
              stack_[fi].pending_floor = floor;
              stack_[fi].waiting = true;
              return;
            }
            const double value = std::max(floor, *sub);
            if (value < f.best) f.best = value;
          }
        }
      }

      // Option 2: stage k..l joins the special processor (memory counted
      // with g−1, the deliberate underestimate of §4.2.1).
      const int k = f.k;
      f.opt = 0;
      --f.k;
      if (!options_.allow_special) {
        // Only normal stages exist and U(k,l) grows as k falls: once it
        // reaches the incumbent nothing below can win.
        if (e.stage_load >= f.best) break;
        continue;
      }
      const Bytes special_memory =
          memory_grid_.value(f.mem_idx) + e.special_stage_memory;
      if (special_memory > limit) continue;
      const Seconds special_load =
          load_grid_.snap(load_grid_.value(f.load_idx) + e.stage_load,
                          options_.grid.rounding);
      const double floor = std::max(special_load, e.link_load);
      if (floor >= f.best) continue;
      const int next_load_idx =
          load_grid_.index(special_load, options_.grid.rounding);
      const int next_mem_idx = memory_grid_.index(
          std::min(special_memory, limit), options_.grid.rounding);
      const auto sub = child_value(k - 1, f.p, next_load_idx, next_mem_idx,
                                   e.next_delay_idx);
      if (!sub.has_value()) {
        stack_[fi].pending_floor = floor;
        stack_[fi].waiting = true;
        return;
      }
      const double value = std::max(floor, *sub);
      if (value < f.best) f.best = value;
    }

    // Candidate scan finished: final update (probe 2 of 2) and pop.
    const auto [slot, inserted] = memo_.emplace(f.key, f.best);
    if (!inserted) *slot = f.best;
    ++stats_.memo_probes;
    last_value_ = f.best;
    stack_.pop_back();
  }

  /// Memoized value during reconstruction; a miss means the state budget
  /// dropped the state, which the forward pass also saw as infeasible.
  double lookup_value(int l, int p, int load_idx, int mem_idx,
                      int delay_idx) {
    if (l == 0) return base_l0(load_idx);
    if (p == 0) return special_base(l, load_idx, mem_idx, delay_idx);
    ++stats_.memo_child_lookups;
    if (const double* value =
            memo_.find(pack_state(l, p, load_idx, mem_idx, delay_idx))) {
      ++stats_.memo_hits;
      return *value;
    }
    return kInfinity;
  }

  void reconstruct(MadPipeDPResult& result) {
    // Walk the winning choices from the root. The memo only stores values,
    // so each step re-derives the argmin with the same candidate order,
    // pruning and strict-improvement rule as the forward pass — every
    // lookup it needs is either memoized or a base case, and the transition
    // cache is shared, so this costs one candidate scan per stage.
    std::vector<Stage> stages_reversed;
    std::vector<bool> special_reversed;

    int l = chain_.length();
    int p = root_processors();
    int load_idx = 0;
    int mem_idx = 0;
    int delay_idx = 0;
    const Bytes limit = platform_.memory_per_processor;

    while (l > 0) {
      if (p == 0) {
        stages_reversed.push_back(Stage{1, l});
        special_reversed.push_back(true);
        break;
      }
      double best = kInfinity;
      int best_k = -1;
      bool best_special = false;
      int best_next_load = load_idx;
      int best_next_mem = mem_idx;
      int best_next_delay = delay_idx;
      for (int k = l; k >= 1; --k) {
        if (stage_static_memory_exceeds(chain_, k, l, limit)) break;
        const TransitionEntry e = transition(k, l, delay_idx);
        if (e.normal_memory <= limit) {
          const double floor = std::max(e.stage_load, e.link_load);
          if (floor < best) {
            const double sub =
                lookup_value(k - 1, p - 1, load_idx, mem_idx,
                             e.next_delay_idx);
            const double value = std::max(floor, sub);
            if (value < best) {
              best = value;
              best_k = k;
              best_special = false;
              best_next_delay = e.next_delay_idx;
            }
          }
        }
        if (!options_.allow_special) {
          if (e.stage_load >= best) break;
          continue;
        }
        const Bytes special_memory =
            memory_grid_.value(mem_idx) + e.special_stage_memory;
        if (special_memory > limit) continue;
        const Seconds special_load =
            load_grid_.snap(load_grid_.value(load_idx) + e.stage_load,
                            options_.grid.rounding);
        const double floor = std::max(special_load, e.link_load);
        if (floor >= best) continue;
        const int next_load_idx =
            load_grid_.index(special_load, options_.grid.rounding);
        const int next_mem_idx = memory_grid_.index(
            std::min(special_memory, limit), options_.grid.rounding);
        const double sub = lookup_value(k - 1, p, next_load_idx,
                                        next_mem_idx, e.next_delay_idx);
        const double value = std::max(floor, sub);
        if (value < best) {
          best = value;
          best_k = k;
          best_special = true;
          best_next_load = next_load_idx;
          best_next_mem = next_mem_idx;
          best_next_delay = e.next_delay_idx;
        }
      }
      MP_ENSURE(best_k >= 1, "reconstruction fell off the memoized path");

      stages_reversed.push_back(Stage{best_k, l});
      special_reversed.push_back(best_special);
      if (best_special) {
        load_idx = best_next_load;
        mem_idx = best_next_mem;
      } else {
        --p;
      }
      delay_idx = best_next_delay;
      l = best_k - 1;
    }

    std::vector<Stage> stages(stages_reversed.rbegin(), stages_reversed.rend());
    std::vector<bool> special(special_reversed.rbegin(),
                              special_reversed.rend());

    // Normal stages take processors 0,1,... in chain order; the special
    // processor is P−1 (it exists even if unused).
    const int normal_count = root_processors();
    std::vector<int> procs(stages.size());
    int next_normal = 0;
    for (std::size_t s = 0; s < stages.size(); ++s) {
      if (special[s]) {
        procs[s] = platform_.processors - 1;
        result.uses_special = true;
      } else {
        MP_ENSURE(next_normal < normal_count,
                  "more normal stages than normal processors");
        procs[s] = next_normal++;
      }
    }
    result.allocation.emplace(Partitioning(chain_, std::move(stages)),
                              std::move(procs), platform_.processors);
  }

  const Chain& chain_;
  const Platform& platform_;
  Seconds target_;
  MadPipeDPOptions options_;
  Grid load_grid_;
  Grid memory_grid_;
  Grid delay_grid_;
  util::FlatHash64<double> memo_;
  util::FlatHash64<TransitionEntry> transitions_;
  std::vector<Frame> stack_;
  double last_value_ = kInfinity;
  bool budget_hit_ = false;
  PlannerStats stats_;
};

// ---------------------------------------------------------------------------
// Wavefront engine (DESIGN.md §11)
// ---------------------------------------------------------------------------
//
// Every transition strictly decreases l, so the states sharing a layer form
// a wavefront whose slab is complete before any lower layer is expanded.
// Two passes over the layers:
//
//  * discovery (l = L .. 1): each state of slab l emits the child of every
//    memory-feasible candidate into per-shard, per-target-layer buffers; at
//    the barrier the buffers are appended to the target slabs in shard
//    order, deduped by an insertion-ordered key set. Shards are contiguous
//    ranges of the slab, so the concatenation equals the serial emission
//    sequence for ANY shard count — slab contents, their order, and the
//    max_states truncation (applied during the ordered merge) are all
//    bit-identical across thread counts.
//
//  * values (l = 1 .. L): with every child slab final and valued, a state's
//    candidate scan is a pure function of read-only lower slabs, so shards
//    write disjoint ranges of the value array. The scan reads SoA
//    transition panels built once per (wavefront, delay index): candidate
//    floors and normal-feasibility masks depend only on the panel, so they
//    are hoisted out of the per-state loop into plain width-agnostic
//    autovectorizable array sweeps.
//
// Why values are bit-identical to the serial engines: per candidate both
// compute value = max(max(load, link), child) from the same
// compute_transition outputs; min over candidates is order-independent; the
// serial dominated-candidate pruning only skips candidates whose floor
// already reaches the running best (which the strict-improvement rule could
// never accept); and reconstruction — the same first-argmin re-derivation
// in the same candidate order — depends only on those values. Discovery,
// unlike FlatDpSolver, cannot prune on values it does not have yet, so the
// slabs hold the full memory-feasible reachable set: exactly the states
// ReferenceDpSolver memoizes (it recurses into every feasible candidate).
class WavefrontDpSolver {
 public:
  WavefrontDpSolver(const Chain& chain, const Platform& platform,
                    Seconds target, const MadPipeDPOptions& options)
      : chain_(chain),
        platform_(platform),
        target_(target),
        options_(options),
        load_grid_(chain.total_compute(), options.grid.load_points),
        memory_grid_(platform.memory_per_processor, options.grid.memory_points),
        delay_grid_(delay_upper_bound(chain, platform),
                    options.grid.delay_points),
        panel_of_delay_(options.grid.delay_points, -1) {}

  MadPipeDPResult run() {
    MadPipeDPResult result;
    result.period = solve_root(chain_.length(), root_processors());
    result.states_visited = static_cast<std::size_t>(total_states_);
    result.state_budget_hit = budget_hit_;
    if (std::isfinite(result.period)) {
      reconstruct(result);
    }
    stats_.dp_probes = 1;
    stats_.dp_states = total_states_;
    stats_.dp_state_visits = total_states_;
    stats_.state_budget_hits = budget_hit_ ? 1 : 0;
    for (const Slab& slab : slabs_) {
      stats_.memo_max_load_factor =
          std::max(stats_.memo_max_load_factor, slab.states.load_factor());
      stats_.memo_rehashes += static_cast<long long>(slab.states.rehashes());
      stats_.memo_rehashes_avoided +=
          static_cast<long long>(slab.states.rehashes_avoided());
    }
    result.stats = stats_;
    return result;
  }

 private:
  /// Per-layer state slab: insertion-ordered keys plus a parallel value
  /// array (the structure-of-arrays replacement for the flat memo's
  /// key+value slots).
  struct Slab {
    util::IndexedKeySet64 states;
    std::vector<double> values;
  };

  /// SoA candidate panel for one (wavefront l, delay_idx): arrays indexed
  /// by k−1 for k = k_floor..l, i.e. one compute_transition output per
  /// candidate split point, plus the panel-level floor/feasibility
  /// precomputations. Entries below k_floor — the static-memory break point
  /// every candidate scan stops at — are never read and never computed, so
  /// panel construction stays O(stage window), not O(L), on multi-GiB
  /// chains.
  struct Panel {
    std::vector<Seconds> stage_load;
    std::vector<Seconds> link_load;
    std::vector<Bytes> normal_memory;
    std::vector<Bytes> special_stage_memory;
    std::vector<int> next_delay_idx;
    std::vector<double> normal_floor;          ///< max(stage, link) per k
    std::vector<unsigned char> normal_feasible;  ///< 𝓜(k,l,g) ≤ M per k
    int k_floor = 1;  ///< smallest k whose static memory fits M (l+1 if none)
  };

  static int unpack_p(std::uint64_t key) {
    return static_cast<int>((key >> 30) & 0x7f);
  }
  static int unpack_load(std::uint64_t key) {
    return static_cast<int>((key >> 20) & 0x3ff);
  }
  static int unpack_mem(std::uint64_t key) {
    return static_cast<int>((key >> 10) & 0x3ff);
  }
  static int unpack_delay(std::uint64_t key) {
    return static_cast<int>(key & 0x3ff);
  }

  int root_processors() const {
    return options_.allow_special ? platform_.processors - 1
                                  : platform_.processors;
  }

  int shards() const { return std::max(options_.threads, 1); }

  double base_l0(int load_idx) const { return load_grid_.value(load_idx); }

  /// p == 0: all remaining layers become one stage on the special processor.
  double special_base(int l, int load_idx, int mem_idx, int delay_idx) const {
    if (!options_.allow_special) return kInfinity;
    const Seconds delay = delay_grid_.value(delay_idx);
    const int g = activation_count(chain_, 1, l, delay, target_);
    const Bytes memory = memory_grid_.value(mem_idx) +
                         stage_memory(chain_, 1, l, g - 1);
    if (memory > platform_.memory_per_processor) return kInfinity;
    return chain_.compute_load(1, l) + load_grid_.value(load_idx);
  }

  void note_budget() {
    if (budget_hit_) return;
    budget_hit_ = true;
    warn_state_budget_once(g_wavefront_budget_warned);
  }

  double solve_root(int l, int p) {
    root_l_ = l;
    if (l == 0) return base_l0(0);
    if (p == 0) return special_base(l, 0, 0, 0);
    if (options_.max_states == 0) {
      note_budget();
      return kInfinity;
    }
    slabs_.clear();
    slabs_.resize(static_cast<std::size_t>(l) + 1);
    const std::size_t per_slab = std::max<std::size_t>(
        memo_size_heuristic() / static_cast<std::size_t>(l), 16);
    for (int t = 1; t < l; ++t) slabs_[t].states.reserve(per_slab);
    slabs_[l].states.insert(pack_state(l, p, 0, 0, 0));
    total_states_ = 1;
    ++stats_.memo_probes;
    discover();
    compute_values();
    const Slab& root = slabs_[l];
    return root.values.empty() ? kInfinity : root.values[0];
  }

  std::size_t memo_size_heuristic() const {
    const std::size_t per_layer =
        static_cast<std::size_t>(options_.grid.delay_points) *
        (options_.allow_special ? 4 : 1);
    const std::size_t guess = static_cast<std::size_t>(chain_.length()) *
                              static_cast<std::size_t>(std::max(
                                  root_processors(), 1)) *
                              per_layer;
    return std::min({guess, options_.max_states,
                     static_cast<std::size_t>(1) << 20});
  }

  /// Rebuild the SoA panels for the distinct delay indices present in slab
  /// l (first-occurrence order, so the panel list is deterministic).
  void build_panels(int l) {
    for (int d : panel_delays_) panel_of_delay_[d] = -1;
    panel_delays_.clear();
    const Slab& slab = slabs_[l];
    for (std::size_t i = 0; i < slab.states.size(); ++i) {
      const int d = unpack_delay(slab.states.key_at(i));
      if (panel_of_delay_[d] < 0) {
        panel_of_delay_[d] = static_cast<int>(panel_delays_.size());
        panel_delays_.push_back(d);
      }
    }
    if (panels_.size() < panel_delays_.size()) {
      panels_.resize(panel_delays_.size());
    }
    // Panels are independent preallocated slots: build them concurrently.
    par::parallel_for(
        0, panel_delays_.size(),
        [&](std::size_t pi) { build_panel(panels_[pi], l, panel_delays_[pi]); },
        static_cast<std::size_t>(shards()));
    if (!panel_delays_.empty()) {
      const Panel& first = panels_[0];
      stats_.transition_lookups +=
          static_cast<long long>(panel_delays_.size()) *
          static_cast<long long>(l - first.k_floor + 1);
    }
  }

  void build_panel(Panel& panel, int l, int delay_idx) const {
    const Bytes limit = platform_.memory_per_processor;
    // The static-memory break point: every candidate scan stops at the
    // smallest k whose weights+scratch term still fits M, so nothing below
    // it is ever read.
    int k_floor = l + 1;
    while (k_floor > 1 &&
           !stage_static_memory_exceeds(chain_, k_floor - 1, l, limit)) {
      --k_floor;
    }
    panel.k_floor = k_floor;
    const std::size_t n = static_cast<std::size_t>(l);
    panel.stage_load.resize(n);
    panel.link_load.resize(n);
    panel.normal_memory.resize(n);
    panel.special_stage_memory.resize(n);
    panel.next_delay_idx.resize(n);
    panel.normal_floor.resize(n);
    panel.normal_feasible.resize(n);
    for (int k = k_floor; k <= l; ++k) {
      const TransitionEntry e = compute_transition(
          chain_, platform_, delay_grid_, target_, options_, k, l, delay_idx);
      const std::size_t i = static_cast<std::size_t>(k - 1);
      panel.stage_load[i] = e.stage_load;
      panel.link_load[i] = e.link_load;
      panel.normal_memory[i] = e.normal_memory;
      panel.special_stage_memory[i] = e.special_stage_memory;
      panel.next_delay_idx[i] = e.next_delay_idx;
    }
    // Panel-level candidate precomputations, hoisted out of every per-state
    // scan: width-agnostic loops the compiler can vectorize.
    for (std::size_t i = static_cast<std::size_t>(k_floor - 1); i < n; ++i) {
      panel.normal_floor[i] = std::max(panel.stage_load[i], panel.link_load[i]);
    }
    for (std::size_t i = static_cast<std::size_t>(k_floor - 1); i < n; ++i) {
      panel.normal_feasible[i] = panel.normal_memory[i] <= limit ? 1 : 0;
    }
  }

  void discover() {
    for (int l = root_l_; l >= 1 && !budget_hit_; --l) {
      Slab& slab = slabs_[l];
      const std::size_t n = slab.states.size();
      if (n == 0) continue;
      obs::Span span("dp_wavefront", obs::kCatPlanner);
      span.arg("layer", l);
      span.arg("states", static_cast<long long>(n));
      span.arg("pass", 0);
      build_panels(l);
      const std::size_t S =
          std::min(static_cast<std::size_t>(shards()), n);
      const std::size_t chunk = (n + S - 1) / S;
      // buffers[s][t]: keys shard s emitted into target layer t (< l).
      std::vector<std::vector<std::vector<std::uint64_t>>> buffers(S);
      par::parallel_for(
          0, S,
          [&](std::size_t s) {
            auto& per_layer = buffers[s];
            per_layer.assign(static_cast<std::size_t>(l), {});
            const std::size_t lo = s * chunk;
            const std::size_t hi = std::min(n, lo + chunk);
            for (std::size_t i = lo; i < hi; ++i) {
              emit_children(l, slab.states.key_at(i), per_layer);
            }
          },
          S);
      // Deterministic merge: target layers near-to-far, shards in order.
      for (int t = l - 1; t >= 1 && !budget_hit_; --t) {
        Slab& target = slabs_[t];
        for (std::size_t s = 0; s < S; ++s) {
          const std::vector<std::uint64_t>& buf = buffers[s][t];
          if (buf.empty()) continue;
          stats_.memo_probes += static_cast<long long>(buf.size());
          const std::size_t before = target.states.size();
          const std::size_t cap =
              before + (options_.max_states -
                        static_cast<std::size_t>(total_states_));
          const bool fit = target.states.merge_shard(
              buf.data(), buf.data() + buf.size(), cap);
          total_states_ +=
              static_cast<long long>(target.states.size() - before);
          if (!fit) {
            note_budget();
            break;
          }
        }
      }
    }
  }

  /// Append every memory-feasible candidate's memoized child (l′ ≥ 1,
  /// p′ ≥ 1; base cases are evaluated inline in the value pass) to the
  /// shard's per-target-layer buffers, in the serial k = l..1 scan order.
  void emit_children(int l, std::uint64_t key,
                     std::vector<std::vector<std::uint64_t>>& out) const {
    const int p = unpack_p(key);
    const int load_idx = unpack_load(key);
    const int mem_idx = unpack_mem(key);
    const int delay_idx = unpack_delay(key);
    const Panel& panel = panels_[panel_of_delay_[delay_idx]];
    const Bytes limit = platform_.memory_per_processor;
    const Bytes mem_value = memory_grid_.value(mem_idx);
    const Seconds load_value = load_grid_.value(load_idx);
    // k == 1 children land on base cases; k < k_floor fails both options'
    // memory checks (the static-memory break shared with the other engines).
    for (int k = l; k >= std::max(panel.k_floor, 2); --k) {
      const std::size_t i = static_cast<std::size_t>(k - 1);
      if (panel.normal_feasible[i] && p > 1) {
        out[i].push_back(pack_state(k - 1, p - 1, load_idx, mem_idx,
                                    panel.next_delay_idx[i]));
      }
      if (!options_.allow_special) continue;
      const Bytes special_memory = mem_value + panel.special_stage_memory[i];
      if (special_memory > limit) continue;
      const Seconds special_load = load_grid_.snap(
          load_value + panel.stage_load[i], options_.grid.rounding);
      const int next_load_idx =
          load_grid_.index(special_load, options_.grid.rounding);
      const int next_mem_idx = memory_grid_.index(
          std::min(special_memory, limit), options_.grid.rounding);
      out[i].push_back(pack_state(k - 1, p, next_load_idx, next_mem_idx,
                                  panel.next_delay_idx[i]));
    }
  }

  void compute_values() {
    for (int l = 1; l <= root_l_; ++l) {
      Slab& slab = slabs_[l];
      const std::size_t n = slab.states.size();
      if (n == 0) continue;
      obs::Span span("dp_wavefront", obs::kCatPlanner);
      span.arg("layer", l);
      span.arg("states", static_cast<long long>(n));
      span.arg("pass", 1);
      build_panels(l);
      slab.values.assign(n, kInfinity);
      const std::size_t S =
          std::min(static_cast<std::size_t>(shards()), n);
      const std::size_t chunk = (n + S - 1) / S;
      std::vector<PlannerStats> shard_stats(S);
      par::parallel_for(
          0, S,
          [&](std::size_t s) {
            const std::size_t lo = s * chunk;
            const std::size_t hi = std::min(n, lo + chunk);
            PlannerStats& st = shard_stats[s];
            for (std::size_t i = lo; i < hi; ++i) {
              slab.values[i] = state_value(l, slab.states.key_at(i), st);
            }
          },
          S);
      for (const PlannerStats& st : shard_stats) {
        stats_.memo_child_lookups += st.memo_child_lookups;
        stats_.memo_hits += st.memo_hits;
      }
    }
  }

  /// T(l, p, t_P, m_P, V) from the finalized lower slabs: the serial
  /// candidate scan (same order, same floats, same strict-improvement and
  /// pruning rules), with the panel-hoisted floors and feasibility masks.
  double state_value(int l, std::uint64_t key, PlannerStats& st) const {
    const int p = unpack_p(key);
    const int load_idx = unpack_load(key);
    const int mem_idx = unpack_mem(key);
    const int delay_idx = unpack_delay(key);
    const Panel& panel = panels_[panel_of_delay_[delay_idx]];
    const Bytes limit = platform_.memory_per_processor;
    double best = kInfinity;
    for (int k = l; k >= panel.k_floor; --k) {
      const std::size_t i = static_cast<std::size_t>(k - 1);
      if (panel.normal_feasible[i]) {
        const double floor = panel.normal_floor[i];
        if (floor < best) {
          const double sub = child_value(k - 1, p - 1, load_idx, mem_idx,
                                         panel.next_delay_idx[i], st);
          const double value = std::max(floor, sub);
          if (value < best) best = value;
        }
      }
      if (!options_.allow_special) {
        if (panel.stage_load[i] >= best) break;
        continue;
      }
      const Bytes special_memory =
          memory_grid_.value(mem_idx) + panel.special_stage_memory[i];
      if (special_memory > limit) continue;
      const Seconds special_load = load_grid_.snap(
          load_grid_.value(load_idx) + panel.stage_load[i],
          options_.grid.rounding);
      const double floor = std::max(special_load, panel.link_load[i]);
      if (floor >= best) continue;
      const int next_load_idx =
          load_grid_.index(special_load, options_.grid.rounding);
      const int next_mem_idx = memory_grid_.index(
          std::min(special_memory, limit), options_.grid.rounding);
      const double sub = child_value(k - 1, p, next_load_idx, next_mem_idx,
                                     panel.next_delay_idx[i], st);
      const double value = std::max(floor, sub);
      if (value < best) best = value;
    }
    return best;
  }

  /// Slab-backed child value; a miss means the state budget dropped the
  /// state, which discovery also stopped below.
  double child_value(int l, int p, int load_idx, int mem_idx, int delay_idx,
                     PlannerStats& st) const {
    if (l == 0) return base_l0(load_idx);
    if (p == 0) return special_base(l, load_idx, mem_idx, delay_idx);
    ++st.memo_child_lookups;
    const std::int32_t idx =
        slabs_[l].states.find(pack_state(l, p, load_idx, mem_idx, delay_idx));
    if (idx < 0) return kInfinity;
    ++st.memo_hits;
    return slabs_[l].values[static_cast<std::size_t>(idx)];
  }

  double lookup_value(int l, int p, int load_idx, int mem_idx, int delay_idx) {
    return child_value(l, p, load_idx, mem_idx, delay_idx, stats_);
  }

  void reconstruct(MadPipeDPResult& result) {
    // Identical to FlatDpSolver::reconstruct — the same first-argmin
    // re-derivation in the same candidate order — against slab lookups and
    // uncached transitions.
    std::vector<Stage> stages_reversed;
    std::vector<bool> special_reversed;

    int l = chain_.length();
    int p = root_processors();
    int load_idx = 0;
    int mem_idx = 0;
    int delay_idx = 0;
    const Bytes limit = platform_.memory_per_processor;

    while (l > 0) {
      if (p == 0) {
        stages_reversed.push_back(Stage{1, l});
        special_reversed.push_back(true);
        break;
      }
      double best = kInfinity;
      int best_k = -1;
      bool best_special = false;
      int best_next_load = load_idx;
      int best_next_mem = mem_idx;
      int best_next_delay = delay_idx;
      for (int k = l; k >= 1; --k) {
        if (stage_static_memory_exceeds(chain_, k, l, limit)) break;
        const TransitionEntry e = compute_transition(
            chain_, platform_, delay_grid_, target_, options_, k, l,
            delay_idx);
        if (e.normal_memory <= limit) {
          const double floor = std::max(e.stage_load, e.link_load);
          if (floor < best) {
            const double sub =
                lookup_value(k - 1, p - 1, load_idx, mem_idx,
                             e.next_delay_idx);
            const double value = std::max(floor, sub);
            if (value < best) {
              best = value;
              best_k = k;
              best_special = false;
              best_next_delay = e.next_delay_idx;
            }
          }
        }
        if (!options_.allow_special) {
          if (e.stage_load >= best) break;
          continue;
        }
        const Bytes special_memory =
            memory_grid_.value(mem_idx) + e.special_stage_memory;
        if (special_memory > limit) continue;
        const Seconds special_load =
            load_grid_.snap(load_grid_.value(load_idx) + e.stage_load,
                            options_.grid.rounding);
        const double floor = std::max(special_load, e.link_load);
        if (floor >= best) continue;
        const int next_load_idx =
            load_grid_.index(special_load, options_.grid.rounding);
        const int next_mem_idx = memory_grid_.index(
            std::min(special_memory, limit), options_.grid.rounding);
        const double sub = lookup_value(k - 1, p, next_load_idx,
                                        next_mem_idx, e.next_delay_idx);
        const double value = std::max(floor, sub);
        if (value < best) {
          best = value;
          best_k = k;
          best_special = true;
          best_next_load = next_load_idx;
          best_next_mem = next_mem_idx;
          best_next_delay = e.next_delay_idx;
        }
      }
      MP_ENSURE(best_k >= 1, "reconstruction fell off the memoized path");

      stages_reversed.push_back(Stage{best_k, l});
      special_reversed.push_back(best_special);
      if (best_special) {
        load_idx = best_next_load;
        mem_idx = best_next_mem;
      } else {
        --p;
      }
      delay_idx = best_next_delay;
      l = best_k - 1;
    }

    std::vector<Stage> stages(stages_reversed.rbegin(), stages_reversed.rend());
    std::vector<bool> special(special_reversed.rbegin(),
                              special_reversed.rend());

    const int normal_count = root_processors();
    std::vector<int> procs(stages.size());
    int next_normal = 0;
    for (std::size_t s = 0; s < stages.size(); ++s) {
      if (special[s]) {
        procs[s] = platform_.processors - 1;
        result.uses_special = true;
      } else {
        MP_ENSURE(next_normal < normal_count,
                  "more normal stages than normal processors");
        procs[s] = next_normal++;
      }
    }
    result.allocation.emplace(Partitioning(chain_, std::move(stages)),
                              std::move(procs), platform_.processors);
  }

  const Chain& chain_;
  const Platform& platform_;
  Seconds target_;
  MadPipeDPOptions options_;
  Grid load_grid_;
  Grid memory_grid_;
  Grid delay_grid_;
  std::vector<Slab> slabs_;
  std::vector<Panel> panels_;       ///< reused slots for the current wavefront
  std::vector<int> panel_of_delay_; ///< delay_idx → index into panels_, or −1
  std::vector<int> panel_delays_;   ///< distinct delays, first-occurrence order
  int root_l_ = 0;
  long long total_states_ = 0;
  bool budget_hit_ = false;
  PlannerStats stats_;
};

// ---------------------------------------------------------------------------
// Reference engine (the original recursive implementation)
// ---------------------------------------------------------------------------

struct MemoEntry {
  double period = kInfinity;
  std::int16_t stage_start = -1;  ///< k of the winning transition
  std::int8_t to_special = 0;     ///< 1 when the winning stage goes special
};

class ReferenceDpSolver {
 public:
  ReferenceDpSolver(const Chain& chain, const Platform& platform,
                    Seconds target, const MadPipeDPOptions& options)
      : chain_(chain),
        platform_(platform),
        target_(target),
        options_(options),
        load_grid_(chain.total_compute(), options.grid.load_points),
        memory_grid_(platform.memory_per_processor, options.grid.memory_points),
        delay_grid_(delay_upper_bound(chain, platform),
                    options.grid.delay_points) {}

  MadPipeDPResult run() {
    MadPipeDPResult result;
    const int root_p = options_.allow_special ? platform_.processors - 1
                                              : platform_.processors;
    result.period = solve(chain_.length(), root_p, 0, 0, 0);
    result.states_visited = memo_.size();
    result.state_budget_hit = budget_hit_;
    if (std::isfinite(result.period)) {
      reconstruct(result);
    }
    stats_.dp_probes = 1;
    stats_.dp_states = static_cast<long long>(memo_.size());
    stats_.dp_state_visits = static_cast<long long>(memo_.size());
    stats_.state_budget_hits = budget_hit_ ? 1 : 0;
    result.stats = stats_;
    return result;
  }

 private:
  /// Everything a transition taking stage k..l out of state (l,·,·,·,iV)
  /// determines: next delay index, feasibility and memory of both targets.
  struct TransitionInfo {
    Seconds stage_load = 0.0;
    Seconds link_load = 0.0;  ///< C(k−1), the lower bound on the front link
    int next_delay_idx = 0;
    int active_batches = 0;  ///< g(k,l,V)
  };

  TransitionInfo transition(int k, int l, int delay_idx) const {
    TransitionInfo info;
    info.stage_load = chain_.compute_load(k, l);
    info.link_load =
        k > 1 ? platform_.boundary_comm_time(chain_, k - 1) : 0.0;
    const Seconds delay = delay_grid_.value(delay_idx);
    Seconds comm_for_delay = 0.0;
    switch (options_.delay_comm_variant) {
      case DelayCommVariant::BoundaryConsistent:
        comm_for_delay = info.link_load;
        break;
      case DelayCommVariant::PaperLiteral:
        comm_for_delay = platform_.boundary_comm_time(chain_, k);
        break;
    }
    const Seconds next_delay = delay_advance(
        delay_advance(delay, info.stage_load, target_), comm_for_delay,
        target_);
    info.next_delay_idx = delay_grid_.index(next_delay, options_.grid.rounding);
    info.active_batches = activation_count(chain_, k, l, delay, target_);
    return info;
  }

  double solve(int l, int p, int load_idx, int mem_idx, int delay_idx) {
    if (l == 0) return load_grid_.value(load_idx);

    if (p == 0) {
      if (!options_.allow_special) return kInfinity;
      // All remaining layers become one stage on the special processor.
      const Seconds delay = delay_grid_.value(delay_idx);
      const int g = activation_count(chain_, 1, l, delay, target_);
      const Bytes memory = memory_grid_.value(mem_idx) +
                           stage_memory(chain_, 1, l, g - 1);
      if (memory > platform_.memory_per_processor) return kInfinity;
      return chain_.compute_load(1, l) + load_grid_.value(load_idx);
    }

    const std::uint64_t key = pack_state(l, p, load_idx, mem_idx, delay_idx);
    ++stats_.memo_probes;
    if (const auto it = memo_.find(key); it != memo_.end()) {
      ++stats_.memo_hits;
      return it->second.period;
    }
    if (memo_.size() >= options_.max_states) {
      if (!budget_hit_) {
        budget_hit_ = true;
        warn_state_budget_once(g_reference_budget_warned);
      }
      return kInfinity;
    }
    // Reserve the slot first: cycles are impossible (l strictly decreases),
    // but this keeps the map stable across the recursive calls below.
    memo_.emplace(key, MemoEntry{});
    ++stats_.memo_probes;

    MemoEntry best;
    const Bytes limit = platform_.memory_per_processor;
    for (int k = l; k >= 1; --k) {
      if (stage_static_memory_exceeds(chain_, k, l, limit)) break;
      const TransitionInfo info = transition(k, l, delay_idx);

      // Option 1: stage k..l on a fresh normal processor.
      const Stage stage{k, l};
      if (stage_memory(chain_, stage.first, stage.last, info.active_batches) <=
          limit) {
        const double sub =
            solve(k - 1, p - 1, load_idx, mem_idx, info.next_delay_idx);
        const double value =
            std::max({info.stage_load, info.link_load, sub});
        if (value < best.period) {
          best = {value, static_cast<std::int16_t>(k), 0};
        }
      }

      if (!options_.allow_special) continue;
      // Option 2: stage k..l joins the special processor (memory counted
      // with g−1, the deliberate underestimate of §4.2.1).
      const Bytes special_memory =
          memory_grid_.value(mem_idx) +
          stage_memory(chain_, stage.first, stage.last,
                       info.active_batches - 1);
      if (special_memory <= limit) {
        const Seconds special_load =
            load_grid_.snap(load_grid_.value(load_idx) + info.stage_load,
                            options_.grid.rounding);
        const int next_load_idx =
            load_grid_.index(special_load, options_.grid.rounding);
        const int next_mem_idx =
            memory_grid_.index(std::min(special_memory, limit),
                               options_.grid.rounding);
        const double sub =
            solve(k - 1, p, next_load_idx, next_mem_idx, info.next_delay_idx);
        const double value = std::max({special_load, info.link_load, sub});
        if (value < best.period) {
          best = {value, static_cast<std::int16_t>(k), 1};
        }
      }
    }

    memo_[key] = best;
    ++stats_.memo_probes;
    return best.period;
  }

  void reconstruct(MadPipeDPResult& result) {
    // Walk the winning choices from the root, re-deriving the follow-up
    // state exactly as solve() did.
    std::vector<Stage> stages_reversed;
    std::vector<bool> special_reversed;

    int l = chain_.length();
    int p = options_.allow_special ? platform_.processors - 1
                                   : platform_.processors;
    int load_idx = 0;
    int mem_idx = 0;
    int delay_idx = 0;

    while (l > 0) {
      if (p == 0) {
        stages_reversed.push_back(Stage{1, l});
        special_reversed.push_back(true);
        break;
      }
      const auto it =
          memo_.find(pack_state(l, p, load_idx, mem_idx, delay_idx));
      MP_ENSURE(it != memo_.end() && it->second.stage_start >= 1,
                "reconstruction fell off the memoized path");
      const MemoEntry& entry = it->second;
      const int k = entry.stage_start;
      const TransitionInfo info = transition(k, l, delay_idx);

      stages_reversed.push_back(Stage{k, l});
      special_reversed.push_back(entry.to_special != 0);
      if (entry.to_special != 0) {
        const Seconds special_load =
            load_grid_.snap(load_grid_.value(load_idx) + info.stage_load,
                            options_.grid.rounding);
        const Bytes special_memory =
            memory_grid_.value(mem_idx) +
            stage_memory(chain_, k, l, info.active_batches - 1);
        load_idx = load_grid_.index(special_load, options_.grid.rounding);
        mem_idx = memory_grid_.index(
            std::min(special_memory, platform_.memory_per_processor),
            options_.grid.rounding);
      } else {
        --p;
      }
      delay_idx = info.next_delay_idx;
      l = k - 1;
    }

    std::vector<Stage> stages(stages_reversed.rbegin(), stages_reversed.rend());
    std::vector<bool> special(special_reversed.rbegin(),
                              special_reversed.rend());

    // Normal stages take processors 0,1,... in chain order; the special
    // processor is P−1 (it exists even if unused).
    const int normal_count = options_.allow_special
                                 ? platform_.processors - 1
                                 : platform_.processors;
    std::vector<int> procs(stages.size());
    int next_normal = 0;
    for (std::size_t s = 0; s < stages.size(); ++s) {
      if (special[s]) {
        procs[s] = platform_.processors - 1;
        result.uses_special = true;
      } else {
        MP_ENSURE(next_normal < normal_count,
                  "more normal stages than normal processors");
        procs[s] = next_normal++;
      }
    }
    result.allocation.emplace(Partitioning(chain_, std::move(stages)),
                              std::move(procs), platform_.processors);
  }

  const Chain& chain_;
  const Platform& platform_;
  Seconds target_;
  MadPipeDPOptions options_;
  Grid load_grid_;
  Grid memory_grid_;
  Grid delay_grid_;
  std::unordered_map<std::uint64_t, MemoEntry> memo_;
  bool budget_hit_ = false;
  PlannerStats stats_;
};

}  // namespace

MadPipeDPResult madpipe_dp(const Chain& chain, const Platform& platform,
                           Seconds target_period,
                           const MadPipeDPOptions& options) {
  platform.validate();
  MP_EXPECT(target_period > 0.0, "target period must be positive");
  MP_EXPECT(chain.length() <= 4095, "chain too long for the packed DP state");
  MP_EXPECT(platform.processors <= 64,
            "packed DP state supports at most 64 processors");
  MP_EXPECT(options.grid.load_points <= 1024 &&
                options.grid.memory_points <= 1024 &&
                options.grid.delay_points <= 1024,
            "grids must fit the packed state (≤ 1024 points each)");

  obs::Span span("dp_probe", obs::kCatPlanner);
  MadPipeDPResult result;
  // threads > 1 routes the default engine to the wavefront path; the shard
  // count (not the pool) defines the decomposition, so results match the
  // serial engines bit for bit (DESIGN.md §11).
  const bool wavefront =
      options.engine == DpEngine::ParallelWavefront ||
      (options.engine == DpEngine::FlatIterative && options.threads > 1);
  if (options.engine == DpEngine::ReferenceRecursive) {
    ReferenceDpSolver solver(chain, platform, target_period, options);
    result = solver.run();
  } else if (wavefront) {
    static obs::Gauge& threads_gauge = obs::Registry::global().gauge(
        "madpipe_dp_threads",
        "Shard count of the most recent wavefront DP probe");
    threads_gauge.set(std::max(options.threads, 1));
    WavefrontDpSolver solver(chain, platform, target_period, options);
    result = solver.run();
  } else {
    FlatDpSolver solver(chain, platform, target_period, options);
    result = solver.run();
  }
  span.arg("states", static_cast<long long>(result.states_visited));
  span.arg("budget_hit", result.state_budget_hit ? 1 : 0);
  return result;
}

namespace detail {

void reset_state_budget_warnings() noexcept {
  g_flat_budget_warned.store(false, std::memory_order_relaxed);
  g_wavefront_budget_warned.store(false, std::memory_order_relaxed);
  g_reference_budget_warned.store(false, std::memory_order_relaxed);
  g_budget_warnings_emitted.store(0, std::memory_order_relaxed);
}

long long state_budget_warning_count() noexcept {
  return g_budget_warnings_emitted.load(std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace madpipe
