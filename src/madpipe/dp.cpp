// Two engines evaluate the MadPipe-DP recurrence (see dp.hpp for the
// dispatch contract):
//
//  * FlatDpSolver — the fast path. An explicit work-stack replaces the deep
//    recursion (L can be 1023), the memo is a flat open-addressing table
//    with 16-byte entries probed at most twice per state (placeholder
//    insert + final update), and everything a transition determines that
//    depends only on (k, l, delay_idx) — stage/link loads, the advanced
//    delay, g(k,l,V) and both memory footprints — is computed once per
//    distinct triple in a transition cache shared with reconstruction.
//    Dominated candidates (whose load/link floor already reaches the best
//    value, which the strict-improvement rule can never accept) are pruned
//    before recursing; this changes which states are memoized but provably
//    not the achieved period or allocation.
//
//  * ReferenceDpSolver — the original recursive, unordered_map-memoized
//    implementation, kept verbatim as the semantic reference for the
//    golden-equivalence tests.
#include "madpipe/dp.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/memory_model.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/flat_hash.hpp"
#include "util/logging.hpp"

namespace madpipe {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Packed DP state. Budgets: l ≤ 1023, p ≤ 15, grid indices ≤ 1023 each.
std::uint64_t pack_state(int l, int p, int load_idx, int mem_idx,
                         int delay_idx) {
  return (static_cast<std::uint64_t>(l) << 34) |
         (static_cast<std::uint64_t>(p) << 30) |
         (static_cast<std::uint64_t>(load_idx) << 20) |
         (static_cast<std::uint64_t>(mem_idx) << 10) |
         static_cast<std::uint64_t>(delay_idx);
}

/// Packed transition-cache key: k, l and delay_idx at 10 bits each.
std::uint64_t pack_transition(int k, int l, int delay_idx) {
  return (static_cast<std::uint64_t>(k) << 20) |
         (static_cast<std::uint64_t>(l) << 10) |
         static_cast<std::uint64_t>(delay_idx);
}

/// Per-engine atomic once-guards for the state-budget warning. Engines run
/// concurrently (speculative bisection probes, serve workers), so a plain
/// per-instance bool would emit one warning per probe; the exchange below
/// elects exactly one emitter per engine kind. log::write assembles each
/// line before a single locked write, so the elected line cannot interleave.
std::atomic<bool> g_flat_budget_warned{false};
std::atomic<bool> g_reference_budget_warned{false};
std::atomic<long long> g_budget_warnings_emitted{0};

void warn_state_budget_once(std::atomic<bool>& guard) {
  if (guard.exchange(true, std::memory_order_relaxed)) return;
  g_budget_warnings_emitted.fetch_add(1, std::memory_order_relaxed);
  log::warn("MadPipe-DP state budget exhausted; treating unexplored states "
            "as infeasible");
}

Seconds delay_upper_bound(const Chain& chain, const Platform& platform) {
  Seconds total = chain.total_compute();
  for (int j = 1; j < chain.length(); ++j) {
    total += platform.boundary_comm_time(chain, j);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Fast path
// ---------------------------------------------------------------------------

class FlatDpSolver {
 public:
  FlatDpSolver(const Chain& chain, const Platform& platform, Seconds target,
               const MadPipeDPOptions& options)
      : chain_(chain),
        platform_(platform),
        target_(target),
        options_(options),
        load_grid_(chain.total_compute(), options.grid.load_points),
        memory_grid_(platform.memory_per_processor, options.grid.memory_points),
        delay_grid_(delay_upper_bound(chain, platform),
                    options.grid.delay_points),
        memo_(memo_size_heuristic()),
        transitions_(transition_size_heuristic()) {}

  MadPipeDPResult run() {
    MadPipeDPResult result;
    const int root_p = root_processors();
    result.period = solve_root(chain_.length(), root_p);
    result.states_visited = memo_.size();
    result.state_budget_hit = budget_hit_;
    if (std::isfinite(result.period)) {
      reconstruct(result);
    }
    stats_.dp_probes = 1;
    stats_.dp_states = static_cast<long long>(memo_.size());
    stats_.memo_max_load_factor = memo_.load_factor();
    stats_.state_budget_hits = budget_hit_ ? 1 : 0;
    result.stats = stats_;
    return result;
  }

 private:
  /// Everything a transition taking stage k..l out of a state with delay
  /// index delay_idx determines, independent of (p, load_idx, mem_idx):
  /// cached per distinct (k, l, delay_idx) triple.
  struct TransitionEntry {
    Seconds stage_load = 0.0;
    Seconds link_load = 0.0;        ///< C(k−1), lower bound on the front link
    Bytes normal_memory = 0.0;      ///< 𝓜(k,l,g): the normal-processor cost
    Bytes special_stage_memory = 0.0;  ///< 𝓜(k,l,g−1): §4.2.1's underestimate
    int next_delay_idx = 0;
    int active_batches = 0;  ///< g(k,l,V)
  };

  /// One suspended evaluation of T(l, p, load, mem, delay). `k`/`opt` are
  /// the resume position in the candidate scan (opt 0 = normal option of k
  /// still to do, 1 = special option of k still to do).
  struct Frame {
    std::uint64_t key = 0;
    int l = 0, p = 0, load_idx = 0, mem_idx = 0, delay_idx = 0;
    int k = 0;
    std::uint8_t opt = 0;
    bool waiting = false;     ///< a child was pushed; consume last_value_
    double pending_floor = 0.0;  ///< max(load, link) of the suspended option
    double best = kInfinity;
  };

  int root_processors() const {
    return options_.allow_special ? platform_.processors - 1
                                  : platform_.processors;
  }

  std::size_t memo_size_heuristic() const {
    // Reachable states per layer scale with the delay grid and, when the
    // special processor may absorb stages, with a handful of distinct
    // (load, mem) pairs; sized so typical probes never grow the table.
    const std::size_t per_layer =
        static_cast<std::size_t>(options_.grid.delay_points) *
        (options_.allow_special ? 8 : 1);
    const std::size_t guess = static_cast<std::size_t>(chain_.length()) *
                              static_cast<std::size_t>(std::max(
                                  root_processors(), 1)) *
                              per_layer;
    return std::min({guess, options_.max_states,
                     static_cast<std::size_t>(1) << 20});
  }

  std::size_t transition_size_heuristic() const {
    const std::size_t pairs = static_cast<std::size_t>(chain_.length()) *
                              static_cast<std::size_t>(chain_.length() + 1) /
                              2;
    return std::min(pairs * static_cast<std::size_t>(
                                options_.grid.delay_points),
                    static_cast<std::size_t>(1) << 17);
  }

  TransitionEntry transition(int k, int l, int delay_idx) {
    ++stats_.transition_lookups;
    const std::uint64_t key = pack_transition(k, l, delay_idx);
    if (const TransitionEntry* hit = transitions_.find(key)) {
      ++stats_.transition_hits;
      return *hit;
    }
    TransitionEntry entry;
    entry.stage_load = chain_.compute_load(k, l);
    entry.link_load =
        k > 1 ? platform_.boundary_comm_time(chain_, k - 1) : 0.0;
    const Seconds delay = delay_grid_.value(delay_idx);
    Seconds comm_for_delay = 0.0;
    switch (options_.delay_comm_variant) {
      case DelayCommVariant::BoundaryConsistent:
        comm_for_delay = entry.link_load;
        break;
      case DelayCommVariant::PaperLiteral:
        comm_for_delay = platform_.boundary_comm_time(chain_, k);
        break;
    }
    const Seconds next_delay = delay_advance(
        delay_advance(delay, entry.stage_load, target_), comm_for_delay,
        target_);
    entry.next_delay_idx =
        delay_grid_.index(next_delay, options_.grid.rounding);
    entry.active_batches = activation_count(chain_, k, l, delay, target_);
    entry.normal_memory = stage_memory(chain_, k, l, entry.active_batches);
    entry.special_stage_memory =
        stage_memory(chain_, k, l, entry.active_batches - 1);
    transitions_.emplace(key, entry);
    return entry;
  }

  double base_l0(int load_idx) const { return load_grid_.value(load_idx); }

  /// p == 0: all remaining layers become one stage on the special processor.
  double special_base(int l, int load_idx, int mem_idx, int delay_idx) const {
    if (!options_.allow_special) return kInfinity;
    const Seconds delay = delay_grid_.value(delay_idx);
    const int g = activation_count(chain_, 1, l, delay, target_);
    const Bytes memory = memory_grid_.value(mem_idx) +
                         stage_memory(chain_, 1, l, g - 1);
    if (memory > platform_.memory_per_processor) return kInfinity;
    return chain_.compute_load(1, l) + load_grid_.value(load_idx);
  }

  void note_budget() {
    if (budget_hit_) return;
    budget_hit_ = true;
    warn_state_budget_once(g_flat_budget_warned);
  }

  void push_frame(int l, int p, int load_idx, int mem_idx, int delay_idx) {
    Frame frame;
    frame.key = pack_state(l, p, load_idx, mem_idx, delay_idx);
    frame.l = l;
    frame.p = p;
    frame.load_idx = load_idx;
    frame.mem_idx = mem_idx;
    frame.delay_idx = delay_idx;
    frame.k = l;
    stack_.push_back(frame);
    ++stats_.dp_state_visits;
    // Reserve the state immediately (probe 1 of 2): keeps max_states
    // accounting aligned with the recursive reference, which counted
    // in-progress states. The placeholder is never read — a lookup can only
    // reach a state with strictly smaller l than every in-progress one.
    memo_.emplace(frame.key, kInfinity);
    ++stats_.memo_probes;
  }

  /// Value of (l, p, load, mem, delay) if immediately available; otherwise
  /// pushes a frame for it and returns nullopt — the value arrives in
  /// last_value_ once that frame finalizes.
  std::optional<double> child_value(int l, int p, int load_idx, int mem_idx,
                                    int delay_idx) {
    if (l == 0) return base_l0(load_idx);
    if (p == 0) return special_base(l, load_idx, mem_idx, delay_idx);
    ++stats_.memo_child_lookups;
    if (const double* value =
            memo_.find(pack_state(l, p, load_idx, mem_idx, delay_idx))) {
      ++stats_.memo_hits;
      return *value;
    }
    if (memo_.size() >= options_.max_states) {
      note_budget();
      return kInfinity;
    }
    push_frame(l, p, load_idx, mem_idx, delay_idx);
    return std::nullopt;
  }

  double solve_root(int l, int p) {
    if (l == 0) return base_l0(0);
    if (p == 0) return special_base(l, 0, 0, 0);
    if (memo_.size() >= options_.max_states) {
      note_budget();
      return kInfinity;
    }
    push_frame(l, p, 0, 0, 0);
    while (!stack_.empty()) step();
    return last_value_;
  }

  /// Run the top frame until it suspends on a child or finalizes.
  void step() {
    // Index, not reference: child_value can push a frame and reallocate the
    // stack, so suspension writes must re-acquire through `fi`.
    const std::size_t fi = stack_.size() - 1;
    Frame& f = stack_[fi];
    if (f.waiting) {
      f.waiting = false;
      const double value = std::max(f.pending_floor, last_value_);
      if (value < f.best) f.best = value;
    }
    const Bytes limit = platform_.memory_per_processor;
    while (f.k >= 1) {
      const TransitionEntry e = transition(f.k, f.l, f.delay_idx);

      if (f.opt == 0) {
        // Option 1: stage k..l on a fresh normal processor.
        f.opt = 1;
        if (e.normal_memory <= limit) {
          const double floor = std::max(e.stage_load, e.link_load);
          if (floor < f.best) {  // dominated candidates can never win
            const auto sub = child_value(f.k - 1, f.p - 1, f.load_idx,
                                         f.mem_idx, e.next_delay_idx);
            if (!sub.has_value()) {
              stack_[fi].pending_floor = floor;
              stack_[fi].waiting = true;
              return;
            }
            const double value = std::max(floor, *sub);
            if (value < f.best) f.best = value;
          }
        }
      }

      // Option 2: stage k..l joins the special processor (memory counted
      // with g−1, the deliberate underestimate of §4.2.1).
      const int k = f.k;
      f.opt = 0;
      --f.k;
      if (!options_.allow_special) {
        // Only normal stages exist and U(k,l) grows as k falls: once it
        // reaches the incumbent nothing below can win.
        if (e.stage_load >= f.best) break;
        continue;
      }
      const Bytes special_memory =
          memory_grid_.value(f.mem_idx) + e.special_stage_memory;
      if (special_memory > limit) continue;
      const Seconds special_load =
          load_grid_.snap(load_grid_.value(f.load_idx) + e.stage_load,
                          options_.grid.rounding);
      const double floor = std::max(special_load, e.link_load);
      if (floor >= f.best) continue;
      const int next_load_idx =
          load_grid_.index(special_load, options_.grid.rounding);
      const int next_mem_idx = memory_grid_.index(
          std::min(special_memory, limit), options_.grid.rounding);
      const auto sub = child_value(k - 1, f.p, next_load_idx, next_mem_idx,
                                   e.next_delay_idx);
      if (!sub.has_value()) {
        stack_[fi].pending_floor = floor;
        stack_[fi].waiting = true;
        return;
      }
      const double value = std::max(floor, *sub);
      if (value < f.best) f.best = value;
    }

    // Candidate scan finished: final update (probe 2 of 2) and pop.
    const auto [slot, inserted] = memo_.emplace(f.key, f.best);
    if (!inserted) *slot = f.best;
    ++stats_.memo_probes;
    last_value_ = f.best;
    stack_.pop_back();
  }

  /// Memoized value during reconstruction; a miss means the state budget
  /// dropped the state, which the forward pass also saw as infeasible.
  double lookup_value(int l, int p, int load_idx, int mem_idx,
                      int delay_idx) {
    if (l == 0) return base_l0(load_idx);
    if (p == 0) return special_base(l, load_idx, mem_idx, delay_idx);
    ++stats_.memo_child_lookups;
    if (const double* value =
            memo_.find(pack_state(l, p, load_idx, mem_idx, delay_idx))) {
      ++stats_.memo_hits;
      return *value;
    }
    return kInfinity;
  }

  void reconstruct(MadPipeDPResult& result) {
    // Walk the winning choices from the root. The memo only stores values,
    // so each step re-derives the argmin with the same candidate order,
    // pruning and strict-improvement rule as the forward pass — every
    // lookup it needs is either memoized or a base case, and the transition
    // cache is shared, so this costs one candidate scan per stage.
    std::vector<Stage> stages_reversed;
    std::vector<bool> special_reversed;

    int l = chain_.length();
    int p = root_processors();
    int load_idx = 0;
    int mem_idx = 0;
    int delay_idx = 0;
    const Bytes limit = platform_.memory_per_processor;

    while (l > 0) {
      if (p == 0) {
        stages_reversed.push_back(Stage{1, l});
        special_reversed.push_back(true);
        break;
      }
      double best = kInfinity;
      int best_k = -1;
      bool best_special = false;
      int best_next_load = load_idx;
      int best_next_mem = mem_idx;
      int best_next_delay = delay_idx;
      for (int k = l; k >= 1; --k) {
        const TransitionEntry e = transition(k, l, delay_idx);
        if (e.normal_memory <= limit) {
          const double floor = std::max(e.stage_load, e.link_load);
          if (floor < best) {
            const double sub =
                lookup_value(k - 1, p - 1, load_idx, mem_idx,
                             e.next_delay_idx);
            const double value = std::max(floor, sub);
            if (value < best) {
              best = value;
              best_k = k;
              best_special = false;
              best_next_delay = e.next_delay_idx;
            }
          }
        }
        if (!options_.allow_special) {
          if (e.stage_load >= best) break;
          continue;
        }
        const Bytes special_memory =
            memory_grid_.value(mem_idx) + e.special_stage_memory;
        if (special_memory > limit) continue;
        const Seconds special_load =
            load_grid_.snap(load_grid_.value(load_idx) + e.stage_load,
                            options_.grid.rounding);
        const double floor = std::max(special_load, e.link_load);
        if (floor >= best) continue;
        const int next_load_idx =
            load_grid_.index(special_load, options_.grid.rounding);
        const int next_mem_idx = memory_grid_.index(
            std::min(special_memory, limit), options_.grid.rounding);
        const double sub = lookup_value(k - 1, p, next_load_idx,
                                        next_mem_idx, e.next_delay_idx);
        const double value = std::max(floor, sub);
        if (value < best) {
          best = value;
          best_k = k;
          best_special = true;
          best_next_load = next_load_idx;
          best_next_mem = next_mem_idx;
          best_next_delay = e.next_delay_idx;
        }
      }
      MP_ENSURE(best_k >= 1, "reconstruction fell off the memoized path");

      stages_reversed.push_back(Stage{best_k, l});
      special_reversed.push_back(best_special);
      if (best_special) {
        load_idx = best_next_load;
        mem_idx = best_next_mem;
      } else {
        --p;
      }
      delay_idx = best_next_delay;
      l = best_k - 1;
    }

    std::vector<Stage> stages(stages_reversed.rbegin(), stages_reversed.rend());
    std::vector<bool> special(special_reversed.rbegin(),
                              special_reversed.rend());

    // Normal stages take processors 0,1,... in chain order; the special
    // processor is P−1 (it exists even if unused).
    const int normal_count = root_processors();
    std::vector<int> procs(stages.size());
    int next_normal = 0;
    for (std::size_t s = 0; s < stages.size(); ++s) {
      if (special[s]) {
        procs[s] = platform_.processors - 1;
        result.uses_special = true;
      } else {
        MP_ENSURE(next_normal < normal_count,
                  "more normal stages than normal processors");
        procs[s] = next_normal++;
      }
    }
    result.allocation.emplace(Partitioning(chain_, std::move(stages)),
                              std::move(procs), platform_.processors);
  }

  const Chain& chain_;
  const Platform& platform_;
  Seconds target_;
  MadPipeDPOptions options_;
  Grid load_grid_;
  Grid memory_grid_;
  Grid delay_grid_;
  util::FlatHash64<double> memo_;
  util::FlatHash64<TransitionEntry> transitions_;
  std::vector<Frame> stack_;
  double last_value_ = kInfinity;
  bool budget_hit_ = false;
  PlannerStats stats_;
};

// ---------------------------------------------------------------------------
// Reference engine (the original recursive implementation)
// ---------------------------------------------------------------------------

struct MemoEntry {
  double period = kInfinity;
  std::int16_t stage_start = -1;  ///< k of the winning transition
  std::int8_t to_special = 0;     ///< 1 when the winning stage goes special
};

class ReferenceDpSolver {
 public:
  ReferenceDpSolver(const Chain& chain, const Platform& platform,
                    Seconds target, const MadPipeDPOptions& options)
      : chain_(chain),
        platform_(platform),
        target_(target),
        options_(options),
        load_grid_(chain.total_compute(), options.grid.load_points),
        memory_grid_(platform.memory_per_processor, options.grid.memory_points),
        delay_grid_(delay_upper_bound(chain, platform),
                    options.grid.delay_points) {}

  MadPipeDPResult run() {
    MadPipeDPResult result;
    const int root_p = options_.allow_special ? platform_.processors - 1
                                              : platform_.processors;
    result.period = solve(chain_.length(), root_p, 0, 0, 0);
    result.states_visited = memo_.size();
    result.state_budget_hit = budget_hit_;
    if (std::isfinite(result.period)) {
      reconstruct(result);
    }
    stats_.dp_probes = 1;
    stats_.dp_states = static_cast<long long>(memo_.size());
    stats_.dp_state_visits = static_cast<long long>(memo_.size());
    stats_.state_budget_hits = budget_hit_ ? 1 : 0;
    result.stats = stats_;
    return result;
  }

 private:
  /// Everything a transition taking stage k..l out of state (l,·,·,·,iV)
  /// determines: next delay index, feasibility and memory of both targets.
  struct TransitionInfo {
    Seconds stage_load = 0.0;
    Seconds link_load = 0.0;  ///< C(k−1), the lower bound on the front link
    int next_delay_idx = 0;
    int active_batches = 0;  ///< g(k,l,V)
  };

  TransitionInfo transition(int k, int l, int delay_idx) const {
    TransitionInfo info;
    info.stage_load = chain_.compute_load(k, l);
    info.link_load =
        k > 1 ? platform_.boundary_comm_time(chain_, k - 1) : 0.0;
    const Seconds delay = delay_grid_.value(delay_idx);
    Seconds comm_for_delay = 0.0;
    switch (options_.delay_comm_variant) {
      case DelayCommVariant::BoundaryConsistent:
        comm_for_delay = info.link_load;
        break;
      case DelayCommVariant::PaperLiteral:
        comm_for_delay = platform_.boundary_comm_time(chain_, k);
        break;
    }
    const Seconds next_delay = delay_advance(
        delay_advance(delay, info.stage_load, target_), comm_for_delay,
        target_);
    info.next_delay_idx = delay_grid_.index(next_delay, options_.grid.rounding);
    info.active_batches = activation_count(chain_, k, l, delay, target_);
    return info;
  }

  double solve(int l, int p, int load_idx, int mem_idx, int delay_idx) {
    if (l == 0) return load_grid_.value(load_idx);

    if (p == 0) {
      if (!options_.allow_special) return kInfinity;
      // All remaining layers become one stage on the special processor.
      const Seconds delay = delay_grid_.value(delay_idx);
      const int g = activation_count(chain_, 1, l, delay, target_);
      const Bytes memory = memory_grid_.value(mem_idx) +
                           stage_memory(chain_, 1, l, g - 1);
      if (memory > platform_.memory_per_processor) return kInfinity;
      return chain_.compute_load(1, l) + load_grid_.value(load_idx);
    }

    const std::uint64_t key = pack_state(l, p, load_idx, mem_idx, delay_idx);
    ++stats_.memo_probes;
    if (const auto it = memo_.find(key); it != memo_.end()) {
      ++stats_.memo_hits;
      return it->second.period;
    }
    if (memo_.size() >= options_.max_states) {
      if (!budget_hit_) {
        budget_hit_ = true;
        warn_state_budget_once(g_reference_budget_warned);
      }
      return kInfinity;
    }
    // Reserve the slot first: cycles are impossible (l strictly decreases),
    // but this keeps the map stable across the recursive calls below.
    memo_.emplace(key, MemoEntry{});
    ++stats_.memo_probes;

    MemoEntry best;
    const Bytes limit = platform_.memory_per_processor;
    for (int k = l; k >= 1; --k) {
      const TransitionInfo info = transition(k, l, delay_idx);

      // Option 1: stage k..l on a fresh normal processor.
      const Stage stage{k, l};
      if (stage_memory(chain_, stage.first, stage.last, info.active_batches) <=
          limit) {
        const double sub =
            solve(k - 1, p - 1, load_idx, mem_idx, info.next_delay_idx);
        const double value =
            std::max({info.stage_load, info.link_load, sub});
        if (value < best.period) {
          best = {value, static_cast<std::int16_t>(k), 0};
        }
      }

      if (!options_.allow_special) continue;
      // Option 2: stage k..l joins the special processor (memory counted
      // with g−1, the deliberate underestimate of §4.2.1).
      const Bytes special_memory =
          memory_grid_.value(mem_idx) +
          stage_memory(chain_, stage.first, stage.last,
                       info.active_batches - 1);
      if (special_memory <= limit) {
        const Seconds special_load =
            load_grid_.snap(load_grid_.value(load_idx) + info.stage_load,
                            options_.grid.rounding);
        const int next_load_idx =
            load_grid_.index(special_load, options_.grid.rounding);
        const int next_mem_idx =
            memory_grid_.index(std::min(special_memory, limit),
                               options_.grid.rounding);
        const double sub =
            solve(k - 1, p, next_load_idx, next_mem_idx, info.next_delay_idx);
        const double value = std::max({special_load, info.link_load, sub});
        if (value < best.period) {
          best = {value, static_cast<std::int16_t>(k), 1};
        }
      }
    }

    memo_[key] = best;
    ++stats_.memo_probes;
    return best.period;
  }

  void reconstruct(MadPipeDPResult& result) {
    // Walk the winning choices from the root, re-deriving the follow-up
    // state exactly as solve() did.
    std::vector<Stage> stages_reversed;
    std::vector<bool> special_reversed;

    int l = chain_.length();
    int p = options_.allow_special ? platform_.processors - 1
                                   : platform_.processors;
    int load_idx = 0;
    int mem_idx = 0;
    int delay_idx = 0;

    while (l > 0) {
      if (p == 0) {
        stages_reversed.push_back(Stage{1, l});
        special_reversed.push_back(true);
        break;
      }
      const auto it =
          memo_.find(pack_state(l, p, load_idx, mem_idx, delay_idx));
      MP_ENSURE(it != memo_.end() && it->second.stage_start >= 1,
                "reconstruction fell off the memoized path");
      const MemoEntry& entry = it->second;
      const int k = entry.stage_start;
      const TransitionInfo info = transition(k, l, delay_idx);

      stages_reversed.push_back(Stage{k, l});
      special_reversed.push_back(entry.to_special != 0);
      if (entry.to_special != 0) {
        const Seconds special_load =
            load_grid_.snap(load_grid_.value(load_idx) + info.stage_load,
                            options_.grid.rounding);
        const Bytes special_memory =
            memory_grid_.value(mem_idx) +
            stage_memory(chain_, k, l, info.active_batches - 1);
        load_idx = load_grid_.index(special_load, options_.grid.rounding);
        mem_idx = memory_grid_.index(
            std::min(special_memory, platform_.memory_per_processor),
            options_.grid.rounding);
      } else {
        --p;
      }
      delay_idx = info.next_delay_idx;
      l = k - 1;
    }

    std::vector<Stage> stages(stages_reversed.rbegin(), stages_reversed.rend());
    std::vector<bool> special(special_reversed.rbegin(),
                              special_reversed.rend());

    // Normal stages take processors 0,1,... in chain order; the special
    // processor is P−1 (it exists even if unused).
    const int normal_count = options_.allow_special
                                 ? platform_.processors - 1
                                 : platform_.processors;
    std::vector<int> procs(stages.size());
    int next_normal = 0;
    for (std::size_t s = 0; s < stages.size(); ++s) {
      if (special[s]) {
        procs[s] = platform_.processors - 1;
        result.uses_special = true;
      } else {
        MP_ENSURE(next_normal < normal_count,
                  "more normal stages than normal processors");
        procs[s] = next_normal++;
      }
    }
    result.allocation.emplace(Partitioning(chain_, std::move(stages)),
                              std::move(procs), platform_.processors);
  }

  const Chain& chain_;
  const Platform& platform_;
  Seconds target_;
  MadPipeDPOptions options_;
  Grid load_grid_;
  Grid memory_grid_;
  Grid delay_grid_;
  std::unordered_map<std::uint64_t, MemoEntry> memo_;
  bool budget_hit_ = false;
  PlannerStats stats_;
};

}  // namespace

MadPipeDPResult madpipe_dp(const Chain& chain, const Platform& platform,
                           Seconds target_period,
                           const MadPipeDPOptions& options) {
  platform.validate();
  MP_EXPECT(target_period > 0.0, "target period must be positive");
  MP_EXPECT(chain.length() <= 1023, "chain too long for the packed DP state");
  MP_EXPECT(platform.processors <= 16,
            "packed DP state supports at most 16 processors");
  MP_EXPECT(options.grid.load_points <= 1024 &&
                options.grid.memory_points <= 1024 &&
                options.grid.delay_points <= 1024,
            "grids must fit the packed state (≤ 1024 points each)");

  obs::Span span("dp_probe", obs::kCatPlanner);
  MadPipeDPResult result;
  if (options.engine == DpEngine::ReferenceRecursive) {
    ReferenceDpSolver solver(chain, platform, target_period, options);
    result = solver.run();
  } else {
    FlatDpSolver solver(chain, platform, target_period, options);
    result = solver.run();
  }
  span.arg("states", static_cast<long long>(result.states_visited));
  span.arg("budget_hit", result.state_budget_hit ? 1 : 0);
  return result;
}

namespace detail {

void reset_state_budget_warnings() noexcept {
  g_flat_budget_warned.store(false, std::memory_order_relaxed);
  g_reference_budget_warned.store(false, std::memory_order_relaxed);
  g_budget_warnings_emitted.store(0, std::memory_order_relaxed);
}

long long state_budget_warning_count() noexcept {
  return g_budget_warnings_emitted.load(std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace madpipe
