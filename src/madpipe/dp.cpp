#include "madpipe/dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/memory_model.hpp"
#include "util/expect.hpp"
#include "util/logging.hpp"

namespace madpipe {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Packed DP state. Budgets: l ≤ 1023, p ≤ 15, grid indices ≤ 1023 each.
std::uint64_t pack_state(int l, int p, int load_idx, int mem_idx,
                         int delay_idx) {
  return (static_cast<std::uint64_t>(l) << 34) |
         (static_cast<std::uint64_t>(p) << 30) |
         (static_cast<std::uint64_t>(load_idx) << 20) |
         (static_cast<std::uint64_t>(mem_idx) << 10) |
         static_cast<std::uint64_t>(delay_idx);
}

struct MemoEntry {
  double period = kInfinity;
  std::int16_t stage_start = -1;  ///< k of the winning transition
  std::int8_t to_special = 0;     ///< 1 when the winning stage goes special
};

class DpSolver {
 public:
  DpSolver(const Chain& chain, const Platform& platform, Seconds target,
           const MadPipeDPOptions& options)
      : chain_(chain),
        platform_(platform),
        target_(target),
        options_(options),
        load_grid_(chain.total_compute(), options.grid.load_points),
        memory_grid_(platform.memory_per_processor, options.grid.memory_points),
        delay_grid_(delay_upper_bound(chain, platform),
                    options.grid.delay_points) {}

  static Seconds delay_upper_bound(const Chain& chain,
                                   const Platform& platform) {
    Seconds total = chain.total_compute();
    for (int j = 1; j < chain.length(); ++j) {
      total += platform.boundary_comm_time(chain, j);
    }
    return total;
  }

  MadPipeDPResult run() {
    MadPipeDPResult result;
    const int root_p = options_.allow_special ? platform_.processors - 1
                                              : platform_.processors;
    result.period = solve(chain_.length(), root_p, 0, 0, 0);
    result.states_visited = memo_.size();
    if (std::isfinite(result.period)) {
      reconstruct(result);
    }
    return result;
  }

 private:
  /// Everything a transition taking stage k..l out of state (l,·,·,·,iV)
  /// determines: next delay index, feasibility and memory of both targets.
  struct TransitionInfo {
    Seconds stage_load = 0.0;
    Seconds link_load = 0.0;  ///< C(k−1), the lower bound on the front link
    int next_delay_idx = 0;
    int active_batches = 0;  ///< g(k,l,V)
  };

  TransitionInfo transition(int k, int l, int delay_idx) const {
    TransitionInfo info;
    info.stage_load = chain_.compute_load(k, l);
    info.link_load =
        k > 1 ? platform_.boundary_comm_time(chain_, k - 1) : 0.0;
    const Seconds delay = delay_grid_.value(delay_idx);
    Seconds comm_for_delay = 0.0;
    switch (options_.delay_comm_variant) {
      case DelayCommVariant::BoundaryConsistent:
        comm_for_delay = info.link_load;
        break;
      case DelayCommVariant::PaperLiteral:
        comm_for_delay = platform_.boundary_comm_time(chain_, k);
        break;
    }
    const Seconds next_delay = delay_advance(
        delay_advance(delay, info.stage_load, target_), comm_for_delay,
        target_);
    info.next_delay_idx = delay_grid_.index(next_delay, options_.grid.rounding);
    info.active_batches = activation_count(chain_, k, l, delay, target_);
    return info;
  }

  double solve(int l, int p, int load_idx, int mem_idx, int delay_idx) {
    if (l == 0) return load_grid_.value(load_idx);

    if (p == 0) {
      if (!options_.allow_special) return kInfinity;
      // All remaining layers become one stage on the special processor.
      const Seconds delay = delay_grid_.value(delay_idx);
      const int g = activation_count(chain_, 1, l, delay, target_);
      const Bytes memory = memory_grid_.value(mem_idx) +
                           stage_memory(chain_, 1, l, g - 1);
      if (memory > platform_.memory_per_processor) return kInfinity;
      return chain_.compute_load(1, l) + load_grid_.value(load_idx);
    }

    const std::uint64_t key = pack_state(l, p, load_idx, mem_idx, delay_idx);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      return it->second.period;
    }
    if (memo_.size() >= options_.max_states) {
      log::warn("MadPipe-DP state budget exhausted; treating as infeasible");
      return kInfinity;
    }
    // Reserve the slot first: cycles are impossible (l strictly decreases),
    // but this keeps the map stable across the recursive calls below.
    memo_.emplace(key, MemoEntry{});

    MemoEntry best;
    const Bytes limit = platform_.memory_per_processor;
    for (int k = l; k >= 1; --k) {
      const TransitionInfo info = transition(k, l, delay_idx);

      // Option 1: stage k..l on a fresh normal processor.
      const Stage stage{k, l};
      if (stage_memory(chain_, stage.first, stage.last, info.active_batches) <=
          limit) {
        const double sub =
            solve(k - 1, p - 1, load_idx, mem_idx, info.next_delay_idx);
        const double value =
            std::max({info.stage_load, info.link_load, sub});
        if (value < best.period) {
          best = {value, static_cast<std::int16_t>(k), 0};
        }
      }

      if (!options_.allow_special) continue;
      // Option 2: stage k..l joins the special processor (memory counted
      // with g−1, the deliberate underestimate of §4.2.1).
      const Bytes special_memory =
          memory_grid_.value(mem_idx) +
          stage_memory(chain_, stage.first, stage.last,
                       info.active_batches - 1);
      if (special_memory <= limit) {
        const Seconds special_load =
            load_grid_.snap(load_grid_.value(load_idx) + info.stage_load,
                            options_.grid.rounding);
        const int next_load_idx =
            load_grid_.index(special_load, options_.grid.rounding);
        const int next_mem_idx =
            memory_grid_.index(std::min(special_memory, limit),
                               options_.grid.rounding);
        const double sub =
            solve(k - 1, p, next_load_idx, next_mem_idx, info.next_delay_idx);
        const double value = std::max({special_load, info.link_load, sub});
        if (value < best.period) {
          best = {value, static_cast<std::int16_t>(k), 1};
        }
      }
    }

    memo_[key] = best;
    return best.period;
  }

  void reconstruct(MadPipeDPResult& result) {
    // Walk the winning choices from the root, re-deriving the follow-up
    // state exactly as solve() did.
    std::vector<Stage> stages_reversed;
    std::vector<bool> special_reversed;

    int l = chain_.length();
    int p = options_.allow_special ? platform_.processors - 1
                                   : platform_.processors;
    int load_idx = 0;
    int mem_idx = 0;
    int delay_idx = 0;

    while (l > 0) {
      if (p == 0) {
        stages_reversed.push_back(Stage{1, l});
        special_reversed.push_back(true);
        break;
      }
      const auto it =
          memo_.find(pack_state(l, p, load_idx, mem_idx, delay_idx));
      MP_ENSURE(it != memo_.end() && it->second.stage_start >= 1,
                "reconstruction fell off the memoized path");
      const MemoEntry& entry = it->second;
      const int k = entry.stage_start;
      const TransitionInfo info = transition(k, l, delay_idx);

      stages_reversed.push_back(Stage{k, l});
      special_reversed.push_back(entry.to_special != 0);
      if (entry.to_special != 0) {
        const Seconds special_load =
            load_grid_.snap(load_grid_.value(load_idx) + info.stage_load,
                            options_.grid.rounding);
        const Bytes special_memory =
            memory_grid_.value(mem_idx) +
            stage_memory(chain_, k, l, info.active_batches - 1);
        load_idx = load_grid_.index(special_load, options_.grid.rounding);
        mem_idx = memory_grid_.index(
            std::min(special_memory, platform_.memory_per_processor),
            options_.grid.rounding);
      } else {
        --p;
      }
      delay_idx = info.next_delay_idx;
      l = k - 1;
    }

    std::vector<Stage> stages(stages_reversed.rbegin(), stages_reversed.rend());
    std::vector<bool> special(special_reversed.rbegin(),
                              special_reversed.rend());

    // Normal stages take processors 0,1,... in chain order; the special
    // processor is P−1 (it exists even if unused).
    const int normal_count = options_.allow_special
                                 ? platform_.processors - 1
                                 : platform_.processors;
    std::vector<int> procs(stages.size());
    int next_normal = 0;
    for (std::size_t s = 0; s < stages.size(); ++s) {
      if (special[s]) {
        procs[s] = platform_.processors - 1;
        result.uses_special = true;
      } else {
        MP_ENSURE(next_normal < normal_count,
                  "more normal stages than normal processors");
        procs[s] = next_normal++;
      }
    }
    result.allocation.emplace(Partitioning(chain_, std::move(stages)),
                              std::move(procs), platform_.processors);
  }

  const Chain& chain_;
  const Platform& platform_;
  Seconds target_;
  MadPipeDPOptions options_;
  Grid load_grid_;
  Grid memory_grid_;
  Grid delay_grid_;
  std::unordered_map<std::uint64_t, MemoEntry> memo_;
};

}  // namespace

MadPipeDPResult madpipe_dp(const Chain& chain, const Platform& platform,
                           Seconds target_period,
                           const MadPipeDPOptions& options) {
  platform.validate();
  MP_EXPECT(target_period > 0.0, "target period must be positive");
  MP_EXPECT(chain.length() <= 1023, "chain too long for the packed DP state");
  MP_EXPECT(platform.processors <= 16,
            "packed DP state supports at most 16 processors");
  MP_EXPECT(options.grid.load_points <= 1024 &&
                options.grid.memory_points <= 1024 &&
                options.grid.delay_points <= 1024,
            "grids must fit the packed state (≤ 1024 points each)");

  DpSolver solver(chain, platform, target_period, options);
  return solver.run();
}

}  // namespace madpipe
