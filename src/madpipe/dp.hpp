// MadPipe-DP (§4.2.2): for a fixed target period T̂, the memoized dynamic
// program over states (l, p, t_P, m_P, V) that builds the best
// non-contiguous allocation in which P−1 "normal" processors hold one stage
// each and one "special" processor may hold any number of stages.
//
//   T(l, p, t_P, m_P, V) = smallest achievable period allocating the first l
//   layers with p normal processors still free, given the special processor
//   already carries load t_P and memory m_P, and the delay between F_l and
//   B_l is at least V.
//
// Transitions pick the last stage k..l and send it to a normal processor
// (feasible if 𝓜(k,l,g) ≤ M) or to the special one (feasible if
// m_P + 𝓜(k,l,g−1) ≤ M — the deliberate underestimate of §4.2.1 that the
// phase-2 scheduler later corrects). Delays advance with the ⊕ operator.
//
// Continuous quantities are discretized on the grids of `Discretization`;
// the recursion is memoized on packed state keys, so only reachable states
// are ever evaluated.
#pragma once

#include <optional>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/platform.hpp"
#include "madpipe/discretization.hpp"
#include "madpipe/planner_stats.hpp"

namespace madpipe {

/// Which communication term advances the delay in V′ = (V ⊕ U(k,l)) ⊕ C(·).
enum class DelayCommVariant {
  /// C(k−1) = 2·a_{k−1}/β — the communication actually crossing the
  /// boundary in front of the stage, consistent with the link-load terms of
  /// T_N/T_S in the paper. Default.
  BoundaryConsistent,
  /// C(k) = 2·a_k/β — the paper's literal formula in §4.2.2 (which we read
  /// as a typo; kept for comparison).
  PaperLiteral,
};

/// Which DP implementation evaluates the recurrence. Both produce identical
/// periods and allocations; the golden-equivalence tests enforce it.
enum class DpEngine {
  /// Fast path (default): explicit work-stack iteration (no recursion-depth
  /// hazard at L = 4095), a flat open-addressing memo with 16-byte entries,
  /// a (k, l, delay) transition cache, and dominated-candidate pruning.
  FlatIterative,
  /// The original recursive, std::unordered_map-memoized implementation;
  /// kept as the reference for equivalence testing.
  ReferenceRecursive,
  /// Wavefront engine: states are grouped into per-layer structure-of-arrays
  /// slabs (all transitions strictly decrease l, so layer L's slab is final
  /// before layer L−1 is expanded); each wavefront is expanded by
  /// `MadPipeDPOptions::threads` shards on the shared thread pool, with
  /// per-shard emission buffers merged deterministically at the barrier.
  /// Periods, allocations and states are bit-identical across thread counts
  /// and identical in period/allocation to the other two engines
  /// (DESIGN.md §11).
  ParallelWavefront,
};

struct MadPipeDPOptions {
  Discretization grid;
  DelayCommVariant delay_comm_variant = DelayCommVariant::BoundaryConsistent;
  DpEngine engine = DpEngine::FlatIterative;
  /// When false, the special processor is removed and all P processors are
  /// normal — MadPipe degrades to a memory-aware *contiguous* partitioner
  /// (the ablation of DESIGN.md).
  bool allow_special = true;
  /// Abort (treat as infeasible) past this many memoized states; a safety
  /// valve for extreme grids, never hit with the presets.
  std::size_t max_states = 80'000'000;
  /// Shard count for the wavefront engine. Values > 1 route FlatIterative
  /// probes to DpEngine::ParallelWavefront. Shards — not pool threads —
  /// define the work decomposition, so results are bit-identical whatever
  /// the pool actually runs them on (including serially).
  int threads = 1;
};

struct MadPipeDPResult {
  /// The achieved period T(L, P−1, 0, 0, 0); infinity when infeasible.
  Seconds period = 0.0;
  /// Reconstructed allocation (normal stages on processors 0..P−2 in chain
  /// order of first use; the special processor is P−1). Present iff feasible.
  std::optional<Allocation> allocation;
  /// True when at least one stage sits on the special processor.
  bool uses_special = false;
  std::size_t states_visited = 0;
  /// True when the max_states safety valve fired: unexplored states were
  /// treated as infeasible, so an infinite `period` means "truncated", not
  /// necessarily "infeasible".
  bool state_budget_hit = false;
  PlannerStats stats;
};

/// Run MadPipe-DP with target period `target_period` (T̂ > 0).
MadPipeDPResult madpipe_dp(const Chain& chain, const Platform& platform,
                           Seconds target_period,
                           const MadPipeDPOptions& options = {});

namespace detail {

/// Test hooks for the state-budget "warn once" valve. The warning is
/// emitted at most once per process *per engine* through an atomic guard,
/// so concurrent speculative probes (and serve workers) sharing an engine
/// kind produce exactly one log line; every probe still reports
/// `state_budget_hit` in its own result.
void reset_state_budget_warnings() noexcept;
long long state_budget_warning_count() noexcept;

}  // namespace detail

}  // namespace madpipe
