#include "madpipe/planner.hpp"

#include <algorithm>
#include <chrono>

#include "obs/trace.hpp"
#include "schedule/one_f_one_b.hpp"
#include "util/expect.hpp"
#include "util/logging.hpp"
#include "util/threading.hpp"

namespace madpipe {

namespace {

/// Phase 2 for one allocation: 1F1B* when contiguous (provably
/// memory-optimal), the cyclic search otherwise. `phase1_period` is the
/// period lower bound argued in §4.2.3. `stats` receives this candidate's
/// period-search counters (zero for the search-free contiguous path).
std::optional<Plan> schedule_allocation(const Allocation& allocation,
                                        const Chain& chain,
                                        const Platform& platform,
                                        Seconds phase1_period,
                                        const PeriodSearchOptions& options,
                                        PlannerStats& stats) {
  if (allocation.contiguous()) {
    return plan_one_f_one_b(allocation, chain, platform);
  }
  const PeriodSearchResult phase2 =
      find_min_period(allocation, chain, platform, phase1_period, options);
  stats.phase2_probes = phase2.probes;
  stats.speculative_probes = phase2.speculative_probes;
  stats.speculative_hits = phase2.speculative_hits;
  stats.phase2_wall_seconds = phase2.wall_seconds;
  if (!phase2.feasible) return std::nullopt;
  return Plan{"madpipe", allocation, phase2.pattern, 0.0, 0.0};
}

}  // namespace

std::optional<Plan> plan_madpipe(const Chain& chain, const Platform& platform,
                                 const MadPipeOptions& options) {
  MP_EXPECT(options.schedule_best_of >= 1, "schedule_best_of must be >= 1");
  obs::Span span("plan_madpipe", obs::kCatPlanner);
  const auto start_time = std::chrono::steady_clock::now();

  Phase1Options phase1_options = options.phase1;
  if (options.disable_special_processor) {
    phase1_options.dp.allow_special = false;
  }
  if (options.schedule_best_of > 1) {
    phase1_options.keep_iterate_allocations = true;
  }
  const Phase1Result phase1 = madpipe_phase1(chain, platform, phase1_options);
  if (!phase1.feasible()) {
    log::info("MadPipe phase 1 found no memory-feasible allocation");
    phase1.stats.publish();
    return std::nullopt;
  }

  // Candidate allocations to schedule: the best iterate (paper behaviour),
  // plus — with the schedule_best_of extension — the next best distinct ones.
  std::vector<std::pair<Seconds, const Allocation*>> candidates;
  candidates.emplace_back(phase1.period, &*phase1.allocation);
  if (options.schedule_best_of > 1) {
    std::vector<const Phase1Iteration*> iterates;
    for (const Phase1Iteration& it : phase1.trace) {
      if (it.allocation.has_value()) iterates.push_back(&it);
    }
    std::sort(iterates.begin(), iterates.end(),
              [](const Phase1Iteration* a, const Phase1Iteration* b) {
                return a->achieved < b->achieved;
              });
    for (const Phase1Iteration* it : iterates) {
      if (static_cast<int>(candidates.size()) >= options.schedule_best_of) break;
      const bool duplicate = std::any_of(
          candidates.begin(), candidates.end(),
          [&](const auto& c) { return *c.second == *it->allocation; });
      if (!duplicate) candidates.emplace_back(it->achieved, &*it->allocation);
    }
  }

  // Each candidate's phase 2 is independent: schedule them concurrently and
  // fold sequentially afterwards, so the winner (first strictly-smaller
  // period in candidate order) is the one the sequential loop would pick.
  std::vector<std::optional<Plan>> plans(candidates.size());
  std::vector<PlannerStats> phase2_stats(candidates.size());
  const std::size_t workers =
      options.workers != 0
          ? std::min<std::size_t>(options.workers, candidates.size())
          : candidates.size();
  par::parallel_for(
      0, candidates.size(),
      [&](std::size_t i) {
        plans[i] = schedule_allocation(*candidates[i].second, chain, platform,
                                       candidates[i].first, options.phase2,
                                       phase2_stats[i]);
      },
      workers);

  PlannerStats stats = phase1.stats;
  std::optional<Plan> best;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    stats.absorb(phase2_stats[i]);
    if (plans[i] && (!best || plans[i]->period() < best->period())) {
      best = std::move(plans[i]);
    }
  }
  if (!best) {
    log::info("MadPipe phase 2 could not schedule any phase-1 allocation");
    stats.publish();
    return std::nullopt;
  }

  best->planner = options.disable_special_processor ? "madpipe-contig"
                                                    : "madpipe";
  best->phase1_period = phase1.period;
  best->planning_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  best->stats = stats;
  span.arg("dp_states", stats.dp_states);
  stats.publish();
  return best;
}

}  // namespace madpipe
