// End-to-end MadPipe planner: phase 1 (Algorithm 1 over MadPipe-DP)
// produces an allocation, phase 2 schedules it — with the provably-optimal
// 1F1B* when the allocation happens to be contiguous, and with the cyclic
// branch-and-bound scheduler (our stand-in for the ILP of the paper's
// reference [1]) otherwise.
//
// Observability: plan_madpipe wraps itself and its phases in obs::Span
// scopes (`plan_madpipe`, `phase1_bisection`, `phase2_period_search`,
// `dp_probe`; category "planner") and publishes the run's PlannerStats
// into the obs::Registry on exit — both are no-ops costing a few ns when
// no sink is armed. See DESIGN.md §9.
#pragma once

#include <optional>

#include "core/plan.hpp"
#include "cyclic/period_search.hpp"
#include "madpipe/search.hpp"

namespace madpipe {

struct MadPipeOptions {
  Phase1Options phase1;
  PeriodSearchOptions phase2;
  /// Forbid the special processor (every transition must use a normal
  /// processor): an ablation that reduces MadPipe to "memory-aware
  /// contiguous" planning.
  bool disable_special_processor = false;
  /// Extension (not in the paper, ablated in bench_ablation): schedule the
  /// best `schedule_best_of` *distinct* phase-1 iterate allocations and keep
  /// the smallest real period, instead of only the iterate with the best
  /// phase-1 estimate. 1 = the paper's behaviour.
  int schedule_best_of = 1;
  /// Worker threads for scheduling the schedule_best_of candidates
  /// concurrently (each candidate's period search is independent; the
  /// winner is picked by the same deterministic rule as the sequential
  /// loop). 0 = one per candidate.
  std::size_t workers = 0;
};

/// Plan `chain` on `platform` with MadPipe. Returns nullopt when no
/// allocation fits in memory at all.
std::optional<Plan> plan_madpipe(const Chain& chain, const Platform& platform,
                                 const MadPipeOptions& options = {});

}  // namespace madpipe
