#include "madpipe/planner_stats.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace madpipe {

void PlannerStats::absorb(const PlannerStats& other) noexcept {
  dp_probes += other.dp_probes;
  dp_states += other.dp_states;
  dp_state_visits += other.dp_state_visits;
  memo_probes += other.memo_probes;
  memo_child_lookups += other.memo_child_lookups;
  memo_hits += other.memo_hits;
  memo_max_load_factor =
      std::max(memo_max_load_factor, other.memo_max_load_factor);
  transition_lookups += other.transition_lookups;
  transition_hits += other.transition_hits;
  state_budget_hits += other.state_budget_hits;
  phase1_probes += other.phase1_probes;
  phase2_probes += other.phase2_probes;
  speculative_probes += other.speculative_probes;
  speculative_hits += other.speculative_hits;
  phase1_wall_seconds += other.phase1_wall_seconds;
  phase2_wall_seconds += other.phase2_wall_seconds;
}

void PlannerStats::write_json(json::Writer& writer) const {
  writer.begin_object();
  writer.key("dp_probes");
  writer.value(dp_probes);
  writer.key("dp_states");
  writer.value(dp_states);
  writer.key("dp_state_visits");
  writer.value(dp_state_visits);
  writer.key("memo_probes");
  writer.value(memo_probes);
  writer.key("memo_child_lookups");
  writer.value(memo_child_lookups);
  writer.key("memo_hits");
  writer.value(memo_hits);
  writer.key("memo_max_load_factor");
  writer.value(memo_max_load_factor);
  writer.key("transition_lookups");
  writer.value(transition_lookups);
  writer.key("transition_hits");
  writer.value(transition_hits);
  writer.key("state_budget_hits");
  writer.value(state_budget_hits);
  writer.key("phase1_probes");
  writer.value(phase1_probes);
  writer.key("phase2_probes");
  writer.value(phase2_probes);
  writer.key("speculative_probes");
  writer.value(speculative_probes);
  writer.key("speculative_hits");
  writer.value(speculative_hits);
  writer.key("phase1_wall_seconds");
  writer.value(phase1_wall_seconds);
  writer.key("phase2_wall_seconds");
  writer.value(phase2_wall_seconds);
  writer.end_object();
}

}  // namespace madpipe
