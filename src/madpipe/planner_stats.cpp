#include "madpipe/planner_stats.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace madpipe {

void PlannerStats::absorb(const PlannerStats& other) noexcept {
  dp_probes += other.dp_probes;
  dp_states += other.dp_states;
  dp_state_visits += other.dp_state_visits;
  memo_probes += other.memo_probes;
  memo_child_lookups += other.memo_child_lookups;
  memo_hits += other.memo_hits;
  memo_max_load_factor =
      std::max(memo_max_load_factor, other.memo_max_load_factor);
  memo_rehashes += other.memo_rehashes;
  memo_rehashes_avoided += other.memo_rehashes_avoided;
  transition_lookups += other.transition_lookups;
  transition_hits += other.transition_hits;
  state_budget_hits += other.state_budget_hits;
  phase1_probes += other.phase1_probes;
  phase2_probes += other.phase2_probes;
  speculative_probes += other.speculative_probes;
  speculative_hits += other.speculative_hits;
  phase1_wall_seconds += other.phase1_wall_seconds;
  phase2_wall_seconds += other.phase2_wall_seconds;
}

void PlannerStats::write_json(json::Writer& writer) const {
  writer.begin_object();
  writer.key("dp_probes");
  writer.value(dp_probes);
  writer.key("dp_states");
  writer.value(dp_states);
  writer.key("dp_state_visits");
  writer.value(dp_state_visits);
  writer.key("memo_probes");
  writer.value(memo_probes);
  writer.key("memo_child_lookups");
  writer.value(memo_child_lookups);
  writer.key("memo_hits");
  writer.value(memo_hits);
  writer.key("memo_max_load_factor");
  writer.value(memo_max_load_factor);
  writer.key("memo_rehashes");
  writer.value(memo_rehashes);
  writer.key("memo_rehashes_avoided");
  writer.value(memo_rehashes_avoided);
  writer.key("transition_lookups");
  writer.value(transition_lookups);
  writer.key("transition_hits");
  writer.value(transition_hits);
  writer.key("state_budget_hits");
  writer.value(state_budget_hits);
  writer.key("phase1_probes");
  writer.value(phase1_probes);
  writer.key("phase2_probes");
  writer.value(phase2_probes);
  writer.key("speculative_probes");
  writer.value(speculative_probes);
  writer.key("speculative_hits");
  writer.value(speculative_hits);
  writer.key("phase1_wall_seconds");
  writer.value(phase1_wall_seconds);
  writer.key("phase2_wall_seconds");
  writer.value(phase2_wall_seconds);
  writer.end_object();
}

void PlannerStats::publish() const {
  // Registry references resolved once and cached (entities are
  // process-lifetime); publish() itself is only relaxed atomic adds.
  struct Metrics {
    obs::Counter& dp_probes;
    obs::Counter& dp_states;
    obs::Counter& dp_state_visits;
    obs::Counter& memo_probes;
    obs::Counter& memo_child_lookups;
    obs::Counter& memo_hits;
    obs::Gauge& memo_max_load_factor;
    obs::Counter& memo_rehashes;
    obs::Counter& memo_rehashes_avoided;
    obs::Counter& transition_lookups;
    obs::Counter& transition_hits;
    obs::Counter& state_budget_hits;
    obs::Counter& phase1_probes;
    obs::Counter& phase2_probes;
    obs::Counter& speculative_probes;
    obs::Counter& speculative_hits;
    obs::Histogram& phase1_wall;
    obs::Histogram& phase2_wall;
  };
  static Metrics metrics = [] {
    obs::Registry& r = obs::Registry::global();
    return Metrics{
        r.counter("madpipe_planner_dp_probes_total",
                  "MadPipe-DP invocations"),
        r.counter("madpipe_planner_dp_states_total",
                  "DP states memoized across all probes"),
        r.counter("madpipe_planner_dp_state_visits_total",
                  "DP state evaluations started (frames run)"),
        r.counter("madpipe_planner_memo_probes_total",
                  "Per-state memo operations"),
        r.counter("madpipe_planner_memo_child_lookups_total",
                  "Child-value lookups in the k-loop"),
        r.counter("madpipe_planner_memo_hits_total",
                  "Memo lookups (either kind) that hit"),
        r.gauge("madpipe_planner_memo_max_load_factor",
                "Worst flat-table occupancy of the most recent plan"),
        r.counter("madpipe_planner_memo_rehashes_total",
                  "Entry-moving memo growth rehashes (pre-reserve misses)"),
        r.counter("madpipe_planner_memo_rehashes_avoided_total",
                  "Memo growth rehashes skipped by the up-front reserve"),
        r.counter("madpipe_planner_transition_lookups_total",
                  "(k, l, delay) transition-cache consultations"),
        r.counter("madpipe_planner_transition_hits_total",
                  "Transition-cache hits"),
        r.counter("madpipe_planner_state_budget_hits_total",
                  "DP probes that tripped max_states"),
        r.counter("madpipe_planner_phase1_probes_total",
                  "DP probes consumed by Algorithm 1"),
        r.counter("madpipe_planner_phase2_probes_total",
                  "bb_schedule probes consumed by the cyclic period search"),
        r.counter("madpipe_planner_speculative_probes_total",
                  "Extra probes launched ahead of need"),
        r.counter("madpipe_planner_speculative_hits_total",
                  "Demanded probes served from a speculative batch"),
        r.histogram("madpipe_planner_phase1_seconds",
                    obs::latency_bounds_seconds(),
                    "Phase-1 (Algorithm 1) wall time per plan"),
        r.histogram("madpipe_planner_phase2_seconds",
                    obs::latency_bounds_seconds(),
                    "Phase-2 (period search) wall time per plan"),
    };
  }();
  metrics.dp_probes.add(dp_probes);
  metrics.dp_states.add(dp_states);
  metrics.dp_state_visits.add(dp_state_visits);
  metrics.memo_probes.add(memo_probes);
  metrics.memo_child_lookups.add(memo_child_lookups);
  metrics.memo_hits.add(memo_hits);
  metrics.memo_max_load_factor.set(memo_max_load_factor);
  metrics.memo_rehashes.add(memo_rehashes);
  metrics.memo_rehashes_avoided.add(memo_rehashes_avoided);
  metrics.transition_lookups.add(transition_lookups);
  metrics.transition_hits.add(transition_hits);
  metrics.state_budget_hits.add(state_budget_hits);
  metrics.phase1_probes.add(phase1_probes);
  metrics.phase2_probes.add(phase2_probes);
  metrics.speculative_probes.add(speculative_probes);
  metrics.speculative_hits.add(speculative_hits);
  metrics.phase1_wall.observe(phase1_wall_seconds);
  metrics.phase2_wall.observe(phase2_wall_seconds);
}

}  // namespace madpipe
