// Perf counters threaded through the planner hot path — MadPipe-DP's memo
// and transition cache, Algorithm 1's bisection and the cyclic period
// search — so planner throughput is observable end to end: in unit tests, in
// the bench harness (BENCH_planner.json) and in `madpipe planner`. The
// planner-side sibling of solver::SolverStats.
#pragma once

namespace madpipe::json {
class Writer;
}

namespace madpipe {

/// Defined when MadPipeDPResult/Phase1Result/Plan carry a PlannerStats
/// block; lets tools compile against both the instrumented and the
/// pre-instrumentation API.
#define MADPIPE_PLANNER_STATS 1

struct PlannerStats {
  // --- MadPipe-DP ---
  long long dp_probes = 0;       ///< madpipe_dp invocations
  long long dp_states = 0;       ///< states memoized across all probes
  long long dp_state_visits = 0; ///< state evaluations started (frames run)
  /// Per-state memo operations: the entry placeholder insert plus the final
  /// value update — exactly two hashings per visited state (the old
  /// find/emplace/assign pattern did three).
  long long memo_probes = 0;
  long long memo_child_lookups = 0;  ///< child-value lookups in the k-loop
  long long memo_hits = 0;           ///< lookups (either kind) that hit
  double memo_max_load_factor = 0.0; ///< worst flat-table occupancy seen
  /// Entry-moving growth rehashes the memo performed (growth churn a bad
  /// pre-reserve causes) and the ones the up-front reserve skipped.
  long long memo_rehashes = 0;
  long long memo_rehashes_avoided = 0;
  long long transition_lookups = 0;  ///< (k, l, delay) cache consultations
  long long transition_hits = 0;
  long long state_budget_hits = 0;   ///< DP probes that tripped max_states

  // --- bisection searches ---
  long long phase1_probes = 0;  ///< DP probes consumed by Algorithm 1
  long long phase2_probes = 0;  ///< bb_schedule probes consumed by the
                                ///< cyclic period search
  long long speculative_probes = 0;  ///< extra probes launched ahead of need
  long long speculative_hits = 0;    ///< demanded probes served from a
                                     ///< speculative batch
  double phase1_wall_seconds = 0.0;
  double phase2_wall_seconds = 0.0;

  /// Sum every counter of `other` into this block (load factor takes the
  /// max). Callers that own a field (e.g. plan_madpipe owns the phase wall
  /// clocks) overwrite it after accumulating.
  void absorb(const PlannerStats& other) noexcept;

  /// Append this block as one JSON object value (the caller writes the key).
  void write_json(json::Writer& writer) const;

  /// Add this block into the process-wide obs::Registry (the cumulative
  /// madpipe_planner_* counters and the per-phase wall histograms). Called
  /// once per plan_madpipe run so registry totals aggregate per plan; the
  /// struct's own fields are unchanged (they remain the per-run view).
  /// Thread-safe (relaxed atomic adds).
  void publish() const;
};

}  // namespace madpipe
