#include "madpipe/search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/logging.hpp"
#include "util/threading.hpp"

namespace madpipe {

namespace {

/// Exact-value cache key: probe results may only be reused for a target that
/// is bit-identical to the one the sequential search would request.
std::uint64_t target_key(Seconds target) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(target));
  std::memcpy(&bits, &target, sizeof(bits));
  return bits;
}

int auto_speculation(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min<unsigned>(4, std::max<unsigned>(hw, 1)));
}

/// Speculative DP-probe runner for Algorithm 1.
///
/// The bisection consumes probe results strictly in sequence, but each
/// iteration's *next* target is a deterministic function of the current
/// (lb, ub, target) and the probe outcome. Two outcomes lead to targets we
/// can predict without knowing dp.period exactly:
///
///   * infeasible (dp.period = ∞):  lb′ = max(lb, target), ub′ = ub
///   * feasible with dp.period ≤ lb: lb′ = lb, ub′ = min(ub, target)
///
/// (The remaining outcomes put dp.period itself into a bound, which no
/// speculation can guess.) When the search demands a target that is not yet
/// cached, we expand this two-outcome tree breadth-first into a batch of up
/// to W targets — using the very same floating-point expressions as the
/// real loop, so a predicted target is bit-identical to the demanded one —
/// and run the whole batch concurrently. Mispredicted probes are simply
/// never consumed; consumed results are identical to a sequential run for
/// every W.
class ProbeRunner {
 public:
  ProbeRunner(const Chain& chain, const Platform& platform,
              const Phase1Options& options, int iterations_left_at_start)
      : chain_(chain),
        platform_(platform),
        options_(options),
        width_(auto_speculation(options.speculation)),
        budget_(iterations_left_at_start) {}

  /// Result for `target`, launching a speculative batch on a cache miss.
  /// (lb, ub) is the search state *before* this probe; `consumed` is the
  /// number of probes the search has consumed so far.
  const MadPipeDPResult& demand(Seconds target, Seconds lb, Seconds ub,
                                int consumed) {
    const std::uint64_t key = target_key(target);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++stats_.speculative_hits;
      return it->second;
    }
    launch_batch(target, lb, ub, budget_ - consumed);
    const auto it = cache_.find(key);
    MP_ENSURE(it != cache_.end(), "demanded probe missing from its batch");
    return it->second;
  }

  const PlannerStats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    Seconds target;
    Seconds lb, ub;  ///< search state the probe would be issued from
    int depth;       ///< probes consumed before this one could be demanded
  };

  void launch_batch(Seconds target, Seconds lb, Seconds ub,
                    int iterations_left) {
    // Breadth-first over the two predictable outcomes, bounded by the
    // speculation width and the iterations the search can still consume.
    std::vector<Pending> batch;
    batch.push_back({target, lb, ub, 0});
    for (std::size_t i = 0;
         i < batch.size() && batch.size() < static_cast<std::size_t>(width_);
         ++i) {
      const Pending cur = batch[i];
      if (cur.depth + 1 >= iterations_left) continue;
      // Outcome A: infeasible probe. lb ← max(lb, min(∞, T̂)) = max(lb, T̂).
      {
        const Seconds nlb = std::max(cur.lb, cur.target);
        const Seconds nub = cur.ub;
        maybe_push(batch, nlb, nub, cur.depth + 1);
      }
      if (batch.size() >= static_cast<std::size_t>(width_)) break;
      // Outcome B: feasible with dp.period ≤ lb. lb unchanged,
      // ub ← min(ub, max(dp.period, T̂)) = min(ub, T̂).
      {
        const Seconds nlb = cur.lb;
        const Seconds nub = std::min(cur.ub, cur.target);
        maybe_push(batch, nlb, nub, cur.depth + 1);
      }
    }

    std::vector<MadPipeDPResult> results(batch.size());
    const std::size_t workers =
        options_.workers != 0
            ? std::min<std::size_t>(options_.workers, batch.size())
            : batch.size();
    par::parallel_for(
        0, batch.size(),
        [&](std::size_t i) {
          results[i] =
              madpipe_dp(chain_, platform_, batch[i].target, options_.dp);
        },
        workers);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      stats_.absorb(results[i].stats);
      cache_.emplace(target_key(batch[i].target), std::move(results[i]));
    }
    stats_.speculative_probes += static_cast<long long>(batch.size()) - 1;
  }

  void maybe_push(std::vector<Pending>& batch, Seconds lb, Seconds ub,
                  int depth) {
    if (ub <= lb * (1.0 + 1e-9)) return;  // the search would stop here
    const Seconds next = 0.5 * (lb + ub);  // the loop's exact expression
    const std::uint64_t key = target_key(next);
    if (cache_.count(key)) return;
    for (const Pending& p : batch) {
      if (target_key(p.target) == key) return;
    }
    batch.push_back({next, lb, ub, depth});
  }

  const Chain& chain_;
  const Platform& platform_;
  const Phase1Options& options_;
  const int width_;
  const int budget_;
  std::unordered_map<std::uint64_t, MadPipeDPResult> cache_;
  PlannerStats stats_;
};

}  // namespace

Phase1Result madpipe_phase1(const Chain& chain, const Platform& platform,
                            const Phase1Options& options) {
  platform.validate();
  MP_EXPECT(options.iterations >= 1, "need at least one search iteration");
  obs::Span span("phase1_bisection", obs::kCatPlanner);
  const auto t0 = std::chrono::steady_clock::now();

  Seconds lb = chain.total_compute() / platform.processors;
  Seconds ub = chain.total_compute();
  for (int j = 1; j < chain.length(); ++j) {
    ub += platform.boundary_comm_time(chain, j);
  }

  Phase1Result result;
  result.period = std::numeric_limits<double>::infinity();

  ProbeRunner runner(chain, platform, options, options.iterations);

  Seconds target = lb;
  for (int i = 0; i < options.iterations; ++i) {
    const MadPipeDPResult& dp = runner.demand(target, lb, ub, i);
    const Seconds achieved = std::max(dp.period, target);
    result.trace.push_back(
        {target, achieved,
         options.keep_iterate_allocations ? dp.allocation : std::nullopt});
    log::debug("phase1 iteration ", i, ": target=", target,
               " achieved=", achieved);

    if (achieved < result.period && dp.allocation.has_value()) {
      result.period = achieved;
      result.allocation = dp.allocation;
      result.uses_special = dp.uses_special;
    }

    lb = std::max(lb, std::min(dp.period, target));
    ub = std::min(ub, achieved);
    if (ub <= lb * (1.0 + 1e-9)) break;  // search interval collapsed
    target = 0.5 * (lb + ub);
  }
  span.arg("probes", static_cast<long long>(result.trace.size()));
  result.stats = runner.stats();
  result.stats.phase1_probes = static_cast<long long>(result.trace.size());
  result.stats.phase1_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace madpipe
