#include "madpipe/search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.hpp"
#include "util/logging.hpp"

namespace madpipe {

Phase1Result madpipe_phase1(const Chain& chain, const Platform& platform,
                            const Phase1Options& options) {
  platform.validate();
  MP_EXPECT(options.iterations >= 1, "need at least one search iteration");

  Seconds lb = chain.total_compute() / platform.processors;
  Seconds ub = chain.total_compute();
  for (int j = 1; j < chain.length(); ++j) {
    ub += platform.boundary_comm_time(chain, j);
  }

  Phase1Result result;
  result.period = std::numeric_limits<double>::infinity();

  Seconds target = lb;
  for (int i = 0; i < options.iterations; ++i) {
    const MadPipeDPResult dp =
        madpipe_dp(chain, platform, target, options.dp);
    const Seconds achieved = std::max(dp.period, target);
    result.trace.push_back(
        {target, achieved,
         options.keep_iterate_allocations ? dp.allocation : std::nullopt});
    log::debug("phase1 iteration ", i, ": target=", target,
               " achieved=", achieved);

    if (achieved < result.period && dp.allocation.has_value()) {
      result.period = achieved;
      result.allocation = dp.allocation;
      result.uses_special = dp.uses_special;
    }

    lb = std::max(lb, std::min(dp.period, target));
    ub = std::min(ub, achieved);
    if (ub <= lb * (1.0 + 1e-9)) break;  // search interval collapsed
    target = 0.5 * (lb + ub);
  }
  return result;
}

}  // namespace madpipe
