// Algorithm 1 of the paper: the modified binary search over the target
// period T̂ driving MadPipe-DP.
//
// Two monotonicities make the search sound: MadPipe-DP(T̂) is non-increasing
// in T̂ (a larger target stores fewer activations, relaxing memory), and any
// schedule of the produced allocation needs a period ≥ max(DP result, T̂).
// Each iteration therefore tightens lb = max(lb, min(T, T̂)) and
// ub = min(ub, max(T, T̂)) and probes the midpoint.
#pragma once

#include <optional>
#include <vector>

#include "core/partition.hpp"
#include "madpipe/dp.hpp"

namespace madpipe {

struct Phase1Options {
  int iterations = 10;  ///< K of Algorithm 1 (10 suffices per the paper)
  MadPipeDPOptions dp;
  /// Retain every iterate's allocation in the trace (used by the "schedule
  /// the best k iterates" extension; the paper keeps only the best).
  bool keep_iterate_allocations = false;
  /// Speculation width W of the bisection fast path: up to W DP probes run
  /// concurrently, the extras at the targets the search would request next
  /// under each possible outcome of the pending probe. Results are
  /// bit-identical to the sequential search for every W (mispredicted
  /// probes are discarded). 0 = auto (min(4, hardware threads)); 1 =
  /// sequential.
  int speculation = 0;
  /// Worker threads for speculative probes; 0 = one per in-flight probe.
  std::size_t workers = 0;
};

struct Phase1Iteration {
  Seconds target = 0.0;    ///< T̂_i
  Seconds achieved = 0.0;  ///< max(MadPipe-DP(T̂_i), T̂_i); infinity if infeasible
  /// Present only with Phase1Options::keep_iterate_allocations.
  std::optional<Allocation> allocation;
};

struct Phase1Result {
  /// Best max(T_i, T̂_i) over all iterations; infinity when every target was
  /// infeasible (no allocation fits memory at all).
  Seconds period = 0.0;
  std::optional<Allocation> allocation;  ///< allocation of the best iterate
  bool uses_special = false;
  std::vector<Phase1Iteration> trace;
  /// Counters summed over every DP probe launched (speculative ones
  /// included); phase1_probes counts only the probes the search consumed.
  PlannerStats stats;

  bool feasible() const noexcept { return allocation.has_value(); }
};

/// Run the first phase of MadPipe (Algorithm 1).
Phase1Result madpipe_phase1(const Chain& chain, const Platform& platform,
                            const Phase1Options& options = {});

}  // namespace madpipe
