#include "models/cost_model.hpp"

#include "util/expect.hpp"

namespace madpipe::models {

Layer block_to_layer(const BlockStats& block, int batch,
                     const DeviceModel& device) {
  MP_EXPECT(batch >= 1, "batch size must be positive");
  MP_EXPECT(device.peak_flops > 0.0 && device.efficiency > 0.0,
            "device model must have positive throughput");

  const double fwd_compute =
      static_cast<double>(batch) * block.forward_flops / device.effective_flops();

  Layer layer;
  layer.name = block.name;
  layer.forward_time = fwd_compute + device.op_overhead;
  layer.backward_time =
      device.backward_flops_factor * fwd_compute + device.op_overhead;
  layer.weight_bytes =
      static_cast<double>(block.params) * device.bytes_per_element;
  layer.output_bytes = static_cast<double>(block.output.elements()) * batch *
                       device.bytes_per_element;
  return layer;
}

Chain blocks_to_chain(const std::string& name, const Tensor& input,
                      const std::vector<BlockStats>& blocks, int batch,
                      const DeviceModel& device) {
  MP_EXPECT(!blocks.empty(), "network must have at least one block");
  std::vector<Layer> layers;
  layers.reserve(blocks.size());
  for (const BlockStats& block : blocks) {
    layers.push_back(block_to_layer(block, batch, device));
  }
  const Bytes input_bytes = static_cast<double>(input.elements()) * batch *
                            device.bytes_per_element;
  return Chain(name, input_bytes, std::move(layers));
}

}  // namespace madpipe::models
