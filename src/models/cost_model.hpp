// FLOP → duration cost model converting block statistics to chain layers.
//
// Durations follow the standard roofline-style estimate
//   t_fwd = batch · flops / (peak · efficiency) + overhead,
//   t_bwd = backward_flops_factor · (t_fwd − overhead) + overhead,
// where the backward factor ~2 reflects that backward computes both input
// and weight gradients. The absolute scale of the device only scales the
// period axis of every experiment; the *relative* per-layer heterogeneity
// (what the partitioning algorithms react to) comes from the exact shape
// arithmetic in netdef.
#pragma once

#include <vector>

#include "core/chain.hpp"
#include "models/netdef.hpp"

namespace madpipe::models {

struct DeviceModel {
  double peak_flops = 15e12;       ///< device peak (V100-class fp32+tensor mix)
  double efficiency = 0.45;        ///< achievable fraction of peak
  Seconds op_overhead = 50e-6;     ///< fixed per-block launch/framework cost
  double backward_flops_factor = 2.0;
  int bytes_per_element = 4;       ///< fp32 activations and parameters

  double effective_flops() const { return peak_flops * efficiency; }
};

/// Convert one block to a chain layer for mini-batches of `batch` samples.
Layer block_to_layer(const BlockStats& block, int batch,
                     const DeviceModel& device);

/// Convert a full block sequence to a Chain. `input` is the per-sample
/// network input shape (its byte size times batch becomes a_0).
Chain blocks_to_chain(const std::string& name, const Tensor& input,
                      const std::vector<BlockStats>& blocks, int batch,
                      const DeviceModel& device);

}  // namespace madpipe::models
