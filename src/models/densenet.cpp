#include "models/densenet.hpp"

#include "util/expect.hpp"

namespace madpipe::models {

namespace {

/// One dense layer. The chain node's output is the concatenation of its
/// input with the `growth` new channels, so channel counts accumulate.
BlockStats dense_layer(const std::string& name, const Tensor& input,
                       int growth) {
  BlockBuilder b(name, input);
  b.conv(4 * growth, 1).relu().conv(growth, 3).relu();
  BlockStats stats = b.finish();
  // Concatenate with the input: output carries all previous channels too.
  stats.output.channels += input.channels;
  return stats;
}

/// Transition: 1x1 conv halving channels + 2x2/2 average pool.
BlockStats transition(const std::string& name, const Tensor& input) {
  BlockBuilder b(name, input);
  b.conv(input.channels / 2, 1).relu().avg_pool(2, 2, 0);
  return b.finish();
}

}  // namespace

std::vector<BlockStats> build_densenet(const Tensor& input,
                                       const std::vector<int>& block_layers,
                                       int growth_rate, int num_classes) {
  MP_EXPECT(!block_layers.empty(), "DenseNet needs at least one dense block");
  MP_EXPECT(growth_rate >= 1, "growth rate must be positive");
  std::vector<BlockStats> blocks;

  BlockBuilder stem("stem", input);
  stem.conv(2 * growth_rate, 7, 2, 3).relu().max_pool(3, 2, 1);
  blocks.push_back(stem.finish());

  Tensor shape = blocks.back().output;
  for (std::size_t d = 0; d < block_layers.size(); ++d) {
    for (int layer = 0; layer < block_layers[d]; ++layer) {
      const std::string name = "dense" + std::to_string(d + 1) + "_" +
                               std::to_string(layer + 1);
      blocks.push_back(dense_layer(name, shape, growth_rate));
      shape = blocks.back().output;
    }
    if (d + 1 < block_layers.size()) {
      blocks.push_back(transition("transition" + std::to_string(d + 1), shape));
      shape = blocks.back().output;
    }
  }

  BlockBuilder head("head", shape);
  head.global_avg_pool().fully_connected(num_classes);
  blocks.push_back(head.finish());
  return blocks;
}

std::vector<BlockStats> build_densenet121(const Tensor& input,
                                          int num_classes) {
  return build_densenet(input, {6, 12, 24, 16}, 32, num_classes);
}

}  // namespace madpipe::models
