// DenseNet-121 (Huang et al., 2017) block sequence. One chain block per
// dense layer (bn-relu-1x1 -> bn-relu-3x3, output concatenated with its
// input) and per transition, giving a naturally fine-grained chain whose
// activation sizes grow within each dense block — the activation-heavy
// profile the paper highlights.
#pragma once

#include <vector>

#include "models/netdef.hpp"

namespace madpipe::models {

std::vector<BlockStats> build_densenet(const Tensor& input,
                                       const std::vector<int>& block_layers,
                                       int growth_rate = 32,
                                       int num_classes = 1000);

/// DenseNet-121: blocks {6, 12, 24, 16}, growth 32.
std::vector<BlockStats> build_densenet121(const Tensor& input,
                                          int num_classes = 1000);

}  // namespace madpipe::models
