#include "models/inception.hpp"

#include "util/expect.hpp"

namespace madpipe::models {

namespace {

/// Inception-A: 1x1, 5x5 double, 3x3 double-stacked, pooled 1x1 branches.
BlockStats inception_a(const std::string& name, const Tensor& input,
                       int pool_features) {
  BlockBuilder b1(name, input);
  b1.conv(64, 1).relu();

  BlockBuilder b2(name + "/b2", input);
  b2.conv(48, 1).relu().conv(64, 5, 1, 2).relu();

  BlockBuilder b3(name + "/b3", input);
  b3.conv(64, 1).relu().conv(96, 3).relu().conv(96, 3).relu();

  BlockBuilder b4(name + "/b4", input);
  b4.avg_pool(3, 1, 1).conv(pool_features, 1).relu();

  b1.concat_branch(b2.finish())
      .concat_branch(b3.finish())
      .concat_branch(b4.finish());
  return b1.finish();
}

/// Inception-B (grid reduction to 17x17-equivalent).
BlockStats inception_b(const std::string& name, const Tensor& input) {
  BlockBuilder b1(name, input);
  b1.conv(384, 3, 2, 0).relu();

  BlockBuilder b2(name + "/b2", input);
  b2.conv(64, 1).relu().conv(96, 3).relu().conv(96, 3, 2, 0).relu();

  BlockBuilder b3(name + "/b3", input);
  b3.max_pool(3, 2, 0);

  b1.concat_branch(b2.finish()).concat_branch(b3.finish());
  return b1.finish();
}

/// Inception-C with factorized 7x7 convolutions.
BlockStats inception_c(const std::string& name, const Tensor& input,
                       int channels_7x7) {
  const int c7 = channels_7x7;
  BlockBuilder b1(name, input);
  b1.conv(192, 1).relu();

  BlockBuilder b2(name + "/b2", input);
  b2.conv(c7, 1).relu().conv_rect(c7, 1, 7).relu().conv_rect(192, 7, 1).relu();

  BlockBuilder b3(name + "/b3", input);
  b3.conv(c7, 1)
      .relu()
      .conv_rect(c7, 7, 1)
      .relu()
      .conv_rect(c7, 1, 7)
      .relu()
      .conv_rect(c7, 7, 1)
      .relu()
      .conv_rect(192, 1, 7)
      .relu();

  BlockBuilder b4(name + "/b4", input);
  b4.avg_pool(3, 1, 1).conv(192, 1).relu();

  b1.concat_branch(b2.finish())
      .concat_branch(b3.finish())
      .concat_branch(b4.finish());
  return b1.finish();
}

/// Inception-D (second grid reduction).
BlockStats inception_d(const std::string& name, const Tensor& input) {
  BlockBuilder b1(name, input);
  b1.conv(192, 1).relu().conv(320, 3, 2, 0).relu();

  BlockBuilder b2(name + "/b2", input);
  b2.conv(192, 1)
      .relu()
      .conv_rect(192, 1, 7)
      .relu()
      .conv_rect(192, 7, 1)
      .relu()
      .conv(192, 3, 2, 0)
      .relu();

  BlockBuilder b3(name + "/b3", input);
  b3.max_pool(3, 2, 0);

  b1.concat_branch(b2.finish()).concat_branch(b3.finish());
  return b1.finish();
}

/// Inception-E with expanded 1x3/3x1 fan-outs.
BlockStats inception_e(const std::string& name, const Tensor& input) {
  BlockBuilder b1(name, input);
  b1.conv(320, 1).relu();

  // Branch 2: 1x1 to 384, then parallel 1x3 and 3x1 concatenated.
  BlockBuilder b2(name + "/b2", input);
  b2.conv(384, 1).relu();
  const Tensor mid2 = b2.shape();
  BlockBuilder b2a(name + "/b2a", mid2);
  b2a.conv_rect(384, 1, 3).relu();
  BlockBuilder b2b(name + "/b2b", mid2);
  b2b.conv_rect(384, 3, 1).relu();
  // Fold: branch output is the two sub-branches concatenated (768 channels).
  BlockStats stats2 = b2.finish();
  const BlockStats sub_a = b2a.finish();
  const BlockStats sub_b = b2b.finish();
  stats2.forward_flops += sub_a.forward_flops + sub_b.forward_flops;
  stats2.params += sub_a.params + sub_b.params;
  stats2.output.channels = sub_a.output.channels + sub_b.output.channels;

  // Branch 3: 1x1 448 -> 3x3 384 -> parallel 1x3 / 3x1.
  BlockBuilder b3(name + "/b3", input);
  b3.conv(448, 1).relu().conv(384, 3).relu();
  const Tensor mid3 = b3.shape();
  BlockBuilder b3a(name + "/b3a", mid3);
  b3a.conv_rect(384, 1, 3).relu();
  BlockBuilder b3b(name + "/b3b", mid3);
  b3b.conv_rect(384, 3, 1).relu();
  BlockStats stats3 = b3.finish();
  const BlockStats sub3a = b3a.finish();
  const BlockStats sub3b = b3b.finish();
  stats3.forward_flops += sub3a.forward_flops + sub3b.forward_flops;
  stats3.params += sub3a.params + sub3b.params;
  stats3.output.channels = sub3a.output.channels + sub3b.output.channels;

  BlockBuilder b4(name + "/b4", input);
  b4.avg_pool(3, 1, 1).conv(192, 1).relu();

  b1.concat_branch(stats2).concat_branch(stats3).concat_branch(b4.finish());
  return b1.finish();
}

}  // namespace

std::vector<BlockStats> build_inception_v3(const Tensor& input,
                                           int num_classes) {
  MP_EXPECT(input.height >= 75 && input.width >= 75,
            "Inception-v3 needs at least 75x75 inputs");
  std::vector<BlockStats> blocks;

  // Stem, split into two chain blocks around the first max-pool so the
  // linearizer keeps a cut point inside the (expensive) stem.
  BlockBuilder stem1("stem1", input);
  stem1.conv(32, 3, 2, 0).relu().conv(32, 3, 1, 0).relu().conv(64, 3, 1, 1)
      .relu()
      .max_pool(3, 2, 0);
  blocks.push_back(stem1.finish());

  BlockBuilder stem2("stem2", blocks.back().output);
  stem2.conv(80, 1, 1, 0).relu().conv(192, 3, 1, 0).relu().max_pool(3, 2, 0);
  blocks.push_back(stem2.finish());

  Tensor shape = blocks.back().output;
  const int pool_features[3] = {32, 64, 64};
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(inception_a("mixed5" + std::string(1, char('b' + i)),
                                 shape, pool_features[i]));
    shape = blocks.back().output;
  }

  blocks.push_back(inception_b("mixed6a", shape));
  shape = blocks.back().output;

  const int c7s[4] = {128, 160, 160, 192};
  for (int i = 0; i < 4; ++i) {
    blocks.push_back(inception_c("mixed6" + std::string(1, char('b' + i)),
                                 shape, c7s[i]));
    shape = blocks.back().output;
  }

  blocks.push_back(inception_d("mixed7a", shape));
  shape = blocks.back().output;

  for (int i = 0; i < 2; ++i) {
    blocks.push_back(inception_e("mixed7" + std::string(1, char('b' + i)),
                                 shape));
    shape = blocks.back().output;
  }

  BlockBuilder head("head", shape);
  head.global_avg_pool().fully_connected(num_classes);
  blocks.push_back(head.finish());
  return blocks;
}

}  // namespace madpipe::models
