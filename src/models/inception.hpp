// Inception-v3 (Szegedy et al., 2016) block sequence. Each inception module
// is one chain block: branch costs are summed, outputs concatenated along
// channels — the natural linearization of the module graph.
#pragma once

#include <vector>

#include "models/netdef.hpp"

namespace madpipe::models {

std::vector<BlockStats> build_inception_v3(const Tensor& input,
                                           int num_classes = 1000);

}  // namespace madpipe::models
