#include "models/linearize.hpp"

#include <limits>
#include <list>

#include "util/expect.hpp"

namespace madpipe::models {

Chain coarsen(const Chain& chain, int target_length, CoarsenStrategy strategy) {
  MP_EXPECT(target_length >= 1, "target length must be positive");
  if (chain.length() <= target_length) return chain;

  std::list<Layer> layers;
  for (int l = 1; l <= chain.length(); ++l) layers.push_back(chain.layer(l));

  while (static_cast<int>(layers.size()) > target_length) {
    // Pick the adjacent pair to merge according to the strategy.
    auto best = layers.begin();
    double best_score = std::numeric_limits<double>::infinity();
    for (auto it = layers.begin(); std::next(it) != layers.end(); ++it) {
      const Layer& a = *it;
      const Layer& b = *std::next(it);
      double score = 0.0;
      switch (strategy) {
        case CoarsenStrategy::MinCompute:
          score = a.forward_time + a.backward_time + b.forward_time +
                  b.backward_time;
          break;
        case CoarsenStrategy::MaxBoundaryActivation:
          // Larger boundary first -> smaller score.
          score = -a.output_bytes;
          break;
      }
      if (score < best_score) {
        best_score = score;
        best = it;
      }
    }
    auto second = std::next(best);
    best->name += "+" + second->name;
    best->forward_time += second->forward_time;
    best->backward_time += second->backward_time;
    best->weight_bytes += second->weight_bytes;
    best->output_bytes = second->output_bytes;
    layers.erase(second);
  }

  std::vector<Layer> merged(layers.begin(), layers.end());
  return Chain(chain.name(), chain.activation(0), std::move(merged));
}

}  // namespace madpipe::models
