// Chain coarsening ("linearization", §5.1 of the paper).
//
// The networks come out of the builders as chains of 18–63 blocks. The
// paper, like PipeDream, greedily groups layers to keep the chain length
// manageable for the planners. `coarsen` merges adjacent layers until the
// target length is reached; merging layers k and k+1 yields a layer with
// summed durations/weights and the second layer's output activation (the
// internal boundary disappears as a cut candidate).
#pragma once

#include "core/chain.hpp"

namespace madpipe::models {

enum class CoarsenStrategy {
  /// Merge the adjacent pair with the smallest combined compute time —
  /// keeps the compute balance options for the partitioners (default).
  MinCompute,
  /// Merge the pair joined by the largest boundary activation — removes
  /// the most expensive cut candidates first.
  MaxBoundaryActivation,
};

/// Coarsen `chain` to at most `target_length` layers. Returns the chain
/// unchanged when it is already short enough.
Chain coarsen(const Chain& chain, int target_length,
              CoarsenStrategy strategy = CoarsenStrategy::MinCompute);

}  // namespace madpipe::models
