#include "models/netdef.hpp"

#include "util/expect.hpp"

namespace madpipe::models {

int conv_out_size(int input, int kernel, int stride, int padding) {
  MP_EXPECT(input >= 1 && kernel >= 1 && stride >= 1 && padding >= 0,
            "invalid convolution geometry");
  const int out = (input + 2 * padding - kernel) / stride + 1;
  MP_EXPECT(out >= 1, "convolution output collapses to zero size");
  return out;
}

BlockBuilder::BlockBuilder(std::string name, Tensor input)
    : name_(std::move(name)), shape_(input) {
  MP_EXPECT(input.channels >= 1 && input.height >= 1 && input.width >= 1,
            "block input shape must be positive");
}

BlockBuilder& BlockBuilder::conv_rect(int out_channels, int kernel_h,
                                      int kernel_w, int stride, int padding_h,
                                      int padding_w, bool batch_norm) {
  MP_EXPECT(out_channels >= 1, "invalid convolution");
  if (padding_h < 0) padding_h = kernel_h / 2;
  if (padding_w < 0) padding_w = kernel_w / 2;

  const int out_h = conv_out_size(shape_.height, kernel_h, stride, padding_h);
  const int out_w = conv_out_size(shape_.width, kernel_w, stride, padding_w);

  const long long kernel_params = static_cast<long long>(kernel_h) * kernel_w *
                                  shape_.channels * out_channels;
  params_ += kernel_params;
  flops_ += 2.0 * static_cast<double>(kernel_params) * out_h * out_w;
  if (batch_norm) {
    params_ += 2LL * out_channels;
    flops_ += 2.0 * static_cast<double>(out_channels) * out_h * out_w;
  } else {
    params_ += out_channels;
  }
  shape_ = Tensor{out_channels, out_h, out_w};
  return *this;
}

BlockBuilder& BlockBuilder::conv(int out_channels, int kernel, int stride,
                                 int padding, int groups, bool batch_norm) {
  MP_EXPECT(out_channels >= 1 && groups >= 1, "invalid convolution");
  MP_EXPECT(shape_.channels % groups == 0 && out_channels % groups == 0,
            "groups must divide channel counts");
  if (padding < 0) padding = kernel / 2;

  const int out_h = conv_out_size(shape_.height, kernel, stride, padding);
  const int out_w = conv_out_size(shape_.width, kernel, stride, padding);
  const long long in_per_group = shape_.channels / groups;

  const long long kernel_params =
      static_cast<long long>(kernel) * kernel * in_per_group * out_channels;
  params_ += kernel_params;
  // 2 FLOPs per multiply-add, applied at every output position.
  flops_ += 2.0 * static_cast<double>(kernel_params) * out_h * out_w;

  if (batch_norm) {
    params_ += 2LL * out_channels;  // scale + shift
    flops_ += 2.0 * static_cast<double>(out_channels) * out_h * out_w;
  } else {
    params_ += out_channels;  // bias
  }

  shape_ = Tensor{out_channels, out_h, out_w};
  return *this;
}

BlockBuilder& BlockBuilder::max_pool(int kernel, int stride, int padding) {
  const int out_h = conv_out_size(shape_.height, kernel, stride, padding);
  const int out_w = conv_out_size(shape_.width, kernel, stride, padding);
  flops_ += static_cast<double>(kernel) * kernel * shape_.channels * out_h * out_w;
  shape_.height = out_h;
  shape_.width = out_w;
  return *this;
}

BlockBuilder& BlockBuilder::avg_pool(int kernel, int stride, int padding) {
  return max_pool(kernel, stride, padding);  // identical cost/shape model
}

BlockBuilder& BlockBuilder::global_avg_pool() {
  flops_ += static_cast<double>(shape_.elements());
  shape_.height = 1;
  shape_.width = 1;
  return *this;
}

BlockBuilder& BlockBuilder::fully_connected(int out_features) {
  MP_EXPECT(out_features >= 1, "invalid fully-connected size");
  const long long in_features = shape_.elements();
  params_ += in_features * out_features + out_features;
  flops_ += 2.0 * static_cast<double>(in_features) * out_features;
  shape_ = Tensor{out_features, 1, 1};
  return *this;
}

BlockBuilder& BlockBuilder::relu() {
  flops_ += static_cast<double>(shape_.elements());
  return *this;
}

BlockBuilder& BlockBuilder::add_residual(const Tensor& identity) {
  MP_EXPECT(identity == shape_, "residual add requires matching shapes");
  flops_ += static_cast<double>(shape_.elements());
  return *this;
}

BlockBuilder& BlockBuilder::concat_branch(const BlockStats& branch) {
  MP_EXPECT(branch.output.height == shape_.height &&
                branch.output.width == shape_.width,
            "concatenated branches must agree on spatial size");
  flops_ += branch.forward_flops;
  params_ += branch.params;
  shape_.channels += branch.output.channels;
  return *this;
}

BlockStats BlockBuilder::finish() const {
  return BlockStats{name_, flops_, params_, shape_};
}

}  // namespace madpipe::models
