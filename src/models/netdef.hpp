// Shape arithmetic for building network profiles.
//
// The paper profiles real networks and feeds MadPipe per-layer durations and
// sizes. We do not have the authors' measured traces, so this module
// regenerates equivalent profiles from first principles: each network is
// described as a sequence of *blocks* (the atomic nodes of the linearized
// chain — a residual bottleneck, an inception module, a dense layer, ...),
// and for each block we compute the exact parameter count, output tensor
// shape and forward FLOPs from standard convolution arithmetic. The cost
// model (`cost_model.hpp`) then converts FLOPs to durations.
//
// What MadPipe's algorithms consume is only the per-node (u_F, u_B, W, a)
// vectors; the crucial property — early layers have huge activations and few
// weights, late layers the reverse — is a consequence of the shapes, which
// are exact here.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace madpipe::models {

/// Per-sample tensor shape (batch handled by the cost model).
struct Tensor {
  int channels = 0;
  int height = 0;
  int width = 0;

  long long elements() const noexcept {
    return static_cast<long long>(channels) * height * width;
  }
  bool operator==(const Tensor&) const = default;
};

/// Aggregated statistics of one chain block.
struct BlockStats {
  std::string name;
  double forward_flops = 0.0;  ///< multiply-add counted as 2 FLOPs, per sample
  long long params = 0;        ///< scalar parameter count
  Tensor output;               ///< per-sample output shape
};

/// Output spatial size of a convolution/pooling: floor((in + 2p − k)/s) + 1.
int conv_out_size(int input, int kernel, int stride, int padding);

/// Fluent accumulator: start from an input shape, chain ops, read off the
/// block statistics. Each op updates the running shape and adds its FLOPs
/// and parameters.
class BlockBuilder {
 public:
  BlockBuilder(std::string name, Tensor input);

  /// 2D convolution. `padding < 0` means "same" (k/2). Adds batch-norm
  /// parameters when `batch_norm` (2 per channel; its FLOPs are counted as
  /// 2 per output element).
  BlockBuilder& conv(int out_channels, int kernel, int stride = 1,
                     int padding = -1, int groups = 1, bool batch_norm = true);
  /// Rectangular convolution (e.g. Inception's 1x7 / 7x1 factorizations).
  /// `padding_* < 0` means "same" (kernel/2).
  BlockBuilder& conv_rect(int out_channels, int kernel_h, int kernel_w,
                          int stride = 1, int padding_h = -1,
                          int padding_w = -1, bool batch_norm = true);
  BlockBuilder& max_pool(int kernel, int stride, int padding = 0);
  BlockBuilder& avg_pool(int kernel, int stride, int padding = 0);
  BlockBuilder& global_avg_pool();
  BlockBuilder& fully_connected(int out_features);
  BlockBuilder& relu();
  /// Elementwise addition with a same-shaped branch (residual connections).
  BlockBuilder& add_residual(const Tensor& identity);
  /// Append the stats of a parallel branch computed separately and
  /// concatenate its output along channels (inception-style).
  BlockBuilder& concat_branch(const BlockStats& branch);

  const Tensor& shape() const noexcept { return shape_; }
  BlockStats finish() const;

 private:
  std::string name_;
  Tensor shape_;
  double flops_ = 0.0;
  long long params_ = 0;
};

}  // namespace madpipe::models
