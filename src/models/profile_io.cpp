#include "models/profile_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/expect.hpp"

namespace madpipe::models {

namespace {
constexpr const char* kMagic = "madpipe-profile-v1";

[[noreturn]] void parse_error(int line, const std::string& message) {
  MP_EXPECT(false, "profile parse error at line " + std::to_string(line) +
                       ": " + message);
  __builtin_unreachable();
}
}  // namespace

std::string profile_to_string(const Chain& chain) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "name " << chain.name() << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", chain.activation(0));
  os << "input_bytes " << buf << "\n";
  os << "# layer <name> <forward_s> <backward_s> <weight_bytes> "
        "<output_bytes>\n";
  for (int l = 1; l <= chain.length(); ++l) {
    const Layer& layer = chain.layer(l);
    os << "layer " << layer.name;
    for (const double v : {layer.forward_time, layer.backward_time,
                           layer.weight_bytes, layer.output_bytes}) {
      std::snprintf(buf, sizeof(buf), " %.17g", v);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

Chain profile_from_string(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_number = 0;
  bool magic_seen = false;
  std::string name = "unnamed";
  Bytes input_bytes = -1.0;
  std::vector<Layer> layers;

  while (std::getline(is, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;

    if (!magic_seen) {
      if (keyword != kMagic) {
        parse_error(line_number, "expected '" + std::string(kMagic) + "'");
      }
      magic_seen = true;
      continue;
    }
    if (keyword == "name") {
      if (!(fields >> name)) parse_error(line_number, "missing network name");
    } else if (keyword == "input_bytes") {
      if (!(fields >> input_bytes) || input_bytes < 0.0) {
        parse_error(line_number, "input_bytes needs a non-negative number");
      }
    } else if (keyword == "layer") {
      Layer layer;
      if (!(fields >> layer.name >> layer.forward_time >>
            layer.backward_time >> layer.weight_bytes >>
            layer.output_bytes)) {
        parse_error(line_number,
                    "layer needs: name forward_s backward_s weight_bytes "
                    "output_bytes");
      }
      if (layer.forward_time < 0.0 || layer.backward_time < 0.0 ||
          layer.weight_bytes < 0.0 || layer.output_bytes < 0.0) {
        parse_error(line_number, "layer fields must be non-negative");
      }
      layers.push_back(std::move(layer));
    } else {
      parse_error(line_number, "unknown keyword '" + keyword + "'");
    }
  }

  if (!magic_seen) parse_error(line_number, "empty document");
  if (input_bytes < 0.0) parse_error(line_number, "missing input_bytes");
  if (layers.empty()) parse_error(line_number, "profile has no layers");
  return Chain(name, input_bytes, std::move(layers));
}

void save_profile(const Chain& chain, const std::string& path) {
  std::ofstream out(path);
  MP_EXPECT(out.good(), "cannot open profile file for writing: " + path);
  out << profile_to_string(chain);
  MP_EXPECT(out.good(), "write failed for profile file: " + path);
}

Chain load_profile(const std::string& path) {
  std::ifstream in(path);
  MP_EXPECT(in.good(), "cannot open profile file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return profile_from_string(buffer.str());
}

}  // namespace madpipe::models
