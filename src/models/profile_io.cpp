#include "models/profile_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/expect.hpp"

namespace madpipe::models {

namespace {
constexpr const char* kMagic = "madpipe-profile-v1";

std::string at_line(int line, const std::string& message) {
  return "profile parse error at line " + std::to_string(line) + ": " +
         message;
}

/// Version sniff: a document whose first non-whitespace byte is '{' is a v2
/// JSON profile; anything else (including the v1 magic) is v1 text.
bool looks_like_json(const std::string& text) noexcept {
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    return c == '{';
  }
  return false;
}
}  // namespace

std::string profile_to_string(const Chain& chain) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "name " << chain.name() << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", chain.activation(0));
  os << "input_bytes " << buf << "\n";
  os << "# layer <name> <forward_s> <backward_s> <weight_bytes> "
        "<output_bytes>\n";
  for (int l = 1; l <= chain.length(); ++l) {
    const Layer& layer = chain.layer(l);
    os << "layer " << layer.name;
    for (const double v : {layer.forward_time, layer.backward_time,
                           layer.weight_bytes, layer.output_bytes}) {
      std::snprintf(buf, sizeof(buf), " %.17g", v);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

ProfileParseResult try_profile_from_string(const std::string& text) noexcept {
  if (looks_like_json(text)) return try_profile_from_json_string(text);
  // The whole body is wrapped: parse failures come back as messages, and
  // anything the Chain constructor (or an allocator) might throw is caught
  // at this boundary too — serve payloads must never propagate exceptions.
  try {
    std::istringstream is(text);
    std::string line;
    int line_number = 0;
    bool magic_seen = false;
    std::string name = "unnamed";
    Bytes input_bytes = -1.0;
    std::vector<Layer> layers;
    std::unordered_set<std::string> seen_names;

    const auto fail = [&](const std::string& message) {
      ProfileParseResult result;
      result.error = at_line(line_number, message);
      return result;
    };

    while (std::getline(is, line)) {
      ++line_number;
      // Strip comments and whitespace-only lines.
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream fields(line);
      std::string keyword;
      if (!(fields >> keyword)) continue;

      if (!magic_seen) {
        if (keyword != kMagic) {
          return fail("expected '" + std::string(kMagic) + "'");
        }
        magic_seen = true;
        continue;
      }
      if (keyword == "name") {
        if (!(fields >> name)) return fail("missing network name");
      } else if (keyword == "input_bytes") {
        if (!(fields >> input_bytes) || input_bytes < 0.0 ||
            !std::isfinite(input_bytes)) {
          return fail("input_bytes needs a non-negative finite number");
        }
      } else if (keyword == "layer") {
        Layer layer;
        if (!(fields >> layer.name >> layer.forward_time >>
              layer.backward_time >> layer.weight_bytes >>
              layer.output_bytes)) {
          return fail(
              "layer needs: name forward_s backward_s weight_bytes "
              "output_bytes");
        }
        std::string extra;
        if (fields >> extra) {
          return fail("trailing field '" + extra + "' after layer record");
        }
        for (const double v : {layer.forward_time, layer.backward_time,
                               layer.weight_bytes, layer.output_bytes}) {
          if (v < 0.0) return fail("layer fields must be non-negative");
          if (!std::isfinite(v)) return fail("layer fields must be finite");
        }
        if (!seen_names.insert(layer.name).second) {
          return fail("duplicate layer id '" + layer.name + "'");
        }
        if (static_cast<int>(layers.size()) >= kMaxProfileLayers) {
          return fail("profile exceeds " + std::to_string(kMaxProfileLayers) +
                      " layers");
        }
        layers.push_back(std::move(layer));
      } else {
        return fail("unknown keyword '" + keyword + "'");
      }
    }

    if (!magic_seen) return fail("empty document");
    if (input_bytes < 0.0) return fail("missing input_bytes");
    if (layers.empty()) return fail("profile has no layers");
    ProfileParseResult result;
    result.chain.emplace(name, input_bytes, std::move(layers));
    return result;
  } catch (const std::exception& error) {
    ProfileParseResult result;
    result.error = std::string("profile parse error: ") + error.what();
    return result;
  } catch (...) {
    ProfileParseResult result;
    result.error = "profile parse error: unknown exception";
    return result;
  }
}

ProfileParseResult try_load_profile(const std::string& path) noexcept {
  try {
    std::ifstream in(path);
    if (!in.good()) {
      ProfileParseResult result;
      result.error = "cannot open profile file: " + path;
      return result;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
      ProfileParseResult result;
      result.error = "read failed for profile file: " + path;
      return result;
    }
    return try_profile_from_string(buffer.str());
  } catch (const std::exception& error) {
    ProfileParseResult result;
    result.error = std::string("cannot read ") + path + ": " + error.what();
    return result;
  }
}

Chain profile_from_string(const std::string& text) {
  ProfileParseResult result = try_profile_from_string(text);
  MP_EXPECT(result.ok(), result.error);
  return std::move(*result.chain);
}

void save_profile(const Chain& chain, const std::string& path) {
  std::ofstream out(path);
  MP_EXPECT(out.good(), "cannot open profile file for writing: " + path);
  out << profile_to_string(chain);
  MP_EXPECT(out.good(), "write failed for profile file: " + path);
}

void save_profile_json(const Chain& chain, const std::string& path) {
  std::ofstream out(path);
  MP_EXPECT(out.good(), "cannot open profile file for writing: " + path);
  out << profile_to_json_string(chain);
  MP_EXPECT(out.good(), "write failed for profile file: " + path);
}

Chain load_profile(const std::string& path) {
  std::ifstream in(path);
  MP_EXPECT(in.good(), "cannot open profile file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return profile_from_string(buffer.str());
}

}  // namespace madpipe::models
