// Import/export of profile chains, so that real measured profiles (what the
// paper's authors used) can be dropped in for the synthetic ones generated
// by the model zoo. Two formats, both specified normatively in
// docs/PROFILE_FORMAT.md:
//
//  * v1 ("madpipe-profile-v1") — plain text: '#'-comments, then a header and
//    one line per layer:
//
//        madpipe-profile-v1
//        name resnet50
//        input_bytes 96000000
//        # layer  forward_s  backward_s  weight_bytes  output_bytes
//        layer conv1 0.0057 0.0114 38100 128000000
//        ...
//
//  * v2 ("madpipe-profile-v2") — JSON, parsed on util/json: a schema field,
//    name, input_bytes, and a layers array of objects; the only format that
//    carries scratch_bytes. Numbers round-trip bit-exactly in both formats
//    (%.17g in v1, shortest-round-trip doubles in v2).
//
// Every parse entry point auto-detects the version: a document whose first
// non-whitespace byte is '{' is v2 JSON, anything else is v1 text — so v2
// profiles are accepted everywhere v1 is (CLI, serve, TCP) with no protocol
// changes.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/chain.hpp"

namespace madpipe::models {

/// Upper bound on accepted layer count in either format: well above the
/// packed DP state's 4095-layer budget, and a parser limit that keeps
/// hostile serve payloads from ballooning.
inline constexpr int kMaxProfileLayers = 65536;

/// Serialize `chain` to the v1 profile text format (round-trip exact:
/// %.17g). v1 cannot carry scratch_bytes — use the v2 writer for chains
/// that set it.
std::string profile_to_string(const Chain& chain);

/// Serialize `chain` to the v2 JSON profile format (round-trip exact:
/// shortest-round-trip doubles; scratch_bytes included when nonzero).
std::string profile_to_json_string(const Chain& chain);

/// Outcome of the non-throwing parse entry points: either a chain or a
/// line-numbered error message. This is the serve boundary's API — untrusted
/// request payloads must produce a clean error, never an exception escaping
/// the service (and never UB on truncated/duplicate/negative input).
struct ProfileParseResult {
  std::optional<Chain> chain;
  std::string error;  ///< empty iff chain is present

  bool ok() const noexcept { return chain.has_value(); }
};

/// Parse a profile document without throwing, auto-detecting the version
/// ('{' → v2 JSON, otherwise v1 text). Rejects, with a line-numbered (v1)
/// or path-numbered (v2) message: a missing/wrong magic header or schema,
/// truncated layer records, trailing/unknown fields, negative or non-finite
/// numbers, duplicate layer names, missing input_bytes and empty profiles.
ProfileParseResult try_profile_from_string(const std::string& text) noexcept;

/// Parse a v2 JSON profile document without throwing. Errors carry the JSON
/// path of the offending field (e.g. "layers[3].weight_bytes").
ProfileParseResult try_profile_from_json_string(
    const std::string& text) noexcept;

/// Non-throwing file wrapper (version auto-detected): I/O failures become
/// errors too.
ProfileParseResult try_load_profile(const std::string& path) noexcept;

/// Parse a profile document (version auto-detected). Throws
/// ContractViolation with a line/path-numbered message on malformed input.
Chain profile_from_string(const std::string& text);

/// File convenience wrappers (throw on I/O failure). save_profile writes
/// v1 text, save_profile_json writes v2 JSON; load_profile auto-detects.
void save_profile(const Chain& chain, const std::string& path);
void save_profile_json(const Chain& chain, const std::string& path);
Chain load_profile(const std::string& path);

}  // namespace madpipe::models
