// The madpipe-profile-v2 JSON format (docs/PROFILE_FORMAT.md): the same
// chain model as the v1 text format, carried as a JSON document on the
// strict util/json parser — plus scratch_bytes, which v1 cannot express.
//
// Error model: parse failures come back as non-throwing messages carrying
// the JSON path of the offending field ("layers[3].weight_bytes"), the v2
// counterpart of v1's line numbers. Strict like the serve protocol: unknown
// keys, mistyped values, duplicate layer names and out-of-range numbers are
// all errors, never warnings.
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "models/profile_io.hpp"
#include "util/json.hpp"

namespace madpipe::models {

namespace {
constexpr const char* kSchema = "madpipe-profile-v2";

std::string at_path(const std::string& path, const std::string& message) {
  return "profile parse error at " + path + ": " + message;
}

ProfileParseResult fail(const std::string& path, const std::string& message) {
  ProfileParseResult result;
  result.error = at_path(path, message);
  return result;
}

/// Required non-negative finite number at `path`; writes into `out` and
/// returns an empty string, or the error message.
std::string read_number_field(const json::Value& object, const char* key,
                             const std::string& path, double* out) {
  const json::Value* field = object.find(key);
  if (field == nullptr) return at_path(path, "missing required field");
  if (!field->is_number()) return at_path(path, "must be a number");
  const double v = field->as_number();
  if (v < 0.0 || !std::isfinite(v)) {
    return at_path(path, "must be a non-negative finite number");
  }
  *out = v;
  return {};
}
}  // namespace

std::string profile_to_json_string(const Chain& chain) {
  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("name");
  w.value(chain.name());
  w.key("input_bytes");
  w.value(chain.activation(0));
  w.key("layers");
  w.begin_array();
  for (int l = 1; l <= chain.length(); ++l) {
    const Layer& layer = chain.layer(l);
    w.begin_object();
    w.key("name");
    w.value(layer.name);
    w.key("forward_seconds");
    w.value(layer.forward_time);
    w.key("backward_seconds");
    w.value(layer.backward_time);
    w.key("weight_bytes");
    w.value(layer.weight_bytes);
    w.key("output_bytes");
    w.value(layer.output_bytes);
    if (layer.scratch_bytes != 0.0) {
      w.key("scratch_bytes");
      w.value(layer.scratch_bytes);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

ProfileParseResult try_profile_from_json_string(
    const std::string& text) noexcept {
  // Wrapped like the v1 parser: malformed serve payloads must produce a
  // clean message, never an exception escaping the service.
  try {
    const json::ParseResult parsed = json::parse(text);
    if (!parsed.ok()) {
      ProfileParseResult result;
      result.error = "profile parse error: invalid JSON: " + parsed.error;
      return result;
    }
    const json::Value& root = parsed.value;
    if (!root.is_object()) return fail("$", "document must be a JSON object");

    for (const auto& [key, value] : root.members()) {
      if (key != "schema" && key != "name" && key != "input_bytes" &&
          key != "layers") {
        return fail(key, "unknown field");
      }
    }

    const json::Value* schema = root.find("schema");
    if (schema == nullptr || !schema->is_string()) {
      return fail("schema", "missing schema field");
    }
    if (schema->as_string() != kSchema) {
      return fail("schema", "expected '" + std::string(kSchema) + "', got '" +
                                schema->as_string() + "'");
    }

    std::string name = "unnamed";
    if (const json::Value* n = root.find("name"); n != nullptr) {
      if (!n->is_string()) return fail("name", "must be a string");
      name = n->as_string();
    }

    Bytes input_bytes = 0.0;
    if (std::string err =
            read_number_field(root, "input_bytes", "input_bytes", &input_bytes);
        !err.empty()) {
      ProfileParseResult result;
      result.error = std::move(err);
      return result;
    }

    const json::Value* layers_field = root.find("layers");
    if (layers_field == nullptr || !layers_field->is_array()) {
      return fail("layers", "missing layers array");
    }
    const std::vector<json::Value>& items = layers_field->items();
    if (items.empty()) return fail("layers", "profile has no layers");
    if (items.size() > static_cast<std::size_t>(kMaxProfileLayers)) {
      return fail("layers", "profile exceeds " +
                                std::to_string(kMaxProfileLayers) + " layers");
    }

    std::vector<Layer> layers;
    layers.reserve(items.size());
    std::unordered_set<std::string> seen_names;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::string path = "layers[" + std::to_string(i) + "]";
      const json::Value& item = items[i];
      if (!item.is_object()) return fail(path, "must be an object");
      for (const auto& [key, value] : item.members()) {
        if (key != "name" && key != "forward_seconds" &&
            key != "backward_seconds" && key != "weight_bytes" &&
            key != "output_bytes" && key != "scratch_bytes") {
          return fail(path + "." + key, "unknown field");
        }
      }
      Layer layer;
      const json::Value* layer_name = item.find("name");
      if (layer_name == nullptr || !layer_name->is_string() ||
          layer_name->as_string().empty()) {
        return fail(path + ".name", "must be a non-empty string");
      }
      layer.name = layer_name->as_string();
      if (!seen_names.insert(layer.name).second) {
        return fail(path + ".name",
                    "duplicate layer id '" + layer.name + "'");
      }
      struct Field {
        const char* key;
        double* slot;
      };
      for (const Field& f :
           {Field{"forward_seconds", &layer.forward_time},
            Field{"backward_seconds", &layer.backward_time},
            Field{"weight_bytes", &layer.weight_bytes},
            Field{"output_bytes", &layer.output_bytes}}) {
        if (std::string err =
                read_number_field(item, f.key, path + "." + f.key, f.slot);
            !err.empty()) {
          ProfileParseResult result;
          result.error = std::move(err);
          return result;
        }
      }
      if (const json::Value* scratch = item.find("scratch_bytes");
          scratch != nullptr) {
        if (std::string err =
                read_number_field(item, "scratch_bytes",
                                 path + ".scratch_bytes",
                                 &layer.scratch_bytes);
            !err.empty()) {
          ProfileParseResult result;
          result.error = std::move(err);
          return result;
        }
      }
      layers.push_back(std::move(layer));
    }

    ProfileParseResult result;
    result.chain.emplace(name, input_bytes, std::move(layers));
    return result;
  } catch (const std::exception& error) {
    ProfileParseResult result;
    result.error = std::string("profile parse error: ") + error.what();
    return result;
  } catch (...) {
    ProfileParseResult result;
    result.error = "profile parse error: unknown exception";
    return result;
  }
}

}  // namespace madpipe::models
