#include "models/resnet.hpp"

#include "util/expect.hpp"

namespace madpipe::models {

namespace {

/// One bottleneck residual block: 1x1 reduce → 3x3 (stride) → 1x1 expand,
/// plus a projection shortcut when the shape changes.
BlockStats bottleneck(const std::string& name, const Tensor& input,
                      int width, int stride) {
  const int out_channels = 4 * width;
  BlockBuilder main(name, input);
  main.conv(width, 1).relu();
  main.conv(width, 3, stride).relu();
  main.conv(out_channels, 1);

  if (stride != 1 || input.channels != out_channels) {
    BlockBuilder shortcut(name + "/proj", input);
    shortcut.conv(out_channels, 1, stride);
    const BlockStats proj = shortcut.finish();
    MP_ENSURE(proj.output == main.shape(), "projection shape mismatch");
    // The projection runs in parallel with the main path; its cost and
    // parameters belong to this block. Channels must not double-count, so we
    // fold it in manually rather than via concat.
    BlockStats stats = main.relu().finish();
    BlockStats combined = stats;
    combined.forward_flops += proj.forward_flops +
                              static_cast<double>(stats.output.elements());
    combined.params += proj.params;
    return combined;
  }
  main.add_residual(main.shape()).relu();
  return main.finish();
}

}  // namespace

std::vector<BlockStats> build_resnet(const Tensor& input,
                                     const std::vector<int>& stage_blocks,
                                     int num_classes) {
  MP_EXPECT(stage_blocks.size() == 4, "ResNet has four bottleneck stages");
  std::vector<BlockStats> blocks;

  // Stem: 7x7/2 conv + 3x3/2 max pool.
  BlockBuilder stem("stem", input);
  stem.conv(64, 7, 2, 3).relu().max_pool(3, 2, 1);
  blocks.push_back(stem.finish());

  Tensor shape = blocks.back().output;
  const int widths[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < stage_blocks[static_cast<std::size_t>(stage)]; ++b) {
      const int stride = (b == 0 && stage > 0) ? 2 : 1;
      const std::string name = "conv" + std::to_string(stage + 2) + "_" +
                               std::to_string(b + 1);
      blocks.push_back(bottleneck(name, shape, widths[stage], stride));
      shape = blocks.back().output;
    }
  }

  BlockBuilder head("head", shape);
  head.global_avg_pool().fully_connected(num_classes);
  blocks.push_back(head.finish());
  return blocks;
}

std::vector<BlockStats> build_resnet50(const Tensor& input, int num_classes) {
  return build_resnet(input, {3, 4, 6, 3}, num_classes);
}

std::vector<BlockStats> build_resnet101(const Tensor& input, int num_classes) {
  return build_resnet(input, {3, 4, 23, 3}, num_classes);
}

}  // namespace madpipe::models
