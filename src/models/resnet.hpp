// ResNet-50 / ResNet-101 block sequences (He et al., 2016) with exact
// bottleneck shape arithmetic. One chain block per bottleneck, plus the stem
// and the classification head — the natural linearization of the residual
// graph (each block's skip connection is internal to the block).
#pragma once

#include <vector>

#include "models/netdef.hpp"

namespace madpipe::models {

/// Bottleneck counts per stage: ResNet-50 = {3,4,6,3}, ResNet-101 = {3,4,23,3}.
std::vector<BlockStats> build_resnet(const Tensor& input,
                                     const std::vector<int>& stage_blocks,
                                     int num_classes = 1000);

std::vector<BlockStats> build_resnet50(const Tensor& input,
                                       int num_classes = 1000);
std::vector<BlockStats> build_resnet101(const Tensor& input,
                                        int num_classes = 1000);

}  // namespace madpipe::models
