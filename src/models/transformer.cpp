#include "models/transformer.hpp"

#include "models/profile_io.hpp"
#include "util/expect.hpp"

namespace madpipe::models {

namespace {

/// Parameters of one decoder block: 4·h² attention (QKV + output
/// projection) + 8·h² MLP (up + down at the standard 4·h inner width),
/// plus ~13·h of biases and layer norms.
double block_parameters(const TransformerConfig& c) {
  const double h = static_cast<double>(c.hidden);
  return 12.0 * h * h + 13.0 * h;
}

/// Forward FLOPs of one decoder block per sample: 2 FLOPs per parameter
/// per token for the matmuls (24·s·h²) plus the attention score/context
/// products (4·s²·h).
double block_forward_flops(const TransformerConfig& c) {
  const double h = static_cast<double>(c.hidden);
  const double s = static_cast<double>(c.seq_len);
  return 24.0 * s * h * h + 4.0 * s * s * h;
}

/// FLOPs → seconds on the config's device, for `batch` samples, one kernel
/// launch worth of overhead per linearized layer.
Seconds forward_seconds(const TransformerConfig& c, double flops_per_sample) {
  return static_cast<double>(c.batch) * flops_per_sample /
             c.device.effective_flops() +
         c.device.op_overhead;
}

Seconds backward_seconds(const TransformerConfig& c, Seconds forward) {
  return c.device.backward_flops_factor * (forward - c.device.op_overhead) +
         c.device.op_overhead;
}

Layer make_layer(const TransformerConfig& c, std::string name,
                 double flops_per_sample, double parameters,
                 Bytes output_bytes) {
  Layer layer;
  layer.name = std::move(name);
  layer.forward_time = forward_seconds(c, flops_per_sample);
  layer.backward_time = backward_seconds(c, layer.forward_time);
  layer.weight_bytes = parameters * c.bytes_per_param;
  layer.output_bytes = output_bytes;
  return layer;
}

}  // namespace

double TransformerConfig::parameters() const {
  return static_cast<double>(blocks) * block_parameters(*this) +
         2.0 * static_cast<double>(vocab) * static_cast<double>(hidden);
}

Chain build_transformer(const TransformerConfig& config) {
  MP_EXPECT(config.blocks >= 1, "transformer needs at least one block");
  MP_EXPECT(config.hidden >= 1 && config.seq_len >= 1 && config.vocab >= 1,
            "transformer dimensions must be positive");
  MP_EXPECT(config.batch >= 1, "batch must be positive");
  MP_EXPECT(config.split >= 1, "split must be positive");
  MP_EXPECT(config.blocks <= (kMaxProfileLayers - 2) / config.split,
            "transformer linearizes past the profile layer limit");

  const double b = static_cast<double>(config.batch);
  const double s = static_cast<double>(config.seq_len);
  const double h = static_cast<double>(config.hidden);
  const double v = static_cast<double>(config.vocab);
  /// The residual-stream activation crossing every linearized boundary.
  const Bytes hidden_bytes = b * s * h * config.bytes_per_activation;
  const double embedding_parameters = v * h;

  std::vector<Layer> layers;
  layers.reserve(static_cast<std::size_t>(config.blocks) *
                     static_cast<std::size_t>(config.split) +
                 2);
  // Embedding: a table gather plus positional add — bandwidth, not FLOPs,
  // so its compute term is negligible next to any block.
  layers.push_back(make_layer(config, "embed", 2.0 * s * h,
                              embedding_parameters, hidden_bytes));
  const double sublayer_flops =
      block_forward_flops(config) / static_cast<double>(config.split);
  const double sublayer_parameters =
      block_parameters(config) / static_cast<double>(config.split);
  for (int block = 0; block < config.blocks; ++block) {
    for (int part = 0; part < config.split; ++part) {
      std::string name = "blk" + std::to_string(block);
      if (config.split > 1) name += "." + std::to_string(part);
      layers.push_back(make_layer(config, std::move(name), sublayer_flops,
                                  sublayer_parameters, hidden_bytes));
    }
  }
  // LM head: the h → V projection; its logits output ends the chain (no
  // boundary communication happens there).
  layers.push_back(make_layer(config, "head", 2.0 * s * h * v,
                              embedding_parameters,
                              b * s * v * config.bytes_per_activation));

  // a_0: the token ids entering the embedding (int32 per token).
  const Bytes input_bytes = b * s * 4.0;
  return Chain(config.name, input_bytes, std::move(layers));
}

std::vector<std::string> list_transformer_presets() {
  return {"gpt2-xl", "gpt3-13b-shape", "llm-2k"};
}

bool is_transformer_preset(const std::string& name) {
  for (const std::string& preset : list_transformer_presets()) {
    if (name == preset) return true;
  }
  return false;
}

TransformerConfig transformer_preset(const std::string& name) {
  TransformerConfig config;
  config.name = name;
  if (name == "gpt2-xl") {
    // GPT-2 XL: 48 blocks, h = 1600 — ~1.6B params, ~3.2 GB at fp16.
    config.blocks = 48;
    config.hidden = 1600;
    config.seq_len = 1024;
  } else if (name == "gpt3-13b-shape") {
    // GPT-3 13B shape (DawnPiper/2BP-class evaluation size): 40 blocks,
    // h = 5120 — ~13B params, ~26 GB at fp16.
    config.blocks = 40;
    config.hidden = 5120;
    config.seq_len = 2048;
  } else if (name == "llm-2k") {
    // The DP stress shape: 512 blocks linearized to 2050 layers, ~26B
    // params, ~52 GB of fp16 weights — past anything the paper ran.
    config.blocks = 512;
    config.hidden = 2048;
    config.seq_len = 2048;
  } else {
    MP_EXPECT(false, "unknown transformer preset: " + name);
  }
  return config;
}

}  // namespace madpipe::models
