// Parameterized LLM-scale transformer profile generator (DESIGN.md §14).
//
// The paper's four evaluation networks top out at ~100 layers; transformer
// decoder stacks are where pipeline parallelism actually runs today
// (DawnPiper and 2BP both evaluate on transformer-family models, PAPERS.md).
// A decoder-only transformer is, from the planner's point of view, the
// *easiest* network to describe and the *hardest* to plan: a uniform chain
// of identical blocks — embedding, N decoder blocks, LM head — whose length
// after linearization reaches thousands of layers and whose weights reach
// multi-GiB per stage. This generator produces exactly that shape from
// first-principles FLOP/byte arithmetic (standard 12·h² params and
// 24·b·s·h² + 4·b·s²·h forward FLOPs per block), reusing the zoo's
// DeviceModel for the FLOP → seconds conversion.
//
// Each decoder block is linearized into `split` uniform sublayers (the
// qkv / attention+projection / mlp-up / mlp-down boundaries at split = 4),
// which is what stresses the DP at LLM scale: cut candidates every few
// dozen MB of weights instead of every block.
#pragma once

#include <string>
#include <vector>

#include "core/chain.hpp"
#include "models/cost_model.hpp"

namespace madpipe::models {

struct TransformerConfig {
  std::string name = "transformer";
  int blocks = 12;        ///< decoder blocks N
  int hidden = 768;       ///< model width h
  int seq_len = 1024;     ///< tokens per sample s
  int vocab = 50257;      ///< vocabulary V (embedding + head weights)
  int batch = 1;          ///< microbatch size b (scales time + activations)
  int split = 4;          ///< linearized sublayers per decoder block (≥ 1)
  double bytes_per_param = 2.0;       ///< fp16 weights
  double bytes_per_activation = 2.0;  ///< fp16 activations
  DeviceModel device;

  /// Total parameter count of the generated model (blocks + embedding +
  /// head), before byte scaling.
  double parameters() const;
};

/// Build the linearized chain: 1 embedding layer + blocks·split decoder
/// sublayers + 1 head layer, i.e. blocks·split + 2 chain layers.
Chain build_transformer(const TransformerConfig& config);

/// Named preset shapes accepted by the zoo's build_network (and therefore
/// by `madpipe profile` and serve requests): "gpt2-xl", "gpt3-13b-shape",
/// "llm-2k".
std::vector<std::string> list_transformer_presets();

bool is_transformer_preset(const std::string& name);

/// Preset lookup; throws on unknown names.
TransformerConfig transformer_preset(const std::string& name);

}  // namespace madpipe::models
