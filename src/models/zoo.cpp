#include "models/zoo.hpp"

#include "models/densenet.hpp"
#include "models/inception.hpp"
#include "models/resnet.hpp"
#include "models/transformer.hpp"
#include "util/expect.hpp"

namespace madpipe::models {

std::vector<std::string> list_networks() {
  return {"resnet50", "resnet101", "inception_v3", "densenet121"};
}

Chain build_network(const NetworkConfig& config) {
  if (is_transformer_preset(config.network)) {
    // Transformer presets are sequence models: image_size does not apply
    // (it keeps its default in canonical request keys), batch scales the
    // microbatch, and chain_length coarsens like any other network.
    TransformerConfig transformer = transformer_preset(config.network);
    transformer.batch = config.batch;
    transformer.device = config.device;
    Chain chain = build_transformer(transformer);
    if (config.chain_length > 0) {
      chain = coarsen(chain, config.chain_length, config.coarsen_strategy);
    }
    return chain;
  }
  MP_EXPECT(config.image_size >= 64, "image size too small");
  const Tensor input{3, config.image_size, config.image_size};

  std::vector<BlockStats> blocks;
  if (config.network == "resnet50") {
    blocks = build_resnet50(input);
  } else if (config.network == "resnet101") {
    blocks = build_resnet101(input);
  } else if (config.network == "inception_v3") {
    blocks = build_inception_v3(input);
  } else if (config.network == "densenet121") {
    blocks = build_densenet121(input);
  } else {
    MP_EXPECT(false, "unknown network: " + config.network);
  }

  Chain chain =
      blocks_to_chain(config.network, input, blocks, config.batch, config.device);
  if (config.chain_length > 0) {
    chain = coarsen(chain, config.chain_length, config.coarsen_strategy);
  }
  return chain;
}

Chain paper_network(const std::string& name) {
  NetworkConfig config;
  config.network = name;
  config.image_size = 1000;
  config.batch = 8;
  config.chain_length = 24;
  return build_network(config);
}

}  // namespace madpipe::models
