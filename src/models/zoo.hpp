// Registry of the paper's evaluation networks (§5.1): ResNet-50,
// ResNet-101, Inception-v3, DenseNet-121, profiled at a given square image
// size and mini-batch size on a device model, then linearized to a target
// chain length. build_network additionally accepts the LLM-scale
// transformer presets of models/transformer.hpp (list_transformer_presets),
// for which image_size is ignored; list_networks() stays the paper's four —
// benches and fleet traces iterate it at paper scale.
#pragma once

#include <string>
#include <vector>

#include "core/chain.hpp"
#include "models/cost_model.hpp"
#include "models/linearize.hpp"

namespace madpipe::models {

struct NetworkConfig {
  std::string network = "resnet50";  ///< see list_networks()
  int image_size = 1000;             ///< square input, pixels
  int batch = 8;                     ///< mini-batch size B
  int chain_length = 0;              ///< 0 = no coarsening
  DeviceModel device;
  CoarsenStrategy coarsen_strategy = CoarsenStrategy::MinCompute;
};

/// The paper's four network names. build_network also accepts
/// models::list_transformer_presets() names.
std::vector<std::string> list_networks();

/// Build the linearized profile chain for `config`. Throws on unknown names.
Chain build_network(const NetworkConfig& config);

/// The paper's default evaluation setting for a given network name:
/// 1000x1000 images, batch 8, coarsened to 24 stages.
Chain paper_network(const std::string& name);

}  // namespace madpipe::models
