// Registry of the paper's evaluation networks (§5.1): ResNet-50,
// ResNet-101, Inception-v3, DenseNet-121, profiled at a given square image
// size and mini-batch size on a device model, then linearized to a target
// chain length.
#pragma once

#include <string>
#include <vector>

#include "core/chain.hpp"
#include "models/cost_model.hpp"
#include "models/linearize.hpp"

namespace madpipe::models {

struct NetworkConfig {
  std::string network = "resnet50";  ///< see list_networks()
  int image_size = 1000;             ///< square input, pixels
  int batch = 8;                     ///< mini-batch size B
  int chain_length = 0;              ///< 0 = no coarsening
  DeviceModel device;
  CoarsenStrategy coarsen_strategy = CoarsenStrategy::MinCompute;
};

/// Names accepted by build_network.
std::vector<std::string> list_networks();

/// Build the linearized profile chain for `config`. Throws on unknown names.
Chain build_network(const NetworkConfig& config);

/// The paper's default evaluation setting for a given network name:
/// 1000x1000 images, batch 8, coarsened to 24 stages.
Chain paper_network(const std::string& name);

}  // namespace madpipe::models
