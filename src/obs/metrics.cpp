#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/json.hpp"

namespace madpipe::obs {

namespace {

/// Atomic add for the double-valued histogram sum (no fetch_add for doubles
/// until C++20 on all toolchains; CAS loop is fine off the hot path).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::string format_double(double v) {
  if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::observe(double v) noexcept {
  // First bucket whose upper bound admits v; past-the-end = +Inf bucket.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::vector<double> latency_bounds_seconds() {
  // 5 log-spaced points per decade, 1 µs .. 100 s.
  std::vector<double> bounds;
  for (int decade = -6; decade <= 1; ++decade) {
    for (const double mantissa : {1.0, 1.585, 2.512, 3.981, 6.310}) {
      bounds.push_back(mantissa * std::pow(10.0, decade));
    }
  }
  bounds.push_back(100.0);
  return bounds;
}

double histogram_quantile(std::span<const double> bounds,
                          std::span<const long long> bucket_counts, double q) {
  long long total = 0;
  for (const long long count : bucket_counts) total += count;
  if (total <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  long long cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const long long in_bucket = bucket_counts[i];
    if (in_bucket <= 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double fraction =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double histogram_quantile(const Histogram& histogram, double q) {
  std::vector<long long> counts;
  counts.reserve(histogram.bounds().size() + 1);
  for (std::size_t i = 0; i <= histogram.bounds().size(); ++i) {
    counts.push_back(histogram.bucket_count(i));
  }
  return histogram_quantile(histogram.bounds(), counts, q);
}

struct Registry::Entry {
  enum Kind { kCounter = 0, kGauge = 1, kHistogram = 2 };
  std::string name;
  std::string help;
  int kind = kCounter;
  Counter counter;
  Gauge gauge;
  Histogram histogram;

  Entry(std::string entry_name, std::string entry_help, int entry_kind,
        std::vector<double> bounds)
      : name(std::move(entry_name)),
        help(std::move(entry_help)),
        kind(entry_kind),
        histogram(std::move(bounds)) {}
};

Registry& Registry::global() {
  // Leaked intentionally: metrics outlive every static destructor that
  // might still publish.
  static Registry* instance = new Registry();
  return *instance;
}

Registry::Entry& Registry::find_or_create(std::string_view name,
                                          std::string_view help, int kind,
                                          std::vector<double> bounds) {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (Entry* entry : entries_) {
    if (entry->name == name) return *entry;
  }
  entries_.push_back(new Entry(std::string(name), std::string(help), kind,
                               std::move(bounds)));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  return find_or_create(name, help, Entry::kCounter, {}).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  return find_or_create(name, help, Entry::kGauge, {}).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds,
                               std::string_view help) {
  return find_or_create(name, help, Entry::kHistogram, std::move(bounds))
      .histogram;
}

void Registry::reset_for_tests() {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (Entry* entry : entries_) {
    entry->counter.value_.store(0, std::memory_order_relaxed);
    entry->gauge.value_.store(0.0, std::memory_order_relaxed);
    for (auto& bucket : entry->histogram.buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    entry->histogram.count_.store(0, std::memory_order_relaxed);
    entry->histogram.sum_.store(0.0, std::memory_order_relaxed);
  }
}

std::string Registry::text() const {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::vector<const Entry*> sorted(entries_.begin(), entries_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });
  std::string out;
  for (const Entry* entry : sorted) {
    if (!entry->help.empty()) {
      out += "# HELP " + entry->name + " " + entry->help + "\n";
    }
    switch (entry->kind) {
      case Entry::kCounter:
        out += "# TYPE " + entry->name + " counter\n";
        out += entry->name + " " + std::to_string(entry->counter.value()) +
               "\n";
        break;
      case Entry::kGauge:
        out += "# TYPE " + entry->name + " gauge\n";
        out += entry->name + " " + format_double(entry->gauge.value()) + "\n";
        break;
      case Entry::kHistogram: {
        const Histogram& h = entry->histogram;
        out += "# TYPE " + entry->name + " histogram\n";
        long long cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          out += entry->name + "_bucket{le=\"" +
                 format_double(h.bounds()[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += h.bucket_count(h.bounds().size());
        out += entry->name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += entry->name + "_sum " + format_double(h.sum()) + "\n";
        out += entry->name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

void Registry::write_json(json::Writer& writer) const {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::vector<const Entry*> sorted(entries_.begin(), entries_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });
  writer.begin_object();
  writer.key("schema");
  writer.value(kMetricsSchema);
  writer.key("counters");
  writer.begin_array();
  for (const Entry* entry : sorted) {
    if (entry->kind != Entry::kCounter) continue;
    writer.begin_object();
    writer.key("name");
    writer.value(entry->name);
    if (!entry->help.empty()) {
      writer.key("help");
      writer.value(entry->help);
    }
    writer.key("value");
    writer.value(entry->counter.value());
    writer.end_object();
  }
  writer.end_array();
  writer.key("gauges");
  writer.begin_array();
  for (const Entry* entry : sorted) {
    if (entry->kind != Entry::kGauge) continue;
    writer.begin_object();
    writer.key("name");
    writer.value(entry->name);
    if (!entry->help.empty()) {
      writer.key("help");
      writer.value(entry->help);
    }
    writer.key("value");
    writer.value(entry->gauge.value());
    writer.end_object();
  }
  writer.end_array();
  writer.key("histograms");
  writer.begin_array();
  for (const Entry* entry : sorted) {
    if (entry->kind != Entry::kHistogram) continue;
    const Histogram& h = entry->histogram;
    writer.begin_object();
    writer.key("name");
    writer.value(entry->name);
    if (!entry->help.empty()) {
      writer.key("help");
      writer.value(entry->help);
    }
    writer.key("count");
    writer.value(h.count());
    writer.key("sum");
    writer.value(h.sum());
    writer.key("bounds");
    writer.begin_array();
    for (const double bound : h.bounds()) writer.value(bound);
    writer.end_array();
    writer.key("bucket_counts");
    writer.begin_array();
    for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
      writer.value(h.bucket_count(i));
    }
    writer.end_array();
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
}

std::string Registry::json() const {
  json::Writer writer;
  write_json(writer);
  return writer.str();
}

}  // namespace madpipe::obs
