// Process-wide metrics registry: named monotonic counters, point-in-time
// gauges and fixed-bucket latency histograms, shared by the solver, the
// planner and the serve subsystem.
//
// The legacy per-run counter structs (solver::SolverStats, PlannerStats,
// serve::ServeStats) stay the per-result API — their fields are unchanged
// and every existing test keeps working. This registry is the *cumulative*
// process view: each subsystem publishes its per-run deltas into it
// (SolverStats::publish at the end of solve_milp, PlannerStats::publish at
// the end of plan_madpipe, PlanService as requests complete), so
// `madpipe stats`, --metrics-out files and the Prometheus-style text dump
// see one coherent namespace (madpipe_solver_*, madpipe_planner_*,
// madpipe_serve_*).
//
// Thread-safety: Counter/Gauge/Histogram updates are relaxed atomics
// (lock-free, safe from any thread). Entity creation and the text/JSON
// dumps take the registry mutex. Entities are never destroyed or moved —
// references returned by counter()/gauge()/histogram() stay valid for the
// process lifetime, so callers cache them (e.g. in a function-local static)
// and pay one lookup ever. reset_for_tests() zeroes values but keeps every
// entity alive.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace madpipe::json {
class Writer;
}

namespace madpipe::obs {

/// Schema tag of the JSON produced by Registry::write_json (read back by
/// `madpipe stats FILE`).
inline constexpr const char* kMetricsSchema = "madpipe-metrics-v1";

/// Monotonic counter. Lock-free; safe from any thread.
class Counter {
 public:
  void add(long long delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  long long value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<long long> value_{0};
};

/// Point-in-time value (cache occupancy, load factors). set() overwrites.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram in the Prometheus style: `bounds` are the finite
/// upper bounds, plus an implicit +Inf bucket; counts are cumulative in the
/// text exposition and per-bucket in the JSON dump. observe() is lock-free.
class Histogram {
 public:
  void observe(double v) noexcept;

  long long count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::span<const double> bounds() const noexcept { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the +Inf bucket).
  long long bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;
  std::vector<std::atomic<long long>> buckets_;  ///< bounds_.size() + 1
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Log-spaced latency bounds from 1 µs to 100 s (5 per decade), the default
/// for the madpipe_*_seconds histograms.
std::vector<double> latency_bounds_seconds();

/// Prometheus-style quantile estimate from fixed buckets: find the bucket
/// containing rank q·count and interpolate linearly inside it (the bucket's
/// lower bound is the previous finite bound, or 0 for the first). Samples in
/// the +Inf bucket clamp to the last finite bound — fixed buckets cannot say
/// more. Returns 0 when the histogram is empty. `bucket_counts` are
/// per-bucket (not cumulative) and must have bounds.size() + 1 entries.
double histogram_quantile(std::span<const double> bounds,
                          std::span<const long long> bucket_counts, double q);

/// Convenience overload reading a live histogram.
double histogram_quantile(const Histogram& histogram, double q);

class Registry {
 public:
  /// The process-wide registry every built-in metric registers into.
  static Registry& global();

  /// Find-or-create by name. The first call fixes the help text (and, for
  /// histograms, the bucket bounds); later calls with the same name return
  /// the same entity regardless of the other arguments. Returned references
  /// are valid forever.
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name,
                       std::vector<double> bounds = latency_bounds_seconds(),
                       std::string_view help = {});

  /// Prometheus-style text exposition (# HELP / # TYPE / samples), entities
  /// in name order.
  std::string text() const;

  /// One JSON object value tagged with kMetricsSchema (the caller owns any
  /// surrounding scope): {"schema", "counters": [...], "gauges": [...],
  /// "histograms": [...]}.
  void write_json(json::Writer& writer) const;
  std::string json() const;

  /// Zero every value, keeping all entities (and outstanding references)
  /// alive. For tests that assert on cumulative counts.
  void reset_for_tests();

 private:
  Registry() = default;
  struct Entry;
  Entry& find_or_create(std::string_view name, std::string_view help,
                        int kind, std::vector<double> bounds);

  mutable std::recursive_mutex mutex_;
  std::vector<Entry*> entries_;  ///< owned; never destroyed (process-lifetime)
};

}  // namespace madpipe::obs
