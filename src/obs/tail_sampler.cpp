#include "obs/tail_sampler.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/json.hpp"

namespace madpipe::obs {

namespace {

/// Min-heap order on latency: the heap root (front) is the *fastest*
/// retained request, the first to be displaced by a slower arrival.
bool slower(const SampledRequest& a, const SampledRequest& b) {
  return a.latency_seconds > b.latency_seconds;
}

}  // namespace

namespace detail {

void tail_record(const TraceEvent& event) noexcept {
  tail_sampler().record(event.trace_id, event);
}

}  // namespace detail

TailSampler::TailSampler(const TailSamplerOptions& options) {
  configure(options);
}

void TailSampler::configure(const TailSamplerOptions& options) {
  // Hold every shard lock while options_ changes: begin/record/end read
  // the options under their shard lock. Lock order (shards, then the
  // retained mutex) matches begin().
  std::unique_lock<std::mutex> shard_locks[kShards];
  for (std::size_t i = 0; i < kShards; ++i) {
    shard_locks[i] = std::unique_lock<std::mutex>(shards_[i].mutex);
    shards_[i].active.clear();
  }
  const std::lock_guard<std::mutex> lock(retained_mutex_);
  options_ = options;
  if (options_.keep_slowest == 0) options_.keep_slowest = 1;
  window_.clear();
  previous_.clear();
  errors_.clear();
  window_start_ns_ = now_ns();
  started_ = finished_ = retained_ = overflow_dropped_ = 0;
}

void TailSampler::begin(std::uint64_t trace_id, std::int64_t start_ns) {
  if (trace_id == 0) return;
  Shard& s = shard(trace_id);
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.active.size() >= options_.max_active / kShards + 1) {
    const std::lock_guard<std::mutex> retained_lock(retained_mutex_);
    ++overflow_dropped_;
    return;
  }
  Active& active = s.active[trace_id];
  active.start_ns = start_ns;
  active.truncated = false;
  active.spans.clear();
  {
    const std::lock_guard<std::mutex> retained_lock(retained_mutex_);
    ++started_;
  }
}

void TailSampler::record(std::uint64_t trace_id, const TraceEvent& event) {
  if (trace_id == 0) return;
  Shard& s = shard(trace_id);
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.active.find(trace_id);
  if (it == s.active.end()) return;  // not a tracked request
  // Spans arrive in *finish* order, so a planning-heavy request floods the
  // record with fine-grained planner/solver spans before the coarse phase
  // spans (serve_submit, queue_wait, serve_plan — they close last) ever
  // land. Reserve a little headroom for the serve/fleet phase layer: inner
  // spans may fill at most cap - reserve slots, phase spans the full cap.
  const bool phase_span =
      event.category != nullptr &&
      (std::strcmp(event.category, kCatServe) == 0 ||
       std::strcmp(event.category, kCatFleet) == 0);
  const std::size_t reserve =
      std::min<std::size_t>(8, options_.max_spans_per_request / 2);
  const std::size_t limit = phase_span
                                ? options_.max_spans_per_request
                                : options_.max_spans_per_request - reserve;
  if (it->second.spans.size() >= limit) {
    it->second.truncated = true;
    return;
  }
  it->second.spans.push_back(event);
}

void TailSampler::end(SampledRequest&& done) {
  if (done.trace_id == 0) return;
  Shard& s = shard(done.trace_id);
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.active.find(done.trace_id);
    if (it == s.active.end()) return;  // never began (overflow-dropped)
    done.start_ns = it->second.start_ns;
    done.truncated = it->second.truncated;
    done.spans = std::move(it->second.spans);
    s.active.erase(it);
  }
  // Spans drained from per-thread contexts arrive in finish order; present
  // them start-sorted like drain_trace() so the tree reads top-down.
  std::sort(done.spans.begin(), done.spans.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;
            });
  retain(std::move(done));
}

void TailSampler::retain(SampledRequest&& done) {
  const std::lock_guard<std::mutex> lock(retained_mutex_);
  ++finished_;
  const std::int64_t now = now_ns();
  const double window_ns = options_.window_seconds * 1e9;
  if (static_cast<double>(now - window_start_ns_) >= window_ns) {
    // Roll the window: current winners become the previous snapshot.
    std::sort(window_.begin(), window_.end(), slower);
    previous_ = std::move(window_);
    window_.clear();
    window_start_ns_ = now;
  }
  if (done.error) {
    ++retained_;
    errors_.push_back(std::move(done));
    while (errors_.size() > options_.keep_errors) errors_.pop_front();
    return;
  }
  if (window_.size() < options_.keep_slowest) {
    ++retained_;
    window_.push_back(std::move(done));
    std::push_heap(window_.begin(), window_.end(), slower);
    return;
  }
  if (done.latency_seconds > window_.front().latency_seconds) {
    ++retained_;
    std::pop_heap(window_.begin(), window_.end(), slower);
    window_.back() = std::move(done);
    std::push_heap(window_.begin(), window_.end(), slower);
  }
}

TailSampler::Snapshot TailSampler::snapshot() const {
  const std::lock_guard<std::mutex> lock(retained_mutex_);
  Snapshot snap;
  snap.slow = window_;
  snap.slow.insert(snap.slow.end(), previous_.begin(), previous_.end());
  std::sort(snap.slow.begin(), snap.slow.end(), slower);
  snap.errors.assign(errors_.begin(), errors_.end());
  snap.started = started_;
  snap.finished = finished_;
  snap.retained = retained_;
  snap.overflow_dropped = overflow_dropped_;
  return snap;
}

namespace {

void write_sampled_request(json::Writer& w, const SampledRequest& r) {
  w.begin_object();
  w.key("trace_id");
  w.value(format_trace_id(r.trace_id));
  w.key("id");
  w.value(r.request_id);
  w.key("status");
  w.value(r.status);
  w.key("cache");
  w.value(r.cache);
  w.key("start_us");
  w.value(static_cast<double>(r.start_ns) * 1e-3);
  w.key("latency_seconds");
  w.value(r.latency_seconds);
  w.key("phases");
  w.begin_object();
  w.key("admission_seconds");
  w.value(r.admission_seconds);
  w.key("queue_seconds");
  w.value(r.queue_seconds);
  w.key("plan_seconds");
  w.value(r.plan_seconds);
  w.end_object();
  w.key("error");
  w.value(r.error);
  w.key("truncated");
  w.value(r.truncated);
  w.key("spans");
  w.begin_array();
  for (const TraceEvent& e : r.spans) {
    w.begin_object();
    w.key("name");
    w.value(e.name != nullptr ? e.name : "");
    w.key("cat");
    w.value(e.category != nullptr ? e.category : "");
    w.key("tid");
    w.value(static_cast<long long>(e.tid));
    w.key("ts_us");
    w.value(static_cast<double>(e.start_ns) * 1e-3);
    w.key("dur_us");
    w.value(static_cast<double>(e.dur_ns) * 1e-3);
    if (e.arg1_key != nullptr) {
      w.key(e.arg1_key);
      w.value(e.arg1_value);
    }
    if (e.arg2_key != nullptr) {
      w.key(e.arg2_key);
      w.value(e.arg2_value);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_slow_json(json::Writer& w, const TailSampler::Snapshot& s) {
  w.begin_object();
  w.key("schema");
  w.value("madpipe-admin-v1");
  w.key("slow");
  w.begin_array();
  for (const SampledRequest& r : s.slow) write_sampled_request(w, r);
  w.end_array();
  w.key("errors");
  w.begin_array();
  for (const SampledRequest& r : s.errors) write_sampled_request(w, r);
  w.end_array();
  w.key("counters");
  w.begin_object();
  w.key("started");
  w.value(s.started);
  w.key("finished");
  w.value(s.finished);
  w.key("retained");
  w.value(s.retained);
  w.key("overflow_dropped");
  w.value(s.overflow_dropped);
  w.key("spans_dropped_total");
  w.value(spans_dropped_total());
  w.end_object();
  w.end_object();
}

std::string TailSampler::slow_json() const {
  json::Writer writer;
  write_slow_json(writer, snapshot());
  return writer.str();
}

TailSampler& tail_sampler() {
  // Never destroyed: the Span fast path may touch it at any point in the
  // process lifetime (same discipline as Registry::global()).
  static TailSampler* instance = new TailSampler();
  return *instance;
}

void arm_tail_sampling(const TailSamplerOptions& options) {
  // Same discipline as install_trace: the drop counter must be visible in
  // /metrics as soon as any telemetry sink is live.
  (void)spans_dropped_total();
  tail_sampler().configure(options);
  detail::g_tail_armed.store(true, std::memory_order_release);
}

void disarm_tail_sampling() {
  detail::g_tail_armed.store(false, std::memory_order_release);
}

}  // namespace madpipe::obs
