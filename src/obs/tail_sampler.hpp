// Tail-based trace sampling: keep complete span trees only for the
// requests that matter — the slowest k per time window, plus every request
// that ends in an error — in bounded memory, so request-scoped tracing can
// stay armed on a production server instead of the all-or-nothing rings.
//
// Life of a sampled request:
//   1. begin(trace_id, start_ns) at ingress registers the request as
//      active (a bounded per-shard map; over-capacity requests are counted
//      and not tracked, never blocked).
//   2. Every span finished inside that request's TraceContextScope is
//      routed here by Span::finish / emit_complete (detail::tail_record)
//      and appended to the active record, capped at
//      max_spans_per_request (the cap is recorded as `truncated`). A few
//      slots are reserved for serve/fleet phase spans, which finish last —
//      a flood of inner planner spans can never evict the phase breakdown.
//   3. end(done) moves the request out of the active map and applies the
//      retention rule: errors go to a bounded error ring
//      (always-sampled); everything else competes for the current
//      window's slowest-k slots (a size-k min-heap on latency). When the
//      window rolls, the winners become the "previous window" snapshot
//      and the heap restarts — memory is bounded by
//      2·k + keep_errors requests at max_spans_per_request spans each.
//
// Thread-safety: begin/record/end hash the trace id onto one of a fixed
// set of mutex shards, so concurrent requests on different dispatch/worker
// threads rarely contend; retention and snapshot() take a separate
// retained-state mutex. snapshot() copies — readers (the admin endpoint)
// never block the hot path for longer than one retention update.
//
// The process-wide singleton (tail_sampler()) is never destroyed, like
// Registry::global(), so the Span fast path can use it lock-free behind
// the tail_enabled() flag with no lifetime hazard.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace madpipe::json {
class Writer;
}

namespace madpipe::obs {

struct TailSamplerOptions {
  std::size_t keep_slowest = 8;         ///< k: retained per window
  double window_seconds = 10.0;         ///< window length (wall clock)
  std::size_t max_spans_per_request = 64;
  std::size_t max_active = 4096;        ///< in-flight requests tracked
  std::size_t keep_errors = 16;         ///< always-sampled error ring
};

/// One retained request: identity, outcome, per-phase breakdown, and the
/// spans recorded under its trace id (name/category are interned string
/// literals, safe to hold for the process lifetime).
struct SampledRequest {
  std::uint64_t trace_id = 0;
  std::string request_id;   ///< protocol-level id ("" outside the protocol)
  std::string status;       ///< "ok", "rejected", "error", ...
  std::string cache;        ///< "hit", "miss", "coalesced", ...
  std::int64_t start_ns = 0;       ///< ingress, trace epoch (now_ns)
  double latency_seconds = 0.0;    ///< ingress → completion
  double admission_seconds = 0.0;  ///< ingress → enqueue (parse + cache)
  double queue_seconds = 0.0;
  double plan_seconds = 0.0;
  bool error = false;
  bool truncated = false;  ///< span cap hit; the tree is incomplete
  std::vector<TraceEvent> spans;
};

class TailSampler {
 public:
  explicit TailSampler(const TailSamplerOptions& options = {});

  /// Re-arm with new options, dropping all active and retained state.
  void configure(const TailSamplerOptions& options);

  /// Register a request at ingress. No-op (counted) past max_active.
  void begin(std::uint64_t trace_id, std::int64_t start_ns);

  /// Append one finished span to the request's record (called by the
  /// Span fast path via detail::tail_record). Unknown ids are ignored.
  void record(std::uint64_t trace_id, const TraceEvent& event);

  /// Complete a request: the caller fills everything except `spans`,
  /// `start_ns` and `truncated` (taken from the active record). Applies
  /// the retention rule described above.
  void end(SampledRequest&& done);

  struct Snapshot {
    std::vector<SampledRequest> slow;    ///< slowest first, both windows
    std::vector<SampledRequest> errors;  ///< newest last
    long long started = 0;
    long long finished = 0;
    long long retained = 0;          ///< kept at end() time (slow or error)
    long long overflow_dropped = 0;  ///< begins refused past max_active
  };
  Snapshot snapshot() const;

  /// The /slow payload: {"schema":"madpipe-admin-v1","slow":[...],
  /// "errors":[...],"counters":{...}} built from snapshot().
  std::string slow_json() const;

  const TailSamplerOptions& options() const { return options_; }

 private:
  struct Active {
    std::int64_t start_ns = 0;
    bool truncated = false;
    std::vector<TraceEvent> spans;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Active> active;
  };
  static constexpr std::size_t kShards = 16;

  Shard& shard(std::uint64_t trace_id) noexcept {
    // The low bits are well-mixed (splitmix64 ids).
    return shards_[trace_id & (kShards - 1)];
  }
  void retain(SampledRequest&& done);

  TailSamplerOptions options_;
  Shard shards_[kShards];

  mutable std::mutex retained_mutex_;
  std::vector<SampledRequest> window_;    ///< min-heap on latency, size <= k
  std::vector<SampledRequest> previous_;  ///< last rolled window's winners
  std::deque<SampledRequest> errors_;
  std::int64_t window_start_ns_ = 0;
  long long started_ = 0;
  long long finished_ = 0;
  long long retained_ = 0;
  long long overflow_dropped_ = 0;
};

/// Process-wide sampler (never destroyed). Configure + arm it with
/// arm_tail_sampling(); the Span fast path reaches it through
/// detail::tail_record only while tail_enabled().
TailSampler& tail_sampler();

/// Arm the process tail sampler (clears prior state). Spans finished
/// inside a TraceContextScope are sampled from this point on.
void arm_tail_sampling(const TailSamplerOptions& options = {});

/// Disarm sampling. Retained requests stay readable via snapshot().
void disarm_tail_sampling();

/// Serialize one snapshot as the madpipe-admin-v1 /slow document.
void write_slow_json(json::Writer& writer, const TailSampler::Snapshot& s);

}  // namespace madpipe::obs
