#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace madpipe::obs {

namespace detail {
std::atomic<bool> g_trace_armed{false};
std::atomic<bool> g_tail_armed{false};
}  // namespace detail

namespace {

/// The counter behind spans_dropped_total(). One registry lookup ever; the
/// overwrite path pays a relaxed fetch_add.
Counter& spans_dropped_counter() {
  static Counter& counter = Registry::global().counter(
      "madpipe_spans_dropped_total",
      "Trace-ring events lost to wrap-around overwrite");
  return counter;
}

/// The calling thread's request trace id (TraceContextScope).
thread_local std::uint64_t t_trace_id = 0;

}  // namespace

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t raw =
      counter.fetch_add(1, std::memory_order_relaxed) + 1;
  // splitmix64 finalizer: ids are opaque tokens, not small integers.
  std::uint64_t z = raw + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  z &= 0x7fffffffffffffffull;  // positive as int64 (span args, JSON)
  return z == 0 ? 1 : z;
}

std::uint64_t current_trace_id() noexcept { return t_trace_id; }

std::string format_trace_id(std::uint64_t trace_id) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[trace_id & 0xf];
    trace_id >>= 4;
  }
  return out;
}

TraceContextScope::TraceContextScope(std::uint64_t trace_id) noexcept
    : saved_(t_trace_id) {
  t_trace_id = trace_id;
}

TraceContextScope::~TraceContextScope() noexcept { t_trace_id = saved_; }

long long spans_dropped_total() noexcept {
  return spans_dropped_counter().value();
}

namespace {

/// One ring slot. Every field is a relaxed atomic and writes are bracketed
/// by the odd/even `seq` (seqlock): a reader that sees the same even seq
/// before and after its field reads got a consistent event; anything else is
/// discarded. Single writer per ring, so the writer needs no CAS loops.
struct Slot {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> category{nullptr};
  std::atomic<std::int64_t> start_ns{0};
  std::atomic<std::int64_t> dur_ns{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<const char*> arg1_key{nullptr};
  std::atomic<long long> arg1_value{0};
  std::atomic<const char*> arg2_key{nullptr};
  std::atomic<long long> arg2_value{0};
};

struct Ring {
  explicit Ring(std::size_t capacity, std::uint32_t ring_tid)
      : slots(new Slot[capacity]), mask(capacity - 1), tid(ring_tid) {}

  std::unique_ptr<Slot[]> slots;
  const std::size_t mask;         ///< capacity - 1 (capacity is a power of 2)
  const std::uint32_t tid;
  std::atomic<std::uint64_t> head{0};  ///< total events ever written

  void write(const char* name, const char* category, std::int64_t start_ns,
             std::int64_t dur_ns, std::uint64_t trace_id, const char* k1,
             long long v1, const char* k2, long long v2) noexcept {
    const std::uint64_t index = head.load(std::memory_order_relaxed);
    if (index > mask) spans_dropped_counter().increment();  // overwriting
    Slot& slot = slots[index & mask];
    const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_release);  // odd: in progress
    slot.name.store(name, std::memory_order_relaxed);
    slot.category.store(category, std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.arg1_key.store(k1, std::memory_order_relaxed);
    slot.arg1_value.store(v1, std::memory_order_relaxed);
    slot.arg2_key.store(k2, std::memory_order_relaxed);
    slot.arg2_value.store(v2, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);  // even: stable
    head.store(index + 1, std::memory_order_release);
  }

  /// Append the (up to capacity) newest stable events to `out`.
  void drain(std::vector<TraceEvent>& out) const {
    const std::uint64_t end = head.load(std::memory_order_acquire);
    const std::uint64_t capacity = mask + 1;
    const std::uint64_t begin = end > capacity ? end - capacity : 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      const Slot& slot = slots[i & mask];
      const std::uint32_t before = slot.seq.load(std::memory_order_acquire);
      if (before % 2 != 0) continue;  // write in progress
      TraceEvent event;
      event.name = slot.name.load(std::memory_order_relaxed);
      event.category = slot.category.load(std::memory_order_relaxed);
      event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      event.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
      event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      event.arg1_key = slot.arg1_key.load(std::memory_order_relaxed);
      event.arg1_value = slot.arg1_value.load(std::memory_order_relaxed);
      event.arg2_key = slot.arg2_key.load(std::memory_order_relaxed);
      event.arg2_value = slot.arg2_value.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != before) continue;
      if (event.name == nullptr) continue;  // slot never written
      event.tid = tid;
      out.push_back(event);
    }
  }
};

struct Collector {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;  ///< every ring of this epoch
  std::uint64_t epoch = 0;
  std::size_t capacity = 4096;
  std::atomic<std::uint64_t> epoch_fast{0};  ///< epoch, lock-free mirror
};

Collector& collector() {
  static Collector instance;
  return instance;
}

std::uint32_t next_tid() noexcept {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// The calling thread's ring for the current epoch, creating and
/// registering one on first use (or after a re-install).
Ring& local_ring() {
  struct Local {
    std::shared_ptr<Ring> ring;
    std::uint64_t epoch = ~std::uint64_t{0};
    std::uint32_t tid = next_tid();
  };
  thread_local Local local;
  Collector& c = collector();
  const std::uint64_t epoch = c.epoch_fast.load(std::memory_order_acquire);
  if (local.epoch != epoch) {
    const std::lock_guard<std::mutex> lock(c.mutex);
    local.ring = std::make_shared<Ring>(c.capacity, local.tid);
    local.epoch = c.epoch;
    c.rings.push_back(local.ring);
  }
  return *local.ring;
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::int64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

void install_trace(std::size_t events_per_thread) {
  // Materialize the drop counter so /metrics and --metrics-out dumps carry
  // madpipe_spans_dropped_total from the moment telemetry is armed, not
  // only after the first wrap-around loss.
  spans_dropped_counter();
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  c.rings.clear();
  c.capacity = round_up_pow2(std::max<std::size_t>(events_per_thread, 2));
  ++c.epoch;
  c.epoch_fast.store(c.epoch, std::memory_order_release);
  detail::g_trace_armed.store(true, std::memory_order_release);
}

void uninstall_trace() {
  detail::g_trace_armed.store(false, std::memory_order_release);
}

std::vector<TraceEvent> drain_trace() {
  Collector& c = collector();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    const std::lock_guard<std::mutex> lock(c.mutex);
    rings = c.rings;
  }
  std::vector<TraceEvent> events;
  for (const std::shared_ptr<Ring>& ring : rings) ring->drain(events);
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;  // parents before their children
            });
  return events;
}

void emit_complete(const char* name, const char* category,
                   std::int64_t start_ns, std::int64_t dur_ns,
                   const char* arg1_key, long long arg1_value) {
  const bool ring = trace_enabled();
  const bool tail = tail_enabled();
  if (!ring && !tail) return;
  const std::uint64_t trace_id = current_trace_id();
  if (ring) {
    local_ring().write(name, category, start_ns, dur_ns, trace_id, arg1_key,
                       arg1_value, nullptr, 0);
  }
  if (tail && trace_id != 0) {
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.start_ns = start_ns;
    event.dur_ns = dur_ns;
    event.trace_id = trace_id;
    event.arg1_key = arg1_key;
    event.arg1_value = arg1_value;
    detail::tail_record(event);
  }
}

void Span::finish() noexcept {
  if (!armed_) return;
  armed_ = false;
  const bool ring = trace_enabled();
  const bool tail = tail_enabled();
  if (!ring && !tail) return;  // disarmed while the span was open
  const std::int64_t end_ns = now_ns();
  const std::uint64_t trace_id = current_trace_id();
  if (ring) {
    local_ring().write(name_, category_, start_ns_, end_ns - start_ns_,
                       trace_id, arg1_key_, arg1_value_, arg2_key_,
                       arg2_value_);
  }
  if (tail && trace_id != 0) {
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.start_ns = start_ns_;
    event.dur_ns = end_ns - start_ns_;
    event.trace_id = trace_id;
    event.arg1_key = arg1_key_;
    event.arg1_value = arg1_value_;
    event.arg2_key = arg2_key_;
    event.arg2_value = arg2_value_;
    detail::tail_record(event);
  }
}

void begin_chrome_trace(json::Writer& writer) {
  writer.begin_object();
  writer.key("displayTimeUnit");
  writer.value("ms");
  writer.key("traceEvents");
  writer.begin_array();
}

void end_chrome_trace(json::Writer& writer) {
  writer.end_array();
  writer.end_object();
}

void write_trace_metadata(json::Writer& writer, const char* what,
                          long long pid, long long tid,
                          const std::string& name) {
  writer.begin_object();
  writer.key("name");
  writer.value(what);
  writer.key("ph");
  writer.value("M");
  writer.key("pid");
  writer.value(pid);
  writer.key("tid");
  writer.value(tid);
  writer.key("args");
  writer.begin_object();
  writer.key("name");
  writer.value(name);
  writer.end_object();
  writer.end_object();
}

void begin_complete_event(json::Writer& writer, const std::string& name,
                          const std::string& category, long long pid,
                          long long tid, double ts_us, double dur_us,
                          const char* cname) {
  writer.begin_object();
  writer.key("name");
  writer.value(name);
  writer.key("cat");
  writer.value(category);
  writer.key("ph");
  writer.value("X");
  writer.key("pid");
  writer.value(pid);
  writer.key("tid");
  writer.value(tid);
  // Chrome trace timestamps are microseconds (fractions allowed).
  writer.key("ts");
  writer.value(ts_us);
  writer.key("dur");
  writer.value(dur_us);
  if (cname != nullptr) {
    writer.key("cname");
    writer.value(cname);
  }
}

void write_chrome_trace(json::Writer& writer,
                        const std::vector<TraceEvent>& events) {
  begin_chrome_trace(writer);
  // Thread-name metadata first, one per distinct tid.
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& event : events) {
    if (std::find(tids.begin(), tids.end(), event.tid) == tids.end()) {
      tids.push_back(event.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (const std::uint32_t tid : tids) {
    write_trace_metadata(writer, "thread_name", 1, tid,
                         "madpipe-" + std::to_string(tid));
  }
  for (const TraceEvent& event : events) {
    begin_complete_event(writer, event.name,
                         event.category != nullptr ? event.category
                                                   : "madpipe",
                         1, static_cast<long long>(event.tid),
                         static_cast<double>(event.start_ns) * 1e-3,
                         static_cast<double>(event.dur_ns) * 1e-3);
    if (event.arg1_key != nullptr || event.arg2_key != nullptr ||
        event.trace_id != 0) {
      writer.key("args");
      writer.begin_object();
      if (event.trace_id != 0) {
        writer.key("trace_id");
        writer.value(format_trace_id(event.trace_id));
      }
      if (event.arg1_key != nullptr) {
        writer.key(event.arg1_key);
        writer.value(event.arg1_value);
      }
      if (event.arg2_key != nullptr) {
        writer.key(event.arg2_key);
        writer.value(event.arg2_value);
      }
      writer.end_object();
    }
    writer.end_object();
  }
  end_chrome_trace(writer);
}

std::string trace_to_chrome_json() {
  json::Writer writer;
  write_chrome_trace(writer, drain_trace());
  return writer.str();
}

}  // namespace madpipe::obs
