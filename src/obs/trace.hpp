// Low-overhead trace spans for the planning pipeline.
//
// An obs::Span is an RAII stopwatch: construction timestamps the start,
// destruction records one fixed-size *complete* event (name, category,
// start, duration, thread, up to two integer args) into a lock-free
// thread-local ring buffer. When no sink is installed the constructor is a
// single relaxed atomic load and a branch (~1 ns) and nothing is recorded —
// instrumentation can stay on permanently in the hot paths (LP solves, DP
// probes, B&B scheduler probes, serve request phases).
//
// Concurrency model (single-writer rings, seqlock slots):
//   * each thread writes only its own ring — writers never contend;
//   * every slot field is a relaxed std::atomic and each write is bracketed
//     by an odd/even sequence number (seqlock), so the collector can drain
//     concurrently with writers without locks, torn reads or TSan reports;
//   * the ring wraps by overwriting the *oldest* slot — the newest events
//     are never lost (a drain after wrap returns the last `capacity`
//     events per thread).
//
// Lifecycle: install_trace() arms recording, uninstall_trace() disarms it
// (buffered events stay drainable), drain_trace() snapshots every thread's
// events, trace_to_chrome_json() formats them as a Chrome trace-event
// document (load in chrome://tracing or https://ui.perfetto.dev). All four
// are thread-safe; spans may be open across install/uninstall (a span only
// records if tracing is armed at *destruction* time).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace madpipe::json {
class Writer;
}

namespace madpipe::obs {

/// Span categories used by the built-in instrumentation. The acceptance
/// tests key on these three: every cold `madpipe serve` request produces
/// spans from all of them.
inline constexpr const char* kCatServe = "serve";
inline constexpr const char* kCatPlanner = "planner";
/// Phase-2 scheduling solvers: the dense LP/MILP engines in src/solver/ and
/// the cyclic branch-and-bound scheduler (the paper's ILP stand-in).
inline constexpr const char* kCatSolver = "solver";
/// Discrete-event execution of a pattern (sim/event_sim.cpp).
inline constexpr const char* kCatSim = "sim";
/// Exact pattern verification (core/pattern.cpp validate_pattern).
inline constexpr const char* kCatVerify = "verify";
/// Fleet simulator: event dispatch and (re)planning (fleet/simulator.cpp).
inline constexpr const char* kCatFleet = "fleet";

namespace detail {
/// Armed flag, read on the Span fast path. Do not touch directly.
extern std::atomic<bool> g_trace_armed;
/// Tail-sampler armed flag (see tail_sampler.hpp). Do not touch directly.
extern std::atomic<bool> g_tail_armed;
}  // namespace detail

/// True when a sink is installed and spans are being recorded.
inline bool trace_enabled() noexcept {
  return detail::g_trace_armed.load(std::memory_order_relaxed);
}

/// True when the process tail sampler is armed (tail_sampler.hpp). Spans
/// fire when either sink is live; each sink filters on its own flag.
inline bool tail_enabled() noexcept {
  return detail::g_tail_armed.load(std::memory_order_relaxed);
}

/// Nanoseconds since the process trace epoch (steady clock; valid whether
/// or not tracing is armed). Use for emit_complete() phases measured by
/// hand, e.g. queue-wait time between threads.
std::int64_t now_ns() noexcept;

/// One drained trace event. `name`/`category`/arg keys are interned string
/// literals (Span never copies or owns strings — callers must pass literals
/// or strings that outlive the drain).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< process-unique sequential thread id (from 1)
  std::uint64_t trace_id = 0;  ///< request trace id (0 = none)
  const char* arg1_key = nullptr;  ///< nullptr = absent
  long long arg1_value = 0;
  const char* arg2_key = nullptr;
  long long arg2_value = 0;
};

namespace detail {
/// Hands a finished span to the process tail sampler (tail_sampler.cpp).
/// Called only when tail_enabled() and the event carries a trace id.
void tail_record(const TraceEvent& event) noexcept;
}  // namespace detail

// --- Request trace context ----------------------------------------------
// Every serve request is assigned a 64-bit trace id at ingress (TCP frame
// or batch line). The id travels *with the request* across threads; each
// thread that works on the request wraps the work in a TraceContextScope,
// and every span finished inside that scope is stamped with the id — so a
// request's full span tree can be reassembled from the rings (or retained
// by the tail sampler) even though admission, dispatch, queue wait and the
// planner run on different threads.

/// Allocate a process-unique, non-zero trace id. Ids are splitmix64-mixed
/// so they read as opaque tokens; the top bit is clear so an id always
/// fits a positive int64 (span args, JSON numbers).
std::uint64_t next_trace_id() noexcept;

/// The calling thread's current trace id (0 = no request context).
std::uint64_t current_trace_id() noexcept;

/// Format a trace id the way responses echo it: 16 lowercase hex digits.
std::string format_trace_id(std::uint64_t trace_id);

/// RAII request-context guard: spans finished while the scope is alive are
/// stamped with `trace_id`. Nests (the previous id is restored on exit);
/// a zero id clears the context for the scope.
class TraceContextScope {
 public:
  explicit TraceContextScope(std::uint64_t trace_id) noexcept;
  ~TraceContextScope() noexcept;
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  std::uint64_t saved_;
};

/// Cumulative count of ring events lost to wrap-around overwrite, process
/// wide. Also published as the `madpipe_spans_dropped_total` counter, so
/// silent trace truncation shows up in /metrics and `madpipe stats`.
long long spans_dropped_total() noexcept;

/// Install the trace sink: arms recording and replaces any previously
/// buffered events. `events_per_thread` is rounded up to a power of two;
/// each thread that records a span gets its own ring of that capacity.
void install_trace(std::size_t events_per_thread = 4096);

/// Disarm recording. Buffered events remain drainable until the next
/// install_trace().
void uninstall_trace();

/// Snapshot every thread's buffered events, oldest first (sorted by start
/// time). Safe to call while spans are still being recorded; events written
/// mid-drain may or may not be included.
std::vector<TraceEvent> drain_trace();

/// Record one pre-measured complete event (start/duration supplied by the
/// caller, timestamps from now_ns()). No-op when tracing is disarmed. Used
/// for phases that cross threads, e.g. a request's queue wait.
void emit_complete(const char* name, const char* category,
                   std::int64_t start_ns, std::int64_t dur_ns,
                   const char* arg1_key = nullptr, long long arg1_value = 0);

/// Append `events` as a Chrome trace-event JSON document (an object with
/// "traceEvents", one "X" event per TraceEvent, plus thread-name metadata).
void write_chrome_trace(json::Writer& writer,
                        const std::vector<TraceEvent>& events);

// --- Chrome trace-event building blocks ---------------------------------
// The raw emission layer under write_chrome_trace, shared with every other
// Chrome-trace producer in the tree (sim/trace.cpp, report/timeline_export).
// A document is: begin_chrome_trace, any number of metadata/complete events,
// end_chrome_trace.

/// Open the document: {"displayTimeUnit":"ms","traceEvents":[. Pair with
/// end_chrome_trace.
void begin_chrome_trace(json::Writer& writer);

/// Close the trace-events array and the document.
void end_chrome_trace(json::Writer& writer);

/// One "M" metadata record naming a viewer row: `what` is "process_name" or
/// "thread_name", `name` the label shown for that pid/tid.
void write_trace_metadata(json::Writer& writer, const char* what,
                          long long pid, long long tid,
                          const std::string& name);

/// Open one "X" complete event (name/cat/ph/pid/tid/ts/dur, timestamps in
/// microseconds; `cname` optionally picks a Chrome palette color). The
/// caller may append an "args" object and MUST close with end_object().
void begin_complete_event(json::Writer& writer, const std::string& name,
                          const std::string& category, long long pid,
                          long long tid, double ts_us, double dur_us,
                          const char* cname = nullptr);

/// drain_trace() + write_chrome_trace() as one string.
std::string trace_to_chrome_json();

/// RAII trace span. Construct at the top of the region of interest; the
/// event is recorded when the span is destroyed. Cheap enough for hot paths:
/// disabled cost is one atomic load, enabled cost is two clock reads and a
/// handful of relaxed atomic stores. Not copyable or movable; name/category
/// and arg keys must be string literals (or outlive the next drain).
class Span {
 public:
  explicit Span(const char* name, const char* category = kCatPlanner) noexcept
      : name_(name), category_(category),
        armed_(trace_enabled() || tail_enabled()) {
    if (armed_) start_ns_ = now_ns();
  }
  ~Span() noexcept { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach an integer argument (shown under "args" in the trace viewer).
  /// At most two are kept; extras are dropped. No-op when disarmed.
  void arg(const char* key, long long value) noexcept {
    if (!armed_) return;
    if (arg1_key_ == nullptr) {
      arg1_key_ = key;
      arg1_value_ = value;
    } else if (arg2_key_ == nullptr) {
      arg2_key_ = key;
      arg2_value_ = value;
    }
  }

 private:
  void finish() noexcept;

  const char* name_;
  const char* category_;
  std::int64_t start_ns_ = 0;
  const char* arg1_key_ = nullptr;
  long long arg1_value_ = 0;
  const char* arg2_key_ = nullptr;
  long long arg2_value_ = 0;
  bool armed_;
};

}  // namespace madpipe::obs
