#include "pipedream/pipedream.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "core/memory_model.hpp"
#include "schedule/one_f_one_b.hpp"
#include "util/expect.hpp"

namespace madpipe {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}

std::optional<PipeDreamResult> pipedream_partition(const Chain& chain,
                                                   const Platform& platform) {
  platform.validate();
  const int L = chain.length();
  const int P = platform.processors;
  const Bytes M = platform.memory_per_processor;

  // best[k][p] = minimal max-load over partitionings of layers k..L into
  // exactly p stages, where the first of those stages (layers k..j) is the
  // p-th stage from the end and is assumed to keep p in-flight activations.
  // cut[k][p] = the j achieving it.
  std::vector<std::vector<Seconds>> best(
      static_cast<std::size_t>(L + 2),
      std::vector<Seconds>(static_cast<std::size_t>(P + 1), kInfinity));
  std::vector<std::vector<int>> cut(
      static_cast<std::size_t>(L + 2),
      std::vector<int>(static_cast<std::size_t>(P + 1), -1));

  for (int k = L; k >= 1; --k) {
    // One final stage: layers k..L, stores 1 activation copy.
    if (stage_memory(chain, k, L, 1) <= M) {
      best[k][1] = chain.compute_load(k, L);
      cut[k][1] = L;
    }
    for (int p = 2; p <= P; ++p) {
      for (int j = k; j < L; ++j) {
        if (stage_memory(chain, k, j, p) > M) continue;
        const Seconds stage_load = chain.compute_load(k, j);
        const Seconds comm_load = platform.boundary_comm_time(chain, j);
        const Seconds rest = best[j + 1][p - 1];
        const Seconds value =
            std::max(stage_load, std::max(comm_load, rest));
        if (value < best[k][p]) {
          best[k][p] = value;
          cut[k][p] = j;
        }
      }
    }
  }

  int best_p = -1;
  Seconds best_value = kInfinity;
  for (int p = 1; p <= P; ++p) {
    if (best[1][p] < best_value) {
      best_value = best[1][p];
      best_p = p;
    }
  }
  if (best_p < 0) return std::nullopt;

  std::vector<Stage> stages;
  int k = 1;
  for (int p = best_p; p >= 1; --p) {
    const int j = cut[k][p];
    MP_ENSURE(j >= k, "corrupt PipeDream DP back-pointers");
    stages.push_back(Stage{k, j});
    k = j + 1;
  }
  MP_ENSURE(k == L + 1, "PipeDream reconstruction must cover the chain");

  PipeDreamResult result{
      make_contiguous_allocation(chain, std::move(stages), P), best_value};
  return result;
}

std::optional<Plan> plan_pipedream(const Chain& chain, const Platform& platform) {
  const auto start_time = std::chrono::steady_clock::now();
  std::optional<PipeDreamResult> partition = pipedream_partition(chain, platform);
  if (!partition) return std::nullopt;

  std::optional<Plan> plan =
      plan_one_f_one_b(partition->allocation, chain, platform);
  MP_ENSURE(plan.has_value(),
            "1F1B* always schedules a partitioning whose single-activation "
            "memory fits, which the PipeDream DP guarantees");
  plan->planner = "pipedream";
  plan->phase1_period = partition->dp_period;
  plan->planning_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return plan;
}

}  // namespace madpipe
