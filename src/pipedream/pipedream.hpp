// The PipeDream baseline of the paper's evaluation (§5.1): the contiguous
// dynamic-programming partitioner of Narayanan et al. (SOSP'19), restricted
// to pure model parallelism (no stage replication), with PipeDream's coarse
// memory estimate — stage number i from the *end* of the pipeline keeps i
// in-flight activation copies (so the first stage keeps at most P), whereas
// §4.1 shows up to 2P−1 copies may actually be needed once communication
// stages count.
//
// The partition is then scheduled with 1F1B* (as the paper does) to obtain a
// valid pattern; the gap between the DP's optimistic period (the dashed
// lines of Figure 6) and the 1F1B* period (solid) is the paper's headline
// observation.
#pragma once

#include <optional>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/plan.hpp"
#include "core/platform.hpp"

namespace madpipe {

struct PipeDreamResult {
  Allocation allocation;
  /// The DP's believed period (max of stage compute and comm loads).
  Seconds dp_period = 0.0;
};

/// Run the PipeDream partitioning DP. Returns nullopt when no contiguous
/// partitioning fits PipeDream's own memory estimate.
std::optional<PipeDreamResult> pipedream_partition(const Chain& chain,
                                                   const Platform& platform);

/// Full baseline: partition with PipeDream's DP, schedule with 1F1B*.
/// The Plan's phase1_period is the DP estimate; pattern.period the valid
/// schedule's. Returns nullopt when no partitioning passes the DP's memory
/// estimate (1F1B* itself always finds some period for a partitioning).
std::optional<Plan> plan_pipedream(const Chain& chain, const Platform& platform);

}  // namespace madpipe
