#include "report/plan_report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/event_sim.hpp"
#include "util/expect.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace madpipe::report {

const char* to_string(MemoryTerm term) noexcept {
  switch (term) {
    case MemoryTerm::Weights: return "weights";
    case MemoryTerm::Activations: return "activations";
    case MemoryTerm::CommBuffers: return "comm_buffers";
  }
  return "unknown";
}

namespace {

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

MemoryTerm binding_term_of(Bytes weights_and_scratch, Bytes activations,
                           Bytes buffers) {
  MemoryTerm term = MemoryTerm::Weights;
  Bytes best = weights_and_scratch;
  if (activations > best) {
    term = MemoryTerm::Activations;
    best = activations;
  }
  if (buffers > best) term = MemoryTerm::CommBuffers;
  return term;
}

}  // namespace

PlanReport build_plan_report(const Plan& plan, const Chain& chain,
                             const Platform& platform,
                             const PlanReportOptions& options) {
  const Allocation& allocation = plan.allocation;
  const Partitioning& parts = allocation.partitioning();
  const PeriodicPattern& pattern = plan.pattern;
  const Seconds T = pattern.period;
  MP_EXPECT(T > 0.0, "plan has no positive period to report on");

  PlanReport report;
  report.planner = plan.planner;
  report.period = T;
  report.phase1_period = plan.phase1_period;
  report.num_stages = parts.num_stages();
  report.gpus = allocation.num_processors();

  // --- Per-stage table -------------------------------------------------
  for (int s = 0; s < parts.num_stages(); ++s) {
    const Stage& stage = parts.stage(s);
    StageReport row;
    row.stage = s;
    row.first_layer = stage.first;
    row.last_layer = stage.last;
    row.processor = allocation.processor_of(s);
    row.forward_seconds = parts.stage_forward_load(chain, s);
    row.backward_seconds = parts.stage_backward_load(chain, s);
    row.weight_bytes = chain.weight_sum(stage.first, stage.last);
    row.activation_bytes_per_batch = parts.stage_stored_activations(chain, s);
    report.stages.push_back(row);
  }

  // --- Busy/idle per resource over one period --------------------------
  // GPUs first (all P of them, idle ones included), links after in id order.
  std::vector<ResourceId> order;
  for (int p = 0; p < allocation.num_processors(); ++p) {
    order.push_back(ResourceId::processor(p));
  }
  std::vector<ResourceId> links;
  for (const PatternOp& op : pattern.ops) {
    if (op.resource.kind != ResourceId::Kind::Link) continue;
    if (std::find(links.begin(), links.end(), op.resource) == links.end()) {
      links.push_back(op.resource);
    }
  }
  std::sort(links.begin(), links.end());
  order.insert(order.end(), links.begin(), links.end());

  for (const ResourceId& resource : order) {
    ResourceReport row;
    row.resource = resource;
    for (const PatternOp& op : pattern.ops) {
      if (op.resource == resource) row.busy_seconds += op.duration;
    }
    row.utilization = clamp01(row.busy_seconds / T);
    row.bubble_fraction = 1.0 - row.utilization;
    report.resources.push_back(row);
  }

  report.critical_resource = report.resources.front().resource;
  double gpu_util_sum = 0.0;
  int gpu_count = 0;
  for (const ResourceReport& row : report.resources) {
    if (row.utilization > report.critical_utilization) {
      report.critical_utilization = row.utilization;
      report.critical_resource = row.resource;
    }
    if (row.resource.kind == ResourceId::Kind::Processor) {
      gpu_util_sum += row.utilization;
      ++gpu_count;
    }
  }
  report.mean_gpu_utilization = gpu_count > 0 ? gpu_util_sum / gpu_count : 0.0;

  // --- Exact memory watermark per GPU ----------------------------------
  for (int p = 0; p < allocation.num_processors(); ++p) {
    const MemorySweep sweep =
        sweep_processor_memory(pattern, allocation, chain, p);
    MP_ENSURE(sweep.ok(), "memory sweep failed on a validated plan: " +
                              sweep.error);
    GpuMemoryReport mem;
    mem.gpu = p;
    for (const int s : allocation.stages_on(p)) {
      const Stage& stage = parts.stage(s);
      mem.weights_bytes += 3.0 * chain.weight_sum(stage.first, stage.last);
      mem.scratch_bytes += chain.scratch_sum(stage.first, stage.last);
      // Mirror Allocation::static_memory's buffer accounting: one 2·a buffer
      // per cut boundary touching the stage (none at the chain ends).
      if (s > 0 && allocation.processor_of(s - 1) != p) {
        mem.comm_buffers_bytes += 2.0 * chain.activation(stage.first - 1);
      }
      if (s + 1 < parts.num_stages() && allocation.processor_of(s + 1) != p) {
        mem.comm_buffers_bytes += 2.0 * chain.activation(stage.last);
      }
    }
    mem.activations_peak_bytes = sweep.peak_activation_bytes;
    // The peak must match the verifier bit for bit, so it is computed the
    // way validate_pattern computes it — NOT by summing the decomposition
    // terms (a different accumulation order can differ in ulps).
    const Bytes static_mem = allocation.static_memory(chain, p);
    mem.peak_bytes = static_mem + sweep.peak_activation_bytes;
    mem.limit_bytes = platform.memory_per_processor;
    mem.headroom_bytes = mem.limit_bytes - mem.peak_bytes;
    mem.binding_term =
        binding_term_of(mem.weights_bytes + mem.scratch_bytes,
                        mem.activations_peak_bytes, mem.comm_buffers_bytes);
    for (const MemorySweepPoint& point : sweep.points) {
      mem.curve.push_back({point.time, static_mem + point.activation_bytes});
    }
    std::sort(mem.curve.begin(), mem.curve.end(),
              [](const MemoryCurvePoint& a, const MemoryCurvePoint& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.bytes > b.bytes;  // keep the max first at ties
              });
    mem.curve.erase(std::unique(mem.curve.begin(), mem.curve.end(),
                                [](const MemoryCurvePoint& a,
                                   const MemoryCurvePoint& b) {
                                  return a.time == b.time;
                                }),
                    mem.curve.end());
    report.memory.push_back(std::move(mem));

    // Back-fill the stage table's in-flight column from the same sweep.
    for (std::size_t j = 0; j < sweep.stages.size(); ++j) {
      report.stages[static_cast<std::size_t>(sweep.stages[j])].max_in_flight =
          sweep.stage_max_inflight[j];
    }
  }

  // --- Simulator cross-check -------------------------------------------
  if (options.run_simulation) {
    const SimulationResult sim =
        simulate_pattern(pattern, allocation, chain, platform,
                         {options.simulation_batches});
    report.simulated = true;
    report.simulated_period = sim.steady_period;
    report.period_delta_fraction = (sim.steady_period - T) / T;
  }
  return report;
}

void write_plan_report(json::Writer& w, const PlanReport& report) {
  w.begin_object();
  w.key("schema");
  w.value(kExplainSchema);
  w.key("planner");
  w.value(report.planner);
  w.key("period_seconds");
  w.value(report.period);
  w.key("phase1_period_seconds");
  w.value(report.phase1_period);
  w.key("num_stages");
  w.value(report.num_stages);
  w.key("gpus");
  w.value(report.gpus);

  w.key("stages");
  w.begin_array();
  for (const StageReport& row : report.stages) {
    w.begin_object();
    w.key("stage");
    w.value(row.stage);
    w.key("first_layer");
    w.value(row.first_layer);
    w.key("last_layer");
    w.value(row.last_layer);
    w.key("processor");
    w.value(row.processor);
    w.key("forward_seconds");
    w.value(row.forward_seconds);
    w.key("backward_seconds");
    w.value(row.backward_seconds);
    w.key("weight_bytes");
    w.value(row.weight_bytes);
    w.key("activation_bytes_per_batch");
    w.value(row.activation_bytes_per_batch);
    w.key("max_in_flight");
    w.value(row.max_in_flight);
    w.end_object();
  }
  w.end_array();

  w.key("resources");
  w.begin_array();
  for (const ResourceReport& row : report.resources) {
    w.begin_object();
    w.key("resource");
    w.value(row.resource.to_string());
    w.key("busy_seconds");
    w.value(row.busy_seconds);
    w.key("utilization");
    w.value(row.utilization);
    w.key("bubble_fraction");
    w.value(row.bubble_fraction);
    w.end_object();
  }
  w.end_array();

  w.key("memory");
  w.begin_array();
  for (const GpuMemoryReport& mem : report.memory) {
    w.begin_object();
    w.key("gpu");
    w.value(mem.gpu);
    w.key("weights_bytes");
    w.value(mem.weights_bytes);
    w.key("scratch_bytes");
    w.value(mem.scratch_bytes);
    w.key("comm_buffers_bytes");
    w.value(mem.comm_buffers_bytes);
    w.key("activations_peak_bytes");
    w.value(mem.activations_peak_bytes);
    w.key("peak_bytes");
    w.value(mem.peak_bytes);
    w.key("limit_bytes");
    w.value(mem.limit_bytes);
    w.key("headroom_bytes");
    w.value(mem.headroom_bytes);
    w.key("binding_term");
    w.value(to_string(mem.binding_term));
    w.key("curve");
    w.begin_array();
    for (const MemoryCurvePoint& point : mem.curve) {
      w.begin_object();
      w.key("time_seconds");
      w.value(point.time);
      w.key("bytes");
      w.value(point.bytes);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("critical_resource");
  w.value(report.critical_resource.to_string());
  w.key("critical_utilization");
  w.value(report.critical_utilization);
  w.key("mean_gpu_utilization");
  w.value(report.mean_gpu_utilization);
  w.key("simulated");
  w.value(report.simulated);
  if (report.simulated) {
    w.key("simulated_period_seconds");
    w.value(report.simulated_period);
    w.key("period_delta_fraction");
    w.value(report.period_delta_fraction);
  }
  w.end_object();
}

std::string plan_report_to_json(const PlanReport& report) {
  json::Writer writer;
  write_plan_report(writer, report);
  return writer.str();
}

std::string plan_report_to_string(const PlanReport& report) {
  std::ostringstream os;
  os << "plan: " << report.planner << ", period "
     << fmt::seconds(report.period) << " (phase-1 "
     << fmt::seconds(report.phase1_period) << "), " << report.num_stages
     << " stage(s) on " << report.gpus << " GPU(s)\n";

  fmt::Table stages({"stage", "layers", "gpu", "uF", "uB", "W", "a/batch",
                     "in-flight"});
  for (const StageReport& row : report.stages) {
    stages.add_row({std::to_string(row.stage),
                    "[" + std::to_string(row.first_layer) + "," +
                        std::to_string(row.last_layer) + "]",
                    std::to_string(row.processor),
                    fmt::seconds(row.forward_seconds),
                    fmt::seconds(row.backward_seconds),
                    fmt::bytes(row.weight_bytes),
                    fmt::bytes(row.activation_bytes_per_batch),
                    std::to_string(row.max_in_flight)});
  }
  os << stages.to_string();

  os << "utilization over one period:\n";
  fmt::Table util({"resource", "busy", "utilization", "bubble"});
  for (const ResourceReport& row : report.resources) {
    util.add_row({row.resource.to_string(), fmt::seconds(row.busy_seconds),
                  fmt::fixed(row.utilization * 100.0, 1) + "%",
                  fmt::fixed(row.bubble_fraction * 100.0, 1) + "%"});
  }
  os << util.to_string();
  os << "critical resource: " << report.critical_resource.to_string() << " ("
     << fmt::fixed(report.critical_utilization * 100.0, 1) << "% busy)\n";

  os << "memory watermarks (exact, verifier sweep):\n";
  for (const GpuMemoryReport& mem : report.memory) {
    os << "  gpu" << mem.gpu << ": peak " << fmt::bytes(mem.peak_bytes)
       << " / " << fmt::bytes(mem.limit_bytes) << " (headroom "
       << fmt::bytes(mem.headroom_bytes) << ") = weights "
       << fmt::bytes(mem.weights_bytes);
    if (mem.scratch_bytes > 0.0) {
      os << " + scratch " << fmt::bytes(mem.scratch_bytes);
    }
    os << " + activations " << fmt::bytes(mem.activations_peak_bytes)
       << " + buffers " << fmt::bytes(mem.comm_buffers_bytes)
       << "  [binding: " << to_string(mem.binding_term) << "]\n";
  }

  if (report.simulated) {
    os << "simulated steady period: " << fmt::seconds(report.simulated_period)
       << " (delta " << fmt::fixed(report.period_delta_fraction * 100.0, 2)
       << "% vs analytic)\n";
  }
  return os.str();
}

ExplainSummary summarize(const PlanReport& report) {
  ExplainSummary summary;
  summary.period = report.period;
  summary.critical_resource = report.critical_resource.to_string();
  summary.critical_utilization = report.critical_utilization;
  summary.bubble_fraction = 1.0 - report.critical_utilization;
  summary.mean_gpu_utilization = report.mean_gpu_utilization;
  bool first = true;
  for (const GpuMemoryReport& mem : report.memory) {
    summary.memory_peak_bytes =
        std::max(summary.memory_peak_bytes, mem.peak_bytes);
    if (first || mem.headroom_bytes < summary.memory_headroom_bytes) {
      summary.memory_headroom_bytes = mem.headroom_bytes;
      summary.binding_gpu = mem.gpu;
      summary.binding_term = mem.binding_term;
      first = false;
    }
  }
  return summary;
}

ExplainSummary build_explain_summary(const Plan& plan, const Chain& chain,
                                     const Platform& platform) {
  PlanReportOptions options;
  options.run_simulation = false;
  return summarize(build_plan_report(plan, chain, platform, options));
}

ExplainSummary scale_summary(ExplainSummary summary, double time_unit,
                             double byte_unit) {
  summary.period *= time_unit;
  summary.memory_peak_bytes *= byte_unit;
  summary.memory_headroom_bytes *= byte_unit;
  return summary;
}

}  // namespace madpipe::report
