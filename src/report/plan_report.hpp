// Schedule introspection: explain *what a plan is*, not just what period it
// achieves. A PeriodicPattern is a list of (t, h) tuples — opaque to anyone
// debugging why a plan has period T or why a profile does not fit in M. The
// report unrolls it into the three views PipeDream-style systems debug with:
//
//   * per-stage u_F/u_B/W/ā tables (which stage is heavy, and where it runs);
//   * per-resource busy/idle fractions over one steady period, identifying
//     the critical (bottleneck) resource — the one whose busy time *is* the
//     period when the schedule is tight;
//   * an exact per-GPU memory watermark, decomposed into the §3 terms
//     𝓜(k,l,g) = Σ(3·W_i + g·a_{i-1}) + 2·(a_{k-1} + a_l): weights,
//     in-flight activations and communication buffers, with headroom vs M
//     and the binding term named.
//
// The memory numbers come from the *same* event sweep `validate_pattern`
// checks memory with (core/pattern.hpp sweep_processor_memory), so the
// report's peaks match the verifier's bit for bit — the report never
// re-derives memory with different arithmetic.
//
// Serialization: `plan_report_to_json` emits the strict `madpipe-explain-v1`
// schema (validated by tools/check_bench_schema.py); the `madpipe explain`
// CLI prints `plan_report_to_string`. The serve protocol attaches the
// lighter ExplainSummary to responses when a request sets options.explain.
#pragma once

#include <string>
#include <vector>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/pattern.hpp"
#include "core/plan.hpp"
#include "core/platform.hpp"

namespace madpipe::json {
class Writer;
}

namespace madpipe::report {

/// Schema tag of plan_report_to_json documents.
inline constexpr const char* kExplainSchema = "madpipe-explain-v1";

/// The §3 memory term that dominates a GPU's footprint at its peak.
enum class MemoryTerm {
  Weights,      ///< 3·ΣW (+ scratch): parameter storage
  Activations,  ///< g · Σa_{i-1}: stored inputs of in-flight batches
  CommBuffers,  ///< 2·(a_{k-1} + a_l): boundary transfer buffers
};

const char* to_string(MemoryTerm term) noexcept;

/// One row of the per-stage table.
struct StageReport {
  int stage = 0;
  int first_layer = 0;
  int last_layer = 0;
  int processor = 0;
  Seconds forward_seconds = 0.0;   ///< u_F: stage forward load
  Seconds backward_seconds = 0.0;  ///< u_B: stage backward load
  Bytes weight_bytes = 0.0;        ///< ΣW over the stage's layers (raw, not ×3)
  Bytes activation_bytes_per_batch = 0.0;  ///< ā = Σ a_{i-1}
  int max_in_flight = 0;  ///< g: peak in-flight batches (steady state)
};

/// Busy/idle split of one resource over one steady period.
struct ResourceReport {
  ResourceId resource;
  Seconds busy_seconds = 0.0;   ///< Σ op durations on the resource
  double utilization = 0.0;     ///< busy / period, in [0, 1]
  double bubble_fraction = 0.0; ///< 1 − utilization
};

/// One point of the steady-state memory-over-time curve (total footprint).
struct MemoryCurvePoint {
  Seconds time = 0.0;  ///< instant in [0, period)
  Bytes bytes = 0.0;   ///< static memory + in-flight activations at `time`
};

/// Exact §3 memory decomposition of one GPU.
struct GpuMemoryReport {
  int gpu = 0;
  Bytes weights_bytes = 0.0;       ///< 3·ΣW over resident layers
  Bytes scratch_bytes = 0.0;       ///< always-resident workspace
  Bytes comm_buffers_bytes = 0.0;  ///< 2·a per cut boundary touching the GPU
  Bytes activations_peak_bytes = 0.0;  ///< peak in-flight activations
  /// Exact watermark: static memory + activation peak, computed by the
  /// verifier's event sweep (bit-identical to
  /// ValidationResult::processor_memory_peak).
  Bytes peak_bytes = 0.0;
  Bytes limit_bytes = 0.0;     ///< M
  Bytes headroom_bytes = 0.0;  ///< M − peak
  MemoryTerm binding_term = MemoryTerm::Weights;  ///< largest term at peak
  /// Memory over one steady period at every sweep event instant, time-sorted.
  std::vector<MemoryCurvePoint> curve;
};

struct PlanReport {
  std::string planner;
  Seconds period = 0.0;
  Seconds phase1_period = 0.0;
  int num_stages = 0;
  int gpus = 0;
  std::vector<StageReport> stages;
  std::vector<ResourceReport> resources;  ///< GPUs first, then links
  std::vector<GpuMemoryReport> memory;    ///< one entry per GPU
  ResourceId critical_resource;  ///< argmax utilization
  double critical_utilization = 0.0;
  double mean_gpu_utilization = 0.0;
  /// simulate_pattern cross-check (filled when options.run_simulation).
  bool simulated = false;
  Seconds simulated_period = 0.0;
  /// (simulated − analytic) / analytic; ≤ 0 means the ASAP execution beats
  /// the pattern's own period (it never runs slower on a valid pattern).
  double period_delta_fraction = 0.0;
};

struct PlanReportOptions {
  /// Run the discrete-event simulator for the analytic-vs-measured period
  /// delta. Off for the serve summary path (latency-sensitive).
  bool run_simulation = true;
  int simulation_batches = 64;  ///< batches for the simulator cross-check
};

/// Build the full report for a plan. The plan must be valid for (chain,
/// platform) — build one from the same inputs the planner consumed.
PlanReport build_plan_report(const Plan& plan, const Chain& chain,
                             const Platform& platform,
                             const PlanReportOptions& options = {});

/// Append the report as one madpipe-explain-v1 JSON object value.
void write_plan_report(json::Writer& writer, const PlanReport& report);
std::string plan_report_to_json(const PlanReport& report);

/// Human-readable multi-section rendering (the `madpipe explain` output).
std::string plan_report_to_string(const PlanReport& report);

/// The response-sized digest the serve protocol attaches when a request
/// sets options.explain: bottleneck + memory watermark, no tables/curves.
struct ExplainSummary {
  Seconds period = 0.0;
  std::string critical_resource;
  double critical_utilization = 0.0;
  double bubble_fraction = 0.0;  ///< of the critical resource
  double mean_gpu_utilization = 0.0;
  Bytes memory_peak_bytes = 0.0;      ///< max over GPUs
  Bytes memory_headroom_bytes = 0.0;  ///< min over GPUs
  int binding_gpu = 0;                ///< GPU with the least headroom
  MemoryTerm binding_term = MemoryTerm::Weights;  ///< its largest §3 term
};

ExplainSummary summarize(const PlanReport& report);

/// build_plan_report (without simulation) + summarize in one call.
ExplainSummary build_explain_summary(const Plan& plan, const Chain& chain,
                                     const Platform& platform);

/// Rescale a summary computed on a canonical (unit-normalized) plan back
/// into request units: times × time_unit, bytes × byte_unit (exact — the
/// serve units are powers of two). Ratios are unit-free and unchanged.
ExplainSummary scale_summary(ExplainSummary summary, double time_unit,
                             double byte_unit);

}  // namespace madpipe::report
