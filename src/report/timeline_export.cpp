#include "report/timeline_export.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/json.hpp"

namespace madpipe::report {

namespace {

/// Stable Chrome color names, rotated by stage so adjacent stages contrast.
constexpr const char* kStagePalette[] = {
    "thread_state_running", "rail_response",      "rail_animation",
    "rail_load",            "cq_build_passed",    "thread_state_iowait",
    "rail_idle",            "cq_build_failed",
};
constexpr int kPaletteSize =
    static_cast<int>(sizeof(kStagePalette) / sizeof(kStagePalette[0]));

}  // namespace

void write_timeline(json::Writer& w, const PeriodicPattern& pattern,
                    const Allocation& allocation, const Chain& chain,
                    const TimelineOptions& options) {
  MP_EXPECT(options.periods >= 1, "need at least one period to export");
  (void)chain;

  // One Chrome process per resource: GPUs in index order first (idle GPUs
  // included, so gaps in the allocation are visible), then links.
  std::vector<ResourceId> order;
  for (int p = 0; p < allocation.num_processors(); ++p) {
    order.push_back(ResourceId::processor(p));
  }
  std::vector<ResourceId> links;
  for (const PatternOp& op : pattern.ops) {
    if (op.resource.kind != ResourceId::Kind::Link) continue;
    if (std::find(links.begin(), links.end(), op.resource) == links.end()) {
      links.push_back(op.resource);
    }
  }
  std::sort(links.begin(), links.end());
  order.insert(order.end(), links.begin(), links.end());

  std::map<ResourceId, long long> pid_of;
  long long next_pid = 1;  // some viewers special-case pid 0
  for (const ResourceId& resource : order) pid_of[resource] = next_pid++;

  obs::begin_chrome_trace(w);
  for (const ResourceId& resource : order) {
    obs::write_trace_metadata(w, "process_name", pid_of.at(resource), 0,
                              resource.to_string());
  }

  const double to_us = 1e6;
  for (int period = 0; period < options.periods; ++period) {
    for (const PatternOp& op : pattern.ops) {
      const long long batch = period - op.shift;
      if (batch < 0) continue;  // the pipeline has not filled this deep yet
      const bool compute =
          op.kind == OpKind::Forward || op.kind == OpKind::Backward;
      obs::begin_complete_event(
          w,
          std::string(to_string(op.kind)) + std::to_string(op.stage) + " b" +
              std::to_string(batch),
          compute ? "compute" : "comm", pid_of.at(op.resource), 0,
          (op.start + period * pattern.period) * to_us, op.duration * to_us,
          kStagePalette[op.stage % kPaletteSize]);
      w.key("args");
      w.begin_object();
      w.key("batch");
      w.value(batch);
      w.key("stage");
      w.value(op.stage);
      w.key("shift");
      w.value(op.shift);
      w.end_object();
      w.end_object();
    }
  }
  obs::end_chrome_trace(w);
}

std::string timeline_to_chrome_json(const PeriodicPattern& pattern,
                                    const Allocation& allocation,
                                    const Chain& chain,
                                    const TimelineOptions& options) {
  json::Writer writer;
  write_timeline(writer, pattern, allocation, chain, options);
  return writer.str();
}

}  // namespace madpipe::report
