// Unrolled Chrome-trace export of a periodic pattern: one trace *process*
// per platform resource (GPUs first, then links), `periods` repetitions of
// the steady pattern, F/B/comm events colored by stage and annotated with
// the mini-batch index. Load the output in chrome://tracing or Perfetto.
//
// This is the resource-centric companion of sim/trace.cpp's
// pattern_to_chrome_trace (which puts all resources in one process as
// threads); per-resource processes give each GPU and link its own group and
// make per-GPU bubble gaps visually obvious. Both exporters share the JSON
// emission helpers in obs/trace.hpp.
#pragma once

#include <string>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/pattern.hpp"

namespace madpipe::json {
class Writer;
}

namespace madpipe::report {

struct TimelineOptions {
  int periods = 6;  ///< steady periods to unroll (fill phase included)
};

/// Append the unrolled timeline as one Chrome trace-event JSON document.
void write_timeline(json::Writer& writer, const PeriodicPattern& pattern,
                    const Allocation& allocation, const Chain& chain,
                    const TimelineOptions& options = {});

std::string timeline_to_chrome_json(const PeriodicPattern& pattern,
                                    const Allocation& allocation,
                                    const Chain& chain,
                                    const TimelineOptions& options = {});

}  // namespace madpipe::report
