#include "schedule/comm_transform.hpp"

#include "util/expect.hpp"

namespace madpipe {

std::vector<PseudoStage> comm_transform(const Allocation& allocation,
                                        const Chain& chain,
                                        const Platform& platform) {
  MP_EXPECT(allocation.contiguous(),
            "the communication transformation applies to contiguous "
            "allocations (each processor holds one stage)");
  const Partitioning& parts = allocation.partitioning();
  std::vector<PseudoStage> pseudo;
  pseudo.reserve(static_cast<std::size_t>(2 * parts.num_stages()));

  for (int s = 0; s < parts.num_stages(); ++s) {
    PseudoStage compute;
    compute.kind = PseudoStage::Kind::Compute;
    compute.stage = s;
    compute.forward_duration = parts.stage_forward_load(chain, s);
    compute.backward_duration = parts.stage_backward_load(chain, s);
    pseudo.push_back(compute);

    if (allocation.boundary_cut(s)) {
      PseudoStage comm;
      comm.kind = PseudoStage::Kind::Comm;
      comm.stage = s;
      const Seconds oneway =
          platform.boundary_oneway_time(chain, parts.boundary_after(s));
      comm.forward_duration = oneway;
      comm.backward_duration = oneway;
      pseudo.push_back(comm);
    }
  }
  return pseudo;
}

}  // namespace madpipe
