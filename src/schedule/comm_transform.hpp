// The communication transformation of §4.1: a contiguous partitioning on P
// processors with communication costs becomes a partitioning on 2P−1
// resources without communication costs, by treating the communication over
// each cut boundary as a pseudo-stage (forward part = sending a^(l),
// backward part = sending b^(l), each a_l/β).
#pragma once

#include <vector>

#include "core/partition.hpp"
#include "core/platform.hpp"

namespace madpipe {

struct PseudoStage {
  enum class Kind { Compute, Comm };
  Kind kind = Kind::Compute;
  /// Compute: the stage index. Comm: the stage whose trailing boundary it is.
  int stage = 0;
  Seconds forward_duration = 0.0;
  Seconds backward_duration = 0.0;

  Seconds total() const noexcept { return forward_duration + backward_duration; }
};

/// Expand `allocation` (must be contiguous) into the alternating
/// compute/comm pseudo-stage sequence, in chain order.
std::vector<PseudoStage> comm_transform(const Allocation& allocation,
                                        const Chain& chain,
                                        const Platform& platform);

}  // namespace madpipe
