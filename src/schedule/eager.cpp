#include "schedule/eager.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "util/expect.hpp"

namespace madpipe {

namespace {

struct Completion {
  Seconds time = 0.0;
  enum class Kind { Forward, Backward, CommForward, CommBackward } kind;
  int stage = 0;  ///< for comms, the boundary after this stage
  int batch = 0;

  bool operator>(const Completion& other) const { return time > other.time; }
};

}  // namespace

EagerResult simulate_eager(const Allocation& allocation, const Chain& chain,
                           const Platform& platform,
                           const EagerOptions& options) {
  MP_EXPECT(allocation.contiguous(), "the eager policy runs contiguous "
                                     "allocations (one stage per processor)");
  MP_EXPECT(options.batches >= 2, "simulate at least two batches");
  const Partitioning& parts = allocation.partitioning();
  const int N = parts.num_stages();
  const int depth = options.pipeline_depth > 0 ? options.pipeline_depth : N;

  const auto cap = [&](int s) {
    return options.decreasing_depth ? std::max(1, depth - s) : depth;
  };

  // Per-stage state.
  std::vector<std::deque<int>> fwd_ready(N);  // batches with inputs on hand
  std::vector<std::deque<int>> bwd_ready(N);  // batches with gradients on hand
  std::vector<int> inflight(N, 0);            // F started − B completed
  std::vector<Seconds> proc_free(N, 0.0);
  std::vector<bool> proc_busy(N, false);
  // Per-boundary link state (boundary after stage s, s in [0, N−2]).
  struct Transfer {
    bool backward = false;
    int batch = 0;
  };
  std::vector<std::deque<Transfer>> link_queue(std::max(0, N - 1));
  std::vector<bool> link_busy(std::max(0, N - 1), false);

  for (int b = 0; b < options.batches; ++b) fwd_ready[0].push_back(b);

  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      agenda;

  EagerResult result;
  result.stage_max_inflight.assign(N, 0);
  std::vector<int> fwd_done(N, 0), bwd_done(N, 0);
  std::vector<Bytes> act_level(N, 0.0), act_peak(N, 0.0);
  std::vector<Seconds> completion(static_cast<std::size_t>(options.batches),
                                  0.0);

  const auto try_start = [&](Seconds now) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int s = 0; s < N; ++s) {
        if (proc_busy[s]) continue;
        if (!bwd_ready[s].empty()) {  // backward first: the 1F1B priority
          const int b = bwd_ready[s].front();
          bwd_ready[s].pop_front();
          proc_busy[s] = true;
          agenda.push({now + parts.stage_backward_load(chain, s),
                       Completion::Kind::Backward, s, b});
          progress = true;
        } else if (!fwd_ready[s].empty() && inflight[s] < cap(s)) {
          const int b = fwd_ready[s].front();
          fwd_ready[s].pop_front();
          ++inflight[s];
          result.stage_max_inflight[s] =
              std::max(result.stage_max_inflight[s], inflight[s]);
          proc_busy[s] = true;
          agenda.push({now + parts.stage_forward_load(chain, s),
                       Completion::Kind::Forward, s, b});
          progress = true;
        }
      }
      for (int l = 0; l + 1 < N; ++l) {
        if (link_busy[l] || link_queue[l].empty()) continue;
        // Gradients preempt activations in the queue: drain backpressure.
        auto it = std::find_if(link_queue[l].begin(), link_queue[l].end(),
                               [](const Transfer& t) { return t.backward; });
        if (it == link_queue[l].end()) it = link_queue[l].begin();
        const Transfer transfer = *it;
        link_queue[l].erase(it);
        link_busy[l] = true;
        const Seconds duration =
            platform.boundary_oneway_time(chain, parts.boundary_after(l));
        agenda.push({now + duration,
                     transfer.backward ? Completion::Kind::CommBackward
                                       : Completion::Kind::CommForward,
                     l, transfer.batch});
        progress = true;
      }
    }
  };

  try_start(0.0);
  while (!agenda.empty()) {
    const Completion ev = agenda.top();
    agenda.pop();
    const Seconds now = ev.time;
    switch (ev.kind) {
      case Completion::Kind::Forward: {
        const int s = ev.stage;
        proc_busy[s] = false;
        ++fwd_done[s];
        act_level[s] += parts.stage_stored_activations(chain, s);
        act_peak[s] = std::max(act_peak[s], act_level[s]);
        if (s + 1 < N) {
          link_queue[s].push_back({false, ev.batch});
        } else {
          bwd_ready[s].push_back(ev.batch);  // last stage: B follows directly
        }
        break;
      }
      case Completion::Kind::Backward: {
        const int s = ev.stage;
        proc_busy[s] = false;
        ++bwd_done[s];
        --inflight[s];
        act_level[s] -= parts.stage_stored_activations(chain, s);
        if (s > 0) {
          link_queue[s - 1].push_back({true, ev.batch});
        } else {
          completion[static_cast<std::size_t>(ev.batch)] = now;
          result.makespan = std::max(result.makespan, now);
        }
        break;
      }
      case Completion::Kind::CommForward: {
        link_busy[ev.stage] = false;
        fwd_ready[ev.stage + 1].push_back(ev.batch);
        break;
      }
      case Completion::Kind::CommBackward: {
        link_busy[ev.stage] = false;
        bwd_ready[ev.stage].push_back(ev.batch);
        break;
      }
    }
    try_start(now);
  }

  // Steady period: median completion gap over the second half.
  std::vector<Seconds> gaps;
  for (int b = options.batches / 2; b + 1 < options.batches; ++b) {
    gaps.push_back(completion[static_cast<std::size_t>(b + 1)] -
                   completion[static_cast<std::size_t>(b)]);
  }
  if (!gaps.empty()) {
    std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
    result.steady_period = gaps[gaps.size() / 2];
  }

  result.processor_memory_peak.assign(allocation.num_processors(), 0.0);
  for (int s = 0; s < N; ++s) {
    const int p = allocation.processor_of(s);
    result.processor_memory_peak[static_cast<std::size_t>(p)] =
        allocation.static_memory(chain, p) + act_peak[s];
  }
  return result;
}

}  // namespace madpipe
