// PipeDream's *eager* 1F1B execution policy (§4.1): fix a pipeline depth,
// start every operation as soon as its inputs are available, prefer
// backward work when both are ready. This is the scheduling discipline the
// paper contrasts with 1F1B*: it reaches a similar steady-state rate but
// gives no control over (and no easy prediction of) the memory it consumes —
// Proposition 1 shows 1F1B* is the memory floor at equal period.
//
// Implemented as a discrete-event simulation over a contiguous allocation.
#pragma once

#include <vector>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/platform.hpp"

namespace madpipe {

struct EagerOptions {
  /// In-flight batches admitted at the first stage; 0 = number of stages
  /// (PipeDream's default depth).
  int pipeline_depth = 0;
  int batches = 64;
  /// Per-stage in-flight cap: stage s (0-based) admits depth − s batches
  /// (PipeDream's decreasing discipline) when true, a flat `depth` when
  /// false.
  bool decreasing_depth = true;
};

struct EagerResult {
  Seconds makespan = 0.0;
  Seconds steady_period = 0.0;
  std::vector<Bytes> processor_memory_peak;
  std::vector<int> stage_max_inflight;
};

/// Simulate the eager policy. The allocation must be contiguous.
EagerResult simulate_eager(const Allocation& allocation, const Chain& chain,
                           const Platform& platform,
                           const EagerOptions& options = {});

}  // namespace madpipe
