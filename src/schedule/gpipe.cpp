#include "schedule/gpipe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "schedule/comm_transform.hpp"
#include "util/expect.hpp"

namespace madpipe {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}

Seconds gpipe_period(const Allocation& allocation, const Chain& chain,
                     const Platform& platform, int micro_batches) {
  MP_EXPECT(micro_batches >= 1, "need at least one micro-batch");
  const double m = micro_batches;
  const std::vector<PseudoStage> slots =
      comm_transform(allocation, chain, platform);

  // Linear pipeline of m identical jobs over the slot sequence:
  // makespan = Σ d_j + (m−1)·max d_j, applied to the forward sweep and the
  // backward sweep, executed one after the other (GPipe's fill/drain).
  Seconds fwd_sum = 0.0, fwd_max = 0.0, bwd_sum = 0.0, bwd_max = 0.0;
  for (const PseudoStage& slot : slots) {
    const Seconds fwd = slot.forward_duration / m;
    const Seconds bwd = slot.backward_duration / m;
    fwd_sum += fwd;
    bwd_sum += bwd;
    fwd_max = std::max(fwd_max, fwd);
    bwd_max = std::max(bwd_max, bwd);
  }
  return fwd_sum + (m - 1.0) * fwd_max + bwd_sum + (m - 1.0) * bwd_max;
}

Bytes gpipe_stage_memory(const Chain& chain, int first_layer, int last_layer,
                         int micro_batches) {
  MP_EXPECT(micro_batches >= 1, "need at least one micro-batch");
  Bytes buffers = 0.0;
  if (first_layer > 1) buffers += 2.0 * chain.activation(first_layer - 1);
  if (last_layer < chain.length()) buffers += 2.0 * chain.activation(last_layer);
  // One weight copy + accumulated gradient; all m micro-batch activations
  // (one full batch worth) held between the sweeps; micro-batch-sized
  // communication buffers.
  return 2.0 * chain.weight_sum(first_layer, last_layer) +
         chain.stored_activation_sum(first_layer, last_layer) +
         buffers / micro_batches;
}

std::optional<GPipePlan> plan_gpipe(const Chain& chain,
                                    const Platform& platform,
                                    const GPipeOptions& options) {
  platform.validate();
  MP_EXPECT(options.micro_batches >= 1, "need at least one micro-batch");
  const int L = chain.length();
  const int P = platform.processors;
  const Bytes M = platform.memory_per_processor;

  // Bottleneck-balancing DP (PipeDream-style) under the GPipe memory model:
  // best[k][p] = minimal max slot load over partitions of layers k..L into
  // exactly p stages.
  std::vector<std::vector<Seconds>> best(
      static_cast<std::size_t>(L + 2),
      std::vector<Seconds>(static_cast<std::size_t>(P + 1), kInfinity));
  std::vector<std::vector<int>> cut(
      static_cast<std::size_t>(L + 2),
      std::vector<int>(static_cast<std::size_t>(P + 1), -1));

  for (int k = L; k >= 1; --k) {
    if (gpipe_stage_memory(chain, k, L, options.micro_batches) <= M) {
      best[k][1] = chain.compute_load(k, L);
      cut[k][1] = L;
    }
    for (int p = 2; p <= P; ++p) {
      for (int j = k; j < L; ++j) {
        if (gpipe_stage_memory(chain, k, j, options.micro_batches) > M) continue;
        const Seconds value =
            std::max({chain.compute_load(k, j),
                      platform.boundary_comm_time(chain, j), best[j + 1][p - 1]});
        if (value < best[k][p]) {
          best[k][p] = value;
          cut[k][p] = j;
        }
      }
    }
  }

  // For each feasible stage count, reconstruct and evaluate the exact GPipe
  // makespan; keep the best (more stages balance the bottleneck but deepen
  // the fill/drain bubble).
  std::optional<GPipePlan> result;
  for (int stages = 1; stages <= P; ++stages) {
    if (!std::isfinite(best[1][stages])) continue;
    std::vector<Stage> partition;
    int k = 1;
    for (int p = stages; p >= 1; --p) {
      const int j = cut[k][p];
      MP_ENSURE(j >= k, "corrupt GPipe DP back-pointers");
      partition.push_back(Stage{k, j});
      k = j + 1;
    }
    MP_ENSURE(k == L + 1, "GPipe reconstruction must cover the chain");
    Allocation allocation =
        make_contiguous_allocation(chain, std::move(partition), P);
    const Seconds period =
        gpipe_period(allocation, chain, platform, options.micro_batches);
    if (!result || period < result->period) {
      result = GPipePlan{std::move(allocation), period, options.micro_batches};
    }
  }
  return result;
}

}  // namespace madpipe
