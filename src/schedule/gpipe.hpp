// GPipe-style baseline (Huang et al., §2 ref [9] of the paper): the batch is
// split into m micro-batches pushed through a contiguous pipeline in a
// fill/compute/drain pattern; weights update after the whole batch, so only
// ONE weight version is needed (memory 1·W + gradient, vs the 2+1 of the
// 1F1B schemes), but the pipeline bubble costs (S−1)/(m+S−1) of the
// throughput in each direction.
//
// Modeled analytically on a contiguous allocation:
//   * per-batch period  T = (m + S' − 1) · max_s (u_s/m)  for the forward
//     and backward sweeps chained, where S' counts compute and comm slots
//     and u_s is a slot's full-batch duration (micro-batch slot = u_s/m);
//   * stage memory      2·W_s (weights + gradient accumulator) + up to m
//     micro-batch activations (≈ one full batch worth) + comm buffers.
//
// The planner reuses the PipeDream partitioning DP's structure but balances
// against GPipe's own bottleneck formula and memory model.
#pragma once

#include <optional>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/platform.hpp"
#include "core/types.hpp"

namespace madpipe {

struct GPipeOptions {
  int micro_batches = 8;  ///< m; the paper's mini-batch of 8 splits naturally
};

struct GPipePlan {
  Allocation allocation;
  Seconds period = 0.0;  ///< seconds per full mini-batch in steady state
  int micro_batches = 0;

  double throughput() const { return 1.0 / period; }
  double speedup(const Chain& chain) const {
    return chain.total_compute() / period;
  }
};

/// Analytic per-batch period of a contiguous allocation under GPipe's
/// fill/drain execution with m micro-batches.
Seconds gpipe_period(const Allocation& allocation, const Chain& chain,
                     const Platform& platform, int micro_batches);

/// Peak memory of stage s (layers k..l) under GPipe: 2·W + m micro-batch
/// activation copies (the full batch's worth, stored between the forward
/// and backward sweeps) + communication buffers.
Bytes gpipe_stage_memory(const Chain& chain, int first_layer, int last_layer,
                         int micro_batches);

/// Plan: contiguous partitioning minimizing the GPipe period subject to the
/// GPipe memory model. Returns nullopt when nothing fits.
std::optional<GPipePlan> plan_gpipe(const Chain& chain,
                                    const Platform& platform,
                                    const GPipeOptions& options = {});

}  // namespace madpipe
