#include "schedule/one_f_one_b.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/memory_model.hpp"
#include "util/expect.hpp"

namespace madpipe {

namespace {
double tolerance_for(Seconds period) { return kTimeEps * std::max(period, 1.0); }
}  // namespace

std::vector<int> build_groups(const std::vector<PseudoStage>& pseudo,
                              Seconds period) {
  MP_EXPECT(!pseudo.empty(), "no pseudo-stages to group");
  MP_EXPECT(period > 0.0, "period must be positive");
  const double tol = tolerance_for(period);

  std::vector<int> group(pseudo.size(), 0);
  int current_group = 1;
  Seconds accumulated = 0.0;
  for (std::size_t idx = pseudo.size(); idx-- > 0;) {
    const Seconds load = pseudo[idx].total();
    if (accumulated + load <= period + tol) {
      accumulated += load;
    } else {
      ++current_group;
      accumulated = load;
    }
    group[idx] = current_group;
  }
  return group;
}

OneFOneBSchedule build_one_f_one_b(const Allocation& allocation,
                                   const Chain& chain,
                                   const Platform& platform, Seconds period) {
  MP_EXPECT(period > 0.0, "period must be positive");
  const std::vector<PseudoStage> pseudo =
      comm_transform(allocation, chain, platform);
  const double tol = tolerance_for(period);
  for (const PseudoStage& ps : pseudo) {
    MP_EXPECT(ps.total() <= period + tol,
              "period below a pseudo-stage load: no valid pattern exists");
  }

  const std::vector<int> group = build_groups(pseudo, period);
  const std::size_t count = pseudo.size();

  // Forward ops are back-to-back in virtual time across the whole chain.
  std::vector<Seconds> z_forward(count, 0.0);
  Seconds cursor = 0.0;
  for (std::size_t q = 0; q < count; ++q) {
    z_forward[q] = cursor;
    cursor += pseudo[q].forward_duration;
  }

  // Backward ops: within each group, B of the group's last pseudo-stage
  // starts right after its F, then the remaining B's run in sequence; all
  // carry an extra (g − 1) periods of index shift.
  std::vector<Seconds> z_backward(count, 0.0);
  std::size_t range_begin = 0;
  while (range_begin < count) {
    std::size_t range_end = range_begin;  // inclusive end of this group
    while (range_end + 1 < count && group[range_end + 1] == group[range_begin]) {
      ++range_end;
    }
    const int g = group[range_begin];
    Seconds c = z_forward[range_end] + pseudo[range_end].forward_duration;
    for (std::size_t q = range_end + 1; q-- > range_begin;) {
      z_backward[q] = c + static_cast<double>(g - 1) * period;
      c += pseudo[q].backward_duration;
    }
    range_begin = range_end + 1;
  }

  OneFOneBSchedule result;
  result.pattern.period = period;
  result.group_of_pseudo_stage = group;
  for (std::size_t q = 0; q < count; ++q) {
    const PseudoStage& ps = pseudo[q];
    if (ps.kind == PseudoStage::Kind::Compute) {
      const ResourceId proc =
          ResourceId::processor(allocation.processor_of(ps.stage));
      result.pattern.ops.push_back(PeriodicPattern::make_op(
          OpKind::Forward, ps.stage, proc, z_forward[q], ps.forward_duration,
          period));
      result.pattern.ops.push_back(PeriodicPattern::make_op(
          OpKind::Backward, ps.stage, proc, z_backward[q], ps.backward_duration,
          period));
    } else {
      const ResourceId link =
          ResourceId::link(allocation.processor_of(ps.stage),
                           allocation.processor_of(ps.stage + 1));
      result.pattern.ops.push_back(PeriodicPattern::make_op(
          OpKind::CommForward, ps.stage, link, z_forward[q],
          ps.forward_duration, period));
      result.pattern.ops.push_back(PeriodicPattern::make_op(
          OpKind::CommBackward, ps.stage, link, z_backward[q],
          ps.backward_duration, period));
    }
  }
  return result;
}

bool memory_feasible(const Allocation& allocation, const Chain& chain,
                     const Platform& platform, Seconds period) {
  const std::vector<PseudoStage> pseudo =
      comm_transform(allocation, chain, platform);
  const std::vector<int> group = build_groups(pseudo, period);
  const Partitioning& parts = allocation.partitioning();
  for (std::size_t q = 0; q < pseudo.size(); ++q) {
    if (pseudo[q].kind != PseudoStage::Kind::Compute) continue;
    const Stage& st = parts.stage(pseudo[q].stage);
    const Bytes needed = stage_memory(chain, st.first, st.last, group[q]);
    if (needed > platform.memory_per_processor * (1.0 + kTimeEps)) return false;
  }
  return true;
}

std::optional<Plan> plan_one_f_one_b(const Allocation& allocation,
                                     const Chain& chain,
                                     const Platform& platform) {
  const auto start_time = std::chrono::steady_clock::now();
  const std::vector<PseudoStage> pseudo =
      comm_transform(allocation, chain, platform);

  Seconds min_period = 0.0;
  for (const PseudoStage& ps : pseudo) {
    min_period = std::max(min_period, ps.total());
  }
  MP_ENSURE(min_period > 0.0, "degenerate allocation with zero load");

  // Group structure changes only where the period crosses a sum of
  // consecutive pseudo-stage loads: enumerate those breakpoints.
  std::vector<Seconds> candidates{min_period};
  for (std::size_t i = 0; i < pseudo.size(); ++i) {
    Seconds sum = 0.0;
    for (std::size_t j = i; j < pseudo.size(); ++j) {
      sum += pseudo[j].total();
      if (sum > min_period) candidates.push_back(sum);
    }
  }
  std::sort(candidates.begin(), candidates.end());

  for (const Seconds period : candidates) {
    if (!memory_feasible(allocation, chain, platform, period)) continue;
    OneFOneBSchedule schedule =
        build_one_f_one_b(allocation, chain, platform, period);
    Plan plan{"1f1b*", allocation, std::move(schedule.pattern),
              allocation.period_lower_bound(chain, platform), 0.0};
    plan.planning_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time)
            .count();
    return plan;
  }
  return std::nullopt;  // even one in-flight batch per stage does not fit
}

}  // namespace madpipe
