// The 1F1B* algorithm of §4.1: given a contiguous allocation and a feasible
// period T, build the periodic pattern that keeps the provably minimal
// number of in-flight activations on every processor (Proposition 1).
//
// Groups of pseudo-stages are formed greedily from the end of the chain
// under the constraint Σ U(s) ≤ T; a stage in group g stores exactly g
// activation copies. The minimal feasible period under a memory limit is
// found exactly: group structure only changes at periods equal to sums of
// consecutive pseudo-stage loads, so the breakpoint set is enumerated and
// the smallest memory-feasible one returned.
#pragma once

#include <optional>
#include <vector>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/pattern.hpp"
#include "core/plan.hpp"
#include "core/platform.hpp"
#include "schedule/comm_transform.hpp"

namespace madpipe {

/// Greedy suffix grouping: group index of each pseudo-stage (1 = the group
/// of the last pseudo-stage, increasing towards the chain start).
std::vector<int> build_groups(const std::vector<PseudoStage>& pseudo,
                              Seconds period);

struct OneFOneBSchedule {
  PeriodicPattern pattern;
  std::vector<int> group_of_pseudo_stage;
};

/// Build the 1F1B* pattern for `allocation` at period T. Preconditions:
/// allocation contiguous and T ≥ every pseudo-stage load. The result is a
/// structurally valid pattern; whether it fits in memory is for the caller
/// (or validate_pattern) to decide.
OneFOneBSchedule build_one_f_one_b(const Allocation& allocation,
                                   const Chain& chain,
                                   const Platform& platform, Seconds period);

/// Analytic memory check for a candidate period: every compute stage in
/// group g must satisfy 𝓜(k,l,g) ≤ M. Exactly matches what the built
/// pattern consumes (validated in tests).
bool memory_feasible(const Allocation& allocation, const Chain& chain,
                     const Platform& platform, Seconds period);

/// Smallest memory-feasible period for the allocation, and its pattern.
/// Returns nullopt when even the fully-relaxed period (one group, one
/// activation per stage) exceeds memory.
std::optional<Plan> plan_one_f_one_b(const Allocation& allocation,
                                     const Chain& chain,
                                     const Platform& platform);

}  // namespace madpipe
