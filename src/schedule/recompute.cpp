#include "schedule/recompute.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/memory_model.hpp"
#include "schedule/one_f_one_b.hpp"
#include "util/expect.hpp"

namespace madpipe {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}

Chain merge_recompute_segments(const Chain& chain,
                               const Partitioning& partitioning) {
  std::vector<Layer> merged;
  merged.reserve(static_cast<std::size_t>(partitioning.num_stages()));
  for (int s = 0; s < partitioning.num_stages(); ++s) {
    const Stage& st = partitioning.stage(s);
    Layer layer;
    layer.name = "recompute[" + std::to_string(st.first) + ".." +
                 std::to_string(st.last) + "]";
    layer.forward_time = chain.forward_load(st.first, st.last);
    layer.backward_time = chain.backward_load(st.first, st.last) +
                          chain.forward_load(st.first, st.last);
    layer.weight_bytes = chain.weight_sum(st.first, st.last);
    layer.output_bytes = chain.activation(st.last);
    layer.scratch_bytes = chain.stored_activation_sum(st.first, st.last) -
                          chain.activation(st.first - 1) +
                          chain.scratch_sum(st.first, st.last);
    merged.push_back(std::move(layer));
  }
  return Chain(chain.name() + "+recompute", chain.activation(0),
               std::move(merged));
}

Bytes recompute_stage_memory(const Chain& chain, int first_layer,
                             int last_layer, int active_batches) {
  MP_EXPECT(active_batches >= 0, "active batch count must be non-negative");
  Bytes buffers = 0.0;
  if (first_layer > 1) buffers += 2.0 * chain.activation(first_layer - 1);
  if (last_layer < chain.length()) {
    buffers += 2.0 * chain.activation(last_layer);
  }
  const Bytes input = chain.activation(first_layer - 1);
  const Bytes transient =
      chain.stored_activation_sum(first_layer, last_layer) - input +
      chain.scratch_sum(first_layer, last_layer);
  return 3.0 * chain.weight_sum(first_layer, last_layer) +
         static_cast<double>(active_batches) * input + transient + buffers;
}

std::optional<RecomputePlan> plan_recompute_pipeline(const Chain& chain,
                                                     const Platform& platform) {
  platform.validate();
  const int L = chain.length();
  const int P = platform.processors;
  const Bytes M = platform.memory_per_processor;

  // Suffix DP: best[k][p] = min max-load over partitions of k..L into p
  // recomputed stages, the first of which (p-th from the end) is assumed to
  // keep p in-flight inputs. Stage load includes the forward replay.
  const auto stage_load = [&](int k, int j) {
    return chain.compute_load(k, j) + chain.forward_load(k, j);
  };
  std::vector<std::vector<Seconds>> best(
      static_cast<std::size_t>(L + 2),
      std::vector<Seconds>(static_cast<std::size_t>(P + 1), kInfinity));
  std::vector<std::vector<int>> cut(
      static_cast<std::size_t>(L + 2),
      std::vector<int>(static_cast<std::size_t>(P + 1), -1));

  for (int k = L; k >= 1; --k) {
    if (recompute_stage_memory(chain, k, L, 1) <= M) {
      best[k][1] = stage_load(k, L);
      cut[k][1] = L;
    }
    for (int p = 2; p <= P; ++p) {
      for (int j = k; j < L; ++j) {
        if (recompute_stage_memory(chain, k, j, p) > M) continue;
        const Seconds value =
            std::max({stage_load(k, j), platform.boundary_comm_time(chain, j),
                      best[j + 1][p - 1]});
        if (value < best[k][p]) {
          best[k][p] = value;
          cut[k][p] = j;
        }
      }
    }
  }

  int best_p = -1;
  Seconds best_value = kInfinity;
  for (int p = 1; p <= P; ++p) {
    if (best[1][p] < best_value) {
      best_value = best[1][p];
      best_p = p;
    }
  }
  if (best_p < 0) return std::nullopt;

  std::vector<Stage> stages;
  int k = 1;
  for (int p = best_p; p >= 1; --p) {
    const int j = cut[k][p];
    MP_ENSURE(j >= k, "corrupt recompute DP back-pointers");
    stages.push_back(Stage{k, j});
    k = j + 1;
  }
  MP_ENSURE(k == L + 1, "recompute reconstruction must cover the chain");

  Chain merged = merge_recompute_segments(chain, Partitioning(chain, stages));
  // Stage i of the merged chain is exactly merged layer i, one per
  // processor; schedule with 1F1B* (optimal for contiguous allocations).
  std::vector<Stage> merged_stages;
  for (int s = 0; s < static_cast<int>(stages.size()); ++s) {
    merged_stages.push_back(Stage{s + 1, s + 1});
  }
  const Allocation allocation =
      make_contiguous_allocation(merged, std::move(merged_stages), P);
  std::optional<Plan> plan = plan_one_f_one_b(allocation, merged, platform);
  if (!plan) return std::nullopt;
  plan->planner = "recompute+1f1b*";
  plan->phase1_period = best_value;
  return RecomputePlan{std::move(merged), std::move(*plan)};
}

}  // namespace madpipe
