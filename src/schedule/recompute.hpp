// Activation recomputation ("gradient checkpointing", Chen et al. — §2
// ref [3] of the paper) as a planning extension: a recompute *segment*
// stores only its input activation per in-flight batch and replays its
// forward pass before the backward, trading ~U_F of extra compute for an
// activation footprint of a single tensor per batch.
//
// Mechanically, a segment of layers k..l becomes one merged chain layer:
//     forward  = U_F(k,l)
//     backward = U_B(k,l) + U_F(k,l)          (the replay)
//     weights  = Σ W_i
//     stored   = a_{k−1}                      (the segment input only)
//     scratch  = ā(k,l) − a_{k−1}             (transient replay workspace,
//                                              conservatively always counted)
// so every existing planner, scheduler, verifier and simulator works on the
// transformed chain unchanged.
//
// `plan_recompute_pipeline` jointly picks the contiguous partitioning *and*
// applies recomputation to every stage: a PipeDream-style DP under the
// recompute memory model, followed by 1F1B* on the merged chain.
#pragma once

#include <optional>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/plan.hpp"
#include "core/platform.hpp"

namespace madpipe {

/// Merge each stage of `partitioning` (over `chain`) into a single
/// recompute segment, yielding the transformed chain described above.
Chain merge_recompute_segments(const Chain& chain,
                               const Partitioning& partitioning);

/// Memory of a recomputed segment k..l with g in-flight batches:
/// 3W + g·a_{k−1} + (ā − a_{k−1}) + communication buffers.
Bytes recompute_stage_memory(const Chain& chain, int first_layer,
                             int last_layer, int active_batches);

struct RecomputePlan {
  /// The transformed chain (one merged layer per stage); `plan` refers to
  /// this chain, not the original.
  Chain merged_chain;
  Plan plan;
};

/// Contiguous planning with per-stage recomputation: DP partitioning under
/// the recompute load/memory model, then 1F1B* on the merged chain. The
/// stage position-from-end estimate mirrors plan_pipedream's, so the two
/// planners are directly comparable. Returns nullopt when nothing fits.
std::optional<RecomputePlan> plan_recompute_pipeline(const Chain& chain,
                                                     const Platform& platform);

}  // namespace madpipe
