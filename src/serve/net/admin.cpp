#include "serve/net/admin.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "serve/net/event_loop.hpp"

namespace madpipe::serve::net {

namespace {

constexpr const char* kIndexBody =
    "madpipe admin endpoints:\n"
    "  /metrics  Prometheus text of the live registry\n"
    "  /healthz  ok | draining (503)\n"
    "  /slow     retained slow-request span trees (madpipe-admin-v1)\n"
    "  /tracez   span rings as a Chrome trace\n";

std::string http_response(int code, const char* reason,
                          const char* content_type, const std::string& body,
                          bool head_only) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(code);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += body;
  return out;
}

}  // namespace

struct AdminServer::Impl {
  AdminServerOptions options;
  madpipe::net::TcpListener listener;
  EventLoop loop;
  std::thread loop_thread;
  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};

  std::atomic<long long> requests{0}, not_found{0}, bad_requests{0};

  struct Connection {
    std::string in;
    std::string out;
    bool responded = false;
    bool want_write = false;
  };
  std::unordered_map<int, Connection> by_fd;  ///< admin-loop thread only

  explicit Impl(const AdminServerOptions& opts)
      : options(opts), listener(opts.host, opts.port) {
    loop.add(listener.fd());
    loop_thread = std::thread([this] { run_loop(); });
  }

  void run_loop() {
    std::vector<Event> events;
    std::vector<int> dead;
    while (!stopping.load(std::memory_order_acquire)) {
      loop.wait(events, -1);
      dead.clear();
      for (const Event& event : events) {
        if (event.fd == listener.fd()) {
          accept_burst();
          continue;
        }
        const auto it = by_fd.find(event.fd);
        if (it == by_fd.end()) continue;
        bool alive = true;
        if (event.readable || event.hangup) {
          alive = on_readable(event.fd, it->second);
        }
        if (alive && event.writable) alive = try_write(event.fd, it->second);
        if (!alive) dead.push_back(event.fd);
      }
      for (const int fd : dead) close_conn(fd);
    }
    for (auto& [fd, conn] : by_fd) {
      loop.remove(fd);
      ::close(fd);
    }
    by_fd.clear();
  }

  void accept_burst() {
    while (true) {
      const int fd = listener.accept_nonblocking();
      if (fd < 0) break;
      if (by_fd.size() >= options.max_connections) {
        ::close(fd);
        continue;
      }
      try {
        loop.add(fd);
      } catch (const std::exception&) {
        ::close(fd);
        continue;
      }
      by_fd.emplace(fd, Connection{});
    }
  }

  /// Returns false when the connection should be closed now.
  bool on_readable(int fd, Connection& conn) {
    char buffer[4096];
    while (true) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      if (n == 0) {
        // Peer closed. If we still owe a response, finish flushing it.
        return !conn.out.empty();
      }
      conn.in.append(buffer, static_cast<std::size_t>(n));
      if (conn.in.size() > options.max_request_bytes) {
        if (!conn.responded) {
          bad_requests.fetch_add(1, std::memory_order_relaxed);
          conn.out = http_response(400, "Bad Request", "text/plain",
                                   "request too large\n", false);
          conn.responded = true;
        }
        break;
      }
    }
    if (!conn.responded) {
      // One request per connection: respond as soon as the request line is
      // complete (the rest of the headers, if any, are irrelevant to GET).
      const std::size_t newline = conn.in.find('\n');
      if (newline != std::string::npos) {
        respond(conn, conn.in.substr(0, newline));
        conn.responded = true;
      }
    }
    if (conn.responded && !conn.out.empty()) return try_write(fd, conn);
    return true;
  }

  void respond(Connection& conn, std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // "GET /path HTTP/1.x" (the version token is optional for us).
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      conn.out = http_response(400, "Bad Request", "text/plain",
                               "malformed request line\n", false);
      return;
    }
    const std::string method = line.substr(0, sp1);
    std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) sp2 = line.size();
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.erase(query);

    const bool head = method == "HEAD";
    if (!head && method != "GET") {
      requests.fetch_add(1, std::memory_order_relaxed);
      conn.out = http_response(405, "Method Not Allowed", "text/plain",
                               "GET or HEAD only\n", false);
      return;
    }
    requests.fetch_add(1, std::memory_order_relaxed);
    if (path == "/metrics") {
      conn.out = http_response(200, "OK", "text/plain; version=0.0.4",
                               obs::Registry::global().text(), head);
    } else if (path == "/healthz") {
      const bool draining = options.draining && options.draining();
      conn.out = draining
                     ? http_response(503, "Service Unavailable", "text/plain",
                                     "draining\n", head)
                     : http_response(200, "OK", "text/plain", "ok\n", head);
    } else if (path == "/slow") {
      conn.out = http_response(200, "OK", "application/json",
                               obs::tail_sampler().slow_json(), head);
    } else if (path == "/tracez") {
      conn.out = http_response(200, "OK", "application/json",
                               obs::trace_to_chrome_json(), head);
    } else if (path == "/") {
      conn.out = http_response(200, "OK", "text/plain", kIndexBody, head);
    } else {
      not_found.fetch_add(1, std::memory_order_relaxed);
      conn.out =
          http_response(404, "Not Found", "text/plain", "not found\n", head);
    }
  }

  /// Returns false when the connection is finished (flushed) or broken.
  bool try_write(int fd, Connection& conn) {
    while (!conn.out.empty()) {
      const ssize_t n = ::write(fd, conn.out.data(), conn.out.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn.want_write) {
            try {
              loop.modify(fd, true, true);
              conn.want_write = true;
            } catch (const std::exception&) {
              return false;
            }
          }
          return true;
        }
        return false;
      }
      conn.out.erase(0, static_cast<std::size_t>(n));
    }
    return !conn.responded;  // flushed: close iff the response went out
  }

  void close_conn(int fd) {
    loop.remove(fd);
    ::close(fd);
    by_fd.erase(fd);
  }

  void stop() {
    if (stopped.exchange(true)) return;
    stopping.store(true, std::memory_order_release);
    loop.wake();
    loop_thread.join();
  }
};

AdminServer::AdminServer(const AdminServerOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

AdminServer::~AdminServer() {
  if (impl_) impl_->stop();
}

std::uint16_t AdminServer::port() const noexcept {
  return impl_->listener.local_port();
}

void AdminServer::stop() { impl_->stop(); }

AdminServerStats AdminServer::stats() const {
  AdminServerStats stats;
  stats.requests = impl_->requests.load(std::memory_order_relaxed);
  stats.not_found = impl_->not_found.load(std::memory_order_relaxed);
  stats.bad_requests = impl_->bad_requests.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace madpipe::serve::net
