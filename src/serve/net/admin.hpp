// AdminServer: the serving stack's live-observability endpoint.
//
// A deliberately minimal HTTP/1.0 listener (GET/HEAD only, one response
// per connection, Connection: close) riding on the same EventLoop wrapper
// as the serve front-end, on its own thread so an operator's scrape can
// never block the data plane. Endpoints:
//
//   /metrics  Prometheus text exposition of the live obs::Registry —
//             queue depth, hit rate, spans dropped, net counters, all of
//             it, while traffic is flowing.
//   /healthz  "ok" (200) normally; "draining" (503) once the drain probe
//             fires, so load balancers stop routing to a stopping server.
//   /slow     madpipe-admin-v1 JSON: the tail sampler's retained
//             slow-request span trees (slowest-k per window + errors),
//             each with trace id and admission/queue/plan phase breakdown.
//   /tracez   The span rings as a Chrome trace-event document
//             (chrome://tracing, ui.perfetto.dev).
//   /         Plain-text index of the above.
//
// Every endpoint is read-only and loop-thread-safe by the same snapshot
// discipline as the seqlock rings: /metrics reads relaxed atomics under
// the registry mutex, /slow copies the sampler's retained state under its
// mutex, /tracez drains the rings with the seqlock protocol. Nothing here
// takes a lock a hot-path writer can block on for more than a snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace madpipe::serve::net {

struct AdminServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; AdminServer::port() tells
  std::size_t max_connections = 64;
  /// Requests without a complete line within this many bytes are answered
  /// 400 and closed (scrapes are one short GET line).
  std::size_t max_request_bytes = 8192;
  /// Drain probe for /healthz, polled per request on the admin thread;
  /// must be thread-safe (e.g. NetServer::draining, an atomic load).
  /// Unset = never draining.
  std::function<bool()> draining;
};

struct AdminServerStats {
  long long requests = 0;      ///< well-formed requests answered
  long long not_found = 0;     ///< 404s (subset of requests)
  long long bad_requests = 0;  ///< malformed/oversized (400, closed)
};

class AdminServer {
 public:
  /// Binds, listens and starts the admin loop thread. Throws
  /// std::runtime_error when the address cannot be bound.
  explicit AdminServer(const AdminServerOptions& options = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  std::uint16_t port() const noexcept;

  /// Stop accepting, close every connection, join. Idempotent.
  void stop();

  AdminServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace madpipe::serve::net
