#include "serve/net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace madpipe::serve::net {

EventLoop::EventLoop(const EventLoopOptions& options)
    : edge_triggered_(options.edge_triggered) {
  epoll_.reset(::epoll_create1(0));
  if (!epoll_.valid()) {
    throw std::runtime_error(std::string("epoll_create1(): ") +
                             std::strerror(errno));
  }
  wake_fd_.reset(::eventfd(0, EFD_NONBLOCK));
  if (!wake_fd_.valid()) {
    throw std::runtime_error(std::string("eventfd(): ") +
                             std::strerror(errno));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &event) != 0) {
    throw std::runtime_error(std::string("epoll_ctl(wake): ") +
                             std::strerror(errno));
  }
}

std::uint32_t EventLoop::flags_for(bool want_read,
                                   bool want_write) const noexcept {
  std::uint32_t flags = EPOLLRDHUP;
  if (want_read) flags |= EPOLLIN;
  if (want_write) flags |= EPOLLOUT;
  if (edge_triggered_) flags |= EPOLLET;
  return flags;
}

void EventLoop::add(int fd, bool want_write) {
  epoll_event event{};
  event.events = flags_for(true, want_write);
  event.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &event) != 0) {
    throw std::runtime_error(std::string("epoll_ctl(add): ") +
                             std::strerror(errno));
  }
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  epoll_event event{};
  event.events = flags_for(want_read, want_write);
  event.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &event) != 0) {
    throw std::runtime_error(std::string("epoll_ctl(mod): ") +
                             std::strerror(errno));
  }
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::wait(std::vector<Event>& events, int timeout_ms) {
  events.clear();
  epoll_event raw[64];
  int count = 0;
  while (true) {
    count = ::epoll_wait(epoll_.get(), raw, 64, timeout_ms);
    if (count >= 0) break;
    if (errno != EINTR) return 0;
  }
  for (int i = 0; i < count; ++i) {
    if (raw[i].data.fd == wake_fd_.get()) {
      std::uint64_t drain = 0;
      // Drain the eventfd counter so coalesced wakes arm the next wait.
      while (::read(wake_fd_.get(), &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    Event event;
    event.fd = raw[i].data.fd;
    event.readable = (raw[i].events & EPOLLIN) != 0;
    event.writable = (raw[i].events & EPOLLOUT) != 0;
    event.hangup =
        (raw[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
    events.push_back(event);
  }
  return static_cast<int>(events.size());
}

void EventLoop::wake() noexcept {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace madpipe::serve::net
