// A small epoll wrapper: fd registration, one-shot waits, and a thread-safe
// wake() (eventfd) so other threads can interrupt a blocking wait.
//
// Level-triggered by default. The server's read/write paths always drain
// until EAGAIN, so edge-triggered mode (EventLoopOptions::edge_triggered)
// is also correct — it is exposed for benchmarking the wakeup-rate
// difference, not as a behavioral switch.
#pragma once

#include <cstdint>
#include <vector>

#include "util/net.hpp"

namespace madpipe::serve::net {

struct EventLoopOptions {
  bool edge_triggered = false;
};

struct Event {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool hangup = false;  ///< EPOLLHUP / EPOLLERR / EPOLLRDHUP
};

class EventLoop {
 public:
  explicit EventLoop(const EventLoopOptions& options = {});

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for readability and (optionally) writability.
  /// Throws std::runtime_error on epoll_ctl failure.
  void add(int fd, bool want_write = false);
  /// Change the interest set of an already-registered fd. Dropping read
  /// interest is how the server applies write backpressure to a client that
  /// keeps sending while its responses back up.
  void modify(int fd, bool want_read, bool want_write);
  /// Deregister; safe to call for fds that were never added.
  void remove(int fd);

  /// Block up to `timeout_ms` (-1 = forever) and collect ready events into
  /// `events` (cleared first). A wake() shows up as a timely return with the
  /// wake consumed and no event entry. Returns the number of fd events.
  int wait(std::vector<Event>& events, int timeout_ms);

  /// Interrupt a concurrent wait(). Callable from any thread, async-signal
  /// safe (a single write on an eventfd).
  void wake() noexcept;

 private:
  std::uint32_t flags_for(bool want_read, bool want_write) const noexcept;

  madpipe::net::FdGuard epoll_;
  madpipe::net::FdGuard wake_fd_;
  bool edge_triggered_ = false;
};

}  // namespace madpipe::serve::net
