#include "serve/net/server.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/net/event_loop.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"

namespace madpipe::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Registry bindings for the network layer (process-lifetime references,
/// find-or-create once).
struct NetMetrics {
  obs::Counter& accepted;
  obs::Counter& closed;
  obs::Counter& frames;
  obs::Counter& responses;
  obs::Counter& shed_rate;
  obs::Counter& shed_depth;
  obs::Counter& protocol_errors;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Gauge& connections;
  obs::Gauge& queue_depth;
};

NetMetrics& net_metrics() {
  static NetMetrics* metrics = [] {
    obs::Registry& r = obs::Registry::global();
    return new NetMetrics{
        r.counter("madpipe_net_accepted_total", "TCP connections accepted"),
        r.counter("madpipe_net_closed_total", "TCP connections closed"),
        r.counter("madpipe_net_frames_total", "Request frames received"),
        r.counter("madpipe_net_responses_total", "Response frames queued"),
        r.counter("madpipe_net_shed_rate_total",
                  "Frames rejected by a per-connection token bucket"),
        r.counter("madpipe_net_shed_depth_total",
                  "Frames rejected by service backlog depth"),
        r.counter("madpipe_net_protocol_errors_total",
                  "Malformed frames answered with an error response"),
        r.counter("madpipe_net_bytes_in_total", "Bytes read from clients"),
        r.counter("madpipe_net_bytes_out_total", "Bytes written to clients"),
        r.gauge("madpipe_net_connections", "Open TCP connections"),
        r.gauge("madpipe_net_queue_depth",
                "PlanService queue depth as last sampled by the server"),
    };
  }();
  return *metrics;
}

/// An in-order response slot: seq slots fill out of order (hits beat
/// misses), the connection flushes the ready prefix.
struct Slot {
  bool ready = false;
  std::string line;
};

struct Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::string in;
  std::string out;
  std::deque<Slot> slots;
  std::uint64_t base_seq = 0;  ///< seq of slots.front()
  std::uint64_t next_seq = 0;
  std::size_t inflight = 0;  ///< slots not yet ready
  double tokens = 0.0;
  Clock::time_point last_refill{};
  bool want_write = false;  ///< current epoll write interest
  bool reading = true;      ///< current epoll read interest
  bool read_closed = false;      ///< EOF/half-close seen
  bool close_after_flush = false;
  bool retired = false;  ///< queued for erasure; ignore events/completions

  bool alive() const noexcept { return fd >= 0; }
};

struct Work {
  std::uint64_t conn = 0;
  std::uint64_t seq = 0;
  std::uint64_t trace_id = 0;    ///< assigned at frame admission (ingress)
  std::int64_t ingress_ns = 0;   ///< obs::now_ns() at frame admission
  std::string frame;
};

struct Completion {
  std::uint64_t conn = 0;
  std::uint64_t seq = 0;
  std::string line;
};

std::string rejected_line(const char* reason, std::uint64_t trace_id) {
  PlanResponse response;
  response.trace_id = trace_id;
  response.status = ResponseStatus::Rejected;
  response.error = reason;
  return response_to_json(response);
}

}  // namespace

struct NetServer::Impl {
  PlanService& service;
  NetServerOptions options;
  madpipe::net::TcpListener listener;
  EventLoop loop;

  std::thread loop_thread;
  std::vector<std::thread> dispatchers;
  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};

  // Dispatch queue: loop thread → workers.
  std::mutex work_mutex;
  std::condition_variable work_available;
  std::deque<Work> work_queue;
  bool work_stop = false;

  // Completion queue: workers / planner threads → loop thread.
  std::mutex completion_mutex;
  std::vector<Completion> completions;

  // Connection state: loop thread only.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> by_id;
  std::unordered_map<int, std::uint64_t> by_fd;
  std::uint64_t next_conn_id = 1;
  /// Connections are never destroyed mid-callstack (a shed response can
  /// finish a connection while its read loop still holds a reference);
  /// retire() marks them and the loop erases between event batches.
  std::vector<std::uint64_t> graveyard;

  std::atomic<long long> accepted{0}, closed{0}, frames{0}, responses{0},
      shed_rate{0}, shed_depth{0}, protocol_errors{0}, oversized{0},
      bytes_in{0}, bytes_out{0};

  Impl(PlanService& svc, const NetServerOptions& opts)
      : service(svc),
        options(opts),
        listener(opts.host, opts.port),
        loop(EventLoopOptions{opts.edge_triggered}) {
    if (options.shed_queue_depth == 0) {
      options.shed_queue_depth = service.queue_capacity();
    }
    std::size_t workers = options.dispatch_workers;
    if (workers == 0) {
      workers = std::max(1u, std::thread::hardware_concurrency());
    }
    loop.add(listener.fd());
    dispatchers.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      dispatchers.emplace_back([this] { dispatch_loop(); });
    }
    loop_thread = std::thread([this] { run_loop(); });
  }

  // ---- dispatch workers ---------------------------------------------------

  void push_completion(std::uint64_t conn, std::uint64_t seq,
                       std::string line) {
    {
      const std::lock_guard<std::mutex> lock(completion_mutex);
      completions.push_back(Completion{conn, seq, std::move(line)});
    }
    loop.wake();
  }

  void dispatch_loop() {
    // Frame-text → parsed request memo. Hit traffic repeats frames
    // verbatim; skipping the JSON parse on repeats is what lets the hit
    // path hold six-figure request rates. Frames naming a profile_file are
    // never memoized (the parse reads the filesystem, it is not pure).
    std::unordered_map<std::string, PlanRequest> memo;
    constexpr std::size_t kMemoCap = 4096;
    while (true) {
      Work work;
      {
        std::unique_lock<std::mutex> lock(work_mutex);
        work_available.wait(lock,
                            [this] { return work_stop || !work_queue.empty(); });
        if (work_queue.empty()) return;  // drain before stopping
        work = std::move(work_queue.front());
        work_queue.pop_front();
      }
      // The frame's trace context crosses from the loop thread with the
      // Work item; net_dispatch and the submit-side spans below all carry
      // the id.
      obs::TraceContextScope trace_scope(work.trace_id);
      obs::Span span("net_dispatch", obs::kCatServe);

      const PlanRequest* request = nullptr;
      std::optional<PlanRequest> parsed;
      const auto memo_it = memo.find(work.frame);
      if (memo_it != memo.end()) {
        request = &memo_it->second;
        span.arg("memo", 1);
      } else {
        BatchParse batch = parse_requests(work.frame);
        std::string error;
        std::string id;
        if (!batch.ok()) {
          error = batch.error;
        } else if (batch.requests.size() != 1) {
          error = "expected one request per frame, got " +
                  std::to_string(batch.requests.size());
        } else if (!batch.requests[0].ok()) {
          error = batch.requests[0].error;
          id = batch.requests[0].id;
        }
        if (!error.empty()) {
          protocol_errors.fetch_add(1, std::memory_order_relaxed);
          net_metrics().protocol_errors.increment();
          PlanResponse failure = error_response(id, error);
          failure.trace_id = work.trace_id;
          push_completion(work.conn, work.seq, response_to_json(failure));
          continue;
        }
        parsed.emplace(std::move(*batch.requests[0].request));
        if (work.frame.find("profile_file") == std::string::npos) {
          if (memo.size() >= kMemoCap) memo.clear();
          request = &memo.emplace(std::move(work.frame), std::move(*parsed))
                         .first->second;
        } else {
          request = &*parsed;
        }
      }

      const std::uint64_t conn = work.conn;
      const std::uint64_t seq = work.seq;
      // Stamp the per-frame trace context onto this submission's copy of
      // the (possibly memoized, shared) request. submit_async takes the
      // request by value either way, so this copy is not an extra one.
      PlanRequest submitted = *request;
      submitted.trace_id = work.trace_id;
      submitted.ingress_ns = work.ingress_ns;
      // The callback fires on this thread for hits/rejections and on a
      // planner worker for misses; push_completion is safe from both.
      service.submit_async(std::move(submitted),
                           [this, conn, seq](PlanResponse&& response) {
                             push_completion(conn, seq,
                                             response_to_json(response));
                           });
    }
  }

  // ---- event loop ---------------------------------------------------------

  /// Loop-thread view of shutdown (set once stopping is observed).
  bool draining = false;

  void run_loop() {
    std::vector<Event> events;
    while (true) {
      if (!draining && stopping.load(std::memory_order_acquire)) {
        // Shutdown begins: stop accepting, stop handing work to the
        // dispatchers (frames arriving from here on are shed inline, so no
        // work item can be enqueued after the workers drain out).
        draining = true;
        loop.remove(listener.fd());
        {
          const std::lock_guard<std::mutex> lock(work_mutex);
          work_stop = true;
        }
        work_available.notify_all();
      }
      if (draining && idle()) break;
      loop.wait(events, draining ? 20 : -1);
      for (const Event& event : events) {
        if (event.fd == listener.fd()) {
          if (!draining) accept_burst();
          continue;
        }
        const auto it = by_fd.find(event.fd);
        if (it == by_fd.end()) continue;
        Connection& conn = *by_id.at(it->second);
        if (conn.retired) continue;
        if (event.writable) on_writable(conn);
        if (!conn.alive() || conn.retired) continue;
        if (event.readable || event.hangup) on_readable(conn);
      }
      drain_completions();
      collect();
    }
    // Drained: every in-flight request completed and flushed.
    for (auto& [id, conn] : by_id) {
      if (conn->alive()) close_fd(*conn);
    }
    by_id.clear();
    by_fd.clear();
  }

  /// True when shutdown can finish: no connection holds unfinished work or
  /// unflushed bytes, and no completion is waiting to be slotted.
  bool idle() {
    drain_completions();
    collect();
    for (const auto& [id, conn] : by_id) {
      if (conn->inflight > 0 || !conn->out.empty() || !conn->slots.empty()) {
        return false;
      }
    }
    return true;
  }

  void collect() {
    for (const std::uint64_t id : graveyard) by_id.erase(id);
    graveyard.clear();
  }

  void accept_burst() {
    obs::Span span("net_accept", obs::kCatServe);
    int count = 0;
    while (true) {
      const int fd = listener.accept_nonblocking();
      if (fd < 0) break;
      if (by_fd.size() >= options.max_connections) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->tokens = options.token_burst;
      conn->last_refill = Clock::now();
      try {
        loop.add(fd);
      } catch (const std::exception&) {
        ::close(fd);
        continue;
      }
      by_fd.emplace(fd, conn->id);
      by_id.emplace(conn->id, std::move(conn));
      ++count;
      accepted.fetch_add(1, std::memory_order_relaxed);
      net_metrics().accepted.increment();
    }
    net_metrics().connections.set(static_cast<double>(by_fd.size()));
    span.arg("count", count);
  }

  void on_readable(Connection& conn) {
    obs::Span span("net_read", obs::kCatServe);
    char buffer[64 * 1024];
    while (conn.alive() && !conn.read_closed) {
      const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        abort_connection(conn);
        return;
      }
      if (n == 0) {
        // Half-close: the client is done sending; finish what it asked
        // for, flush, then close our side.
        conn.read_closed = true;
        conn.close_after_flush = true;
        break;
      }
      bytes_in.fetch_add(n, std::memory_order_relaxed);
      net_metrics().bytes_in.add(static_cast<long long>(n));
      conn.in.append(buffer, static_cast<std::size_t>(n));
      extract_frames(conn);
      if (!conn.alive()) return;
      if (conn.out.size() >= options.out_buffer_high_water) break;
    }
    if (!conn.alive()) return;
    if (conn.in.size() > options.max_frame_bytes) {
      // No newline within the frame limit: framing is broken.
      oversize_close(conn);
      return;
    }
    update_interest(conn);
    maybe_finish(conn);
  }

  void extract_frames(Connection& conn) {
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = conn.in.find('\n', start);
      if (newline == std::string::npos) break;
      const std::size_t size = newline - start;
      if (size > options.max_frame_bytes) {
        conn.in.erase(0, newline + 1);
        oversize_close(conn);
        return;
      }
      if (size > 0) {
        std::string frame = conn.in.substr(start, size);
        if (!frame.empty() && frame.back() == '\r') frame.pop_back();
        if (!frame.empty()) admit_frame(conn, std::move(frame));
      }
      start = newline + 1;
    }
    conn.in.erase(0, start);
  }

  void admit_frame(Connection& conn, std::string frame) {
    frames.fetch_add(1, std::memory_order_relaxed);
    net_metrics().frames.increment();
    // Ingress: every frame — even one shed right here — gets a trace id,
    // echoed in its response. The id and the admission timestamp travel
    // with the Work item (NOT inside the memoized PlanRequest: the frame
    // memo is shared across repeats, the trace context is per-request).
    const std::uint64_t trace_id = obs::next_trace_id();
    const std::int64_t ingress_ns = obs::now_ns();

    // During shutdown the dispatchers are draining out; late frames are
    // answered inline so the drain provably terminates.
    if (draining) {
      complete_inline(conn, rejected_line("server shutting down", trace_id));
      return;
    }

    // Token bucket: refill by elapsed wall time, spend one per frame.
    if (options.tokens_per_second > 0.0) {
      const Clock::time_point now = Clock::now();
      const double elapsed =
          std::chrono::duration<double>(now - conn.last_refill).count();
      conn.last_refill = now;
      conn.tokens = std::min(options.token_burst,
                             conn.tokens + elapsed * options.tokens_per_second);
      if (conn.tokens < 1.0) {
        shed_rate.fetch_add(1, std::memory_order_relaxed);
        net_metrics().shed_rate.increment();
        complete_inline(conn, rejected_line("rate limit exceeded", trace_id));
        return;
      }
      conn.tokens -= 1.0;
    }

    // Backlog shed: when the service queue is already at the shed depth, a
    // planner-bound frame would only stack latency — bounce it before parse.
    const std::size_t depth = service.queue_depth();
    net_metrics().queue_depth.set(static_cast<double>(depth));
    if (depth >= options.shed_queue_depth) {
      shed_depth.fetch_add(1, std::memory_order_relaxed);
      net_metrics().shed_depth.increment();
      complete_inline(conn, rejected_line("service backlog full", trace_id));
      return;
    }

    const std::uint64_t seq = conn.next_seq++;
    conn.slots.push_back(Slot{});
    ++conn.inflight;
    {
      const std::lock_guard<std::mutex> lock(work_mutex);
      work_queue.push_back(
          Work{conn.id, seq, trace_id, ingress_ns, std::move(frame)});
    }
    work_available.notify_one();
  }

  /// A response produced on the loop thread itself (shed paths): takes a
  /// slot and fills it immediately, keeping per-connection ordering.
  void complete_inline(Connection& conn, std::string line) {
    const std::uint64_t seq = conn.next_seq++;
    conn.slots.push_back(Slot{});
    ++conn.inflight;
    fill_slot(conn, seq, std::move(line));
  }

  void drain_completions() {
    std::vector<Completion> batch;
    {
      const std::lock_guard<std::mutex> lock(completion_mutex);
      batch.swap(completions);
    }
    for (Completion& completion : batch) {
      const auto it = by_id.find(completion.conn);
      if (it == by_id.end()) continue;  // connection already fully retired
      fill_slot(*it->second, completion.seq, std::move(completion.line));
    }
  }

  void fill_slot(Connection& conn, std::uint64_t seq, std::string line) {
    if (conn.retired) return;
    const std::uint64_t index = seq - conn.base_seq;
    if (index >= conn.slots.size()) return;  // cannot happen; be safe
    Slot& slot = conn.slots[index];
    if (!slot.ready) {
      slot.ready = true;
      --conn.inflight;
    }
    slot.line = std::move(line);
    responses.fetch_add(1, std::memory_order_relaxed);
    net_metrics().responses.increment();
    flush_ready(conn);
  }

  void flush_ready(Connection& conn) {
    while (!conn.slots.empty() && conn.slots.front().ready) {
      if (conn.alive()) {
        conn.out += conn.slots.front().line;
        conn.out += '\n';
      }
      conn.slots.pop_front();
      ++conn.base_seq;
    }
    if (!conn.alive()) {
      // The socket died with work in flight; retire once everything that
      // was admitted has completed (dropping the unsendable responses).
      if (conn.inflight == 0) retire(conn);
      return;
    }
    try_write(conn);
  }

  void on_writable(Connection& conn) { try_write(conn); }

  void try_write(Connection& conn) {
    while (!conn.out.empty()) {
      const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        abort_connection(conn);
        return;
      }
      bytes_out.fetch_add(n, std::memory_order_relaxed);
      net_metrics().bytes_out.add(static_cast<long long>(n));
      conn.out.erase(0, static_cast<std::size_t>(n));
    }
    update_interest(conn);
    maybe_finish(conn);
  }

  /// Keep the epoll interest set in sync with buffer state: write interest
  /// while the out-buffer is non-empty, read interest while the client may
  /// send more and the out-buffer is under the high-water mark.
  void update_interest(Connection& conn) {
    if (!conn.alive()) return;
    const bool want_write = !conn.out.empty();
    const bool want_read =
        !conn.read_closed && conn.out.size() < options.out_buffer_high_water;
    if (want_write == conn.want_write && want_read == conn.reading) return;
    try {
      loop.modify(conn.fd, want_read, want_write);
      conn.want_write = want_write;
      conn.reading = want_read;
    } catch (const std::exception&) {
      abort_connection(conn);
    }
  }

  /// Close once a finishing connection has nothing left to say.
  void maybe_finish(Connection& conn) {
    if (!conn.alive() || !conn.close_after_flush) return;
    if (conn.out.empty() && conn.slots.empty() && conn.inflight == 0) {
      close_fd(conn);
      retire(conn);
    }
  }

  void oversize_close(Connection& conn) {
    oversized.fetch_add(1, std::memory_order_relaxed);
    complete_inline(
        conn, response_to_json(error_response(
                  "", "frame exceeds " +
                          std::to_string(options.max_frame_bytes) +
                          " bytes")));
    conn.read_closed = true;
    conn.close_after_flush = true;
    conn.in.clear();
    update_interest(conn);
    maybe_finish(conn);
  }

  /// Hard close (I/O error, peer reset): drop the socket now; the entry
  /// stays until in-flight work drains so completions find their slots.
  void abort_connection(Connection& conn) {
    if (!conn.alive()) return;
    close_fd(conn);
    if (conn.inflight == 0) retire(conn);
  }

  void close_fd(Connection& conn) {
    loop.remove(conn.fd);
    by_fd.erase(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
    closed.fetch_add(1, std::memory_order_relaxed);
    net_metrics().closed.increment();
    net_metrics().connections.set(static_cast<double>(by_fd.size()));
  }

  void retire(Connection& conn) {
    if (conn.retired) return;
    conn.retired = true;
    graveyard.push_back(conn.id);
  }

  // ---- shutdown -----------------------------------------------------------

  void stop() {
    if (stopped.exchange(true)) return;
    stopping.store(true, std::memory_order_release);
    loop.wake();
    // The loop observes `stopping`, stops accepting/admitting, signals the
    // dispatchers to drain, then spins until every in-flight request has
    // completed and flushed. Join it first; the workers are done by then.
    loop_thread.join();
    for (std::thread& worker : dispatchers) worker.join();
  }
};

NetServer::NetServer(PlanService& service, const NetServerOptions& options)
    : impl_(std::make_unique<Impl>(service, options)) {}

NetServer::~NetServer() {
  if (impl_) impl_->stop();
}

std::uint16_t NetServer::port() const noexcept {
  return impl_->listener.local_port();
}

void NetServer::stop() { impl_->stop(); }

bool NetServer::draining() const noexcept {
  return impl_->stopping.load(std::memory_order_acquire);
}

NetServerStats NetServer::stats() const {
  NetServerStats stats;
  stats.accepted = impl_->accepted.load(std::memory_order_relaxed);
  stats.closed = impl_->closed.load(std::memory_order_relaxed);
  stats.frames = impl_->frames.load(std::memory_order_relaxed);
  stats.responses = impl_->responses.load(std::memory_order_relaxed);
  stats.shed_rate = impl_->shed_rate.load(std::memory_order_relaxed);
  stats.shed_depth = impl_->shed_depth.load(std::memory_order_relaxed);
  stats.protocol_errors =
      impl_->protocol_errors.load(std::memory_order_relaxed);
  stats.oversized = impl_->oversized.load(std::memory_order_relaxed);
  stats.bytes_in = impl_->bytes_in.load(std::memory_order_relaxed);
  stats.bytes_out = impl_->bytes_out.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace madpipe::serve::net
