// NetServer: the TCP front-end of PlanService.
//
// Wire protocol: newline-delimited `madpipe-serve-v1` JSON — one request
// object per line, one response object per line, responses in request order
// per connection (so a pipelining client can match by position as well as by
// id). A malformed frame earns an error response and the connection stays
// open; an oversized frame closes it (the framing itself is broken).
//
// Threading:
//   * one event-loop thread owns every socket and all connection state
//     (epoll, non-blocking accept/read/write, buffered framing);
//   * a pool of dispatch workers does the per-frame work the loop must not
//     block on — JSON parse, PlanService::submit_async, response
//     serialization. Cache hits complete synchronously on the dispatch
//     thread; misses complete later on a planner worker. Either way the
//     finished line lands in a completion queue and an eventfd wake hands
//     it back to the loop thread, which slots it into the connection's
//     in-order response window and flushes.
//
// Admission control (applied on the loop thread, before parse cost):
//   * per-connection token bucket (tokens_per_second/token_burst) — a
//     client exceeding its rate gets `rejected` responses immediately;
//   * service backlog (queue_depth ≥ shed_queue_depth) — overload sheds
//     with `rejected` instead of stacking latency (429-style semantics).
// Deadlines ride inside the request (`deadline_ms`) and propagate through
// PlanService's state-budget valve unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "util/net.hpp"

namespace madpipe::serve::net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; NetServer::port() tells
  std::size_t max_connections = 1024;
  /// Frames above this close the connection (framing is unrecoverable).
  std::size_t max_frame_bytes = 1u << 20;
  /// Stop reading from a connection whose out-buffer exceeds this; resume
  /// when the client drains it (write backpressure instead of unbounded
  /// buffering for slow readers).
  std::size_t out_buffer_high_water = 4u << 20;
  /// Per-connection token bucket; 0 = unlimited.
  double tokens_per_second = 0.0;
  double token_burst = 64.0;
  /// Shed (reject) new frames while PlanService's queue depth is at or past
  /// this; 0 = use the service's own queue capacity.
  std::size_t shed_queue_depth = 0;
  /// Frame-parse/dispatch threads; 0 = hardware concurrency.
  std::size_t dispatch_workers = 0;
  bool edge_triggered = false;  ///< epoll ET (read/write paths drain anyway)
};

/// Monotonic counters, readable at any time (atomics; no lock).
struct NetServerStats {
  long long accepted = 0;
  long long closed = 0;
  long long frames = 0;           ///< complete request lines seen
  long long responses = 0;        ///< response lines queued for writing
  long long shed_rate = 0;        ///< rejected by a connection token bucket
  long long shed_depth = 0;       ///< rejected by service backlog depth
  long long protocol_errors = 0;  ///< malformed frames (error response sent)
  long long oversized = 0;        ///< frames past max_frame_bytes (closed)
  long long bytes_in = 0;
  long long bytes_out = 0;
};

class NetServer {
 public:
  /// Binds, listens and starts the loop + dispatch threads. Throws
  /// std::runtime_error when the address cannot be bound.
  NetServer(PlanService& service, const NetServerOptions& options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const noexcept;

  /// Graceful shutdown: stop accepting, finish every in-flight request,
  /// flush every out-buffer, close, join. Idempotent; also runs from the
  /// destructor.
  void stop();

  /// True once shutdown has begun (stop() called or destructor running).
  /// The admin endpoint's /healthz turns 503 on this signal so load
  /// balancers stop routing to a draining server.
  bool draining() const noexcept;

  NetServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace madpipe::serve::net
