#include "serve/plan_cache.hpp"

#include <chrono>

namespace madpipe::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kNone = ~0u;

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p *= 2;
  return p;
}

/// Approximate resident size of one entry: the accounting driving the byte
/// budget. Exactness doesn't matter; proportionality does.
std::size_t approximate_bytes(const std::string& fingerprint,
                              const CachedPlan& cached) {
  std::size_t bytes = 128 + fingerprint.size();
  if (cached.plan.has_value()) {
    const Plan& plan = *cached.plan;
    bytes += plan.pattern.ops.size() * sizeof(PatternOp);
    bytes += plan.allocation.partitioning().stages().size() *
             (sizeof(Stage) + sizeof(int));
    bytes += sizeof(Plan);
  }
  return bytes;
}

}  // namespace

struct ShardedPlanCache::Entry {
  std::uint64_t key = 0;
  std::string fingerprint;
  CachedPlan cached;
  std::size_t bytes = 0;
  Clock::time_point expires{};  ///< meaningful only with a TTL
  // Intrusive LRU links (slab indices). head = most recent.
  std::uint32_t prev = kNone;
  std::uint32_t next = kNone;
};

struct ShardedPlanCache::Shard {
  mutable std::mutex mutex;
  util::FlatHash64<std::uint32_t> index;  ///< key → slab slot
  std::vector<Entry> slab;
  std::vector<std::uint32_t> free_slots;
  std::uint32_t lru_head = kNone;
  std::uint32_t lru_tail = kNone;
  std::size_t bytes = 0;
  std::size_t byte_budget = 0;  ///< 0 = unbounded
  PlanCacheCounters counters;

  void unlink(std::uint32_t slot) {
    Entry& entry = slab[slot];
    if (entry.prev != kNone) slab[entry.prev].next = entry.next;
    else lru_head = entry.next;
    if (entry.next != kNone) slab[entry.next].prev = entry.prev;
    else lru_tail = entry.prev;
    entry.prev = entry.next = kNone;
  }

  void push_front(std::uint32_t slot) {
    Entry& entry = slab[slot];
    entry.prev = kNone;
    entry.next = lru_head;
    if (lru_head != kNone) slab[lru_head].prev = slot;
    lru_head = slot;
    if (lru_tail == kNone) lru_tail = slot;
  }

  void remove(std::uint32_t slot) {
    unlink(slot);
    Entry& entry = slab[slot];
    index.erase(entry.key);
    bytes -= entry.bytes;
    entry = Entry{};
    free_slots.push_back(slot);
  }

  /// Evict LRU tails until under budget; `keep` (the entry just inserted)
  /// is never evicted.
  void enforce_budget(std::uint32_t keep) {
    if (byte_budget == 0) return;
    while (bytes > byte_budget && lru_tail != kNone && lru_tail != keep) {
      remove(lru_tail);
      ++counters.evictions;
    }
  }
};

ShardedPlanCache::ShardedPlanCache(const PlanCacheOptions& options)
    : options_(options) {
  const std::size_t shard_count =
      round_up_pow2(options.shards == 0 ? 1 : options.shards);
  shard_mask_ = shard_count - 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->byte_budget =
        options.byte_budget == 0
            ? 0
            // Round up so the shard budgets never sum below the requested
            // total when it isn't divisible.
            : (options.byte_budget + shard_count - 1) / shard_count;
  }
}

ShardedPlanCache::~ShardedPlanCache() = default;

ShardedPlanCache::Shard& ShardedPlanCache::shard_for(std::uint64_t key) const {
  // The flat table consumes mix64(key) from the low bits; picking the shard
  // from the top byte keeps the two partitions independent.
  return *shards_[(key >> 56) & shard_mask_];
}

std::optional<CachedPlan> ShardedPlanCache::find(
    const CanonicalRequest& request) {
  Shard& shard = shard_for(request.key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint32_t* slot = shard.index.find(request.key);
  if (slot == nullptr) {
    ++shard.counters.misses;
    return std::nullopt;
  }
  Entry& entry = shard.slab[*slot];
  if (entry.fingerprint != request.fingerprint) {
    ++shard.counters.key_collisions;
    ++shard.counters.misses;
    return std::nullopt;
  }
  if (options_.ttl_seconds > 0.0 && Clock::now() >= entry.expires) {
    shard.remove(*slot);
    ++shard.counters.expirations;
    ++shard.counters.misses;
    return std::nullopt;
  }
  const std::uint32_t index = *slot;
  shard.unlink(index);
  shard.push_front(index);
  ++shard.counters.hits;
  return shard.slab[index].cached;
}

void ShardedPlanCache::insert(const CanonicalRequest& request,
                              const CachedPlan& cached) {
  insert_raw(request.key, request.fingerprint, cached);
}

void ShardedPlanCache::insert_raw(std::uint64_t key,
                                  const std::string& fingerprint,
                                  const CachedPlan& cached) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);

  std::uint32_t slot;
  if (const std::uint32_t* existing = shard.index.find(key)) {
    // Overwrite in place (same key: either a refresh or a digest collision —
    // latest writer wins either way).
    slot = *existing;
    shard.unlink(slot);
    shard.bytes -= shard.slab[slot].bytes;
  } else {
    if (!shard.free_slots.empty()) {
      slot = shard.free_slots.back();
      shard.free_slots.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(shard.slab.size());
      shard.slab.emplace_back();
    }
    shard.index.emplace(key, slot);
  }

  Entry& entry = shard.slab[slot];
  entry.key = key;
  entry.fingerprint = fingerprint;
  entry.cached = cached;
  entry.bytes = approximate_bytes(entry.fingerprint, cached);
  if (options_.ttl_seconds > 0.0) {
    entry.expires = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(
                                           options_.ttl_seconds));
  }
  shard.bytes += entry.bytes;
  shard.push_front(slot);
  ++shard.counters.insertions;
  shard.enforce_budget(slot);
}

std::vector<ShardedPlanCache::ExportedEntry> ShardedPlanCache::export_entries()
    const {
  std::vector<ExportedEntry> exported;
  const Clock::time_point now = Clock::now();
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (std::uint32_t slot = shard->lru_head; slot != kNone;
         slot = shard->slab[slot].next) {
      const Entry& entry = shard->slab[slot];
      if (options_.ttl_seconds > 0.0 && now >= entry.expires) continue;
      exported.push_back(ExportedEntry{entry.key, entry.fingerprint,
                                       entry.cached});
    }
  }
  return exported;
}

PlanCacheCounters ShardedPlanCache::counters() const {
  PlanCacheCounters total;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->counters.hits;
    total.misses += shard->counters.misses;
    total.insertions += shard->counters.insertions;
    total.evictions += shard->counters.evictions;
    total.expirations += shard->counters.expirations;
    total.key_collisions += shard->counters.key_collisions;
    total.entries += static_cast<long long>(shard->index.size());
    total.bytes += static_cast<long long>(shard->bytes);
  }
  return total;
}

void ShardedPlanCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->index.clear();
    shard->slab.clear();
    shard->free_slots.clear();
    shard->lru_head = shard->lru_tail = kNone;
    shard->bytes = 0;
  }
}

}  // namespace madpipe::serve
