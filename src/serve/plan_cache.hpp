// Sharded LRU cache for planning results, keyed by canonical request keys.
//
// N shards (a power of two, picked by high key bits so the flat table's
// probe bits stay independent), each one mutex + an intrusive LRU threaded
// through a slab of entries, indexed by a FlatHash64 from 64-bit key to slab
// slot. Budgeted by approximate bytes rather than entry count — plans vary
// in size by orders of magnitude (a contiguous 1F1B pattern vs a cyclic one
// with hundreds of ops). An optional TTL lets long-running services shed
// entries whose profiles have gone stale.
//
// Keys are 64-bit digests; the full canonical fingerprint is stored in each
// entry and compared on every hit, so a digest collision degrades to a miss
// (counted) instead of serving the wrong plan.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "serve/request.hpp"
#include "util/flat_hash.hpp"

namespace madpipe::serve {

/// A cached planning outcome in canonical units. Infeasible outcomes are
/// cached too (negative caching): re-planning an impossible configuration
/// is exactly as expensive as planning a possible one.
struct CachedPlan {
  std::optional<Plan> plan;  ///< nullopt = planner returned infeasible
  /// Units of the request that created the entry. A later hit whose own
  /// units differ is a *scaled* hit: the entry is being shared across a
  /// power-of-two rescale of the profile.
  double creator_time_unit = 1.0;
  double creator_byte_unit = 1.0;

  bool feasible() const noexcept { return plan.has_value(); }
};

struct PlanCacheOptions {
  std::size_t shards = 8;  ///< rounded up to a power of two, at least 1
  /// Total byte budget across shards (approximate accounting: fingerprints,
  /// pattern ops, allocation vectors). 0 = unbounded.
  std::size_t byte_budget = 64u << 20;
  double ttl_seconds = 0.0;  ///< 0 = entries never expire
};

struct PlanCacheCounters {
  long long hits = 0;
  long long misses = 0;
  long long insertions = 0;
  long long evictions = 0;     ///< byte-budget LRU evictions
  long long expirations = 0;   ///< TTL evictions
  long long key_collisions = 0;
  long long entries = 0;
  long long bytes = 0;
};

class ShardedPlanCache {
 public:
  explicit ShardedPlanCache(const PlanCacheOptions& options = {});
  ~ShardedPlanCache();  ///< out of line: Shard is an incomplete type here

  /// Look up the canonical key; a hit refreshes LRU recency. The fingerprint
  /// is verified, TTL-expired entries are dropped on sight.
  std::optional<CachedPlan> find(const CanonicalRequest& request);

  /// Insert (or overwrite) the entry for `request`, then evict LRU tails
  /// until the shard is back under its byte budget. The newest entry always
  /// survives, even when it alone exceeds the budget.
  void insert(const CanonicalRequest& request, const CachedPlan& cached);

  /// Insert under an explicit key/fingerprint pair — the snapshot-restore
  /// path, where entries arrive from disk instead of from a canonicalized
  /// request. Identical semantics to insert() otherwise.
  void insert_raw(std::uint64_t key, const std::string& fingerprint,
                  const CachedPlan& cached);

  /// A point-in-time copy of one resident entry, for snapshotting.
  struct ExportedEntry {
    std::uint64_t key = 0;
    std::string fingerprint;
    CachedPlan cached;
  };

  /// Copy out every resident (non-expired) entry, shard by shard under each
  /// shard's lock — concurrent finds/inserts on other shards proceed. Within
  /// a shard, entries come out most-recently-used first, so a budget-capped
  /// reload keeps the hottest plans.
  std::vector<ExportedEntry> export_entries() const;

  PlanCacheCounters counters() const;
  void clear();

 private:
  struct Entry;
  struct Shard;

  Shard& shard_for(std::uint64_t key) const;

  PlanCacheOptions options_;
  std::size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace madpipe::serve
