#include "serve/protocol.hpp"

#include <cmath>

#include "core/types.hpp"
#include "obs/trace.hpp"
#include "models/profile_io.hpp"
#include "models/zoo.hpp"

namespace madpipe::serve {

namespace {

/// True when `v` holds an integer that fits an int comfortably.
bool as_int(const json::Value& v, int* out) {
  if (!v.is_number()) return false;
  const double d = v.as_number();
  if (!std::isfinite(d) || d != std::floor(d) || d < -1e9 || d > 1e9)
    return false;
  *out = static_cast<int>(d);
  return true;
}

bool known_field(const std::string& key, const char* const* allowed,
                 std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (key == allowed[i]) return true;
  }
  return false;
}

/// Per-request option knobs: a strict subset of MadPipeOptions (all fields
/// that are part of the cache key; engine/speculation/workers knobs are
/// result-invariant and stay server-side), plus the serve-level `timings`
/// and `explain` flags (request a phase-timing block / an ExplainSummary in
/// the response — never part of the cache key, they cannot change the plan).
std::string parse_options(const json::Value& value, MadPipeOptions* options,
                          bool* report_timings, bool* report_explain) {
  static const char* const kAllowed[] = {
      "iterations", "max_states", "schedule_best_of", "relative_precision",
      "timings", "explain"};
  for (const auto& member : value.members()) {
    if (!known_field(member.first, kAllowed, std::size(kAllowed)))
      return "unknown options field '" + member.first + "'";
  }
  if (const json::Value* v = value.find("iterations")) {
    int iterations = 0;
    if (!as_int(*v, &iterations) || iterations < 1)
      return "options.iterations must be a positive integer";
    options->phase1.iterations = iterations;
  }
  if (const json::Value* v = value.find("max_states")) {
    if (!v->is_number() || v->as_number() < 1)
      return "options.max_states must be a positive number";
    options->phase1.dp.max_states =
        static_cast<std::size_t>(v->as_number());
  }
  if (const json::Value* v = value.find("schedule_best_of")) {
    int best_of = 0;
    if (!as_int(*v, &best_of) || best_of < 1)
      return "options.schedule_best_of must be a positive integer";
    options->schedule_best_of = best_of;
  }
  if (const json::Value* v = value.find("relative_precision")) {
    if (!v->is_number() || !(v->as_number() > 0.0))
      return "options.relative_precision must be > 0";
    options->phase2.relative_precision = v->as_number();
  }
  if (const json::Value* v = value.find("timings")) {
    if (!v->is_bool()) return "options.timings must be a boolean";
    *report_timings = v->as_bool();
  }
  if (const json::Value* v = value.find("explain")) {
    if (!v->is_bool()) return "options.explain must be a boolean";
    *report_explain = v->as_bool();
  }
  return "";
}

std::string parse_network(const json::Value& value, std::optional<Chain>* out) {
  static const char* const kAllowed[] = {"name", "image", "batch", "length"};
  for (const auto& member : value.members()) {
    if (!known_field(member.first, kAllowed, std::size(kAllowed)))
      return "unknown network field '" + member.first + "'";
  }
  const json::Value* name = value.find("name");
  if (name == nullptr || !name->is_string())
    return "network.name (string) is required";
  models::NetworkConfig config;
  config.network = name->as_string();
  if (const json::Value* v = value.find("image")) {
    if (!as_int(*v, &config.image_size) || config.image_size < 1)
      return "network.image must be a positive integer";
  }
  if (const json::Value* v = value.find("batch")) {
    if (!as_int(*v, &config.batch) || config.batch < 1)
      return "network.batch must be a positive integer";
  }
  if (const json::Value* v = value.find("length")) {
    if (!as_int(*v, &config.chain_length) || config.chain_length < 0)
      return "network.length must be a non-negative integer";
  }
  try {
    *out = models::build_network(config);
  } catch (const std::exception& exception) {
    return std::string("network build failed: ") + exception.what();
  }
  return "";
}

}  // namespace

RequestParse request_from_json(const json::Value& value) {
  RequestParse parse;
  if (!value.is_object()) {
    parse.error = "request must be a JSON object";
    return parse;
  }
  if (const json::Value* id = value.find("id")) {
    if (!id->is_string()) {
      parse.error = "id must be a string";
      return parse;
    }
    parse.id = id->as_string();
  }

  static const char* const kAllowed[] = {
      "id",     "profile_text", "profile_file", "network",
      "gpus",   "memory_gb",    "bandwidth_gbs", "planner",
      "deadline_ms", "options"};
  for (const auto& member : value.members()) {
    if (!known_field(member.first, kAllowed, std::size(kAllowed))) {
      parse.error = "unknown request field '" + member.first + "'";
      return parse;
    }
  }

  // Exactly one profile source.
  const json::Value* profile_text = value.find("profile_text");
  const json::Value* profile_file = value.find("profile_file");
  const json::Value* network = value.find("network");
  const int sources = (profile_text != nullptr) + (profile_file != nullptr) +
                      (network != nullptr);
  if (sources != 1) {
    parse.error =
        "exactly one of profile_text, profile_file, network is required";
    return parse;
  }
  std::optional<Chain> chain;
  if (profile_text != nullptr) {
    if (!profile_text->is_string()) {
      parse.error = "profile_text must be a string";
      return parse;
    }
    models::ProfileParseResult profile =
        models::try_profile_from_string(profile_text->as_string());
    if (!profile.ok()) {
      parse.error = "profile_text: " + profile.error;
      return parse;
    }
    chain = std::move(profile.chain);
  } else if (profile_file != nullptr) {
    if (!profile_file->is_string()) {
      parse.error = "profile_file must be a string";
      return parse;
    }
    models::ProfileParseResult profile =
        models::try_load_profile(profile_file->as_string());
    if (!profile.ok()) {
      parse.error = "profile_file: " + profile.error;
      return parse;
    }
    chain = std::move(profile.chain);
  } else {
    if (!network->is_object()) {
      parse.error = "network must be an object";
      return parse;
    }
    parse.error = parse_network(*network, &chain);
    if (!parse.error.empty()) return parse;
  }

  int gpus = 0;
  const json::Value* gpus_field = value.find("gpus");
  if (gpus_field == nullptr || !as_int(*gpus_field, &gpus) || gpus < 1) {
    parse.error = "gpus (positive integer) is required";
    return parse;
  }
  const json::Value* memory = value.find("memory_gb");
  if (memory == nullptr || !memory->is_number() ||
      !(memory->as_number() > 0.0)) {
    parse.error = "memory_gb (positive number) is required";
    return parse;
  }
  double bandwidth_gbs = 12.0;
  if (const json::Value* v = value.find("bandwidth_gbs")) {
    if (!v->is_number() || !(v->as_number() > 0.0)) {
      parse.error = "bandwidth_gbs must be > 0";
      return parse;
    }
    bandwidth_gbs = v->as_number();
  }

  PlannerKind planner = PlannerKind::MadPipe;
  if (const json::Value* v = value.find("planner")) {
    if (!v->is_string()) {
      parse.error = "planner must be a string";
      return parse;
    }
    const std::optional<PlannerKind> kind =
        planner_kind_from_string(v->as_string());
    if (!kind.has_value()) {
      parse.error = "unknown planner '" + v->as_string() +
                    "' (expected madpipe or madpipe-contig)";
      return parse;
    }
    planner = *kind;
  }

  Seconds deadline_seconds = 0.0;
  if (const json::Value* v = value.find("deadline_ms")) {
    if (!v->is_number() || v->as_number() < 0.0) {
      parse.error = "deadline_ms must be a non-negative number";
      return parse;
    }
    deadline_seconds = v->as_number() * 1e-3;
  }

  MadPipeOptions options;
  bool report_timings = false;
  bool report_explain = false;
  if (const json::Value* v = value.find("options")) {
    if (!v->is_object()) {
      parse.error = "options must be an object";
      return parse;
    }
    parse.error = parse_options(*v, &options, &report_timings, &report_explain);
    if (!parse.error.empty()) return parse;
  }

  PlanRequest request{parse.id,
                      std::move(*chain),
                      Platform{gpus, memory->as_number() * GB,
                               bandwidth_gbs * GB},
                      planner,
                      options,
                      deadline_seconds,
                      report_timings,
                      report_explain};
  try {
    request.platform.validate();
  } catch (const std::exception& exception) {
    parse.error = std::string("invalid platform: ") + exception.what();
    return parse;
  }
  parse.request = std::move(request);
  return parse;
}

BatchParse parse_requests(const std::string& text) {
  BatchParse batch;
  const json::ParseResult parsed = json::parse(text);
  if (!parsed.ok()) {
    batch.error = parsed.error;
    return batch;
  }
  const json::Value& root = parsed.value;
  const std::vector<json::Value>* list = nullptr;
  if (root.is_array()) {
    list = &root.items();
  } else if (root.is_object()) {
    if (const json::Value* requests = root.find("requests")) {
      if (!requests->is_array()) {
        batch.error = "'requests' must be an array";
        return batch;
      }
      list = &requests->items();
    } else {
      // A single bare request object.
      batch.requests.push_back(request_from_json(root));
      return batch;
    }
  } else {
    batch.error = "request document must be an object or array";
    return batch;
  }
  batch.requests.reserve(list->size());
  for (const json::Value& item : *list) {
    batch.requests.push_back(request_from_json(item));
  }
  return batch;
}

void write_response(json::Writer& writer, const PlanResponse& response,
                    bool include_stats) {
  writer.begin_object();
  writer.key("id");
  writer.value(response.id);
  if (response.trace_id != 0) {
    // Echo of the ingress-assigned trace id. Cache-key-inert, and placed
    // before "plan" so bit-identity checks on the plan tail still hold
    // across hit/miss (the ids differ, the plans must not).
    writer.key("trace_id");
    writer.value(obs::format_trace_id(response.trace_id));
  }
  writer.key("status");
  writer.value(to_string(response.status));
  writer.key("cache");
  writer.value(to_string(response.cache));
  writer.key("degraded");
  writer.value(response.degraded);
  writer.key("latency_ms");
  writer.value(response.latency_seconds * 1e3);
  if (response.phases.has_value()) {
    writer.key("phases");
    writer.begin_object();
    writer.key("cache_ms");
    writer.value(response.phases->cache_seconds * 1e3);
    writer.key("queue_ms");
    writer.value(response.phases->queue_seconds * 1e3);
    writer.key("plan_ms");
    writer.value(response.phases->plan_seconds * 1e3);
    writer.end_object();
  }
  if (response.explain.has_value()) {
    const report::ExplainSummary& s = *response.explain;
    writer.key("explain");
    writer.begin_object();
    writer.key("period");
    writer.value(s.period);
    writer.key("critical_resource");
    writer.value(s.critical_resource);
    writer.key("critical_utilization");
    writer.value(s.critical_utilization);
    writer.key("bubble_fraction");
    writer.value(s.bubble_fraction);
    writer.key("mean_gpu_utilization");
    writer.value(s.mean_gpu_utilization);
    writer.key("memory_peak_bytes");
    writer.value(s.memory_peak_bytes);
    writer.key("memory_headroom_bytes");
    writer.value(s.memory_headroom_bytes);
    writer.key("binding_gpu");
    writer.value(s.binding_gpu);
    writer.key("binding_term");
    writer.value(report::to_string(s.binding_term));
    writer.end_object();
  }
  if (!response.error.empty()) {
    writer.key("error");
    writer.value(response.error);
  }
  if (response.plan.has_value()) {
    const Plan& plan = *response.plan;
    writer.key("plan");
    writer.begin_object();
    writer.key("planner");
    writer.value(plan.planner);
    writer.key("period");
    writer.value(plan.period());
    writer.key("phase1_period");
    writer.value(plan.phase1_period);
    writer.key("throughput");
    writer.value(plan.throughput());
    writer.key("allocation");
    writer.value(allocation_fingerprint(plan.allocation));
    writer.key("num_stages");
    writer.value(plan.allocation.partitioning().num_stages());
    writer.key("pattern_ops");
    writer.value(plan.pattern.ops.size());
    if (include_stats) {
      writer.key("stats");
      plan.stats.write_json(writer);
    }
    writer.end_object();
  }
  writer.end_object();
}

std::string response_to_json(const PlanResponse& response,
                             bool include_stats) {
  json::Writer writer;
  write_response(writer, response, include_stats);
  return writer.str();
}

std::string batch_to_json(const std::vector<PlanResponse>& responses,
                          const ServeStats& stats, bool include_stats) {
  json::Writer writer;
  writer.begin_object();
  writer.key("schema");
  writer.value(kServeSchema);
  writer.key("responses");
  writer.begin_array();
  for (const PlanResponse& response : responses) {
    write_response(writer, response, include_stats);
  }
  writer.end_array();
  writer.key("stats");
  stats.write_json(writer);
  writer.end_object();
  return writer.str();
}

PlanResponse error_response(const std::string& id, const std::string& error) {
  PlanResponse response;
  response.id = id;
  response.status = ResponseStatus::Error;
  response.cache = CacheOutcome::None;
  response.error = error;
  return response;
}

}  // namespace madpipe::serve
