// JSON wire protocol for `madpipe serve`.
//
// Requests name a profile source (inline text, a file, or a zoo network),
// the platform {gpus, memory_gb, bandwidth_gbs}, a planner kind and optional
// tuning knobs; responses echo the request id and report the plan, the cache
// outcome and the latency. The protocol is strict like the rest of the
// repo: unknown fields, wrong types and missing requirements are errors —
// per request where possible, so one bad request in a batch doesn't poison
// its neighbours.
//
//   request  = {"id": "r1", "network": {"name": "resnet50"}, "gpus": 4,
//               "memory_gb": 8, "bandwidth_gbs": 12,
//               "planner": "madpipe", "deadline_ms": 250,
//               "options": {"iterations": 10, "timings": true}}
//   batch    = {"requests": [request, ...]}   (or a bare array, or one object)
//   response = {"id": "r1", "status": "ok", "cache": "miss",
//               "degraded": false, "latency_ms": 312.4,
//               "phases": {"cache_ms": ..., "queue_ms": ..., "plan_ms": ...},
//               "plan": {...}}
//   batch response = {"schema": "madpipe-serve-v1", "responses": [...],
//                     "stats": {...}}
//
// `options.timings` opts a request into the per-phase latency breakdown
// ("phases" in its response); it is serve-level only and never part of the
// plan-cache key.
#pragma once

#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/serve_stats.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"

namespace madpipe::serve {

inline constexpr const char* kServeSchema = "madpipe-serve-v1";

/// One request slot out of a batch: either a usable PlanRequest or a
/// request-level error (with the id echoed when it could be read).
struct RequestParse {
  std::optional<PlanRequest> request;
  std::string id;
  std::string error;  ///< empty on success

  bool ok() const noexcept { return error.empty(); }
};

/// Parse one request object (already-parsed JSON).
RequestParse request_from_json(const json::Value& value);

struct BatchParse {
  std::vector<RequestParse> requests;
  std::string error;  ///< document-level failure (malformed JSON, bad shape)

  bool ok() const noexcept { return error.empty(); }
};

/// Parse a request document: {"requests": [...]}, a bare array of request
/// objects, or a single request object.
BatchParse parse_requests(const std::string& text);

/// Serialize one response as an object value (the caller owns the scope
/// around it). `include_stats` adds the planner counters to the plan block.
void write_response(json::Writer& writer, const PlanResponse& response,
                    bool include_stats = false);

std::string response_to_json(const PlanResponse& response,
                             bool include_stats = false);

/// The full batch document: schema tag, responses in request order, service
/// stats snapshot.
std::string batch_to_json(const std::vector<PlanResponse>& responses,
                          const ServeStats& stats,
                          bool include_stats = false);

/// A response for a request that never reached the service (parse error).
PlanResponse error_response(const std::string& id, const std::string& error);

}  // namespace madpipe::serve
