#include "serve/request.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

#include "util/flat_hash.hpp"

namespace madpipe::serve {

namespace {

/// Largest power of two ≤ v (v > 0 and finite). frexp gives v = m·2^e with
/// m ∈ [0.5, 1), so the answer is 2^(e−1).
double pow2_floor(double v) {
  int exponent = 0;
  std::frexp(v, &exponent);
  return std::ldexp(1.0, exponent - 1);
}

/// v / unit when that division is exact (round-trips bit-for-bit and stays
/// finite); nullopt otherwise. Division by a power of two only shifts the
/// exponent, so this fails only on overflow or subnormal underflow.
std::optional<double> exact_div(double v, double unit) {
  if (!std::isfinite(v)) return std::nullopt;
  const double scaled = v / unit;
  if (!std::isfinite(scaled) || scaled * unit != v) return std::nullopt;
  return scaled;
}

void append_bits(std::string& out, double v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  out += buf;
  out += ',';
}

void append_int(std::string& out, long long v) {
  out += std::to_string(v);
  out += '|';
}

/// The result-determining option fields. Speculation widths, worker counts
/// and the DP engine are deliberately left out: each is bit-identical by
/// construction (enforced by the golden-equivalence tests), so requests
/// differing only in those must share a cache entry.
void append_options(std::string& out, const PlanRequest& request) {
  const MadPipeOptions& o = request.options;
  out += "plan=";
  out += to_string(request.planner);
  out += '|';
  append_int(out, o.phase1.iterations);
  append_int(out, o.phase1.dp.grid.load_points);
  append_int(out, o.phase1.dp.grid.memory_points);
  append_int(out, o.phase1.dp.grid.delay_points);
  append_int(out, static_cast<int>(o.phase1.dp.grid.rounding));
  append_int(out, static_cast<int>(o.phase1.dp.delay_comm_variant));
  append_int(out, o.phase1.dp.allow_special ? 1 : 0);
  append_int(out, static_cast<long long>(o.phase1.dp.max_states));
  append_int(out, o.schedule_best_of);
  append_bits(out, o.phase2.relative_precision);
  append_int(out, o.phase2.max_probes);
  append_int(out, static_cast<long long>(o.phase2.bb.max_nodes));
  append_int(out, o.phase2.bb.max_candidates_per_op);
}

}  // namespace

std::uint64_t fingerprint_digest(const std::string& fingerprint) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a, then a final mix
  for (const unsigned char c : fingerprint) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  h = util::mix64(h);
  // The all-ones key is the flat table's empty sentinel.
  return h == ~0ull ? 0ull : h;
}

const char* to_string(PlannerKind kind) noexcept {
  switch (kind) {
    case PlannerKind::MadPipe: return "madpipe";
    case PlannerKind::MadPipeContiguous: return "madpipe-contig";
  }
  return "unknown";
}

std::optional<PlannerKind> planner_kind_from_string(const std::string& name) {
  if (name == "madpipe") return PlannerKind::MadPipe;
  if (name == "madpipe-contig") return PlannerKind::MadPipeContiguous;
  return std::nullopt;
}

MadPipeOptions planner_options(const PlanRequest& request) {
  MadPipeOptions options = request.options;
  options.disable_special_processor =
      request.planner == PlannerKind::MadPipeContiguous;
  return options;
}

CanonicalRequest canonicalize(const PlanRequest& request) {
  const Chain& chain = request.chain;
  const Platform& platform = request.platform;
  const Seconds total = chain.total_compute();
  const Bytes memory = platform.memory_per_processor;

  double time_unit = 1.0;
  double byte_unit = 1.0;
  bool normalized = false;
  std::vector<Layer> layers;
  layers.reserve(static_cast<std::size_t>(chain.length()));
  Bytes input_bytes = chain.activation(0);
  Platform canonical_platform = platform;

  if (total > 0.0 && std::isfinite(total) && memory > 0.0 &&
      std::isfinite(memory) && platform.bandwidth > 0.0 &&
      std::isfinite(platform.bandwidth)) {
    time_unit = pow2_floor(total);
    byte_unit = pow2_floor(memory);
    normalized = true;
    const auto scale_bytes = [&](double v) { return exact_div(v, byte_unit); };
    const auto scale_time = [&](double v) { return exact_div(v, time_unit); };

    for (int l = 1; l <= chain.length() && normalized; ++l) {
      const Layer& raw = chain.layer(l);
      Layer layer;
      layer.name = 'l' + std::to_string(l);
      const auto f = scale_time(raw.forward_time);
      const auto b = scale_time(raw.backward_time);
      const auto w = scale_bytes(raw.weight_bytes);
      const auto a = scale_bytes(raw.output_bytes);
      const auto s = scale_bytes(raw.scratch_bytes);
      if (!f || !b || !w || !a || !s) {
        normalized = false;
        break;
      }
      layer.forward_time = *f;
      layer.backward_time = *b;
      layer.weight_bytes = *w;
      layer.output_bytes = *a;
      layer.scratch_bytes = *s;
      layers.push_back(std::move(layer));
    }
    const auto in = scale_bytes(chain.activation(0));
    const auto mem = scale_bytes(memory);
    // β is bytes/second: scale bytes down by byte_unit and seconds down by
    // time_unit, so β' = β · time_unit / byte_unit (two exact shifts).
    const auto bw = exact_div(platform.bandwidth * time_unit, byte_unit);
    const bool bandwidth_ok =
        bw.has_value() && std::isfinite(*bw) &&
        *bw * byte_unit / time_unit == platform.bandwidth;
    if (!in || !mem || !bandwidth_ok) normalized = false;
    if (normalized) {
      input_bytes = *in;
      canonical_platform.memory_per_processor = *mem;
      canonical_platform.bandwidth = *bw;
    }
  }

  if (!normalized) {
    // Exact-key fallback: raw values, unit factors 1. Names are still
    // dropped — they never influence planning, so requests differing only
    // in names must share an entry in this mode too.
    time_unit = 1.0;
    byte_unit = 1.0;
    layers.clear();
    for (int l = 1; l <= chain.length(); ++l) {
      Layer layer = chain.layer(l);
      layer.name = 'l' + std::to_string(l);
      layers.push_back(std::move(layer));
    }
    input_bytes = chain.activation(0);
    canonical_platform = platform;
  }

  CanonicalRequest canonical{
      Chain("canonical", input_bytes, std::move(layers)),
      canonical_platform,
      time_unit,
      byte_unit,
      normalized,
      std::string(),
      0};

  std::string& fp = canonical.fingerprint;
  fp.reserve(96 + static_cast<std::size_t>(chain.length()) * 85);
  fp = "madpipe-serve-key-v1|";
  append_int(fp, normalized ? 1 : 0);
  append_int(fp, platform.processors);
  append_int(fp, chain.length());
  append_options(fp, request);
  append_bits(fp, canonical.platform.memory_per_processor);
  append_bits(fp, canonical.platform.bandwidth);
  append_bits(fp, canonical.chain.activation(0));
  fp += "layers:";
  for (int l = 1; l <= canonical.chain.length(); ++l) {
    const Layer& layer = canonical.chain.layer(l);
    append_bits(fp, layer.forward_time);
    append_bits(fp, layer.backward_time);
    append_bits(fp, layer.weight_bytes);
    append_bits(fp, layer.output_bytes);
    append_bits(fp, layer.scratch_bytes);
    fp += ';';
  }
  canonical.key = fingerprint_digest(fp);
  return canonical;
}

Plan denormalize_plan(Plan plan, double time_unit) {
  const double unit = time_unit;
  if (unit == 1.0) return plan;
  plan.phase1_period *= unit;
  plan.pattern.period *= unit;
  for (PatternOp& op : plan.pattern.ops) {
    op.start *= unit;
    op.duration *= unit;
  }
  return plan;
}

std::string allocation_fingerprint(const Allocation& allocation) {
  std::string out;
  const Partitioning& parts = allocation.partitioning();
  for (int s = 0; s < parts.num_stages(); ++s) {
    if (!out.empty()) out += ';';
    out += std::to_string(parts.stage(s).first) + '-' +
           std::to_string(parts.stage(s).last) + '@' +
           std::to_string(allocation.processor_of(s));
  }
  return out;
}

bool plans_bit_identical(const Plan& a, const Plan& b) noexcept {
  if (a.planner != b.planner || a.phase1_period != b.phase1_period ||
      a.pattern.period != b.pattern.period ||
      !(a.allocation == b.allocation) ||
      a.pattern.ops.size() != b.pattern.ops.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.pattern.ops.size(); ++i) {
    const PatternOp& x = a.pattern.ops[i];
    const PatternOp& y = b.pattern.ops[i];
    if (x.kind != y.kind || x.stage != y.stage ||
        !(x.resource == y.resource) || x.start != y.start ||
        x.duration != y.duration || x.shift != y.shift) {
      return false;
    }
  }
  return true;
}

}  // namespace madpipe::serve
