// Plan requests and their canonical cache keys.
//
// A PlanRequest bundles everything `plan_madpipe` needs — profile, platform
// {P, M, β}, planner kind and options — plus serve-level fields (id,
// deadline). Canonicalization turns a request into a cache key by
// normalizing the profile into canonical units:
//
//  * the time unit is 2^floor(log2(U(1,L))) and every duration is divided
//    by it, so the total compute lands in [1, 2);
//  * the byte unit is 2^floor(log2(M)) and every byte quantity (weights,
//    activations, input, scratch, M itself) is divided by it; the bandwidth
//    becomes β · time_unit / byte_unit so transfer *times* keep scaling
//    like durations.
//
// Powers of two are the whole trick: dividing a double by a power of two
// only shifts its exponent, so the normalization is exact, and because every
// tolerance in the planner is *relative* (see search.cpp, bb_scheduler.cpp)
// and the DP grids span [0, U(1,L)] / [0, M], running the planner on the
// normalized request and multiplying the resulting times back is
// bit-identical to planning the raw request directly. Two requests that
// differ by an exact power-of-two rescale of all durations and/or all byte
// quantities therefore share one cache entry — and a cached plan can be
// served to either, rescaled, without rerunning the DP. Layer and network
// names are dropped from the key (they never influence planning).
//
// Anything not provably exact — a zero/non-finite total, a value whose
// scaled form underflows, a rescale that fails the round-trip check — falls
// back to an exact key over the raw bits (`normalized == false`), which is
// always correct, just less shareable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/chain.hpp"
#include "core/plan.hpp"
#include "core/platform.hpp"
#include "madpipe/planner.hpp"

namespace madpipe::serve {

enum class PlannerKind {
  MadPipe,            ///< full MadPipe (special processor enabled)
  MadPipeContiguous,  ///< the memory-aware contiguous ablation
};

const char* to_string(PlannerKind kind) noexcept;
std::optional<PlannerKind> planner_kind_from_string(const std::string& name);

/// One planning request as submitted to the service.
struct PlanRequest {
  std::string id;  ///< caller-chosen correlation id (protocol-level only)
  Chain chain;
  Platform platform;
  PlannerKind planner = PlannerKind::MadPipe;
  MadPipeOptions options;
  /// Wall-clock budget for this request; 0 = none. Overrunning requests are
  /// not killed — their DP state budget is shrunk so they degrade to a
  /// best-effort plan instead of stalling the queue (see service.hpp).
  Seconds deadline_seconds = 0.0;
  /// Ask the service to attach a per-request phase-timing breakdown
  /// (cache / queue / plan seconds) to the response. Protocol option
  /// `options.timings`. Deliberately excluded from the cache key: timing
  /// reporting never changes the plan.
  bool report_timings = false;
  /// Attach an ExplainSummary (bottleneck + memory watermark, see
  /// report/plan_report.hpp) to the response. Protocol option
  /// `options.explain`. Like `timings`, excluded from the cache key:
  /// explaining a plan never changes it.
  bool report_explain = false;
  /// Request trace id, assigned at ingress (the TCP server stamps it per
  /// frame; PlanService assigns one if still 0). Echoed in the response
  /// and stamped onto every span the request produces. Like `id`,
  /// cache-key-inert: tracing never changes the plan.
  std::uint64_t trace_id = 0;
  /// Ingress timestamp (obs::now_ns), 0 = unknown. Start of the sampled
  /// request's admission phase; never part of the cache key.
  std::int64_t ingress_ns = 0;
};

/// A canonicalized request: the normalized profile/platform the planner
/// actually runs on, the units to undo the normalization, and the cache key.
struct CanonicalRequest {
  Chain chain;        ///< normalized profile (canonical units, names dropped)
  Platform platform;  ///< normalized platform
  double time_unit = 1.0;  ///< multiply canonical times by this to denormalize
  double byte_unit = 1.0;
  bool normalized = false;  ///< false → exact-key fallback (units are 1.0)
  std::string fingerprint;  ///< full canonical serialization (collision-proof)
  std::uint64_t key = 0;    ///< 64-bit digest of the fingerprint
};

/// Build the canonical form of `request`. Never fails: inputs that defeat
/// exact normalization get the exact-key fallback.
CanonicalRequest canonicalize(const PlanRequest& request);

/// The 64-bit cache key of a canonical fingerprint (FNV-1a + mix; the
/// all-ones sentinel remapped). Exposed so the cache-snapshot loader can
/// verify that a stored (key, fingerprint) pair is internally consistent.
std::uint64_t fingerprint_digest(const std::string& fingerprint);

/// Rescale a plan computed on the canonical profile back into request units
/// (exact: the units are powers of two). Times scale by time_unit; the
/// allocation, shifts and counters are unit-free.
Plan denormalize_plan(Plan plan, double time_unit);

/// MadPipeOptions as the planner should see them for `request` (applies the
/// planner-kind toggle onto the embedded options).
MadPipeOptions planner_options(const PlanRequest& request);

/// Compact allocation fingerprint "first-last@proc;..." in stage order —
/// shared by the serve protocol, bench_serve and the golden tests.
std::string allocation_fingerprint(const Allocation& allocation);

/// True when the two plans are the same result bit for bit: planner,
/// allocation, period, phase-1 period and every pattern op (provenance
/// fields — wall times, counters — are excluded; they differ run to run).
bool plans_bit_identical(const Plan& a, const Plan& b) noexcept;

}  // namespace madpipe::serve
