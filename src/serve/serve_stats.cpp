#include "serve/serve_stats.hpp"

#include "util/json.hpp"
#include "util/stats.hpp"

namespace madpipe::serve {

void ServeStats::write_json(json::Writer& w) const {
  w.begin_object();
  w.key("requests"); w.value(requests);
  w.key("hits"); w.value(hits);
  w.key("scaled_hits"); w.value(scaled_hits);
  w.key("misses"); w.value(misses);
  w.key("coalesced"); w.value(coalesced);
  w.key("rejected"); w.value(rejected);
  w.key("degraded"); w.value(degraded);
  w.key("errors"); w.value(errors);
  w.key("shutdowns"); w.value(shutdowns);
  w.key("planner_runs"); w.value(planner_runs);
  w.key("evictions"); w.value(evictions);
  w.key("expirations"); w.value(expirations);
  w.key("key_collisions"); w.value(key_collisions);
  w.key("cache_entries"); w.value(cache_entries);
  w.key("cache_bytes"); w.value(cache_bytes);
  w.key("hit_p50_seconds"); w.value(hit_p50_seconds);
  w.key("hit_p99_seconds"); w.value(hit_p99_seconds);
  w.key("miss_p50_seconds"); w.value(miss_p50_seconds);
  w.key("miss_p99_seconds"); w.value(miss_p99_seconds);
  w.end_object();
}

ServeMetrics& serve_metrics() {
  static ServeMetrics* metrics = [] {
    obs::Registry& r = obs::Registry::global();
    return new ServeMetrics{
        r.counter("madpipe_serve_requests_total",
                  "Submissions accepted into the service"),
        r.counter("madpipe_serve_hits_total", "Served from the plan cache"),
        r.counter("madpipe_serve_scaled_hits_total",
                  "Hits served by exact unit rescaling (subset of hits)"),
        r.counter("madpipe_serve_misses_total",
                  "Requests that ran the planner"),
        r.counter("madpipe_serve_coalesced_total",
                  "Attached to an identical in-flight request"),
        r.counter("madpipe_serve_rejected_total",
                  "Bounced by queue backpressure"),
        r.counter("madpipe_serve_degraded_total",
                  "Deadline-reduced state budget truncated a DP"),
        r.counter("madpipe_serve_errors_total",
                  "Planner threw / request invalid"),
        r.counter("madpipe_serve_shutdowns_total",
                  "Queued requests cancelled at service destruction"),
        r.counter("madpipe_serve_planner_runs_total",
                  "plan_madpipe invocations (the expensive op)"),
        r.gauge("madpipe_serve_cache_evictions",
                "Cumulative LRU byte-budget evictions (snapshot mirror)"),
        r.gauge("madpipe_serve_cache_expirations",
                "Cumulative TTL evictions (snapshot mirror)"),
        r.gauge("madpipe_serve_cache_key_collisions",
                "64-bit key matched, fingerprint did not (snapshot mirror)"),
        r.gauge("madpipe_serve_cache_entries", "Plan-cache entries"),
        r.gauge("madpipe_serve_cache_bytes", "Plan-cache resident bytes"),
        r.gauge("madpipe_schedule_utilization",
                "Mean GPU utilization of the last explained plan"),
        r.gauge("madpipe_memory_headroom_bytes",
                "Min per-GPU memory headroom of the last explained plan"),
        r.gauge("madpipe_serve_queue_depth",
                "Jobs accepted but not yet picked up by a planner worker"),
        r.gauge("madpipe_serve_hit_rate",
                "Cache hits / accepted requests since process start"),
        r.histogram("madpipe_serve_hit_latency_seconds",
                    obs::latency_bounds_seconds(),
                    "submit-to-complete latency of cache hits"),
        r.histogram("madpipe_serve_miss_latency_seconds",
                    obs::latency_bounds_seconds(),
                    "submit-to-complete latency of planned requests"),
    };
  }();
  return *metrics;
}

LatencyRecorder::LatencyRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void LatencyRecorder::record(double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (++pending_ < stride_) return;
  pending_ = 0;
  samples_.push_back(seconds);
  if (samples_.size() >= capacity_) {
    // Keep every other sample and double the stride: the retained set stays
    // an unbiased systematic sample of the stream.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) {
      samples_[kept++] = samples_[i];
    }
    samples_.resize(kept);
    stride_ *= 2;
  }
}

double LatencyRecorder::percentile(double q) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) return 0.0;
  return stats::percentile(samples_, q);
}

long long LatencyRecorder::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

}  // namespace madpipe::serve
