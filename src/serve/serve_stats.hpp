// Counters for the plan-serving subsystem, in the style of SolverStats and
// PlannerStats: one plain snapshot struct (ServeStats) that tests, the
// `madpipe serve` CLI and bench_serve can print or dump as JSON, plus a
// small latency recorder the service uses to produce p50/p99 under
// concurrent request traffic.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace madpipe::json {
class Writer;
}

namespace madpipe::serve {

/// Snapshot of the service counters. All request counts are cumulative;
/// cache_bytes/cache_entries are point-in-time.
struct ServeStats {
  long long requests = 0;    ///< submissions accepted into the service
  long long hits = 0;        ///< served from the plan cache
  long long scaled_hits = 0; ///< hits served by exact unit rescaling (subset)
  long long misses = 0;      ///< requests that ran the planner
  long long coalesced = 0;   ///< attached to an identical in-flight request
  long long rejected = 0;    ///< bounced by queue backpressure
  long long degraded = 0;    ///< deadline-reduced state budget truncated a DP
  long long errors = 0;      ///< planner threw / request invalid
  long long shutdowns = 0;   ///< queued requests cancelled at destruction
  long long planner_runs = 0;  ///< plan_madpipe invocations (the expensive op)

  // Cache internals (mirrors PlanCacheCounters at snapshot time).
  long long evictions = 0;      ///< LRU byte-budget evictions
  long long expirations = 0;    ///< TTL evictions
  long long key_collisions = 0; ///< 64-bit key matched, fingerprint did not
  long long cache_entries = 0;
  long long cache_bytes = 0;

  // Latency percentiles (seconds), split by how the request was served.
  double hit_p50_seconds = 0.0;
  double hit_p99_seconds = 0.0;
  double miss_p50_seconds = 0.0;
  double miss_p99_seconds = 0.0;

  /// Append this block as one JSON object value (the caller writes the key).
  void write_json(json::Writer& writer) const;
};

/// Cached references to the serve entries of the process-wide
/// obs::Registry (madpipe_serve_*). PlanService bumps these live as
/// requests complete, so the registry's cumulative view matches the
/// ServeStats counters of every service in the process summed together.
/// The cache mirrors (evictions, entries, bytes, ...) are gauges refreshed
/// by PlanService::stats(). All members are process-lifetime references;
/// updates are relaxed atomics.
struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& hits;
  obs::Counter& scaled_hits;
  obs::Counter& misses;
  obs::Counter& coalesced;
  obs::Counter& rejected;
  obs::Counter& degraded;
  obs::Counter& errors;
  obs::Counter& shutdowns;
  obs::Counter& planner_runs;
  obs::Gauge& evictions;
  obs::Gauge& expirations;
  obs::Gauge& key_collisions;
  obs::Gauge& cache_entries;
  obs::Gauge& cache_bytes;
  /// Last served plan's mean GPU utilization / min memory headroom (request
  /// units). Refreshed whenever a response carries an ExplainSummary
  /// (options.explain), so dashboards can watch plan quality live.
  obs::Gauge& schedule_utilization;
  obs::Gauge& memory_headroom_bytes;
  /// Live queue depth: set by PlanService on every enqueue/dequeue (and
  /// zeroed at shutdown), so /metrics sees the backlog as it is, not as
  /// last sampled by a front-end.
  obs::Gauge& queue_depth;
  /// Derived hits/requests ratio, refreshed as requests complete.
  obs::Gauge& hit_rate;
  obs::Histogram& hit_latency;
  obs::Histogram& miss_latency;
};

/// The singleton ServeMetrics bound to obs::Registry::global().
ServeMetrics& serve_metrics();

/// Thread-safe latency sample sink with bounded memory: past `capacity`
/// samples, every other retained sample is dropped and the sampling stride
/// doubles, so percentiles stay representative over arbitrarily long runs.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t capacity = 1 << 16);

  void record(double seconds);
  /// Linear-interpolated percentile of the retained samples, q in [0,1];
  /// 0 when nothing was recorded.
  double percentile(double q) const;
  long long count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  std::size_t capacity_;
  std::size_t stride_ = 1;   ///< record every stride-th sample
  std::size_t pending_ = 0;  ///< samples seen since the last retained one
  long long total_ = 0;
};

}  // namespace madpipe::serve
