#include "serve/service.hpp"

#include <algorithm>
#include <chrono>

#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "util/threading.hpp"

namespace madpipe::serve {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Refresh the derived madpipe_serve_hit_rate gauge. Caller holds no lock:
/// the counters are monotonic registry atomics.
void refresh_hit_rate() {
  ServeMetrics& metrics = serve_metrics();
  const long long requests = metrics.requests.value();
  if (requests <= 0) return;
  metrics.hit_rate.set(static_cast<double>(metrics.hits.value()) /
                       static_cast<double>(requests));
}
}  // namespace

const char* to_string(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::Ok: return "ok";
    case ResponseStatus::Infeasible: return "infeasible";
    case ResponseStatus::Rejected: return "rejected";
    case ResponseStatus::Error: return "error";
    case ResponseStatus::Shutdown: return "shutdown";
  }
  return "unknown";
}

const char* to_string(CacheOutcome outcome) noexcept {
  switch (outcome) {
    case CacheOutcome::Miss: return "miss";
    case CacheOutcome::Hit: return "hit";
    case CacheOutcome::Coalesced: return "coalesced";
    case CacheOutcome::None: return "none";
  }
  return "unknown";
}

PlanService::PlanService(const ServiceOptions& options)
    : options_(options), cache_(options.cache) {
  // Materialize the serve metrics (including the live queue-depth gauge)
  // up front so a /metrics scrape sees them before the first request.
  serve_metrics().queue_depth.set(0.0);
  std::size_t workers = options.workers;
  if (workers == 0) workers = par::default_workers();
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PlanService::~PlanService() {
  // Cancel everything no worker has started: destruction completes the
  // backlog with Shutdown instead of planning it. In-flight jobs (already
  // dequeued) finish normally and fulfill their waiters as usual.
  std::vector<Job> cancelled;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    while (!queue_.empty()) {
      cancelled.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    for (const Job& job : cancelled) {
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].second.get() == job.pending.get()) {
          pending_[i] = std::move(pending_.back());
          pending_.pop_back();
          break;
        }
      }
    }
  }
  work_available_.notify_all();
  for (Job& job : cancelled) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      counters_.shutdowns +=
          static_cast<long long>(job.pending->waiters.size());
    }
    for (std::unique_ptr<Waiter>& waiter : job.pending->waiters) {
      serve_metrics().shutdowns.increment();
      PlanResponse response;
      response.id = waiter->id;
      response.trace_id = waiter->trace_id;
      response.status = ResponseStatus::Shutdown;
      response.cache = waiter->outcome;
      response.error = "service shut down before planning started";
      response.latency_seconds = seconds_since(waiter->submitted);
      PhaseTimings timings;
      timings.cache_seconds = waiter->cache_seconds;
      if (waiter->report_timings) response.phases = timings;
      sample_completion(*waiter, response, timings);
      deliver(*waiter, std::move(response));
    }
  }
  serve_metrics().queue_depth.set(0.0);
  for (std::thread& worker : workers_) worker.join();
}

std::future<PlanResponse> PlanService::submit(PlanRequest request) {
  auto waiter = std::make_unique<Waiter>();
  std::future<PlanResponse> future = waiter->promise.get_future();
  submit_impl(std::move(request), std::move(waiter));
  return future;
}

void PlanService::submit_async(PlanRequest request,
                               ResponseCallback callback) {
  auto waiter = std::make_unique<Waiter>();
  waiter->callback = std::move(callback);
  submit_impl(std::move(request), std::move(waiter));
}

void PlanService::deliver(Waiter& waiter, PlanResponse&& response) {
  if (waiter.callback) {
    waiter.callback(std::move(response));
  } else {
    waiter.promise.set_value(std::move(response));
  }
}

std::size_t PlanService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void PlanService::submit_impl(PlanRequest request,
                              std::unique_ptr<Waiter> waiter) {
  const Clock::time_point submitted = Clock::now();
  // Ingress: requests that arrived without a trace id (batch lines, direct
  // API callers) get one here; the TCP front-end stamps its own at frame
  // admission. Everything this request does — on this thread and on the
  // planner worker — runs under a TraceContextScope carrying the id.
  if (request.trace_id == 0) request.trace_id = obs::next_trace_id();
  if (request.ingress_ns == 0) request.ingress_ns = obs::now_ns();
  const bool sampling = obs::tail_enabled();
  if (sampling) obs::tail_sampler().begin(request.trace_id, request.ingress_ns);
  obs::TraceContextScope trace_scope(request.trace_id);
  // The span lives in an optional so the hit/reject paths can close it
  // *before* sampling + delivery: a sampled tree must contain its own
  // serve_submit span.
  std::optional<obs::Span> span;
  span.emplace("serve_submit", obs::kCatServe);
  std::optional<CachedPlan> cached;
  CanonicalRequest canonical = [&] {
    obs::Span lookup("cache_lookup", obs::kCatServe);
    CanonicalRequest result = canonicalize(request);
    cached = cache_.find(result);
    lookup.arg("hit", cached.has_value() ? 1 : 0);
    return result;
  }();
  const double cache_seconds = seconds_since(submitted);
  const double admission_seconds =
      static_cast<double>(obs::now_ns() - request.ingress_ns) * 1e-9;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.requests;
  }
  serve_metrics().requests.increment();
  waiter->id = request.id;
  waiter->trace_id = request.trace_id;
  waiter->cache_seconds = cache_seconds;
  waiter->admission_seconds = admission_seconds;
  waiter->submitted = submitted;

  // 1. Cache: a hit completes synchronously — no queue, no planner.
  if (cached.has_value()) {
    span->arg("outcome", static_cast<long long>(CacheOutcome::Hit));
    PlanResponse response;
    response.id = request.id;
    response.trace_id = request.trace_id;
    response.cache = CacheOutcome::Hit;
    if (cached->feasible()) {
      response.status = ResponseStatus::Ok;
      response.plan = denormalize_plan(*cached->plan, canonical.time_unit);
      if (request.report_explain) {
        // The request's own chain/platform are at hand here, so summarize the
        // denormalized plan directly (bit-identical to summarizing the
        // canonical plan and rescaling: the units are powers of two).
        response.explain = report::build_explain_summary(
            *response.plan, request.chain, request.platform);
        serve_metrics().schedule_utilization.set(
            response.explain->mean_gpu_utilization);
        serve_metrics().memory_headroom_bytes.set(
            response.explain->memory_headroom_bytes);
      }
    } else {
      response.status = ResponseStatus::Infeasible;
    }
    response.latency_seconds = seconds_since(submitted);
    if (request.report_timings) {
      response.phases = PhaseTimings{cache_seconds, 0.0, 0.0};
    }
    hit_latency_.record(response.latency_seconds);
    serve_metrics().hit_latency.observe(response.latency_seconds);
    serve_metrics().hits.increment();
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.hits;
      if (canonical.time_unit != cached->creator_time_unit ||
          canonical.byte_unit != cached->creator_byte_unit) {
        // The entry was created by a request in different (power-of-two
        // related) units: the cache is being shared across a rescale.
        ++counters_.scaled_hits;
        serve_metrics().scaled_hits.increment();
      }
    }
    refresh_hit_rate();
    waiter->outcome = CacheOutcome::Hit;
    span.reset();  // close serve_submit so the sampled tree includes it
    sample_completion(*waiter, response,
                      PhaseTimings{cache_seconds, 0.0, 0.0});
    deliver(*waiter, std::move(response));
    return;
  }

  waiter->time_unit = canonical.time_unit;
  waiter->byte_unit = canonical.byte_unit;
  waiter->report_timings = request.report_timings;
  waiter->report_explain = request.report_explain;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // 2. Coalesce onto an identical in-flight computation.
    for (auto& [fingerprint, pending] : pending_) {
      if (fingerprint == canonical.fingerprint) {
        waiter->outcome = CacheOutcome::Coalesced;
        pending->waiters.push_back(std::move(waiter));
        lock.unlock();
        span->arg("outcome", static_cast<long long>(CacheOutcome::Coalesced));
        serve_metrics().coalesced.increment();
        const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++counters_.coalesced;
        return;
      }
    }
    // 3. Enqueue, or reject under backpressure.
    if (queue_.size() >= options_.queue_capacity) {
      lock.unlock();
      span->arg("outcome", static_cast<long long>(CacheOutcome::None));
      PlanResponse response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      response.status = ResponseStatus::Rejected;
      response.error = "queue full (" +
                       std::to_string(options_.queue_capacity) +
                       " pending requests)";
      response.latency_seconds = seconds_since(submitted);
      if (request.report_timings) {
        response.phases = PhaseTimings{cache_seconds, 0.0, 0.0};
      }
      serve_metrics().rejected.increment();
      {
        const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++counters_.rejected;
      }
      refresh_hit_rate();
      waiter->outcome = CacheOutcome::None;
      span.reset();
      sample_completion(*waiter, response,
                        PhaseTimings{cache_seconds, 0.0, 0.0});
      deliver(*waiter, std::move(response));
      return;
    }
    auto pending = std::make_shared<Pending>();
    pending->fingerprint = canonical.fingerprint;
    waiter->outcome = CacheOutcome::Miss;
    pending->waiters.push_back(std::move(waiter));
    pending_.emplace_back(canonical.fingerprint, pending);

    const Seconds deadline = request.deadline_seconds > 0.0
                                 ? request.deadline_seconds
                                 : options_.default_deadline_seconds;
    span->arg("outcome", static_cast<long long>(CacheOutcome::Miss));
    queue_.push_back(Job{std::move(pending), std::move(canonical),
                         planner_options(request), deadline, submitted,
                         obs::now_ns(), request.trace_id});
    serve_metrics().queue_depth.set(static_cast<double>(queue_.size()));
  }
  work_available_.notify_one();
}

PlanResponse PlanService::plan(PlanRequest request) {
  return submit(std::move(request)).get();
}

void PlanService::worker_loop() {
  while (true) {
    std::optional<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain before stopping: every accepted future must complete.
      if (queue_.empty()) return;
      job.emplace(std::move(queue_.front()));
      queue_.pop_front();
      serve_metrics().queue_depth.set(static_cast<double>(queue_.size()));
    }
    run_job(*job);
  }
}

void PlanService::run_job(Job& job) {
  // The job's trace context crosses the thread boundary with the job: the
  // queue_wait event, serve_plan and every planner span below it are
  // stamped with the originating request's id.
  obs::TraceContextScope trace_scope(job.trace_id);
  // The queue phase just ended: the job waited from enqueue until this
  // worker picked it up.
  if ((obs::trace_enabled() || obs::tail_enabled()) && job.enqueue_ns != 0) {
    obs::emit_complete("queue_wait", obs::kCatServe, job.enqueue_ns,
                       obs::now_ns() - job.enqueue_ns);
  }
  PhaseTimings timings;
  timings.queue_seconds =
      static_cast<double>(obs::now_ns() - job.enqueue_ns) * 1e-9;
  const Clock::time_point plan_start = Clock::now();
  // Optional for the same reason as serve_submit: the span must close
  // before fulfill() hands the request trees to the tail sampler.
  std::optional<obs::Span> span;
  span.emplace("serve_plan", obs::kCatServe);

  // Deadline → state-budget valve. The budget shrinks with the remaining
  // wall clock; once it clamps below the configured max_states the run is a
  // candidate for degradation (it becomes "degraded" only if the valve
  // actually fires — an untruncated run is the full-fidelity result).
  bool budget_reduced = false;
  if (job.deadline_seconds > 0.0) {
    const double remaining =
        job.deadline_seconds - seconds_since(job.submitted);
    const double probes = static_cast<double>(
        std::max(1, options_.expected_probes));
    const double allowance =
        options_.states_per_second * std::max(remaining, 0.0) / probes;
    const std::size_t budget = std::max(
        options_.min_state_budget,
        static_cast<std::size_t>(std::min<double>(
            allowance, static_cast<double>(job.options.phase1.dp.max_states))));
    if (budget < job.options.phase1.dp.max_states) {
      job.options.phase1.dp.max_states = budget;
      budget_reduced = true;
    }
  }

  CachedPlan cached;
  ResponseStatus status = ResponseStatus::Error;
  bool degraded = false;
  std::string error;
  try {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.planner_runs;
    }
    serve_metrics().planner_runs.increment();
    std::optional<Plan> plan =
        plan_madpipe(job.canonical.chain, job.canonical.platform, job.options);
    cached.creator_time_unit = job.canonical.time_unit;
    cached.creator_byte_unit = job.canonical.byte_unit;
    if (plan.has_value()) {
      degraded = budget_reduced && plan->stats.state_budget_hits > 0;
      status = ResponseStatus::Ok;
      cached.plan = std::move(plan);
    } else {
      status = ResponseStatus::Infeasible;
      // A truncated search can report infeasible spuriously; that is also a
      // degraded answer.
      degraded = budget_reduced;
    }
    // Degraded results are never cached: the next request (with a healthier
    // deadline) must get the chance to compute the real plan.
    if (!degraded) cache_.insert(job.canonical, cached);
  } catch (const std::exception& exception) {
    status = ResponseStatus::Error;
    error = exception.what();
  }
  timings.plan_seconds = seconds_since(plan_start);
  span->arg("degraded", degraded ? 1 : 0);
  span->arg("status", static_cast<long long>(status));
  span.reset();

  // Retire the in-flight registration *before* fulfilling, so a caller woken
  // by its future can immediately resubmit and reach the cache/queue.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].second.get() == job.pending.get()) {
        pending_[i] = std::move(pending_.back());
        pending_.pop_back();
        break;
      }
    }
  }

  // With the registration retired no new waiter can attach, so the waiter
  // list is final: compute the canonical-unit summary once if anyone asked
  // for it (fulfill rescales it per waiter).
  std::optional<report::ExplainSummary> canonical_summary;
  if (status == ResponseStatus::Ok) {
    for (const std::unique_ptr<Waiter>& waiter : job.pending->waiters) {
      if (!waiter->report_explain) continue;
      canonical_summary = report::build_explain_summary(
          *cached.plan, job.canonical.chain, job.canonical.platform);
      break;
    }
  }

  // Count the miss before fulfilling: a caller woken by its future must see
  // a stats snapshot that already includes its own request.
  serve_metrics().misses.increment();
  if (degraded) serve_metrics().degraded.increment();
  if (status == ResponseStatus::Error) serve_metrics().errors.increment();
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.misses;
    if (degraded) ++counters_.degraded;
    if (status == ResponseStatus::Error) ++counters_.errors;
  }
  refresh_hit_rate();

  fulfill(*job.pending, cached, status, degraded, error, timings,
          canonical_summary);
}

void PlanService::fulfill(
    Pending& pending, const CachedPlan& cached, ResponseStatus status,
    bool degraded, const std::string& error, const PhaseTimings& timings,
    const std::optional<report::ExplainSummary>& canonical_summary) {
  for (std::unique_ptr<Waiter>& waiter : pending.waiters) {
    PlanResponse response;
    response.id = waiter->id;
    response.trace_id = waiter->trace_id;
    response.status = status;
    response.cache = waiter->outcome;
    response.degraded = degraded;
    response.error = error;
    if (status == ResponseStatus::Ok) {
      response.plan = denormalize_plan(*cached.plan, waiter->time_unit);
      if (waiter->report_explain && canonical_summary.has_value()) {
        response.explain = report::scale_summary(
            *canonical_summary, waiter->time_unit, waiter->byte_unit);
        serve_metrics().schedule_utilization.set(
            response.explain->mean_gpu_utilization);
        serve_metrics().memory_headroom_bytes.set(
            response.explain->memory_headroom_bytes);
      }
    }
    response.latency_seconds = seconds_since(waiter->submitted);
    if (waiter->report_timings) {
      response.phases = timings;
      response.phases->cache_seconds = waiter->cache_seconds;
    }
    miss_latency_.record(response.latency_seconds);
    serve_metrics().miss_latency.observe(response.latency_seconds);
    PhaseTimings waiter_timings = timings;
    waiter_timings.cache_seconds = waiter->cache_seconds;
    sample_completion(*waiter, response, waiter_timings);
    deliver(*waiter, std::move(response));
  }
}

void PlanService::sample_completion(const Waiter& waiter,
                                    const PlanResponse& response,
                                    const PhaseTimings& timings) {
  if (!obs::tail_enabled() || waiter.trace_id == 0) return;
  obs::SampledRequest done;
  done.trace_id = waiter.trace_id;
  done.request_id = response.id;
  done.status = to_string(response.status);
  done.cache = to_string(response.cache);
  done.latency_seconds = response.latency_seconds;
  // Admission = ingress → cache probe done (frame read, parse, dispatch
  // queue, canonicalization, cache lookup). Queue/plan come from the job
  // and are shared by coalesced waiters.
  done.admission_seconds = waiter.admission_seconds;
  done.queue_seconds = timings.queue_seconds;
  done.plan_seconds = timings.plan_seconds;
  done.error = response.status == ResponseStatus::Rejected ||
               response.status == ResponseStatus::Error ||
               response.status == ResponseStatus::Shutdown;
  obs::tail_sampler().end(std::move(done));
}

ServeStats PlanService::stats() const {
  ServeStats snapshot;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = counters_;
  }
  const PlanCacheCounters cache = cache_.counters();
  snapshot.evictions = cache.evictions;
  snapshot.expirations = cache.expirations;
  snapshot.key_collisions = cache.key_collisions;
  snapshot.cache_entries = cache.entries;
  snapshot.cache_bytes = cache.bytes;
  // Refresh the registry's cache gauges from this snapshot (gauges, not
  // counters: cache state is point-in-time and owned by cache_, not summed
  // across services).
  ServeMetrics& metrics = serve_metrics();
  metrics.evictions.set(static_cast<double>(cache.evictions));
  metrics.expirations.set(static_cast<double>(cache.expirations));
  metrics.key_collisions.set(static_cast<double>(cache.key_collisions));
  metrics.cache_entries.set(static_cast<double>(cache.entries));
  metrics.cache_bytes.set(static_cast<double>(cache.bytes));
  snapshot.hit_p50_seconds = hit_latency_.percentile(0.50);
  snapshot.hit_p99_seconds = hit_latency_.percentile(0.99);
  snapshot.miss_p50_seconds = miss_latency_.percentile(0.50);
  snapshot.miss_p99_seconds = miss_latency_.percentile(0.99);
  return snapshot;
}

}  // namespace madpipe::serve
