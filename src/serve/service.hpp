// PlanService: the traffic-bearing front end to plan_madpipe.
//
// submit() canonicalizes the request, then takes the cheapest path that can
// serve it:
//
//   1. cache hit   — the stored canonical plan is rescaled to the request's
//                    units and the future completes immediately (no queue,
//                    no planner, microseconds);
//   2. coalesce    — an identical canonical request is already being
//                    planned: attach to it, one planning run feeds K waiters
//                    (each denormalized with its own units);
//   3. enqueue     — hand the request to the bounded worker pool; when the
//                    queue is full the request is REJECTED immediately
//                    (backpressure — a full queue must shed load, not grow).
//
// Deadlines map onto the DP's max_states safety valve: when a request's
// deadline is near (or past) at dequeue time, its per-probe state budget is
// shrunk to roughly states_per_second × remaining / expected_probes, so an
// over-deadline request degrades to a truncated best-effort plan (flagged
// `degraded`, never cached) instead of stalling the queue at full cost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "report/plan_report.hpp"
#include "serve/plan_cache.hpp"
#include "serve/request.hpp"
#include "serve/serve_stats.hpp"

namespace madpipe::serve {

enum class ResponseStatus {
  Ok,          ///< plan present
  Infeasible,  ///< planner ran; no allocation fits memory
  Rejected,    ///< queue full — retry later / elsewhere
  Error,       ///< invalid request or planner failure
  Shutdown,    ///< service destroyed before the queued request started
};

enum class CacheOutcome { Miss, Hit, Coalesced, None };

const char* to_string(ResponseStatus status) noexcept;
const char* to_string(CacheOutcome outcome) noexcept;

/// Wall-clock breakdown of where one request spent its latency. Attached to
/// a PlanResponse only when the request asked for it
/// (PlanRequest::report_timings / protocol option `timings`). Phases the
/// request never traversed (e.g. plan on a cache hit) stay 0.
struct PhaseTimings {
  double cache_seconds = 0.0;  ///< canonicalization + plan-cache probe
  double queue_seconds = 0.0;  ///< enqueue → a worker dequeued the job
  double plan_seconds = 0.0;   ///< planner wall time (shared by coalesced
                               ///< waiters — one run fed them all)
};

struct PlanResponse {
  std::string id;
  ResponseStatus status = ResponseStatus::Error;
  CacheOutcome cache = CacheOutcome::None;
  /// The deadline forced a reduced DP state budget AND the valve actually
  /// truncated the search: the result is best-effort, not the full plan.
  bool degraded = false;
  std::optional<Plan> plan;  ///< in request units; present iff status == Ok
  std::string error;
  double latency_seconds = 0.0;  ///< submit → completion
  /// Present iff the request set report_timings.
  std::optional<PhaseTimings> phases;
  /// Present iff the request set report_explain and a plan was produced.
  /// Always in request units (canonical summaries are rescaled per waiter).
  std::optional<report::ExplainSummary> explain;
  /// Echo of the request's trace id (assigned at ingress if the caller
  /// left it 0). Cache-key-inert: two requests differing only here share
  /// a cache entry and receive bit-identical plans.
  std::uint64_t trace_id = 0;
};

struct ServiceOptions {
  std::size_t workers = 2;         ///< planning threads; 0 = hardware threads
  std::size_t queue_capacity = 64; ///< pending (non-coalesced) requests
  PlanCacheOptions cache;
  /// Applied when a request carries no deadline of its own; 0 = none.
  Seconds default_deadline_seconds = 0.0;
  /// Deadline → state-budget conversion rate. The default is conservative
  /// for paper-scale chains (see BENCH_planner.json: ~1e6 DP states/s on
  /// the flat engine, unoptimized build).
  double states_per_second = 1e6;
  /// Floor for the reduced budget: even a hopelessly late request explores
  /// this many states per probe so "degraded" still means "tried".
  std::size_t min_state_budget = 20'000;
  /// Probes a deadline is spread over (Algorithm 1 runs `iterations` DP
  /// probes; speculative extras run concurrently and share the wall clock).
  int expected_probes = 10;
};

/// Delivery sink for submit_async: invoked exactly once per request, from
/// whichever thread completes it (the submitter on hit/reject, a planner
/// worker on miss, the destructor thread on shutdown-cancel). Must not
/// block and must not call back into the service.
using ResponseCallback = std::function<void(PlanResponse&&)>;

class PlanService {
 public:
  explicit PlanService(const ServiceOptions& options = {});
  /// Completes every accepted request, then joins: in-flight planning runs
  /// finish normally; queued-but-unstarted jobs are cancelled with
  /// ResponseStatus::Shutdown (destruction must not wait out the backlog).
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Returns immediately; the future completes on hit/reject now, or when a
  /// worker finishes planning.
  std::future<PlanResponse> submit(PlanRequest request);

  /// Callback-style submission for event-driven callers (the TCP front-end):
  /// no future/promise pair per request, the callback fires once with the
  /// response. Cache hits and rejections invoke it before submit_async
  /// returns, on the submitting thread.
  void submit_async(PlanRequest request, ResponseCallback callback);

  /// Synchronous convenience wrapper.
  PlanResponse plan(PlanRequest request);

  /// Jobs accepted but not yet picked up by a worker. Admission-control
  /// signal for front-ends that want to shed load before the queue fills.
  std::size_t queue_depth() const;

  std::size_t worker_count() const { return workers_.size(); }
  std::size_t queue_capacity() const { return options_.queue_capacity; }

  ServeStats stats() const;
  PlanCacheCounters cache_counters() const { return cache_.counters(); }

  ShardedPlanCache& cache() { return cache_; }
  const ShardedPlanCache& cache() const { return cache_; }

 private:
  struct Waiter {
    std::promise<PlanResponse> promise;
    ResponseCallback callback;  ///< when set, delivery bypasses the promise
    std::string id;
    double time_unit = 1.0;  ///< for per-waiter denormalization
    double byte_unit = 1.0;  ///< for per-waiter ExplainSummary rescaling
    std::chrono::steady_clock::time_point submitted;
    CacheOutcome outcome = CacheOutcome::Miss;
    bool report_timings = false;
    bool report_explain = false;
    double cache_seconds = 0.0;  ///< this waiter's submit-side cache phase
    std::uint64_t trace_id = 0;  ///< request trace id (echoed, sampled)
    /// Ingress → cache-probe-done, the sampled "admission" phase (frame
    /// read + parse + dispatch queue + canonicalization + cache probe).
    double admission_seconds = 0.0;
  };
  /// One in-flight canonical computation and everyone waiting on it.
  struct Pending {
    std::string fingerprint;
    std::vector<std::unique_ptr<Waiter>> waiters;
  };
  struct Job {
    std::shared_ptr<Pending> pending;
    CanonicalRequest canonical;
    MadPipeOptions options;
    Seconds deadline_seconds = 0.0;
    std::chrono::steady_clock::time_point submitted;
    std::int64_t enqueue_ns = 0;  ///< obs::now_ns() at enqueue (queue span)
    /// Trace id of the waiter that created the job (the first miss): the
    /// worker runs queue_wait/serve_plan/planner spans under this id.
    std::uint64_t trace_id = 0;
  };

  /// Shared body of submit/submit_async: the waiter already carries its
  /// delivery channel (promise or callback).
  void submit_impl(PlanRequest request, std::unique_ptr<Waiter> waiter);
  /// Invoke the waiter's callback or fulfill its promise — exactly once.
  static void deliver(Waiter& waiter, PlanResponse&& response);
  /// Hand the completed request to the tail sampler (no-op when sampling
  /// is disarmed). Called after the request's spans have closed and
  /// before delivery.
  static void sample_completion(const Waiter& waiter,
                                const PlanResponse& response,
                                const PhaseTimings& timings);

  void worker_loop();
  void run_job(Job& job);
  /// `timings.cache_seconds` is per-waiter and filled in here; queue/plan
  /// seconds are the job's and shared by every waiter.
  void fulfill(Pending& pending, const CachedPlan& cached,
               ResponseStatus status, bool degraded, const std::string& error,
               const PhaseTimings& timings,
               const std::optional<report::ExplainSummary>& canonical_summary);

  ServiceOptions options_;
  ShardedPlanCache cache_;

  mutable std::mutex mutex_;  ///< guards queue_, pending_, stop_
  std::condition_variable work_available_;
  std::deque<Job> queue_;
  /// fingerprint → in-flight computation (coalescing registry).
  std::vector<std::pair<std::string, std::shared_ptr<Pending>>> pending_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // Counters (monotonic; mutex-free fast path would be overkill here — every
  // bump is adjacent to a planning run or a cache probe).
  mutable std::mutex stats_mutex_;
  ServeStats counters_;
  LatencyRecorder hit_latency_;
  LatencyRecorder miss_latency_;
};

}  // namespace madpipe::serve
