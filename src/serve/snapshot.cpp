#include "serve/snapshot.hpp"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <vector>

#include "core/chain.hpp"
#include "serve/request.hpp"

namespace madpipe::serve {

namespace {

constexpr char kMagic[] = "madpipe-cachesnap-v1\n";
constexpr std::size_t kMagicSize = sizeof(kMagic) - 1;
constexpr std::uint32_t kEndianTag = 0x01020304u;

std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

class Encoder {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i32(std::int32_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buffer_.append(s);
  }
  void magic() { buffer_.append(kMagic, kMagicSize); }

  std::string& buffer() { return buffer_; }

 private:
  void raw(const void* p, std::size_t n) {
    buffer_.append(static_cast<const char*>(p), n);
  }
  std::string buffer_;
};

class Decoder {
 public:
  explicit Decoder(const std::string& data) : data_(data) {}

  bool u8(std::uint8_t& v) { return raw(&v, sizeof(v)); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof(v)); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof(v)); }
  bool i32(std::int32_t& v) { return raw(&v, sizeof(v)); }
  bool i64(std::int64_t& v) { return raw(&v, sizeof(v)); }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t size = 0;
    if (!u32(size)) return false;
    if (offset_ + size > data_.size()) return false;
    s.assign(data_, offset_, size);
    offset_ += size;
    return true;
  }
  bool magic() {
    if (offset_ + kMagicSize > data_.size()) return false;
    if (std::memcmp(data_.data() + offset_, kMagic, kMagicSize) != 0) {
      return false;
    }
    offset_ += kMagicSize;
    return true;
  }

  std::size_t offset() const { return offset_; }

 private:
  bool raw(void* p, std::size_t n) {
    if (offset_ + n > data_.size()) return false;
    std::memcpy(p, data_.data() + offset_, n);
    offset_ += n;
    return true;
  }
  const std::string& data_;
  std::size_t offset_ = 0;
};

void encode_plan(Encoder& enc, const Plan& plan) {
  enc.str(plan.planner);
  enc.u32(static_cast<std::uint32_t>(plan.allocation.num_processors()));
  const Partitioning& partitioning = plan.allocation.partitioning();
  enc.u32(static_cast<std::uint32_t>(partitioning.num_stages()));
  for (int s = 0; s < partitioning.num_stages(); ++s) {
    enc.i32(partitioning.stage(s).first);
    enc.i32(partitioning.stage(s).last);
    enc.i32(plan.allocation.processor_of(s));
  }
  enc.f64(plan.phase1_period);
  enc.f64(plan.pattern.period);
  enc.u32(static_cast<std::uint32_t>(plan.pattern.ops.size()));
  for (const PatternOp& op : plan.pattern.ops) {
    enc.u8(static_cast<std::uint8_t>(op.kind));
    enc.i32(op.stage);
    enc.u8(static_cast<std::uint8_t>(op.resource.kind));
    enc.i32(op.resource.a);
    enc.i32(op.resource.b);
    enc.f64(op.start);
    enc.f64(op.duration);
    enc.i64(op.shift);
  }
}

std::optional<Plan> decode_plan(Decoder& dec) {
  std::string planner_name;
  std::uint32_t num_processors = 0;
  std::uint32_t num_stages = 0;
  if (!dec.str(planner_name)) return std::nullopt;
  if (!dec.u32(num_processors)) return std::nullopt;
  if (!dec.u32(num_stages)) return std::nullopt;
  if (num_stages == 0 || num_stages > (1u << 20)) return std::nullopt;
  std::vector<Stage> stages;
  std::vector<int> processor_of_stage;
  stages.reserve(num_stages);
  processor_of_stage.reserve(num_stages);
  int last_layer = 0;
  for (std::uint32_t s = 0; s < num_stages; ++s) {
    std::int32_t first = 0, last = 0, processor = 0;
    if (!dec.i32(first) || !dec.i32(last) || !dec.i32(processor)) {
      return std::nullopt;
    }
    stages.push_back(Stage{first, last});
    processor_of_stage.push_back(processor);
    last_layer = last;
  }
  // The Partitioning constructor validates tiling against a chain; the
  // canonical chain itself is not persisted (the fingerprint pins it), so a
  // uniform dummy of the right length stands in for the structural check.
  if (last_layer <= 0 || last_layer > (1 << 24)) return std::nullopt;
  std::optional<Plan> result;
  try {
    const Chain dummy = make_uniform_chain(last_layer, 1.0, 1.0, 0, 0, 0);
    result.emplace(Plan{std::move(planner_name),
                        Allocation(Partitioning(dummy, std::move(stages)),
                                   std::move(processor_of_stage),
                                   static_cast<int>(num_processors)),
                        PeriodicPattern{}, 0.0, 0.0, PlannerStats{}});
  } catch (const std::exception&) {
    return std::nullopt;
  }
  Plan& plan = *result;
  std::uint32_t op_count = 0;
  if (!dec.f64(plan.phase1_period)) return std::nullopt;
  if (!dec.f64(plan.pattern.period)) return std::nullopt;
  if (!dec.u32(op_count)) return std::nullopt;
  if (op_count > (1u << 26)) return std::nullopt;
  plan.pattern.ops.reserve(op_count);
  for (std::uint32_t i = 0; i < op_count; ++i) {
    PatternOp op;
    std::uint8_t kind = 0, resource_kind = 0;
    std::int64_t shift = 0;
    if (!dec.u8(kind) || !dec.i32(op.stage) || !dec.u8(resource_kind) ||
        !dec.i32(op.resource.a) || !dec.i32(op.resource.b) ||
        !dec.f64(op.start) || !dec.f64(op.duration) || !dec.i64(shift)) {
      return std::nullopt;
    }
    if (kind > static_cast<std::uint8_t>(OpKind::CommBackward)) {
      return std::nullopt;
    }
    if (resource_kind > 1) return std::nullopt;
    op.kind = static_cast<OpKind>(kind);
    op.resource.kind = static_cast<ResourceId::Kind>(resource_kind);
    op.shift = shift;
    plan.pattern.ops.push_back(op);
  }
  return result;
}

}  // namespace

SnapshotSaveResult save_cache_snapshot(const ShardedPlanCache& cache,
                                       const std::string& path) {
  SnapshotSaveResult result;
  const std::vector<ShardedPlanCache::ExportedEntry> entries =
      cache.export_entries();

  Encoder enc;
  enc.magic();
  enc.u32(kEndianTag);
  enc.u64(entries.size());
  for (const ShardedPlanCache::ExportedEntry& entry : entries) {
    enc.u64(entry.key);
    enc.str(entry.fingerprint);
    enc.f64(entry.cached.creator_time_unit);
    enc.f64(entry.cached.creator_byte_unit);
    enc.u8(entry.cached.plan.has_value() ? 1 : 0);
    if (entry.cached.plan.has_value()) encode_plan(enc, *entry.cached.plan);
  }
  const std::string& payload = enc.buffer();
  enc.u64(fnv1a(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      result.error = "cannot open " + tmp + " for writing";
      return result;
    }
    out.write(enc.buffer().data(),
              static_cast<std::streamsize>(enc.buffer().size()));
    if (!out) {
      result.error = "short write to " + tmp;
      return result;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    result.error = "cannot rename " + tmp + " to " + path;
    return result;
  }
  result.ok = true;
  result.entries = entries.size();
  result.bytes = enc.buffer().size();
  return result;
}

SnapshotLoadResult load_cache_snapshot(ShardedPlanCache& cache,
                                       const std::string& path) {
  SnapshotLoadResult result;
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      result.error = "cannot open " + path;
      return result;
    }
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < 0) {
      result.error = "cannot stat " + path;
      return result;
    }
    data.resize(static_cast<std::size_t>(size));
    in.seekg(0);
    in.read(data.data(), size);
    if (!in) {
      result.error = "short read from " + path;
      return result;
    }
  }
  if (data.size() < kMagicSize + sizeof(std::uint32_t) +
                        2 * sizeof(std::uint64_t)) {
    result.error = "snapshot too small to be valid";
    return result;
  }

  // Checksum first: everything else assumes intact bytes.
  const std::size_t payload_size = data.size() - sizeof(std::uint64_t);
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, data.data() + payload_size,
              sizeof(stored_checksum));
  if (fnv1a(data.data(), payload_size) != stored_checksum) {
    result.error = "checksum mismatch (truncated or corrupted snapshot)";
    return result;
  }

  Decoder dec(data);
  if (!dec.magic()) {
    result.error = "bad magic: not a madpipe-cachesnap-v1 file";
    return result;
  }
  std::uint32_t endian = 0;
  if (!dec.u32(endian) || endian != kEndianTag) {
    result.error = "endianness tag mismatch";
    return result;
  }
  std::uint64_t count = 0;
  if (!dec.u64(count)) {
    result.error = "truncated entry count";
    return result;
  }

  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t key = 0;
    std::string fingerprint;
    CachedPlan cached;
    std::uint8_t feasible = 0;
    if (!dec.u64(key) || !dec.str(fingerprint) ||
        !dec.f64(cached.creator_time_unit) ||
        !dec.f64(cached.creator_byte_unit) || !dec.u8(feasible)) {
      result.error = "truncated entry " + std::to_string(i);
      return result;
    }
    if (feasible != 0) {
      std::optional<Plan> plan = decode_plan(dec);
      if (!plan.has_value()) {
        result.error = "malformed plan in entry " + std::to_string(i);
        return result;
      }
      cached.plan = std::move(plan);
    }
    // Fingerprint verification: the key must be the digest of the stored
    // fingerprint, exactly as canonicalize() would compute it today.
    if (fingerprint_digest(fingerprint) != key) {
      ++result.rejected;
      continue;
    }
    cache.insert_raw(key, fingerprint, cached);
    ++result.loaded;
  }
  result.ok = true;
  return result;
}

}  // namespace madpipe::serve
