// Plan-cache persistence: `madpipe-cachesnap-v1`, a versioned binary
// snapshot of the sharded LRU so a restarted server starts warm instead of
// re-planning the world.
//
// Layout (little-endian on every supported platform; an endian tag guards
// against foreign files):
//
//   "madpipe-cachesnap-v1\n"            magic + version
//   u32   0x01020304                    endianness tag
//   u64   entry count
//   per entry:
//     u64   cache key (digest of the fingerprint — re-derived and verified
//           on load, so a corrupted or hand-edited pair is rejected)
//     str   canonical fingerprint       (u32 length + bytes)
//     u64   creator_time_unit bits      (exact double round-trip)
//     u64   creator_byte_unit bits
//     u8    feasible (0 = negative-cache entry, no plan payload)
//     plan payload when feasible:
//       str   planner name
//       u32   num_processors
//       u32   num_stages; per stage: i32 first, i32 last, i32 processor
//       u64   phase1_period bits
//       u64   pattern period bits
//       u32   op count; per op: u8 kind, i32 stage,
//             u8 resource kind, i32 a, i32 b,
//             u64 start bits, u64 duration bits, i64 shift
//   u64   FNV-1a checksum of everything above
//
// Provenance (PlannerStats, planning_seconds) is deliberately not persisted:
// it is excluded from plans_bit_identical and differs run to run, so a
// reloaded hit is bit-identical to the pre-restart plan where it counts.
#pragma once

#include <cstddef>
#include <string>

#include "serve/plan_cache.hpp"

namespace madpipe::serve {

inline constexpr const char* kCacheSnapshotSchema = "madpipe-cachesnap-v1";

struct SnapshotSaveResult {
  bool ok = false;
  std::size_t entries = 0;  ///< entries written
  std::size_t bytes = 0;    ///< file size
  std::string error;
};

struct SnapshotLoadResult {
  bool ok = false;           ///< file parsed and checksum verified
  std::size_t loaded = 0;    ///< entries inserted into the cache
  std::size_t rejected = 0;  ///< entries whose key failed digest verification
  std::string error;
};

/// Export every resident entry and write the snapshot atomically
/// (tmp file + rename). Safe to call while the cache is serving traffic —
/// export locks one shard at a time.
SnapshotSaveResult save_cache_snapshot(const ShardedPlanCache& cache,
                                       const std::string& path);

/// Parse, checksum-verify and load a snapshot into `cache` (via the normal
/// insert path, so byte budgets and LRU order apply — entries are stored
/// hottest-first, which keeps the hottest plans under a smaller budget).
/// Each entry's key must equal fingerprint_digest(fingerprint); mismatches
/// are skipped and counted in `rejected`, they never poison the cache.
SnapshotLoadResult load_cache_snapshot(ShardedPlanCache& cache,
                                       const std::string& path);

}  // namespace madpipe::serve
