#include "sim/event_sim.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace madpipe {

namespace {

struct OpRef {
  const PatternOp* op = nullptr;
  int chain_position = 0;  ///< position in the dependency sequence
};

/// One executed instance: operation `ref` applied to batch `batch`.
struct Instance {
  int op_index = 0;     ///< into the chain-ordered op sequence
  int batch = 0;
  long long cycle = 0;  ///< batch + shift: the pattern period it belongs to
  Seconds start = 0.0;
  Seconds end = 0.0;
};

}  // namespace

double SimulationResult::utilization_of(const ResourceId& resource) const {
  for (const auto& [id, value] : resource_utilization) {
    if (id == resource) return value;
  }
  return 0.0;
}

SimulationResult simulate_pattern(const PeriodicPattern& pattern,
                                  const Allocation& allocation,
                                  const Chain& chain, const Platform& platform,
                                  const SimulationOptions& options) {
  (void)platform;  // the pattern already embeds all platform-derived durations
  MP_EXPECT(options.batches >= 2, "simulate at least two batches");
  obs::Span span("simulate_pattern", obs::kCatSim);
  span.arg("batches", options.batches);
  span.arg("ops", static_cast<long long>(pattern.ops.size()));
  const Partitioning& parts = allocation.partitioning();
  const int num_stages = parts.num_stages();

  // Rebuild the dependency-chain order of the ops (as in the verifier).
  std::vector<const PatternOp*> fwd(num_stages, nullptr);
  std::vector<const PatternOp*> bwd(num_stages, nullptr);
  std::vector<const PatternOp*> comm_fwd(num_stages, nullptr);
  std::vector<const PatternOp*> comm_bwd(num_stages, nullptr);
  for (const PatternOp& op : pattern.ops) {
    switch (op.kind) {
      case OpKind::Forward: fwd[op.stage] = &op; break;
      case OpKind::Backward: bwd[op.stage] = &op; break;
      case OpKind::CommForward: comm_fwd[op.stage] = &op; break;
      case OpKind::CommBackward: comm_bwd[op.stage] = &op; break;
    }
  }
  std::vector<const PatternOp*> sequence;
  for (int s = 0; s < num_stages; ++s) {
    MP_EXPECT(fwd[s] != nullptr && bwd[s] != nullptr,
              "pattern misses compute ops");
    sequence.push_back(fwd[s]);
    if (comm_fwd[s] != nullptr) sequence.push_back(comm_fwd[s]);
  }
  for (int s = num_stages - 1; s >= 0; --s) {
    sequence.push_back(bwd[s]);
    if (s > 0 && comm_bwd[s - 1] != nullptr) sequence.push_back(comm_bwd[s - 1]);
  }
  const int num_ops = static_cast<int>(sequence.size());

  // All instances, in a topological order compatible with both chain and
  // resource dependencies: lexicographic (cycle, pattern start, chain pos).
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(num_ops) * options.batches);
  for (int b = 0; b < options.batches; ++b) {
    for (int o = 0; o < num_ops; ++o) {
      instances.push_back(Instance{o, b, b + sequence[o]->shift, 0.0, 0.0});
    }
  }
  std::sort(instances.begin(), instances.end(),
            [&](const Instance& x, const Instance& y) {
              if (x.cycle != y.cycle) return x.cycle < y.cycle;
              const Seconds sx = sequence[x.op_index]->start;
              const Seconds sy = sequence[y.op_index]->start;
              if (sx != sy) return sx < sy;
              return x.op_index < y.op_index;
            });

  // Relax earliest start times in that order.
  std::map<ResourceId, Seconds> resource_free;  // when each resource frees up
  // chain_done[o][b]: completion of chain-position o on batch b.
  std::vector<std::vector<Seconds>> chain_done(
      static_cast<std::size_t>(num_ops),
      std::vector<Seconds>(static_cast<std::size_t>(options.batches), -1.0));

  for (Instance& inst : instances) {
    const PatternOp& op = *sequence[inst.op_index];
    Seconds ready = 0.0;
    if (inst.op_index > 0) {
      const Seconds dep =
          chain_done[static_cast<std::size_t>(inst.op_index - 1)]
                    [static_cast<std::size_t>(inst.batch)];
      MP_ENSURE(dep >= 0.0, "instance order is not topological");
      ready = std::max(ready, dep);
    }
    const auto it = resource_free.find(op.resource);
    if (it != resource_free.end()) ready = std::max(ready, it->second);

    inst.start = ready;
    inst.end = ready + op.duration;
    resource_free[op.resource] = inst.end;
    chain_done[static_cast<std::size_t>(inst.op_index)]
              [static_cast<std::size_t>(inst.batch)] = inst.end;
  }

  SimulationResult result;
  result.batch_completion.resize(static_cast<std::size_t>(options.batches));
  for (int b = 0; b < options.batches; ++b) {
    result.batch_completion[static_cast<std::size_t>(b)] =
        chain_done[static_cast<std::size_t>(num_ops - 1)]
                  [static_cast<std::size_t>(b)];
    result.makespan = std::max(result.makespan,
                               result.batch_completion[static_cast<std::size_t>(b)]);
  }

  // Steady period: median gap over the second half of the batches.
  std::vector<Seconds> gaps;
  for (int b = options.batches / 2; b + 1 < options.batches; ++b) {
    gaps.push_back(result.batch_completion[static_cast<std::size_t>(b + 1)] -
                   result.batch_completion[static_cast<std::size_t>(b)]);
  }
  if (!gaps.empty()) {
    std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
    result.steady_period = gaps[gaps.size() / 2];
  }

  // Busy fractions over the steady window [makespan/2, makespan].
  {
    const Seconds window_begin = result.makespan * 0.5;
    const Seconds window = result.makespan - window_begin;
    std::map<ResourceId, Seconds> busy;
    for (const Instance& inst : instances) {
      const PatternOp& op = *sequence[inst.op_index];
      const Seconds begin = std::max(inst.start, window_begin);
      const Seconds end = std::min(inst.end, result.makespan);
      busy[op.resource];  // ensure the resource is listed even if idle here
      if (end > begin) busy[op.resource] += end - begin;
    }
    for (const auto& [resource, time] : busy) {
      result.resource_utilization.emplace_back(
          resource, window > 0.0 ? time / window : 0.0);
    }
  }

  // Memory sweep per processor: +ā at F completion, −ā at B completion.
  result.processor_memory_peak.assign(allocation.num_processors(), 0.0);
  std::vector<std::vector<std::pair<Seconds, Bytes>>> events(
      static_cast<std::size_t>(allocation.num_processors()));
  for (const Instance& inst : instances) {
    const PatternOp& op = *sequence[inst.op_index];
    if (op.kind != OpKind::Forward && op.kind != OpKind::Backward) continue;
    const int proc = allocation.processor_of(op.stage);
    const Bytes bytes = parts.stage_stored_activations(chain, op.stage);
    events[static_cast<std::size_t>(proc)].emplace_back(
        inst.end, op.kind == OpKind::Forward ? bytes : -bytes);
  }
  for (int p = 0; p < allocation.num_processors(); ++p) {
    auto& list = events[static_cast<std::size_t>(p)];
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second < b.second;  // frees before allocations at ties
              });
    Bytes level = 0.0;
    Bytes peak = 0.0;
    for (const auto& [time, delta] : list) {
      level += delta;
      peak = std::max(peak, level);
    }
    result.processor_memory_peak[static_cast<std::size_t>(p)] =
        allocation.static_memory(chain, p) + peak;
  }
  return result;
}

}  // namespace madpipe
