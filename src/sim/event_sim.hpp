// Discrete-event execution of a periodic pattern over a finite stream of
// mini-batches — an independent check of the analytic machinery. The
// simulator deliberately ignores the pattern's start times: it keeps only
// the per-resource cyclic order and the index shifts, and executes every
// operation instance as early as possible (longest-path over the unrolled
// instance DAG). For a valid pattern the measured steady-state period can
// never exceed the pattern's period, and the measured memory peaks match
// the verifier's event sweep.
#pragma once

#include <vector>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/pattern.hpp"
#include "core/platform.hpp"

namespace madpipe {

struct SimulationOptions {
  int batches = 64;  ///< mini-batches to push through the pipeline
};

struct SimulationResult {
  Seconds makespan = 0.0;       ///< completion of the last backward
  Seconds steady_period = 0.0;  ///< median inter-batch completion gap (2nd half)
  std::vector<Bytes> processor_memory_peak;  ///< incl. weights and buffers
  /// Completion time of each batch (end of B of the first stage).
  std::vector<Seconds> batch_completion;
  /// Busy fraction of each resource over the steady window (the second half
  /// of the run): the pipeline-efficiency view of the schedule.
  std::vector<std::pair<ResourceId, double>> resource_utilization;

  /// Utilization of one resource (0 when it does not appear).
  double utilization_of(const ResourceId& resource) const;
};

SimulationResult simulate_pattern(const PeriodicPattern& pattern,
                                  const Allocation& allocation,
                                  const Chain& chain, const Platform& platform,
                                  const SimulationOptions& options = {});

}  // namespace madpipe
