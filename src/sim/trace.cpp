#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace madpipe {

namespace {

char op_symbol(const PatternOp& op) {
  switch (op.kind) {
    case OpKind::Forward:
      return static_cast<char>('A' + op.stage % 26);
    case OpKind::Backward:
      return static_cast<char>('a' + op.stage % 26);
    case OpKind::CommForward:
      return '>';
    case OpKind::CommBackward:
      return '<';
  }
  return '?';
}

}  // namespace

std::string render_gantt(const PeriodicPattern& pattern,
                         const Allocation& allocation, const Chain& chain,
                         const GanttOptions& options) {
  MP_EXPECT(options.width >= 10 && options.periods >= 1,
            "unreasonable gantt geometry");
  const Seconds T = pattern.period;
  const int total_width = options.width * options.periods;

  std::map<ResourceId, std::string> rows;
  for (const PatternOp& op : pattern.ops) {
    rows.emplace(op.resource, std::string(total_width, '.'));
  }

  for (const PatternOp& op : pattern.ops) {
    std::string& row = rows[op.resource];
    for (int period = 0; period < options.periods; ++period) {
      const double begin =
          (op.start / T + period) * options.width;
      const double end = begin + op.duration / T * options.width;
      int c0 = static_cast<int>(std::floor(begin));
      int c1 = std::max(c0 + 1, static_cast<int>(std::ceil(end)));
      c0 = std::clamp(c0, 0, total_width - 1);
      c1 = std::clamp(c1, c0 + 1, total_width);
      for (int c = c0; c < c1; ++c) {
        // Wrap long ops around the drawing area.
        row[static_cast<std::size_t>(c % total_width)] = op_symbol(op);
      }
    }
  }

  std::ostringstream os;
  os << "period " << fmt::seconds(T) << ", " << options.periods
     << " period(s), stage letters A.. = forward, a.. = backward, >/< = comm\n";
  for (const auto& [resource, row] : rows) {
    os << resource.to_string();
    os << std::string(resource.to_string().size() < 10
                          ? 10 - resource.to_string().size()
                          : 1,
                      ' ');
    os << '|' << row << "|\n";
  }
  // Shift annotations.
  os << "shifts: ";
  for (const PatternOp& op : pattern.ops) {
    os << to_string(op.kind) << op.stage << "=" << op.shift << ' ';
  }
  os << '\n';
  (void)allocation;
  (void)chain;
  return os.str();
}

std::string pattern_to_chrome_trace(const PeriodicPattern& pattern,
                                    const Allocation& allocation,
                                    const Chain& chain, int periods) {
  MP_EXPECT(periods >= 1, "need at least one period to export");
  (void)chain;

  // Stable row ids: processors first, links after.
  std::map<ResourceId, int> row;
  for (const PatternOp& op : pattern.ops) {
    row.emplace(op.resource, 0);
  }
  int next = 0;
  for (auto& [resource, id] : row) id = next++;

  json::Writer w;
  obs::begin_chrome_trace(w);

  // Thread-name metadata so rows are labeled in the viewer.
  for (const auto& [resource, id] : row) {
    obs::write_trace_metadata(w, "thread_name", 0, id, resource.to_string());
  }

  const double to_us = 1e6;
  for (int period = 0; period < periods; ++period) {
    for (const PatternOp& op : pattern.ops) {
      const long long batch = period - op.shift;
      if (batch < 0) continue;  // before the pipeline filled
      obs::begin_complete_event(
          w,
          std::string(to_string(op.kind)) + std::to_string(op.stage) + " b" +
              std::to_string(batch),
          op.kind == OpKind::Forward || op.kind == OpKind::Backward
              ? "compute"
              : "comm",
          0, row.at(op.resource), (op.start + period * pattern.period) * to_us,
          op.duration * to_us);
      w.key("args");
      w.begin_object();
      w.key("batch");
      w.value(batch);
      w.key("stage");
      w.value(op.stage);
      w.key("shift");
      w.value(op.shift);
      w.key("processor");
      w.value(allocation.processor_of(op.stage));
      w.end_object();
      w.end_object();
    }
  }
  obs::end_chrome_trace(w);
  return w.str();
}

}  // namespace madpipe
