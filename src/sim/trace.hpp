// ASCII rendering of periodic patterns (the Figure 2/3-style pictures of
// the paper): one row per resource, one period wide, forward ops as
// uppercase stage letters, backwards as lowercase, communications as '·'
// fills with direction arrows.
#pragma once

#include <string>

#include "core/chain.hpp"
#include "core/partition.hpp"
#include "core/pattern.hpp"
#include "core/platform.hpp"

namespace madpipe {

struct GanttOptions {
  int width = 100;   ///< characters per period
  int periods = 2;   ///< how many copies of the pattern to draw
};

/// Render `pattern` as a fixed-width Gantt chart with index shifts noted.
std::string render_gantt(const PeriodicPattern& pattern,
                         const Allocation& allocation, const Chain& chain,
                         const GanttOptions& options = {});

/// Export `periods` repetitions of the pattern as a Chrome trace-event JSON
/// document (open in chrome://tracing or https://ui.perfetto.dev): one row
/// per resource, one complete duration event per op instance, with the
/// processed batch index as an argument. Times are microseconds.
std::string pattern_to_chrome_trace(const PeriodicPattern& pattern,
                                    const Allocation& allocation,
                                    const Chain& chain, int periods = 4);

}  // namespace madpipe
