#include "solver/lp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.hpp"

namespace madpipe::solver {

namespace {

/// Dense simplex tableau in standard form: minimize c·y subject to A·y = b,
/// y ≥ 0, b ≥ 0, with an identity-forming basis maintained explicitly.
class Tableau {
 public:
  Tableau(int rows, int cols)
      : rows_(rows), cols_(cols),
        a_(static_cast<std::size_t>(rows) * cols, 0.0),
        b_(static_cast<std::size_t>(rows), 0.0),
        cost_(static_cast<std::size_t>(cols), 0.0),
        basis_(static_cast<std::size_t>(rows), -1) {}

  double& at(int r, int c) { return a_[static_cast<std::size_t>(r) * cols_ + c]; }
  double at(int r, int c) const {
    return a_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double& rhs(int r) { return b_[static_cast<std::size_t>(r)]; }
  double rhs(int r) const { return b_[static_cast<std::size_t>(r)]; }
  double& cost(int c) { return cost_[static_cast<std::size_t>(c)]; }
  int& basis(int r) { return basis_[static_cast<std::size_t>(r)]; }
  int basis(int r) const { return basis_[static_cast<std::size_t>(r)]; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Reduced costs from the current basis: r_c = c_c − Σ_r c_{basis(r)}·a_rc.
  std::vector<double> reduced_costs() const {
    std::vector<double> reduced(cost_);
    for (int r = 0; r < rows_; ++r) {
      const double cb = cost_[static_cast<std::size_t>(basis(r))];
      if (cb == 0.0) continue;
      for (int c = 0; c < cols_; ++c) {
        reduced[static_cast<std::size_t>(c)] -= cb * at(r, c);
      }
    }
    return reduced;
  }

  void pivot(int pivot_row, int pivot_col) {
    const double pivot_value = at(pivot_row, pivot_col);
    MP_ENSURE(std::abs(pivot_value) > 1e-12, "numerically singular pivot");
    const double inv = 1.0 / pivot_value;
    for (int c = 0; c < cols_; ++c) at(pivot_row, c) *= inv;
    rhs(pivot_row) *= inv;
    for (int r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (factor == 0.0) continue;
      for (int c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pivot_row, c);
      }
      rhs(r) -= factor * rhs(pivot_row);
    }
    basis(pivot_row) = pivot_col;
  }

  /// Bland's rule primal simplex on the current cost vector. Returns
  /// Optimal / Unbounded / IterationLimit.
  LPStatus iterate(long long max_iterations, double tol,
                   long long& iterations_used) {
    while (iterations_used < max_iterations) {
      const std::vector<double> reduced = reduced_costs();
      int entering = -1;
      for (int c = 0; c < cols_; ++c) {  // Bland: smallest index
        if (reduced[static_cast<std::size_t>(c)] < -tol) {
          entering = c;
          break;
        }
      }
      if (entering < 0) return LPStatus::Optimal;

      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < rows_; ++r) {
        const double coeff = at(r, entering);
        if (coeff > tol) {
          const double ratio = rhs(r) / coeff;
          // Bland tie-break: smallest basis index.
          if (ratio < best_ratio - tol ||
              (ratio < best_ratio + tol &&
               (leaving < 0 || basis(r) < basis(leaving)))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving < 0) return LPStatus::Unbounded;
      pivot(leaving, entering);
      ++iterations_used;
    }
    return LPStatus::IterationLimit;
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<double> cost_;
  std::vector<int> basis_;
};

}  // namespace

LPResult solve_lp(const Model& model, const LPOptions& options) {
  const int n = model.num_variables();
  const double tol = options.tolerance;

  // --- Assemble rows in shifted variables y = x − lb ≥ 0 -----------------
  struct Row {
    std::vector<double> coeffs;  // dense over y
    Relation relation;
    double rhs;
  };
  std::vector<Row> rows;
  const auto add_row = [&](const LinearExpr& expr, Relation rel, double rhs) {
    Row row{std::vector<double>(static_cast<std::size_t>(n), 0.0), rel, rhs};
    for (const auto& [v, coeff] : expr.terms) {
      row.coeffs[static_cast<std::size_t>(v)] += coeff;
      row.rhs -= coeff * model.variable(v).lower;
    }
    rows.push_back(std::move(row));
  };

  for (int i = 0; i < model.num_constraints(); ++i) {
    const ConstraintDef& c = model.constraint(i);
    add_row(c.expr, c.relation, c.rhs);
  }
  for (int v = 0; v < n; ++v) {
    const VariableDef& def = model.variable(v);
    if (std::isfinite(def.upper)) {
      LinearExpr bound;
      bound.add(v, 1.0);
      add_row(bound, Relation::LessEqual, def.upper);
    }
  }

  // Normalize to rhs ≥ 0.
  for (Row& row : rows) {
    if (row.rhs < 0.0) {
      for (double& coeff : row.coeffs) coeff = -coeff;
      row.rhs = -row.rhs;
      row.relation = row.relation == Relation::LessEqual ? Relation::GreaterEqual
                     : row.relation == Relation::GreaterEqual
                         ? Relation::LessEqual
                         : Relation::Equal;
    }
  }

  // --- Build the tableau: y | slacks | artificials | (rhs separate) ------
  const int m = static_cast<int>(rows.size());
  int num_slack = 0;
  for (const Row& row : rows) {
    if (row.relation != Relation::Equal) ++num_slack;
  }
  int num_artificial = 0;
  for (const Row& row : rows) {
    if (row.relation != Relation::LessEqual) ++num_artificial;
  }

  const int total = n + num_slack + num_artificial;
  Tableau tableau(m, total);
  int slack_cursor = n;
  int artificial_cursor = n + num_slack;
  std::vector<int> artificial_cols;

  for (int r = 0; r < m; ++r) {
    const Row& row = rows[static_cast<std::size_t>(r)];
    for (int v = 0; v < n; ++v) {
      tableau.at(r, v) = row.coeffs[static_cast<std::size_t>(v)];
    }
    tableau.rhs(r) = row.rhs;
    switch (row.relation) {
      case Relation::LessEqual:
        tableau.at(r, slack_cursor) = 1.0;
        tableau.basis(r) = slack_cursor++;
        break;
      case Relation::GreaterEqual:
        tableau.at(r, slack_cursor++) = -1.0;
        tableau.at(r, artificial_cursor) = 1.0;
        tableau.basis(r) = artificial_cursor;
        artificial_cols.push_back(artificial_cursor++);
        break;
      case Relation::Equal:
        tableau.at(r, artificial_cursor) = 1.0;
        tableau.basis(r) = artificial_cursor;
        artificial_cols.push_back(artificial_cursor++);
        break;
    }
  }

  long long iterations = 0;

  // --- Phase 1: minimize the artificial sum -------------------------------
  if (num_artificial > 0) {
    for (const int c : artificial_cols) tableau.cost(c) = 1.0;
    const LPStatus status =
        tableau.iterate(options.max_iterations, tol, iterations);
    if (status == LPStatus::IterationLimit) {
      return LPResult{LPStatus::IterationLimit, 0.0, {}};
    }
    MP_ENSURE(status != LPStatus::Unbounded,
              "phase-1 objective is bounded below by zero");
    double infeasibility = 0.0;
    for (int r = 0; r < m; ++r) {
      if (tableau.basis(r) >= n + num_slack) infeasibility += tableau.rhs(r);
    }
    if (infeasibility > 1e-7) {
      return LPResult{LPStatus::Infeasible, 0.0, {}};
    }
    // Pivot any artificial still in the basis (at zero level) out of it.
    for (int r = 0; r < m; ++r) {
      if (tableau.basis(r) < n + num_slack) continue;
      int replacement = -1;
      for (int c = 0; c < n + num_slack; ++c) {
        if (std::abs(tableau.at(r, c)) > 1e-9) {
          replacement = c;
          break;
        }
      }
      if (replacement >= 0) {
        tableau.pivot(r, replacement);
      }
      // Otherwise the row is all-zero over real columns: redundant, leave
      // the zero-level artificial basic; it can never re-enter because its
      // cost is neutral in phase 2 and its column is excluded below.
    }
    for (const int c : artificial_cols) tableau.cost(c) = 0.0;
    // Block artificial columns from re-entering: give them a prohibitive
    // cost in phase 2.
    for (const int c : artificial_cols) tableau.cost(c) = 1e30;
  }

  // --- Phase 2: the real objective ----------------------------------------
  const double sense_factor = model.sense() == Sense::Minimize ? 1.0 : -1.0;
  for (int v = 0; v < n; ++v) {
    tableau.cost(v) = sense_factor * model.variable(v).objective;
  }
  const LPStatus status =
      tableau.iterate(options.max_iterations, tol, iterations);
  if (status == LPStatus::IterationLimit) {
    return LPResult{LPStatus::IterationLimit, 0.0, {}};
  }
  if (status == LPStatus::Unbounded) {
    return LPResult{LPStatus::Unbounded, 0.0, {}};
  }

  LPResult result;
  result.status = LPStatus::Optimal;
  result.values.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    if (tableau.basis(r) < n) {
      result.values[static_cast<std::size_t>(tableau.basis(r))] =
          tableau.rhs(r);
    }
  }
  for (int v = 0; v < n; ++v) {
    result.values[static_cast<std::size_t>(v)] += model.variable(v).lower;
    result.objective +=
        model.variable(v).objective * result.values[static_cast<std::size_t>(v)];
  }
  return result;
}

}  // namespace madpipe::solver
