#include "solver/lp.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace madpipe::solver {

namespace {

/// Level at which a basic artificial variable counts as "really" nonzero,
/// i.e. the constraint system is infeasible.
constexpr double kInfeasibilityTol = 1e-7;
/// Smallest pivot magnitude accepted when reinstating a warm-start basis.
constexpr double kCrashPivotTol = 1e-7;

/// Dense simplex tableau in standard form: minimize c·y subject to A·y = b,
/// y ≥ 0, with an identity-forming basis maintained explicitly. The
/// reduced-cost row and objective value are carried incrementally through
/// pivot() — refresh_reduced() rebuilds them only at phase switches and
/// warm restarts, never per iteration.
class Tableau {
 public:
  Tableau(int rows, int cols)
      : rows_(rows), cols_(cols),
        a_(static_cast<std::size_t>(rows) * cols, 0.0),
        b_(static_cast<std::size_t>(rows), 0.0),
        cost_(static_cast<std::size_t>(cols), 0.0),
        reduced_(static_cast<std::size_t>(cols), 0.0),
        basis_(static_cast<std::size_t>(rows), -1),
        structural_(static_cast<std::size_t>(cols), 0),
        blocked_(static_cast<std::size_t>(cols), 0) {}

  double& at(int r, int c) { return a_[static_cast<std::size_t>(r) * cols_ + c]; }
  double at(int r, int c) const {
    return a_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double& rhs(int r) { return b_[static_cast<std::size_t>(r)]; }
  double rhs(int r) const { return b_[static_cast<std::size_t>(r)]; }
  void set_cost(int c, double v) { cost_[static_cast<std::size_t>(c)] = v; }
  double reduced(int c) const { return reduced_[static_cast<std::size_t>(c)]; }
  int& basis(int r) { return basis_[static_cast<std::size_t>(r)]; }
  int basis(int r) const { return basis_[static_cast<std::size_t>(r)]; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Bar a column from ever entering the basis (artificials after phase 1).
  void block_column(int c) { blocked_[static_cast<std::size_t>(c)] = 1; }
  bool blocked(int c) const { return blocked_[static_cast<std::size_t>(c)] != 0; }

  /// Record which columns hold any nonzero entry. Call once after the
  /// matrix is filled: pricing skips structurally-zero columns entirely
  /// (their reduced cost never moves off the raw cost coefficient).
  void mark_structure() {
    for (int c = 0; c < cols_; ++c) {
      char any = 0;
      for (int r = 0; r < rows_; ++r) {
        if (at(r, c) != 0.0) {
          any = 1;
          break;
        }
      }
      structural_[static_cast<std::size_t>(c)] = any;
    }
  }
  bool structural(int c) const {
    return structural_[static_cast<std::size_t>(c)] != 0;
  }

  /// Rebuild the reduced-cost row r = c − c_B·B⁻¹·A and the objective
  /// c_B·B⁻¹·b from scratch. O(m·n).
  void refresh_reduced() {
    std::copy(cost_.begin(), cost_.end(), reduced_.begin());
    objective_ = 0.0;
    for (int r = 0; r < rows_; ++r) {
      const double cb = cost_[static_cast<std::size_t>(basis(r))];
      if (cb == 0.0) continue;
      objective_ += cb * rhs(r);
      for (int c = 0; c < cols_; ++c) {
        reduced_[static_cast<std::size_t>(c)] -= cb * at(r, c);
      }
    }
    for (int r = 0; r < rows_; ++r) {
      reduced_[static_cast<std::size_t>(basis(r))] = 0.0;
    }
  }

  /// Zero the reduced row so pivots applied while it is meaningless (basis
  /// crashes) skip the incremental update; refresh_reduced() afterwards.
  void clear_reduced() { std::fill(reduced_.begin(), reduced_.end(), 0.0); }

  void pivot(int pivot_row, int pivot_col) {
    const double pivot_value = at(pivot_row, pivot_col);
    MP_ENSURE(std::abs(pivot_value) > 1e-12, "numerically singular pivot");
    const double inv = 1.0 / pivot_value;
    for (int c = 0; c < cols_; ++c) at(pivot_row, c) *= inv;
    rhs(pivot_row) *= inv;
    for (int r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (factor == 0.0) continue;
      for (int c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pivot_row, c);
      }
      rhs(r) -= factor * rhs(pivot_row);
    }
    // The same elimination applied to the reduced row keeps
    // r = c − c_B·B⁻¹·A valid without an O(m·n) rebuild per iteration.
    const double entering_reduced = reduced_[static_cast<std::size_t>(pivot_col)];
    if (entering_reduced != 0.0) {
      for (int c = 0; c < cols_; ++c) {
        reduced_[static_cast<std::size_t>(c)] -= entering_reduced * at(pivot_row, c);
      }
      objective_ += entering_reduced * rhs(pivot_row);
    }
    reduced_[static_cast<std::size_t>(pivot_col)] = 0.0;
    basis(pivot_row) = pivot_col;
  }

  /// Pricing scans run over fixed-width column panels: a branch-free masked
  /// pass reduces each panel (minimum or any-flag) in a loop the compiler
  /// can vectorize, and only a panel that changes the answer is rescanned
  /// serially to resolve the exact column index. The resolution preserves
  /// the serial scan's semantics bit for bit — Dantzig's "strictly less,
  /// first occurrence wins" and Bland's "first index" both come out of the
  /// same ascending panel order.
  static constexpr int kPricePanel = 64;

  /// Dantzig entering column: first index attaining the most negative
  /// reduced cost below −tol among pricable columns, or −1 at optimality.
  int price_most_negative(double tol) const {
    double most_negative = -tol;
    int entering = -1;
    for (int base = 0; base < cols_; base += kPricePanel) {
      const int end = std::min(cols_, base + kPricePanel);
      // Masked panel minimum: non-pricable lanes contribute 0, which can
      // never beat the running threshold (most_negative ≤ −tol < 0).
      double panel_min = 0.0;
      for (int c = base; c < end; ++c) {
        const bool pricable = structural_[static_cast<std::size_t>(c)] != 0 &&
                              blocked_[static_cast<std::size_t>(c)] == 0;
        const double rc =
            pricable ? reduced_[static_cast<std::size_t>(c)] : 0.0;
        panel_min = std::min(panel_min, rc);
      }
      // A strict improvement lives in this panel; the first column holding
      // panel_min is exactly the column the serial scan would have kept.
      if (panel_min < most_negative) {
        most_negative = panel_min;
        for (int c = base; c < end; ++c) {
          if (structural_[static_cast<std::size_t>(c)] != 0 &&
              blocked_[static_cast<std::size_t>(c)] == 0 &&
              reduced_[static_cast<std::size_t>(c)] == panel_min) {
            entering = c;
            break;
          }
        }
      }
    }
    return entering;
  }

  /// Bland entering column: smallest pricable index with reduced cost below
  /// −tol, or −1. Panels are flag-reduced; only the first flagged panel is
  /// rescanned for the index.
  int price_first_negative(double tol) const {
    for (int base = 0; base < cols_; base += kPricePanel) {
      const int end = std::min(cols_, base + kPricePanel);
      int any = 0;
      for (int c = base; c < end; ++c) {
        const bool pricable = structural_[static_cast<std::size_t>(c)] != 0 &&
                              blocked_[static_cast<std::size_t>(c)] == 0;
        any |= static_cast<int>(
            pricable && reduced_[static_cast<std::size_t>(c)] < -tol);
      }
      if (any) {
        for (int c = base; c < end; ++c) {
          if (structural_[static_cast<std::size_t>(c)] != 0 &&
              blocked_[static_cast<std::size_t>(c)] == 0 &&
              reduced_[static_cast<std::size_t>(c)] < -tol) {
            return c;
          }
        }
      }
    }
    return -1;
  }

  /// Whether any structurally-zero, unblocked column still prices negative:
  /// such a column has no row to block it, so the LP is unbounded.
  bool zero_column_prices_negative(double tol) const {
    for (int base = 0; base < cols_; base += kPricePanel) {
      const int end = std::min(cols_, base + kPricePanel);
      int any = 0;
      for (int c = base; c < end; ++c) {
        const bool eligible = structural_[static_cast<std::size_t>(c)] == 0 &&
                              blocked_[static_cast<std::size_t>(c)] == 0;
        any |= static_cast<int>(
            eligible && reduced_[static_cast<std::size_t>(c)] < -tol);
      }
      if (any) return true;
    }
    return false;
  }

  /// Primal simplex on the current cost vector: Dantzig pricing, falling
  /// back to Bland's rule after `stall_threshold` consecutive degenerate
  /// pivots and staying there until the objective moves (termination: Bland
  /// never revisits a basis, and every objective improvement is permanent).
  LPStatus primal_iterate(long long max_iterations, double tol,
                          long long stall_threshold, long long& iterations_used,
                          SolverStats& stats, long long& phase_pivots) {
    long long stall = 0;
    bool bland = stall_threshold <= 0;
    while (iterations_used < max_iterations) {
      const int entering =
          bland ? price_first_negative(tol) : price_most_negative(tol);
      if (entering < 0) {
        // Structurally-zero columns were skipped above; a negative reduced
        // cost there has no row to block it — unbounded ascent.
        if (zero_column_prices_negative(tol)) return LPStatus::Unbounded;
        return LPStatus::Optimal;
      }

      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < rows_; ++r) {
        const double coeff = at(r, entering);
        if (coeff > tol) {
          const double ratio = rhs(r) / coeff;
          // Smallest-basis-index tie-break: deterministic, and exactly
          // Bland's leaving rule when the fallback is engaged.
          if (ratio < best_ratio - tol ||
              (ratio < best_ratio + tol &&
               (leaving < 0 || basis(r) < basis(leaving)))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving < 0) return LPStatus::Unbounded;
      const bool degenerate = best_ratio <= tol;
      pivot(leaving, entering);
      ++iterations_used;
      ++stats.pivots;
      ++phase_pivots;
      if (bland && stall_threshold > 0) ++stats.bland_pivots;
      if (degenerate) {
        if (!bland && ++stall >= stall_threshold) bland = true;
      } else {
        stall = 0;
        bland = stall_threshold <= 0;
      }
    }
    return LPStatus::IterationLimit;
  }

  /// Dual simplex from a dual-feasible basis (reduced costs ≥ 0) toward
  /// primal feasibility — the restart engine for warm-started solves whose
  /// bound changes only perturbed the right-hand side. Returns Optimal when
  /// rhs ≥ 0 everywhere, Infeasible when a negative row has no eligible
  /// entering column (dual unbounded).
  LPStatus dual_iterate(long long max_iterations, double tol,
                        long long& iterations_used, SolverStats& stats) {
    while (iterations_used < max_iterations) {
      int leaving = -1;
      double most_negative = -tol;
      for (int r = 0; r < rows_; ++r) {
        if (rhs(r) < most_negative) {
          most_negative = rhs(r);
          leaving = r;
        }
      }
      if (leaving < 0) return LPStatus::Optimal;

      int entering = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int c = 0; c < cols_; ++c) {
        if (blocked(c)) continue;
        const double coeff = at(leaving, c);
        if (coeff < -tol) {
          const double ratio =
              std::max(reduced_[static_cast<std::size_t>(c)], 0.0) / -coeff;
          // Smallest-index tie-break: the dual analogue of Bland's rule.
          if (ratio < best_ratio - tol ||
              (ratio < best_ratio + tol && (entering < 0 || c < entering))) {
            best_ratio = ratio;
            entering = c;
          }
        }
      }
      if (entering < 0) return LPStatus::Infeasible;
      pivot(leaving, entering);
      ++iterations_used;
      ++stats.pivots;
      ++stats.dual_iterations;
    }
    return LPStatus::IterationLimit;
  }

  double objective() const { return objective_; }

 private:
  int rows_;
  int cols_;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<double> cost_;
  std::vector<double> reduced_;
  std::vector<int> basis_;
  std::vector<char> structural_;
  std::vector<char> blocked_;
  double objective_ = 0.0;
};

/// The standard-form construction of one solve: the tableau plus the
/// bookkeeping needed to run phases and extract a solution.
struct Assembly {
  Tableau tableau;
  int num_vars = 0;
  int num_slack = 0;
  std::vector<int> artificial_cols;  ///< artificials basic at the start
  bool needs_phase1 = false;
};

struct Bounds {
  std::span<const double> lower;
  std::span<const double> upper;
  const Model* model = nullptr;

  double lower_of(int v) const {
    return lower.empty() ? model->variable(v).lower
                         : lower[static_cast<std::size_t>(v)];
  }
  double upper_of(int v) const {
    return upper.empty() ? model->variable(v).upper
                         : upper[static_cast<std::size_t>(v)];
  }
};

/// Build the standard-form tableau in shifted variables y = x − lb ≥ 0.
///
/// The column layout is a function of the model structure alone — never of
/// bound *values* — so a basis taken from one solve can be reinstated in a
/// solve with different bounds (the warm-start contract): columns are
/// [structural | one slack per inequality row | one artificial per row],
/// with each row's slack/artificial index fixed by its position. Rows are
/// equilibrated (divided by their largest coefficient magnitude) and rhs
/// signs normalized; a row whose rhs sign flips merely flips its slack's
/// coefficient, not the layout.
Assembly assemble(const Model& model, const Bounds& bounds) {
  const int n = model.num_variables();

  struct Row {
    std::vector<double> coeffs;  // dense over y
    Relation relation;
    double rhs;
  };
  std::vector<Row> rows;
  const auto add_row = [&](const LinearExpr& expr, Relation rel, double rhs) {
    Row row{std::vector<double>(static_cast<std::size_t>(n), 0.0), rel, rhs};
    for (const auto& [v, coeff] : expr.terms) {
      row.coeffs[static_cast<std::size_t>(v)] += coeff;
      row.rhs -= coeff * bounds.lower_of(v);
    }
    rows.push_back(std::move(row));
  };

  for (int i = 0; i < model.num_constraints(); ++i) {
    const ConstraintDef& c = model.constraint(i);
    add_row(c.expr, c.relation, c.rhs);
  }
  for (int v = 0; v < n; ++v) {
    if (std::isfinite(bounds.upper_of(v))) {
      LinearExpr bound;
      bound.add(v, 1.0);
      add_row(bound, Relation::LessEqual, bounds.upper_of(v));
    }
  }

  for (Row& row : rows) {
    // Equilibrate: scheduling models mix byte-scale and second-scale
    // coefficients (~10 orders of magnitude); scaling each row to unit
    // max-magnitude keeps elimination noise far below the pivot tolerance.
    double scale = 0.0;
    for (const double coeff : row.coeffs) {
      scale = std::max(scale, std::abs(coeff));
    }
    if (scale > 0.0) {
      const double inv = 1.0 / scale;
      for (double& coeff : row.coeffs) coeff *= inv;
      row.rhs *= inv;
    }
    // Normalize to rhs ≥ 0.
    if (row.rhs < 0.0) {
      for (double& coeff : row.coeffs) coeff = -coeff;
      row.rhs = -row.rhs;
      row.relation = row.relation == Relation::LessEqual ? Relation::GreaterEqual
                     : row.relation == Relation::GreaterEqual
                         ? Relation::LessEqual
                         : Relation::Equal;
    }
  }

  const int m = static_cast<int>(rows.size());
  int num_slack = 0;
  for (const Row& row : rows) {
    if (row.relation != Relation::Equal) ++num_slack;
  }

  Assembly assembly{Tableau(m, n + num_slack + m), n, num_slack, {}, false};
  Tableau& tableau = assembly.tableau;
  const int first_artificial = n + num_slack;
  int slack_cursor = n;

  for (int r = 0; r < m; ++r) {
    const Row& row = rows[static_cast<std::size_t>(r)];
    for (int v = 0; v < n; ++v) {
      tableau.at(r, v) = row.coeffs[static_cast<std::size_t>(v)];
    }
    tableau.rhs(r) = row.rhs;
    const int artificial = first_artificial + r;
    tableau.at(r, artificial) = 1.0;
    // Artificials can leave the basis but never re-enter it (the standard
    // drop-on-exit simplification, enforced by blocking the column).
    tableau.block_column(artificial);
    switch (row.relation) {
      case Relation::LessEqual:
        tableau.at(r, slack_cursor) = 1.0;
        tableau.basis(r) = slack_cursor++;
        break;
      case Relation::GreaterEqual:
        tableau.at(r, slack_cursor++) = -1.0;
        tableau.basis(r) = artificial;
        assembly.artificial_cols.push_back(artificial);
        break;
      case Relation::Equal:
        tableau.basis(r) = artificial;
        assembly.artificial_cols.push_back(artificial);
        break;
    }
  }
  assembly.needs_phase1 = !assembly.artificial_cols.empty();
  tableau.mark_structure();
  return assembly;
}

void install_phase2_costs(Assembly& assembly, const Model& model,
                          double sense_factor, double cost_scale) {
  // The objective is scaled to unit max-magnitude like the rows; the true
  // objective is recomputed from the model at extraction.
  const double factor = sense_factor / cost_scale;
  for (int v = 0; v < assembly.num_vars; ++v) {
    assembly.tableau.set_cost(v, factor * model.variable(v).objective);
  }
  // Artificials carry zero cost in phase 2; their columns were blocked at
  // assembly, so a zero-level artificial left basic on a redundant row
  // stays put and no artificial can ever re-enter the basis.
  for (const int c : assembly.artificial_cols) {
    assembly.tableau.set_cost(c, 0.0);
  }
}

/// Any artificial basic at a really-nonzero level means the (bound-shifted)
/// constraint system has no solution.
bool artificials_at_zero(const Assembly& assembly) {
  const Tableau& tableau = assembly.tableau;
  const int first_artificial = assembly.num_vars + assembly.num_slack;
  for (int r = 0; r < tableau.rows(); ++r) {
    if (tableau.basis(r) >= first_artificial &&
        std::abs(tableau.rhs(r)) > kInfeasibilityTol) {
      return false;
    }
  }
  return true;
}

void extract_solution(const Assembly& assembly, const Model& model,
                      const Bounds& bounds, const LPOptions& options,
                      LPResult& result) {
  const Tableau& tableau = assembly.tableau;
  const int n = assembly.num_vars;
  result.status = LPStatus::Optimal;
  result.objective = 0.0;
  result.values.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < tableau.rows(); ++r) {
    if (tableau.basis(r) < n) {
      result.values[static_cast<std::size_t>(tableau.basis(r))] =
          tableau.rhs(r);
    }
  }
  for (int v = 0; v < n; ++v) {
    result.values[static_cast<std::size_t>(v)] += bounds.lower_of(v);
    result.objective +=
        model.variable(v).objective * result.values[static_cast<std::size_t>(v)];
  }
  if (options.want_basis) {
    result.basis.rows = tableau.rows();
    result.basis.cols = tableau.cols();
    result.basis.columns.resize(static_cast<std::size_t>(tableau.rows()));
    for (int r = 0; r < tableau.rows(); ++r) {
      result.basis.columns[static_cast<std::size_t>(r)] = tableau.basis(r);
    }
  }
}

/// Reinstate `want` as the basis of a freshly assembled tableau by Gaussian
/// elimination restricted to the wanted columns. Returns false (tableau in
/// an unspecified state) when the suggestion is singular on this data.
bool crash_basis(Tableau& tableau, const std::vector<int>& want) {
  tableau.clear_reduced();
  const int m = tableau.rows();
  std::vector<char> row_done(static_cast<std::size_t>(m), 0);
  for (const int j : want) {
    if (j < 0 || j >= tableau.cols()) return false;
    // Look up basic status live: an earlier crash pivot may have evicted a
    // column that the initial basis held, so a snapshot taken up front
    // would double-mark rows and strand the evicted column outside.
    int already = -1;
    for (int r = 0; r < m; ++r) {
      if (tableau.basis(r) == j) {
        already = r;
        break;
      }
    }
    if (already >= 0) {
      row_done[static_cast<std::size_t>(already)] = 1;
      continue;
    }
    int best_row = -1;
    double best_mag = kCrashPivotTol;
    for (int r = 0; r < m; ++r) {
      if (row_done[static_cast<std::size_t>(r)]) continue;
      const double mag = std::abs(tableau.at(r, j));
      if (mag > best_mag) {
        best_mag = mag;
        best_row = r;
      }
    }
    if (best_row < 0) return false;
    tableau.pivot(best_row, j);
    row_done[static_cast<std::size_t>(best_row)] = 1;
  }
  for (int r = 0; r < m; ++r) {
    if (!row_done[static_cast<std::size_t>(r)]) return false;
  }
  return true;
}

LPResult solve_lp_impl(const Model& model, const LPOptions& options) {
  const int n = model.num_variables();
  const double tol = options.tolerance;
  MP_EXPECT(options.lower_bounds.empty() ||
                static_cast<int>(options.lower_bounds.size()) == n,
            "lower-bound override must cover every variable");
  MP_EXPECT(options.upper_bounds.empty() ||
                static_cast<int>(options.upper_bounds.size()) == n,
            "upper-bound override must cover every variable");

  const Bounds bounds{options.lower_bounds, options.upper_bounds, &model};
  LPResult result;
  for (int v = 0; v < n; ++v) {
    MP_EXPECT(std::isfinite(bounds.lower_of(v)),
              "variable lower bound must be finite");
    if (bounds.lower_of(v) > bounds.upper_of(v)) {
      result.status = LPStatus::Infeasible;  // crossed bounds: empty box
      return result;
    }
  }

  Assembly assembly = assemble(model, bounds);
  const double sense_factor = model.sense() == Sense::Minimize ? 1.0 : -1.0;
  double cost_scale = 0.0;
  for (int v = 0; v < n; ++v) {
    cost_scale = std::max(cost_scale, std::abs(model.variable(v).objective));
  }
  if (cost_scale == 0.0) cost_scale = 1.0;
  long long iterations = 0;

  // --- Warm path: dual-simplex restart from a prior basis ------------------
  if (options.warm_start != nullptr && options.warm_start->valid()) {
    const LPBasis& warm = *options.warm_start;
    if (warm.rows == assembly.tableau.rows() &&
        warm.cols == assembly.tableau.cols() &&
        crash_basis(assembly.tableau, warm.columns)) {
      install_phase2_costs(assembly, model, sense_factor, cost_scale);
      assembly.tableau.refresh_reduced();
      bool dual_feasible = true;
      for (int c = 0; c < assembly.tableau.cols(); ++c) {
        if (assembly.tableau.blocked(c)) continue;
        if (assembly.tableau.reduced(c) < -kInfeasibilityTol) {
          dual_feasible = false;
          break;
        }
      }
      if (dual_feasible) {
        const LPStatus status = assembly.tableau.dual_iterate(
            options.max_iterations, tol, iterations, result.stats);
        if (status == LPStatus::Optimal && artificials_at_zero(assembly)) {
          ++result.stats.warm_start_hits;
          extract_solution(assembly, model, bounds, options, result);
          return result;
        }
        if (status == LPStatus::Infeasible) {
          ++result.stats.warm_start_hits;
          result.status = LPStatus::Infeasible;
          return result;
        }
        // IterationLimit (or a nonzero artificial): distrust the restart
        // and fall through to a cold solve.
      }
    }
    // Every path that used the warm basis returned above.
    ++result.stats.warm_start_misses;
    assembly = assemble(model, bounds);  // crash mutated the tableau
  }

  // --- Phase 1: minimize the artificial sum -------------------------------
  if (assembly.needs_phase1) {
    for (const int c : assembly.artificial_cols) {
      assembly.tableau.set_cost(c, 1.0);
    }
    assembly.tableau.refresh_reduced();
    const LPStatus status = assembly.tableau.primal_iterate(
        options.max_iterations, tol, options.stall_pivots_before_bland,
        iterations, result.stats, result.stats.phase1_iterations);
    if (status == LPStatus::IterationLimit) {
      result.status = LPStatus::IterationLimit;
      return result;
    }
    MP_ENSURE(status != LPStatus::Unbounded,
              "phase-1 objective is bounded below by zero");
    if (!artificials_at_zero(assembly)) {
      result.status = LPStatus::Infeasible;
      return result;
    }
    // Pivot any artificial still in the basis (at zero level) out of it.
    const int real_cols = assembly.num_vars + assembly.num_slack;
    for (int r = 0; r < assembly.tableau.rows(); ++r) {
      if (assembly.tableau.basis(r) < real_cols) continue;
      for (int c = 0; c < real_cols; ++c) {
        if (std::abs(assembly.tableau.at(r, c)) > 1e-9) {
          assembly.tableau.pivot(r, c);
          break;
        }
      }
      // No replacement: the row is all-zero over real columns (redundant).
      // The zero-level artificial stays basic; its column is blocked, so it
      // can never re-enter elsewhere or pick up cost.
    }
  }

  // --- Phase 2: the real objective ----------------------------------------
  install_phase2_costs(assembly, model, sense_factor, cost_scale);
  assembly.tableau.refresh_reduced();
  const LPStatus status = assembly.tableau.primal_iterate(
      options.max_iterations, tol, options.stall_pivots_before_bland,
      iterations, result.stats, result.stats.phase2_iterations);
  if (status != LPStatus::Optimal) {
    result.status = status;
    return result;
  }
  extract_solution(assembly, model, bounds, options, result);
  return result;
}

}  // namespace

LPResult solve_lp(const Model& model, const LPOptions& options) {
  obs::Span span("lp_solve", obs::kCatSolver);
  const auto start = std::chrono::steady_clock::now();
  LPResult result = solve_lp_impl(model, options);
  span.arg("pivots", result.stats.pivots);
  span.arg("status", static_cast<long long>(result.status));
  result.stats.lp_solves = 1;
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace madpipe::solver
