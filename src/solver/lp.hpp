// Dense two-phase primal simplex for the linear relaxations used by the
// branch-and-bound MILP solver. Built for the small, well-scaled scheduling
// models of this library (tens of variables, ~hundreds of rows): a dense
// tableau is simple and robust, and the hot path is tuned for the
// branch-and-bound access pattern — the reduced-cost row is maintained
// incrementally across pivots, pricing is Dantzig (most negative) with an
// automatic fallback to Bland's rule after a degeneracy stall (anti-cycling
// guarantee), variable bounds can be overridden per solve without rebuilding
// the model, and a solve can be warm-started from the basis of a
// structurally identical previous solve (dual-simplex restart).
#pragma once

#include <span>
#include <vector>

#include "solver/model.hpp"
#include "solver/solver_stats.hpp"

namespace madpipe::solver {

enum class LPStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// Snapshot of a simplex basis: the basic column per tableau row, plus the
/// tableau dimensions it was taken at. Opaque to callers — pass it back via
/// LPOptions::warm_start to a solve of the same model structure (same
/// constraints, same set of finite upper bounds; only bound *values* may
/// differ). A mismatched basis is ignored, never an error.
struct LPBasis {
  std::vector<int> columns;
  int rows = 0;
  int cols = 0;

  bool valid() const noexcept {
    return rows > 0 && static_cast<int>(columns.size()) == rows;
  }
};

struct LPResult {
  LPStatus status = LPStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< per original model variable
  LPBasis basis;               ///< filled on Optimal when options.want_basis
  SolverStats stats;
};

struct LPOptions {
  long long max_iterations = 200'000;
  double tolerance = 1e-9;
  /// Consecutive degenerate (zero objective progress) Dantzig pivots
  /// tolerated before pricing falls back to Bland's rule; Bland stays in
  /// force until the objective moves again. 0 = always Bland.
  long long stall_pivots_before_bland = 64;
  /// Optional per-variable bound overrides (the branch-and-bound view onto
  /// a shared base model). When non-empty each span must hold exactly
  /// num_variables() entries; empty spans use the model's own bounds.
  std::span<const double> lower_bounds{};
  std::span<const double> upper_bounds{};
  /// Optional basis of a structurally identical prior solve to restart
  /// from. Unusable bases (dimension mismatch, singular crash, lost dual
  /// feasibility) fall back to a cold two-phase solve and count as a
  /// warm-start miss in the stats.
  const LPBasis* warm_start = nullptr;
  /// Record the final basis in LPResult::basis (Optimal solves only).
  bool want_basis = false;
};

/// Solve the continuous relaxation of `model` (integrality ignored).
LPResult solve_lp(const Model& model, const LPOptions& options = {});

}  // namespace madpipe::solver
