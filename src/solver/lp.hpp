// Dense two-phase primal simplex for the linear relaxations used by the
// branch-and-bound MILP solver. Built for the small, well-scaled scheduling
// models of this library (tens of variables, ~hundreds of rows): a dense
// tableau with Bland's anti-cycling rule is simple, robust and fast enough.
#pragma once

#include <vector>

#include "solver/model.hpp"

namespace madpipe::solver {

enum class LPStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LPResult {
  LPStatus status = LPStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< per original model variable
};

struct LPOptions {
  long long max_iterations = 200'000;
  double tolerance = 1e-9;
};

/// Solve the continuous relaxation of `model` (integrality ignored).
LPResult solve_lp(const Model& model, const LPOptions& options = {});

}  // namespace madpipe::solver
