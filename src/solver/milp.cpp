#include "solver/milp.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "util/expect.hpp"

namespace madpipe::solver {

namespace {

struct BranchBound {
  /// Extra variable bounds layered on the base model, indexed by variable.
  std::vector<double> lower;
  std::vector<double> upper;
};

/// Copy of `model` with tightened bounds (branching is expressed purely
/// through bounds, so only the variable table changes).
Model with_bounds(const Model& model, const BranchBound& bounds) {
  Model result;
  result.set_sense(model.sense());
  for (int v = 0; v < model.num_variables(); ++v) {
    const VariableDef& def = model.variable(v);
    result.add_variable(def.name, bounds.lower[static_cast<std::size_t>(v)],
                        bounds.upper[static_cast<std::size_t>(v)],
                        def.objective, def.type);
  }
  for (int c = 0; c < model.num_constraints(); ++c) {
    const ConstraintDef& def = model.constraint(c);
    result.add_constraint(def.expr, def.relation, def.rhs, def.name);
  }
  return result;
}

}  // namespace

MILPResult solve_milp(const Model& model, const MILPOptions& options) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.time_limit_seconds));
  const double sense_factor = model.sense() == Sense::Minimize ? 1.0 : -1.0;

  MILPResult result;
  double incumbent = std::numeric_limits<double>::infinity();  // minimized
  bool any_lp_truncated = false;

  BranchBound root;
  for (int v = 0; v < model.num_variables(); ++v) {
    root.lower.push_back(model.variable(v).lower);
    root.upper.push_back(model.variable(v).upper);
  }
  std::vector<BranchBound> stack{root};

  while (!stack.empty()) {
    if (result.nodes_explored >= options.max_nodes ||
        std::chrono::steady_clock::now() >= deadline) {
      any_lp_truncated = true;
      break;
    }
    const BranchBound node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    // Bound check: a branch with crossed bounds is empty.
    bool empty = false;
    for (std::size_t v = 0; v < node.lower.size(); ++v) {
      if (node.lower[v] > node.upper[v]) {
        empty = true;
        break;
      }
    }
    if (empty) continue;

    const Model branched = with_bounds(model, node);
    const LPResult lp = solve_lp(branched, options.lp);
    if (lp.status == LPStatus::Infeasible) continue;
    if (lp.status == LPStatus::Unbounded) {
      // Unbounded relaxation at the root means an unbounded MILP (or one we
      // refuse to chase); report and stop.
      result.status = MILPStatus::Unbounded;
      return result;
    }
    if (lp.status == LPStatus::IterationLimit) {
      any_lp_truncated = true;
      continue;
    }

    const double bound = sense_factor * lp.objective;
    if (bound >= incumbent - options.absolute_gap) continue;

    // Most fractional integer variable.
    int branch_var = -1;
    double worst_fraction = options.integrality_tolerance;
    for (int v = 0; v < model.num_variables(); ++v) {
      if (model.variable(v).type != VarType::Integer) continue;
      const double x = lp.values[static_cast<std::size_t>(v)];
      const double fraction = std::abs(x - std::round(x));
      if (fraction > worst_fraction) {
        worst_fraction = fraction;
        branch_var = v;
      }
    }

    if (branch_var < 0) {
      // Integer feasible: new incumbent.
      incumbent = bound;
      result.objective = lp.objective;
      result.values = lp.values;
      // Snap integer variables exactly.
      for (int v = 0; v < model.num_variables(); ++v) {
        if (model.variable(v).type == VarType::Integer) {
          result.values[static_cast<std::size_t>(v)] =
              std::round(result.values[static_cast<std::size_t>(v)]);
        }
      }
      continue;
    }

    const double x = lp.values[static_cast<std::size_t>(branch_var)];
    BranchBound down = node;
    down.upper[static_cast<std::size_t>(branch_var)] = std::floor(x);
    BranchBound up = node;
    up.lower[static_cast<std::size_t>(branch_var)] = std::ceil(x);
    // DFS: explore the side nearer the relaxation value first.
    if (x - std::floor(x) <= 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  const bool have_incumbent = std::isfinite(incumbent);
  if (have_incumbent) {
    result.status = (stack.empty() && !any_lp_truncated) ? MILPStatus::Optimal
                                                         : MILPStatus::Feasible;
  } else {
    result.status = (stack.empty() && !any_lp_truncated)
                        ? MILPStatus::Infeasible
                        : MILPStatus::Limit;
  }
  return result;
}

}  // namespace madpipe::solver
