#include "solver/milp.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace madpipe::solver {

namespace {

/// One open subproblem: variable bounds layered over the base model (the
/// branching state) plus the optimal basis of the parent's relaxation to
/// warm-start from. The base model itself is never copied.
struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  LPBasis parent_basis;
};

double objective_of(const Model& model, const std::vector<double>& values) {
  double total = 0.0;
  for (int v = 0; v < model.num_variables(); ++v) {
    total +=
        model.variable(v).objective * values[static_cast<std::size_t>(v)];
  }
  return total;
}

}  // namespace

MILPResult solve_milp(const Model& model, const MILPOptions& options) {
  obs::Span span("milp_solve", obs::kCatSolver);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(options.time_limit_seconds));
  const double sense_factor = model.sense() == Sense::Minimize ? 1.0 : -1.0;
  const auto finalize = [&](MILPResult& r) -> MILPResult& {
    r.stats.nodes_explored = r.nodes_explored;
    r.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    span.arg("nodes", r.nodes_explored);
    span.arg("pivots", r.stats.pivots);
    r.stats.publish();
    return r;
  };

  MILPResult result;
  double incumbent = std::numeric_limits<double>::infinity();  // minimized
  bool tried_rounding = false;

  Node root;
  for (int v = 0; v < model.num_variables(); ++v) {
    root.lower.push_back(model.variable(v).lower);
    root.upper.push_back(model.variable(v).upper);
  }
  std::vector<Node> stack;
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    if (result.nodes_explored >= options.max_nodes ||
        std::chrono::steady_clock::now() >= deadline) {
      result.budget_exhausted = true;
      break;
    }
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    // Bound check: a branch with crossed bounds is empty.
    bool empty = false;
    for (std::size_t v = 0; v < node.lower.size(); ++v) {
      if (node.lower[v] > node.upper[v]) {
        empty = true;
        break;
      }
    }
    if (empty) continue;

    LPOptions lp_options = options.lp;
    lp_options.lower_bounds = node.lower;
    lp_options.upper_bounds = node.upper;
    lp_options.want_basis = true;
    if (options.warm_start && node.parent_basis.valid()) {
      lp_options.warm_start = &node.parent_basis;
    }
    const LPResult lp = solve_lp(model, lp_options);
    result.stats.absorb(lp.stats);
    if (lp.status == LPStatus::Infeasible) continue;
    if (lp.status == LPStatus::Unbounded) {
      // Unbounded relaxation at the root means an unbounded MILP (or one we
      // refuse to chase); report and stop.
      result.status = MILPStatus::Unbounded;
      return finalize(result);
    }
    if (lp.status == LPStatus::IterationLimit) {
      result.lp_truncated = true;
      continue;
    }

    const double bound = sense_factor * lp.objective;
    if (bound >= incumbent - options.absolute_gap) continue;

    // Most fractional integer variable.
    int branch_var = -1;
    double worst_fraction = options.integrality_tolerance;
    for (int v = 0; v < model.num_variables(); ++v) {
      if (model.variable(v).type != VarType::Integer) continue;
      const double x = lp.values[static_cast<std::size_t>(v)];
      const double fraction = std::abs(x - std::round(x));
      if (fraction > worst_fraction) {
        worst_fraction = fraction;
        branch_var = v;
      }
    }

    if (branch_var < 0) {
      // Integer feasible: new incumbent.
      incumbent = bound;
      result.objective = lp.objective;
      result.values = lp.values;
      // Snap integer variables exactly.
      for (int v = 0; v < model.num_variables(); ++v) {
        if (model.variable(v).type == VarType::Integer) {
          result.values[static_cast<std::size_t>(v)] =
              std::round(result.values[static_cast<std::size_t>(v)]);
        }
      }
      continue;
    }

    // Root rounding heuristic: snap the relaxation to the nearest integer
    // point; when that point is feasible it seeds the incumbent so the
    // bound test above prunes from the very first branched node.
    if (options.rounding_heuristic && !tried_rounding) {
      tried_rounding = true;
      std::vector<double> rounded = lp.values;
      for (int v = 0; v < model.num_variables(); ++v) {
        if (model.variable(v).type != VarType::Integer) continue;
        double x = std::round(rounded[static_cast<std::size_t>(v)]);
        x = std::max(x, node.lower[static_cast<std::size_t>(v)]);
        x = std::min(x, node.upper[static_cast<std::size_t>(v)]);
        rounded[static_cast<std::size_t>(v)] = x;
      }
      if (model.is_feasible(rounded)) {
        const double rounded_objective = objective_of(model, rounded);
        incumbent = sense_factor * rounded_objective;
        result.objective = rounded_objective;
        result.values = std::move(rounded);
        ++result.stats.heuristic_incumbents;
      }
    }

    const double x = lp.values[static_cast<std::size_t>(branch_var)];
    Node down;
    down.lower = node.lower;
    down.upper = node.upper;
    down.upper[static_cast<std::size_t>(branch_var)] = std::floor(x);
    Node up;
    up.lower = node.lower;
    up.upper = node.upper;
    up.lower[static_cast<std::size_t>(branch_var)] = std::ceil(x);
    if (options.warm_start) {
      down.parent_basis = lp.basis;
      up.parent_basis = lp.basis;
    }
    // DFS: explore the side nearer the relaxation value first.
    if (x - std::floor(x) <= 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  const bool have_incumbent = std::isfinite(incumbent);
  const bool truncated =
      result.budget_exhausted || result.lp_truncated || !stack.empty();
  if (have_incumbent) {
    result.status = truncated ? MILPStatus::Feasible : MILPStatus::Optimal;
  } else {
    result.status = truncated ? MILPStatus::Limit : MILPStatus::Infeasible;
  }
  return finalize(result);
}

}  // namespace madpipe::solver
