// Branch-and-bound MILP solver over the simplex relaxation: depth-first
// search branching on the most fractional integer variable, bounded by the
// incumbent, with node and wall-clock limits (mirroring the paper's
// one-minute ILP budget).
#pragma once

#include <vector>

#include "solver/lp.hpp"
#include "solver/model.hpp"

namespace madpipe::solver {

enum class MILPStatus {
  Optimal,     ///< incumbent proven optimal
  Feasible,    ///< incumbent found, search truncated by a limit
  Infeasible,  ///< no integer-feasible point exists
  Unbounded,
  Limit,       ///< limits hit before any incumbent was found
};

struct MILPOptions {
  double time_limit_seconds = 60.0;
  long long max_nodes = 200'000;
  double integrality_tolerance = 1e-6;
  /// Prune nodes whose bound is within this of the incumbent.
  double absolute_gap = 1e-9;
  LPOptions lp;
};

struct MILPResult {
  MILPStatus status = MILPStatus::Limit;
  double objective = 0.0;
  std::vector<double> values;
  long long nodes_explored = 0;
};

MILPResult solve_milp(const Model& model, const MILPOptions& options = {});

}  // namespace madpipe::solver
