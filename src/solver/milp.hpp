// Branch-and-bound MILP solver over the simplex relaxation: depth-first
// search branching on the most fractional integer variable, bounded by the
// incumbent, with node and wall-clock limits (mirroring the paper's
// one-minute ILP budget). The hot path is copy-free: branching is expressed
// as per-variable bound overrides onto the one shared model (no Model
// reconstruction per node), child relaxations warm-start from the parent's
// optimal basis via the dual simplex, and a rounding heuristic on the root
// relaxation seeds the incumbent so pruning fires from node 1.
//
// Observability: solve_milp wraps the solve in an obs::Span
// (`milp_solve`, category "solver") and publishes the run's SolverStats
// into the obs::Registry on return (madpipe_solver_* counters); both are
// ~free when no sink is armed. See DESIGN.md §9.
#pragma once

#include <vector>

#include "solver/lp.hpp"
#include "solver/model.hpp"
#include "solver/solver_stats.hpp"

namespace madpipe::solver {

enum class MILPStatus {
  Optimal,     ///< incumbent proven optimal
  Feasible,    ///< incumbent found, search truncated by a limit
  Infeasible,  ///< no integer-feasible point exists
  Unbounded,
  Limit,       ///< limits hit before any incumbent was found
};

struct MILPOptions {
  double time_limit_seconds = 60.0;
  long long max_nodes = 200'000;
  double integrality_tolerance = 1e-6;
  /// Prune nodes whose bound is within this of the incumbent.
  double absolute_gap = 1e-9;
  /// Re-solve child relaxations from the parent's optimal basis (a dual
  /// simplex restart). Off = every node gets a cold two-phase solve. The
  /// restart reliably halves simplex iterations per node, but on the dense
  /// tableau each restart pays an O(m²·n) basis crash, which outweighs the
  /// saved pivots at the model sizes this library solves — so it defaults
  /// off and exists for experimentation (and larger models).
  bool warm_start = false;
  /// Round the root relaxation toward integrality and adopt the result as
  /// the initial incumbent when it is feasible.
  bool rounding_heuristic = true;
  LPOptions lp;
};

struct MILPResult {
  MILPStatus status = MILPStatus::Limit;
  double objective = 0.0;
  std::vector<double> values;
  long long nodes_explored = 0;
  /// The search ran out of nodes or wall-clock budget (some subtrees were
  /// never visited).
  bool budget_exhausted = false;
  /// At least one LP relaxation hit its own iteration limit and was treated
  /// conservatively (its subtree may have been mispruned as unexplored).
  bool lp_truncated = false;
  SolverStats stats;
};

MILPResult solve_milp(const Model& model, const MILPOptions& options = {});

}  // namespace madpipe::solver
