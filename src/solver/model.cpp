#include "solver/model.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace madpipe::solver {

int Model::add_variable(const std::string& name, double lower, double upper,
                        double objective, VarType type) {
  MP_EXPECT(std::isfinite(lower), "variable lower bound must be finite");
  MP_EXPECT(upper >= lower, "variable bounds must be ordered");
  variables_.push_back(VariableDef{name, lower, upper, objective, type});
  return static_cast<int>(variables_.size()) - 1;
}

void Model::add_constraint(LinearExpr expr, Relation relation, double rhs,
                           const std::string& name) {
  for (const auto& [variable, coeff] : expr.terms) {
    MP_EXPECT(variable >= 0 && variable < num_variables(),
              "constraint references unknown variable");
    MP_EXPECT(std::isfinite(coeff), "constraint coefficients must be finite");
  }
  MP_EXPECT(std::isfinite(rhs), "constraint rhs must be finite");
  constraints_.push_back(ConstraintDef{std::move(expr), relation, rhs, name});
}

const VariableDef& Model::variable(int index) const {
  MP_EXPECT(index >= 0 && index < num_variables(), "variable index range");
  return variables_[static_cast<std::size_t>(index)];
}

const ConstraintDef& Model::constraint(int index) const {
  MP_EXPECT(index >= 0 && index < num_constraints(), "constraint index range");
  return constraints_[static_cast<std::size_t>(index)];
}

double Model::evaluate(const LinearExpr& expr,
                       const std::vector<double>& values) {
  double total = 0.0;
  for (const auto& [variable, coeff] : expr.terms) {
    total += coeff * values[static_cast<std::size_t>(variable)];
  }
  return total;
}

bool Model::is_feasible(const std::vector<double>& values, double tol) const {
  if (static_cast<int>(values.size()) != num_variables()) return false;
  for (int v = 0; v < num_variables(); ++v) {
    const VariableDef& def = variables_[static_cast<std::size_t>(v)];
    const double x = values[static_cast<std::size_t>(v)];
    if (x < def.lower - tol || x > def.upper + tol) return false;
    if (def.type == VarType::Integer &&
        std::abs(x - std::round(x)) > tol) {
      return false;
    }
  }
  for (const ConstraintDef& c : constraints_) {
    const double lhs = evaluate(c.expr, values);
    switch (c.relation) {
      case Relation::LessEqual:
        if (lhs > c.rhs + tol) return false;
        break;
      case Relation::GreaterEqual:
        if (lhs < c.rhs - tol) return false;
        break;
      case Relation::Equal:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace madpipe::solver
