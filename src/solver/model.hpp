// Linear/mixed-integer model builder: the input format of the in-house
// solver stack (two-phase simplex in lp.hpp, branch-and-bound in milp.hpp).
// The paper solves its phase-2 scheduling step with a commercial ILP solver
// under a one-minute time limit; this subsystem is our from-scratch
// replacement (see DESIGN.md, substitutions).
#pragma once

#include <string>
#include <vector>

namespace madpipe::solver {

enum class Sense { Minimize, Maximize };
enum class VarType { Continuous, Integer };
enum class Relation { LessEqual, GreaterEqual, Equal };

/// Sparse linear expression Σ coeff·x over variable indices.
struct LinearExpr {
  std::vector<std::pair<int, double>> terms;

  LinearExpr& add(int variable, double coeff) {
    terms.emplace_back(variable, coeff);
    return *this;
  }
};

struct VariableDef {
  std::string name;
  double lower = 0.0;
  double upper = 0.0;
  double objective = 0.0;
  VarType type = VarType::Continuous;
};

struct ConstraintDef {
  LinearExpr expr;
  Relation relation = Relation::LessEqual;
  double rhs = 0.0;
  std::string name;
};

/// A mixed-integer linear program. Variable bounds must be finite lower
/// (≥ some value) — use a large explicit upper bound instead of +inf when a
/// variable is effectively unbounded (the solver is built for the small,
/// well-scaled scheduling models of this library).
class Model {
 public:
  /// Add a variable; returns its index.
  int add_variable(const std::string& name, double lower, double upper,
                   double objective, VarType type = VarType::Continuous);
  void add_constraint(LinearExpr expr, Relation relation, double rhs,
                      const std::string& name = "");
  void set_sense(Sense sense) noexcept { sense_ = sense; }

  Sense sense() const noexcept { return sense_; }
  int num_variables() const noexcept { return static_cast<int>(variables_.size()); }
  int num_constraints() const noexcept {
    return static_cast<int>(constraints_.size());
  }
  const VariableDef& variable(int index) const;
  const ConstraintDef& constraint(int index) const;

  /// Value of `expr` under an assignment.
  static double evaluate(const LinearExpr& expr,
                         const std::vector<double>& values);

  /// True when `values` satisfies all constraints and bounds within `tol`,
  /// including integrality of integer variables.
  bool is_feasible(const std::vector<double>& values, double tol = 1e-6) const;

 private:
  std::vector<VariableDef> variables_;
  std::vector<ConstraintDef> constraints_;
  Sense sense_ = Sense::Minimize;
};

}  // namespace madpipe::solver
