#include "solver/solver_stats.hpp"

#include "util/json.hpp"

namespace madpipe::solver {

void SolverStats::absorb(const SolverStats& other) noexcept {
  pivots += other.pivots;
  phase1_iterations += other.phase1_iterations;
  phase2_iterations += other.phase2_iterations;
  dual_iterations += other.dual_iterations;
  bland_pivots += other.bland_pivots;
  lp_solves += other.lp_solves;
  nodes_explored += other.nodes_explored;
  warm_start_hits += other.warm_start_hits;
  warm_start_misses += other.warm_start_misses;
  heuristic_incumbents += other.heuristic_incumbents;
  wall_seconds += other.wall_seconds;
}

void SolverStats::write_json(json::Writer& writer) const {
  writer.begin_object();
  writer.key("pivots");
  writer.value(pivots);
  writer.key("phase1_iterations");
  writer.value(phase1_iterations);
  writer.key("phase2_iterations");
  writer.value(phase2_iterations);
  writer.key("dual_iterations");
  writer.value(dual_iterations);
  writer.key("bland_pivots");
  writer.value(bland_pivots);
  writer.key("lp_solves");
  writer.value(lp_solves);
  writer.key("nodes_explored");
  writer.value(nodes_explored);
  writer.key("warm_start_hits");
  writer.value(warm_start_hits);
  writer.key("warm_start_misses");
  writer.value(warm_start_misses);
  writer.key("heuristic_incumbents");
  writer.value(heuristic_incumbents);
  writer.key("wall_seconds");
  writer.value(wall_seconds);
  writer.end_object();
}

}  // namespace madpipe::solver
