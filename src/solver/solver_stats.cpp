#include "solver/solver_stats.hpp"

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace madpipe::solver {

void SolverStats::absorb(const SolverStats& other) noexcept {
  pivots += other.pivots;
  phase1_iterations += other.phase1_iterations;
  phase2_iterations += other.phase2_iterations;
  dual_iterations += other.dual_iterations;
  bland_pivots += other.bland_pivots;
  lp_solves += other.lp_solves;
  nodes_explored += other.nodes_explored;
  warm_start_hits += other.warm_start_hits;
  warm_start_misses += other.warm_start_misses;
  heuristic_incumbents += other.heuristic_incumbents;
  wall_seconds += other.wall_seconds;
}

void SolverStats::write_json(json::Writer& writer) const {
  writer.begin_object();
  writer.key("pivots");
  writer.value(pivots);
  writer.key("phase1_iterations");
  writer.value(phase1_iterations);
  writer.key("phase2_iterations");
  writer.value(phase2_iterations);
  writer.key("dual_iterations");
  writer.value(dual_iterations);
  writer.key("bland_pivots");
  writer.value(bland_pivots);
  writer.key("lp_solves");
  writer.value(lp_solves);
  writer.key("nodes_explored");
  writer.value(nodes_explored);
  writer.key("warm_start_hits");
  writer.value(warm_start_hits);
  writer.key("warm_start_misses");
  writer.value(warm_start_misses);
  writer.key("heuristic_incumbents");
  writer.value(heuristic_incumbents);
  writer.key("wall_seconds");
  writer.value(wall_seconds);
  writer.end_object();
}

void SolverStats::publish() const {
  // References into the global registry are resolved once and cached: the
  // registry never destroys entities, so the statics stay valid for the
  // process lifetime and publish() costs only relaxed atomic adds.
  struct Metrics {
    obs::Counter& pivots;
    obs::Counter& phase1_iterations;
    obs::Counter& phase2_iterations;
    obs::Counter& dual_iterations;
    obs::Counter& bland_pivots;
    obs::Counter& lp_solves;
    obs::Counter& nodes_explored;
    obs::Counter& warm_start_hits;
    obs::Counter& warm_start_misses;
    obs::Counter& heuristic_incumbents;
    obs::Histogram& wall;
  };
  static Metrics metrics = [] {
    obs::Registry& r = obs::Registry::global();
    return Metrics{
        r.counter("madpipe_solver_pivots_total",
                  "Simplex pivots (primal + dual), all MILP solves"),
        r.counter("madpipe_solver_phase1_iterations_total",
                  "Pivots spent driving artificials out"),
        r.counter("madpipe_solver_phase2_iterations_total",
                  "Pivots on the real objective"),
        r.counter("madpipe_solver_dual_iterations_total",
                  "Dual-simplex pivots (warm restarts)"),
        r.counter("madpipe_solver_bland_pivots_total",
                  "Pivots under the anti-cycling fallback"),
        r.counter("madpipe_solver_lp_solves_total",
                  "Calls into the simplex"),
        r.counter("madpipe_solver_bb_nodes_total",
                  "Branch-and-bound nodes explored (MILP)"),
        r.counter("madpipe_solver_warm_start_hits_total",
                  "LP solves restarted from a prior basis"),
        r.counter("madpipe_solver_warm_start_misses_total",
                  "Warm bases offered but unusable"),
        r.counter("madpipe_solver_heuristic_incumbents_total",
                  "Incumbents found by LP rounding"),
        r.histogram("madpipe_solver_wall_seconds",
                    obs::latency_bounds_seconds(),
                    "Wall time per top-level MILP solve"),
    };
  }();
  metrics.pivots.add(pivots);
  metrics.phase1_iterations.add(phase1_iterations);
  metrics.phase2_iterations.add(phase2_iterations);
  metrics.dual_iterations.add(dual_iterations);
  metrics.bland_pivots.add(bland_pivots);
  metrics.lp_solves.add(lp_solves);
  metrics.nodes_explored.add(nodes_explored);
  metrics.warm_start_hits.add(warm_start_hits);
  metrics.warm_start_misses.add(warm_start_misses);
  metrics.heuristic_incumbents.add(heuristic_incumbents);
  metrics.wall.observe(wall_seconds);
}

}  // namespace madpipe::solver
