// Perf counters threaded through every LP/MILP solve so the planner's
// dominant cost — solver throughput — is observable end to end: in unit
// tests, in the bench harness (BENCH_solver.json) and in madpipe_cli.
#pragma once

namespace madpipe::json {
class Writer;
}

namespace madpipe::solver {

/// Defined when LPResult/MILPResult carry a SolverStats block; lets tools
/// compile against both the instrumented and the pre-instrumentation API.
#define MADPIPE_SOLVER_STATS 1

struct SolverStats {
  long long pivots = 0;             ///< all simplex pivots (primal + dual)
  long long phase1_iterations = 0;  ///< pivots spent driving artificials out
  long long phase2_iterations = 0;  ///< pivots on the real objective
  long long dual_iterations = 0;    ///< dual-simplex pivots (warm restarts)
  long long bland_pivots = 0;       ///< pivots under the anti-cycling fallback
  long long lp_solves = 0;          ///< calls into the simplex
  long long nodes_explored = 0;     ///< branch-and-bound nodes (MILP)
  long long warm_start_hits = 0;    ///< LP solves restarted from a prior basis
  long long warm_start_misses = 0;  ///< warm bases offered but unusable
  long long heuristic_incumbents = 0;  ///< incumbents found by LP rounding
  double wall_seconds = 0.0;

  /// Sum every field of `other` into this block. Callers that own a field
  /// (e.g. solve_milp owns wall_seconds and nodes_explored) overwrite it
  /// after accumulating.
  void absorb(const SolverStats& other) noexcept;

  /// Append this block as one JSON object value (the caller writes the key).
  void write_json(json::Writer& writer) const;

  /// Add this block into the process-wide obs::Registry (the cumulative
  /// madpipe_solver_* counters and the solve-wall histogram). Called once
  /// per top-level solve_milp so registry totals aggregate per MILP solve;
  /// the struct's own fields are unchanged (they remain the per-run view).
  /// Thread-safe (relaxed atomic adds).
  void publish() const;
};

}  // namespace madpipe::solver
