#include "util/cli.hpp"

namespace madpipe::cli {

OptionArg split_option(std::string_view token) {
  OptionArg arg;
  if (token.size() > 2 && token.substr(0, 2) == "--") {
    const std::size_t eq = token.find('=');
    if (eq != std::string_view::npos) {
      arg.name = std::string(token.substr(0, eq));
      arg.inline_value = std::string(token.substr(eq + 1));
      return arg;
    }
  }
  arg.name = std::string(token);
  return arg;
}

std::optional<std::string> take_value(const OptionArg& option, int argc,
                                      char** argv, int* index) {
  if (option.inline_value.has_value()) return option.inline_value;
  if (*index + 1 >= argc) return std::nullopt;
  ++*index;
  return std::string(argv[*index]);
}

}  // namespace madpipe::cli
