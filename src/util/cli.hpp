// Shared command-line option tokenization for the madpipe CLI and the
// benchmark harness: both accept `--opt value` and `--opt=value` for every
// value-taking flag, with one splitting rule instead of two hand-rolled
// (and historically divergent) copies.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace madpipe::cli {

/// A tokenized argv entry: the flag name (including leading dashes) and the
/// inline `=value` part, when present.
struct OptionArg {
  std::string name;
  std::optional<std::string> inline_value;
};

/// Split one argv token at the first '=' — only for `--`-prefixed tokens
/// with a non-empty flag name, so positionals and values containing '=' are
/// never mangled. "--out=a=b" → {"--out", "a=b"}; "--json" → {"--json", ∅}.
OptionArg split_option(std::string_view token);

/// The value of a value-taking option: the inline part if present, else the
/// next argv entry (advancing *index past it). std::nullopt when the value
/// is missing — the caller owns the error message and exit path.
std::optional<std::string> take_value(const OptionArg& option, int argc,
                                      char** argv, int* index);

}  // namespace madpipe::cli
