// Contract-checking helpers (C++ Core Guidelines I.6 / E.12 style).
//
// MP_EXPECT  — precondition on a public API; always on, throws.
// MP_ENSURE  — postcondition / internal invariant; always on, throws.
// MP_ASSERT  — hot-path invariant; compiled out in NDEBUG builds.
//
// We throw (rather than abort) so that tests can exercise contract
// violations and library users get a catchable, descriptive error.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace madpipe {

/// Error thrown when a contract (pre/postcondition) is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const std::string& msg,
                                       const std::source_location loc) {
  std::string what(kind);
  what += " failed: ";
  what += expr;
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  what += " [";
  what += loc.file_name();
  what += ':';
  what += std::to_string(loc.line());
  what += ']';
  throw ContractViolation(what);
}
}  // namespace detail

#define MP_EXPECT(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::madpipe::detail::contract_fail("precondition", #cond, (msg),  \
                                       std::source_location::current()); \
    }                                                                 \
  } while (false)

#define MP_ENSURE(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::madpipe::detail::contract_fail("invariant", #cond, (msg),     \
                                       std::source_location::current()); \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define MP_ASSERT(cond, msg) ((void)0)
#else
#define MP_ASSERT(cond, msg) MP_ENSURE(cond, msg)
#endif

}  // namespace madpipe
