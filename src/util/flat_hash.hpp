// Open-addressing hash table for the planner hot paths.
//
// std::unordered_map pays a node allocation, a pointer chase and (in the DP
// memo's old find/emplace/assign pattern) three hashings per state. This
// table keeps entries inline in one flat power-of-two array with linear
// probing, so a lookup is one mix of the key plus a short contiguous scan,
// and insert-or-find is a single probe sequence. It is deliberately minimal:
// 64-bit keys, trivially-copyable values. Deletion (added for the serve
// plan cache's LRU) uses backward-shift compaction instead of tombstones,
// so probe sequences stay short no matter how many entries churn.
//
// One key value (~0, kEmptyKey) is reserved to mark empty slots; the DP's
// packed states use at most 44 bits, so the sentinel is never a real key.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/expect.hpp"

namespace madpipe::util {

/// Finalizer of splitmix64: a cheap, well-mixing 64-bit hash.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename Value>
class FlatHash64 {
  static_assert(std::is_trivially_copyable_v<Value>,
                "FlatHash64 stores values inline and memcpy-moves them on "
                "growth");

 public:
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  struct Slot {
    std::uint64_t key = kEmptyKey;
    Value value{};
  };

  /// `expected` is a size heuristic: capacity is the smallest power of two
  /// that holds `expected` entries under the maximum load factor, so a
  /// well-guessed reserve avoids every growth rehash on the hot path.
  explicit FlatHash64(std::size_t expected = 0) { rehash_for(expected); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return slots_.size(); }
  double load_factor() const noexcept {
    return slots_.empty()
               ? 0.0
               : static_cast<double>(size_) / static_cast<double>(capacity());
  }

  /// Growth rehashes that moved live entries (reserve-time growth of an
  /// empty table is free and not counted).
  std::size_t rehashes() const noexcept { return rehashes_; }
  /// Entry-moving rehashes a reserve() skipped: the doublings lazy growth
  /// would have performed to reach the reserved capacity.
  std::size_t rehashes_avoided() const noexcept { return rehashes_avoided_; }

  /// Grow (never shrink) so that `expected` entries fit without rehashing.
  void reserve(std::size_t expected) {
    const std::size_t target = needed_capacity(expected);
    if (target <= slots_.size()) return;
    std::size_t doublings = 0;
    for (std::size_t c = slots_.size(); c < target; c *= 2) ++doublings;
    const bool moves_entries = size_ > 0;  // rehash_for counts this one
    rehash_for(expected);
    rehashes_avoided_ += doublings - (moves_entries ? 1 : 0);
  }

  void clear() noexcept {
    for (Slot& slot : slots_) slot.key = kEmptyKey;
    size_ = 0;
  }

  /// Pointer to the value stored under `key`, or nullptr. Never invalidated
  /// by other finds; invalidated by any insert (the table may rehash).
  const Value* find(std::uint64_t key) const noexcept {
    const Slot* slot = probe(key);
    return slot->key == key ? &slot->value : nullptr;
  }
  Value* find(std::uint64_t key) noexcept {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  /// Single-probe insert-or-find: returns the value slot for `key` and
  /// whether it was newly inserted (in which case it holds a copy of
  /// `value`). An existing entry is left untouched.
  std::pair<Value*, bool> emplace(std::uint64_t key, const Value& value) {
    MP_EXPECT(key != kEmptyKey, "the all-ones key is reserved");
    if ((size_ + 1) * 8 > slots_.size() * 7) rehash_for(size_ + 1);
    Slot* slot = probe_mutable(key);
    if (slot->key == key) return {&slot->value, false};
    slot->key = key;
    slot->value = value;
    ++size_;
    return {&slot->value, true};
  }

  /// Remove `key` if present; returns whether an entry was removed.
  /// Backward-shift deletion: entries displaced past the hole are slid back
  /// toward their home slot, so the table never accumulates tombstones and
  /// `find` keeps its no-deleted-marker probe loop. Invalidates pointers
  /// previously returned by find/emplace.
  bool erase(std::uint64_t key) noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmptyKey) return false;
      i = (i + 1) & mask;
    }
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (slots_[j].key == kEmptyKey) break;
      const std::size_t home =
          static_cast<std::size_t>(mix64(slots_[j].key)) & mask;
      // Move slots_[j] into the hole at i only when its home position lies
      // cyclically at-or-before i (otherwise the move would break the
      // contiguous probe run between home and j).
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i] = Slot{};
    --size_;
    return true;
  }

 private:
  static std::size_t needed_capacity(std::size_t expected) {
    std::size_t capacity = 16;
    // Keep the load factor at or below 7/8 after `expected` insertions.
    while (capacity * 7 < expected * 8) capacity *= 2;
    return capacity;
  }

  const Slot* probe(std::uint64_t key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
    while (slots_[i].key != key && slots_[i].key != kEmptyKey) {
      i = (i + 1) & mask;
    }
    return &slots_[i];
  }
  Slot* probe_mutable(std::uint64_t key) noexcept {
    return const_cast<Slot*>(probe(key));
  }

  void rehash_for(std::size_t expected) {
    const std::size_t capacity =
        std::max(needed_capacity(expected), slots_.size() * 2);
    if (size_ > 0) ++rehashes_;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    for (const Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      *probe_mutable(slot.key) = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t rehashes_ = 0;
  std::size_t rehashes_avoided_ = 0;
};

/// Append-only, insertion-ordered 64-bit key set with O(1) membership.
///
/// The DP wavefront slabs use it to dedup states emitted by concurrent
/// shards while keeping a stable enumeration order: appending per-shard
/// emission buffers in shard order reproduces the serial emission sequence
/// for any shard count (shards are contiguous ranges of the parent slab),
/// so the set's key order — and therefore every index stored in it — is
/// independent of how many threads produced the buffers.
class IndexedKeySet64 {
 public:
  explicit IndexedKeySet64(std::size_t expected = 0) : index_(expected) {
    keys_.reserve(expected);
  }

  std::size_t size() const noexcept { return keys_.size(); }
  bool empty() const noexcept { return keys_.empty(); }
  const std::vector<std::uint64_t>& keys() const noexcept { return keys_; }
  std::uint64_t key_at(std::size_t i) const noexcept { return keys_[i]; }
  double load_factor() const noexcept { return index_.load_factor(); }
  std::size_t rehashes() const noexcept { return index_.rehashes(); }
  std::size_t rehashes_avoided() const noexcept {
    return index_.rehashes_avoided();
  }

  void reserve(std::size_t expected) {
    index_.reserve(expected);
    keys_.reserve(expected);
  }

  /// Index of `key` in insertion order, or −1 when absent.
  std::int32_t find(std::uint64_t key) const noexcept {
    const std::int32_t* idx = index_.find(key);
    return idx ? *idx : -1;
  }

  /// Insert if absent; returns {insertion index, whether it was new}.
  std::pair<std::int32_t, bool> insert(std::uint64_t key) {
    const auto [slot, inserted] =
        index_.emplace(key, static_cast<std::int32_t>(keys_.size()));
    if (inserted) keys_.push_back(key);
    return {*slot, inserted};
  }

  /// Append the keys of [begin, end) in order, skipping ones already
  /// present, refusing to grow past `cap` total keys. Returns false iff the
  /// cap truncated the merge (a *new* key was dropped — duplicates past the
  /// cap do not count as truncation).
  bool merge_shard(const std::uint64_t* begin, const std::uint64_t* end,
                   std::size_t cap) {
    for (const std::uint64_t* it = begin; it != end; ++it) {
      if (index_.find(*it) != nullptr) continue;
      if (keys_.size() >= cap) return false;
      index_.emplace(*it, static_cast<std::int32_t>(keys_.size()));
      keys_.push_back(*it);
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> keys_;
  FlatHash64<std::int32_t> index_;
};

}  // namespace madpipe::util
