#include "util/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/expect.hpp"

namespace madpipe::fmt {

namespace {
std::string printf_str(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}
}  // namespace

std::string bytes(double value) {
  const double sign = value < 0 ? -1.0 : 1.0;
  const double v = std::abs(value);
  if (v >= 1e9) return printf_str("%.2f GB", sign * v / 1e9);
  if (v >= 1e6) return printf_str("%.1f MB", sign * v / 1e6);
  if (v >= 1e3) return printf_str("%.1f kB", sign * v / 1e3);
  return printf_str("%.0f B", sign * v);
}

std::string seconds(double value) {
  const double sign = value < 0 ? -1.0 : 1.0;
  const double v = std::abs(value);
  if (v >= 1.0) return printf_str("%.3f s", sign * v);
  if (v >= 1e-3) return printf_str("%.2f ms", sign * v * 1e3);
  if (v >= 1e-6) return printf_str("%.1f us", sign * v * 1e6);
  return printf_str("%.1f ns", sign * v * 1e9);
}

std::string fixed(double value, int precision) {
  MP_EXPECT(precision >= 0 && precision <= 17, "unsupported precision");
  char format[16];
  std::snprintf(format, sizeof(format), "%%.%df", precision);
  return printf_str(format, value);
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MP_EXPECT(!header_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MP_EXPECT(cells.size() == header_.size(),
            "row width must match the header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? "  " : "\n");
    }
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace madpipe::fmt
