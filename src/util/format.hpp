// Human-readable formatting of quantities and simple fixed-width tables,
// used by examples and the benchmark harness to print paper-style rows.
#pragma once

#include <string>
#include <vector>

namespace madpipe::fmt {

/// "1.50 GB", "512.0 MB", "96 B" — powers of 10 like the paper (GB = 1e9).
std::string bytes(double value);

/// "12.3 ms", "1.204 s", "850 us".
std::string seconds(double value);

/// Fixed-precision decimal, e.g. ratio("1.2345", 3) -> "1.234".
std::string fixed(double value, int precision);

/// Pretty fixed-width text table. Column widths auto-fit the content.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with a header underline; every row padded to column width.
  std::string to_string() const;
  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace madpipe::fmt
