#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/expect.hpp"

namespace madpipe::json {

void Writer::maybe_comma() {
  if (!scopes_.empty() && !pending_key_) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
  pending_key_ = false;
}

void Writer::append_escaped(const std::string& raw) {
  out_ += '"';
  for (const char c : raw) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void Writer::begin_object() {
  maybe_comma();
  out_ += '{';
  scopes_.push_back(Scope::Object);
  has_items_.push_back(false);
}

void Writer::end_object() {
  MP_EXPECT(!scopes_.empty() && scopes_.back() == Scope::Object,
            "end_object without matching begin_object");
  out_ += '}';
  scopes_.pop_back();
  has_items_.pop_back();
}

void Writer::begin_array() {
  maybe_comma();
  out_ += '[';
  scopes_.push_back(Scope::Array);
  has_items_.push_back(false);
}

void Writer::end_array() {
  MP_EXPECT(!scopes_.empty() && scopes_.back() == Scope::Array,
            "end_array without matching begin_array");
  out_ += ']';
  scopes_.pop_back();
  has_items_.pop_back();
}

void Writer::key(const std::string& name) {
  MP_EXPECT(!scopes_.empty() && scopes_.back() == Scope::Object,
            "key() only valid inside an object");
  maybe_comma();
  append_escaped(name);
  out_ += ':';
  pending_key_ = true;
}

void Writer::value(const std::string& v) {
  maybe_comma();
  append_escaped(v);
}

void Writer::value(const char* v) { value(std::string(v)); }

void Writer::value(double v) {
  maybe_comma();
  if (std::isfinite(v)) {
    // Shortest representation that round-trips exactly.
    char buf[48];
    for (const int precision : {15, 16, 17}) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no Inf/NaN literal
  }
}

void Writer::value(long long v) {
  maybe_comma();
  out_ += std::to_string(v);
}

void Writer::value(bool v) {
  maybe_comma();
  out_ += v ? "true" : "false";
}

void Writer::null() {
  maybe_comma();
  out_ += "null";
}

std::string Writer::str() const {
  MP_EXPECT(scopes_.empty(), "document has unterminated scopes");
  return out_;
}

}  // namespace madpipe::json
