#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/expect.hpp"

namespace madpipe::json {

void Writer::maybe_comma() {
  if (!scopes_.empty() && !pending_key_) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
  pending_key_ = false;
}

void Writer::append_escaped(const std::string& raw) {
  out_ += '"';
  for (const char c : raw) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void Writer::begin_object() {
  maybe_comma();
  out_ += '{';
  scopes_.push_back(Scope::Object);
  has_items_.push_back(false);
}

void Writer::end_object() {
  MP_EXPECT(!scopes_.empty() && scopes_.back() == Scope::Object,
            "end_object without matching begin_object");
  out_ += '}';
  scopes_.pop_back();
  has_items_.pop_back();
}

void Writer::begin_array() {
  maybe_comma();
  out_ += '[';
  scopes_.push_back(Scope::Array);
  has_items_.push_back(false);
}

void Writer::end_array() {
  MP_EXPECT(!scopes_.empty() && scopes_.back() == Scope::Array,
            "end_array without matching begin_array");
  out_ += ']';
  scopes_.pop_back();
  has_items_.pop_back();
}

void Writer::key(const std::string& name) {
  MP_EXPECT(!scopes_.empty() && scopes_.back() == Scope::Object,
            "key() only valid inside an object");
  maybe_comma();
  append_escaped(name);
  out_ += ':';
  pending_key_ = true;
}

void Writer::value(const std::string& v) {
  maybe_comma();
  append_escaped(v);
}

void Writer::value(const char* v) { value(std::string(v)); }

void Writer::value(double v) {
  maybe_comma();
  if (std::isfinite(v)) {
    // Shortest representation that round-trips exactly.
    char buf[48];
    for (const int precision : {15, 16, 17}) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no Inf/NaN literal
  }
}

void Writer::value(long long v) {
  maybe_comma();
  out_ += std::to_string(v);
}

void Writer::value(bool v) {
  maybe_comma();
  out_ += v ? "true" : "false";
}

void Writer::null() {
  maybe_comma();
  out_ += "null";
}

std::string Writer::str() const {
  MP_EXPECT(scopes_.empty(), "document has unterminated scopes");
  return out_;
}

Value Value::make_bool(bool v) {
  Value value;
  value.kind_ = Kind::Bool;
  value.bool_ = v;
  return value;
}

Value Value::make_number(double v) {
  Value value;
  value.kind_ = Kind::Number;
  value.number_ = v;
  return value;
}

Value Value::make_string(std::string v) {
  Value value;
  value.kind_ = Kind::String;
  value.string_ = std::move(v);
  return value;
}

Value Value::make_array(std::vector<Value> items) {
  Value value;
  value.kind_ = Kind::Array;
  value.array_ = std::move(items);
  return value;
}

Value Value::make_object(std::vector<Member> members) {
  Value value;
  value.kind_ = Kind::Object;
  value.object_ = std::move(members);
  return value;
}

bool Value::as_bool() const {
  MP_EXPECT(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Value::as_number() const {
  MP_EXPECT(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  MP_EXPECT(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  MP_EXPECT(is_array(), "JSON value is not an array");
  return array_;
}

const std::vector<Value::Member>& Value::members() const {
  MP_EXPECT(is_object(), "JSON value is not an object");
  return object_;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number_ : fallback;
}

bool Value::bool_or(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_bool() ? v->bool_ : fallback;
}

std::string Value::string_or(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->string_ : fallback;
}

namespace {

/// Recursive-descent parser over a string_view; errors carry the byte
/// offset. Depth is capped so hostile inputs cannot exhaust the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult result;
    skip_whitespace();
    if (!parse_value(result.value, 0)) {
      result.error = error_;
      return result;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      result.value = Value();
      result.error = at("trailing garbage after the document");
      return result;
    }
    return result;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string at(const std::string& message) const {
    return "JSON parse error at offset " + std::to_string(pos_) + ": " +
           message;
  }

  bool fail(const std::string& message) {
    if (error_.empty()) error_ = at(message);
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ >= text_.size() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool parse_literal(const char* literal) {
    const std::size_t length = std::strlen(literal);
    if (text_.substr(pos_, length) != literal) {
      return fail(std::string("expected '") + literal + "'");
    }
    pos_ += length;
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    switch (text_[pos_]) {
      case 'n': if (!parse_literal("null")) return false;
                out = Value(); return true;
      case 't': if (!parse_literal("true")) return false;
                out = Value::make_bool(true); return true;
      case 'f': if (!parse_literal("false")) return false;
                out = Value::make_bool(false); return true;
      case '"': return parse_string_value(out);
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > before;
    };
    const std::size_t int_start = pos_;
    if (!digits()) return fail("invalid number");
    // JSON forbids leading zeros: "0" is fine, "01" is not.
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      pos_ = start;
      return fail("leading zeros are not allowed");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) return fail("digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      pos_ = start;
      return fail("invalid number");
    }
    out = Value::make_number(v);
    return true;
  }

  bool parse_string_value(Value& out) {
    std::string raw;
    if (!parse_string_raw(raw)) return false;
    out = Value::make_string(std::move(raw));
    return true;
  }

  bool parse_string_raw(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return true;
      if (c < 0x20) { --pos_; return fail("raw control character in string"); }
      if (c != '\\') { out += static_cast<char>(c); continue; }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // BMP only (no surrogate-pair assembly): the serve protocol never
          // needs astral-plane keys, and a lone surrogate is an error.
          if (code >= 0xD800 && code <= 0xDFFF) {
            return fail("surrogate code points are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: --pos_; return fail("invalid escape");
      }
    }
  }

  bool parse_array(Value& out, int depth) {
    consume('[');
    std::vector<Value> items;
    skip_whitespace();
    if (consume(']')) { out = Value::make_array(std::move(items)); return true; }
    while (true) {
      Value item;
      skip_whitespace();
      if (!parse_value(item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_whitespace();
      if (consume(']')) break;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
    out = Value::make_array(std::move(items));
    return true;
  }

  bool parse_object(Value& out, int depth) {
    consume('{');
    std::vector<Value::Member> members;
    skip_whitespace();
    if (consume('}')) {
      out = Value::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string_raw(key)) return false;
      for (const Value::Member& member : members) {
        if (member.first == key) return fail("duplicate key '" + key + "'");
      }
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      Value value;
      skip_whitespace();
      if (!parse_value(value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (consume('}')) break;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
    out = Value::make_object(std::move(members));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult parse(std::string_view text) { return Parser(text).run(); }

}  // namespace madpipe::json
