// Minimal JSON reader/writer. The writer streams plans / schedules /
// experiment results for external plotting; the reader (added for the
// plan-serving protocol) parses request documents into a small recursive
// `Value` — just enough JSON to drive `madpipe serve`, with strict errors
// instead of extensions.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace madpipe::json {

/// Streaming JSON writer with explicit structure calls.
///
///   Writer w;
///   w.begin_object();
///   w.key("period"); w.value(0.125);
///   w.key("stages"); w.begin_array(); ... w.end_array();
///   w.end_object();
///   std::string out = w.str();
class Writer {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& name);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(long long v);
  void value(int v) { value(static_cast<long long>(v)); }
  void value(std::size_t v) { value(static_cast<long long>(v)); }
  void value(bool v);
  void null();

  /// Final document; valid once all begun scopes are ended.
  std::string str() const;

 private:
  enum class Scope { Object, Array };
  void maybe_comma();
  void append_escaped(const std::string& raw);

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

/// A parsed JSON value. Objects preserve insertion order (a vector of
/// key/value pairs, not a map): serve responses echo request fields back in
/// a stable order and duplicate keys are a parse error anyway.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, Value>;

  Value() = default;
  static Value make_bool(bool v);
  static Value make_number(double v);
  static Value make_string(std::string v);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<Member> members);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }

  /// Typed accessors; calling the wrong one throws ContractViolation.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;    ///< array elements
  const std::vector<Member>& members() const; ///< object key/value pairs

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const noexcept;

  /// Convenience lookups with defaults, for optional request fields.
  double number_or(std::string_view key, double fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Outcome of `parse`: either a value or a position-annotated error.
struct ParseResult {
  Value value;
  std::string error;  ///< empty on success

  bool ok() const noexcept { return error.empty(); }
};

/// Parse one JSON document (trailing whitespace allowed, trailing garbage is
/// an error). Strict: no comments, no trailing commas, duplicate object keys
/// rejected, nesting depth capped. Never throws on malformed input.
ParseResult parse(std::string_view text);

}  // namespace madpipe::json
