// Minimal JSON writer, sufficient to dump plans / schedules / experiment
// results for external plotting. Write-only by design: the library never
// needs to parse JSON, so no parser is included.
#pragma once

#include <string>
#include <vector>

namespace madpipe::json {

/// Streaming JSON writer with explicit structure calls.
///
///   Writer w;
///   w.begin_object();
///   w.key("period"); w.value(0.125);
///   w.key("stages"); w.begin_array(); ... w.end_array();
///   w.end_object();
///   std::string out = w.str();
class Writer {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& name);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(long long v);
  void value(int v) { value(static_cast<long long>(v)); }
  void value(std::size_t v) { value(static_cast<long long>(v)); }
  void value(bool v);
  void null();

  /// Final document; valid once all begun scopes are ended.
  std::string str() const;

 private:
  enum class Scope { Object, Array };
  void maybe_comma();
  void append_escaped(const std::string& raw);

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace madpipe::json
