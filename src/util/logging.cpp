#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace madpipe::log {

namespace {
std::atomic<Level> g_threshold{Level::Warn};
std::mutex g_write_mutex;

const char* level_name(Level level) {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info:  return "INFO ";
    case Level::Warn:  return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off:   return "OFF  ";
  }
  return "?????";
}
}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

void write(Level level, std::string_view message) {
  if (level < threshold()) return;
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[madpipe %s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace madpipe::log
