// Minimal leveled logger for library diagnostics.
//
// The library is quiet by default (level = Warn). Benchmarks and examples
// raise the level for progress reporting. Thread-safe: each log call
// assembles the full line before a single locked write.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace madpipe::log {

enum class Level { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are dropped.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Emit one line at `level` (no trailing newline needed).
void write(Level level, std::string_view message);

namespace detail {
template <typename... Args>
void emit(Level level, const Args&... args) {
  if (level < threshold()) return;
  std::ostringstream os;
  (os << ... << args);
  write(level, os.str());
}
}  // namespace detail

template <typename... Args>
void trace(const Args&... args) { detail::emit(Level::Trace, args...); }
template <typename... Args>
void debug(const Args&... args) { detail::emit(Level::Debug, args...); }
template <typename... Args>
void info(const Args&... args) { detail::emit(Level::Info, args...); }
template <typename... Args>
void warn(const Args&... args) { detail::emit(Level::Warn, args...); }
template <typename... Args>
void error(const Args&... args) { detail::emit(Level::Error, args...); }

}  // namespace madpipe::log
