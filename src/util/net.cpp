#include "util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace madpipe::net {

void FdGuard::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

std::optional<std::pair<std::string, std::uint16_t>> parse_host_port(
    const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  std::string host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty()) return std::nullopt;
  long port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  if (host.empty()) host = "0.0.0.0";
  return std::make_pair(std::move(host), static_cast<std::uint16_t>(port));
}

bool set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

void set_tcp_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

sockaddr_in resolve_ipv4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Numeric addresses plus the two spellings every deployment actually
  // uses; full getaddrinfo resolution is not worth a DNS dependency here.
  std::string node = host;
  if (node.empty() || node == "localhost") node = "127.0.0.1";
  if (node == "*") node = "0.0.0.0";
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("cannot parse IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

TcpListener::TcpListener(const std::string& host, std::uint16_t port,
                         int backlog) {
  const sockaddr_in addr = resolve_ipv4(host, port);
  fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error(std::string("bind(): ") + std::strerror(errno));
  }
  if (::listen(fd_.get(), backlog) != 0) {
    throw std::runtime_error(std::string("listen(): ") + std::strerror(errno));
  }
  if (!set_nonblocking(fd_.get())) {
    throw std::runtime_error("cannot set listener non-blocking");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
}

int TcpListener::accept_nonblocking() {
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) return -1;
  if (!set_nonblocking(client)) {
    ::close(client);
    return -1;
  }
  set_tcp_nodelay(client);
  return client;
}

FdGuard connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  try {
    addr = resolve_ipv4(host, port);
  } catch (const std::exception&) {
    return FdGuard();
  }
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return FdGuard();
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return FdGuard();
  }
  set_tcp_nodelay(fd.get());
  return fd;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_line(int fd, std::string& line, std::string& carry) {
  line.clear();
  while (true) {
    const std::size_t newline = carry.find('\n');
    if (newline != std::string::npos) {
      line.append(carry, 0, newline);
      carry.erase(0, newline + 1);
      return true;
    }
    char buffer[4096];
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    carry.append(buffer, static_cast<std::size_t>(n));
  }
}

}  // namespace madpipe::net
