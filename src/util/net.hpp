// Thin POSIX socket helpers for the serve front-end and its tests.
//
// Everything here is deliberately minimal: RAII fd ownership, non-blocking
// TCP listeners/connections, and a host:port parser. The event loop itself
// lives in serve/net (it is serve policy, not generic utility).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace madpipe::net {

/// Owns a file descriptor; closes it on destruction. Move-only.
class FdGuard {
 public:
  FdGuard() = default;
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() { reset(); }

  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  FdGuard(FdGuard&& other) noexcept : fd_(other.release()) {}
  FdGuard& operator=(FdGuard&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// "HOST:PORT" → {host, port}. Host may be empty ("0.0.0.0" is substituted),
/// port 0 asks the kernel for an ephemeral port. Returns nullopt on syntax
/// errors (missing colon, non-numeric or out-of-range port).
std::optional<std::pair<std::string, std::uint16_t>> parse_host_port(
    const std::string& spec);

/// O_NONBLOCK on/off; returns false on fcntl failure.
bool set_nonblocking(int fd, bool enable = true);

/// Disable Nagle (TCP_NODELAY) — request/response framing wants every
/// newline-terminated frame on the wire immediately. Best-effort.
void set_tcp_nodelay(int fd);

/// A bound, listening TCP socket (SO_REUSEADDR, non-blocking). `port` 0
/// binds an ephemeral port; local_port() reports the actual one.
class TcpListener {
 public:
  /// Throws std::runtime_error on resolve/bind/listen failure.
  TcpListener(const std::string& host, std::uint16_t port, int backlog = 128);

  int fd() const noexcept { return fd_.get(); }
  std::uint16_t local_port() const noexcept { return port_; }

  /// Accept one pending connection (non-blocking, TCP_NODELAY set).
  /// Returns -1 when none is pending (EAGAIN) or on transient errors.
  int accept_nonblocking();

 private:
  FdGuard fd_;
  std::uint16_t port_ = 0;
};

/// Blocking loopback/remote connect for tests, benches, and simple clients.
/// Returns an owned connected fd, or an invalid guard on failure.
FdGuard connect_tcp(const std::string& host, std::uint16_t port);

/// write() the whole buffer on a blocking fd; false on error/short write.
bool write_all(int fd, const char* data, std::size_t size);

/// Read from a blocking fd until `\n` is seen or the peer closes. Appends to
/// `line` *excluding* the newline. Returns false on EOF-before-newline or
/// error. Spare bytes after the newline are pushed into `carry` for the next
/// call (pass the same string each time).
bool read_line(int fd, std::string& line, std::string& carry);

}  // namespace madpipe::net
