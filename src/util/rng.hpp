// Seedable, portable random numbers for simulations and benchmarks.
//
// util::Rng is splitmix64 (Steele/Lea/Flood; the seeding generator of the
// xoshiro family): one 64-bit state, an additive Weyl sequence and a
// 3-round mixer. Two properties matter here more than statistical depth:
//
//   * the sequence is a pure function of the seed — no global state, no
//     platform-dependent std::random distributions — so a fleet trace or a
//     bench shuffle generated from `--seed S` is bit-identical on every
//     host and toolchain;
//   * every draw is O(1) with no warm-up, so tests can spin up thousands
//     of independent streams cheaply (one Rng per property-test case).
//
// All derived draws (uniform, below, exponential, shuffle) are implemented
// from raw next_u64 bits with explicitly spelled-out arithmetic for the
// same reason: std::uniform_int_distribution is not reproducible across
// standard libraries, this is.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace madpipe::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit draw (splitmix64).
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1): the top 53 bits scaled by 2^-53 (every value is an
  /// exactly representable double, so the mapping is bit-reproducible).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire's multiply-shift
  /// reduction — the bias of a plain % is below any observable threshold at
  /// fleet sizes, but the reduction is just as cheap and exact). The high
  /// half of the 64x64 product is computed from 32-bit halves so the code
  /// stays strictly portable C++ (no __int128).
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t a = next_u64();
    const std::uint64_t a_lo = a & 0xFFFFFFFFull, a_hi = a >> 32;
    const std::uint64_t n_lo = n & 0xFFFFFFFFull, n_hi = n >> 32;
    const std::uint64_t lo_lo = a_lo * n_lo;
    const std::uint64_t hi_lo = a_hi * n_lo;
    const std::uint64_t lo_hi = a_lo * n_hi;
    const std::uint64_t hi_hi = a_hi * n_hi;
    const std::uint64_t cross =
        (lo_lo >> 32) + (hi_lo & 0xFFFFFFFFull) + lo_hi;
    return hi_hi + (hi_lo >> 32) + (cross >> 32);
  }

  /// Uniform integer in [lo, hi] (inclusive bounds, the natural shape for
  /// "pick a GPU count between min and max").
  long long range(long long lo, long long hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<long long>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponential with the given mean (inter-arrival gaps of a Poisson
  /// process). uniform() < 1 always, so the log argument is > 0.
  double exponential(double mean) noexcept {
    return -mean * std::log(1.0 - uniform());
  }

  /// Bernoulli draw.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher–Yates shuffle driven by below() — reproducible where
  /// std::shuffle is not (its use of the URBG is implementation-defined).
  template <class T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace madpipe::util
