#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace madpipe::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) {
    MP_EXPECT(x > 0.0, "geometric mean requires strictly positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  MP_EXPECT(q >= 0.0 && q <= 1.0, "percentile rank must be in [0,1]");
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

double Accumulator::stddev() const noexcept {
  if (n_ < 2) return 0.0;
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(n_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace madpipe::stats
