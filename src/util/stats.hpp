// Small statistics helpers used by the experiment harness (geometric means
// of period ratios, summary statistics of sweeps).
#pragma once

#include <span>
#include <vector>

namespace madpipe::stats {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Geometric mean; requires all values strictly positive. 0 for empty.
double geometric_mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs) noexcept;

double min(std::span<const double> xs) noexcept;
double max(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, q in [0,1]. Copies and sorts.
double percentile(std::span<const double> xs, double q);

/// Incremental accumulator for mean / min / max / stddev in one pass.
class Accumulator {
 public:
  void add(double x) noexcept;
  long long count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double stddev() const noexcept;

 private:
  long long n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace madpipe::stats
