#include "util/threading.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace madpipe::par {

std::size_t default_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for_blocks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t workers) {
  if (begin >= end) return;
  if (workers == 0) workers = default_workers();
  const std::size_t n = end - begin;
  workers = std::min(workers, n);

  if (workers <= 1) {
    body(begin, end);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(workers);

  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&, lo, hi] {
      try {
        body(lo, hi);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers) {
  parallel_for_blocks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      workers);
}

}  // namespace madpipe::par
