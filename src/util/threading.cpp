#include "util/threading.hpp"

namespace madpipe::par {

std::size_t default_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

// One parallel region. Lives on the submitter's stack: the submitter does not
// return from run() until `complete`, and no worker touches the job after the
// final block retires (see invariants in run()/worker_loop()).
struct ThreadPool::Job {
  void (*fn)(void*, std::size_t) = nullptr;
  void* ctx = nullptr;
  std::size_t total = 0;
  std::atomic<std::size_t> next{0};  ///< claim cursor; >= total means drained
  std::size_t done = 0;              ///< retired blocks (guarded by pool mutex)
  std::exception_ptr error;          ///< first failure (guarded by pool mutex)
  bool complete = false;             ///< guarded by pool mutex
  std::condition_variable done_cv;   ///< signaled once complete flips
};

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  // Floor of 3 parked workers so explicitly requested parallelism (tests,
  // --threads) exercises real concurrency even on single-core hosts; idle
  // workers park on the condvar, so the floor costs nothing at rest.
  static ThreadPool pool(std::max<std::size_t>(default_workers(), 4) - 1);
  return pool;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    Job* job = queue_.front();
    const std::size_t block = job->next.fetch_add(1, std::memory_order_relaxed);
    if (block >= job->total) {
      // Drained: retire the queue entry so later jobs become visible. The
      // pointer stays valid here because `complete` (and thus destruction)
      // requires all claimed blocks to retire first, and claiming happens
      // only under this mutex or by the job's own submitter.
      if (!queue_.empty() && queue_.front() == job) queue_.pop_front();
      continue;
    }
    lock.unlock();
    std::exception_ptr err;
    try {
      job->fn(job->ctx, block);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !job->error) job->error = err;
    if (++job->done == job->total) {
      job->complete = true;
      job->done_cv.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t blocks, void (*fn)(void*, std::size_t),
                     void* ctx) {
  if (blocks == 0) return;
  Job job;
  job.fn = fn;
  job.ctx = ctx;
  job.total = blocks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(&job);
  }
  work_cv_.notify_all();

  // Participate: the submitter claims blocks alongside the workers, which
  // guarantees forward progress even when every pool worker is occupied
  // (nested regions) or the pool has zero workers.
  for (;;) {
    const std::size_t block = job.next.fetch_add(1, std::memory_order_relaxed);
    if (block >= job.total) break;
    std::exception_ptr err;
    try {
      fn(ctx, block);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (err && !job.error) job.error = err;
    if (++job.done == job.total) job.complete = true;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  job.done_cv.wait(lock, [&job] { return job.complete; });
  // The job may still sit in the queue if no thread hit the drained branch
  // (e.g. zero-worker pool); remove it before the stack frame dies.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == &job) {
      queue_.erase(it);
      break;
    }
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace madpipe::par
