// Thread-level parallelism substrate (no external dependency).
//
// The engine is a persistent ThreadPool: worker threads are created once and
// parked on a condition variable, and each parallel region hands them a job
// (a plain function pointer + context pointer, no std::function allocation
// or type erasure on the hot path). parallel_for / parallel_for_blocks are
// header templates that split [begin, end) into the same contiguous blocks
// the old per-call implementation used and dispatch them through the shared
// pool, so call sites keep their exact semantics — deterministic block
// boundaries, caller participation, first exception rethrown on the calling
// thread — while paying a condvar wakeup instead of a thread spawn per call.
//
// Nested parallel regions are safe: a submitter always participates in its
// own job, so every job can finish even when all pool workers are busy (or
// when the pool has zero workers, e.g. on a single-core host, where the
// region degrades to a plain serial loop on the caller).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace madpipe::par {

/// Number of workers parallel_for will use by default (hardware threads,
/// at least 1).
std::size_t default_workers() noexcept;

/// Persistent pool of parked worker threads executing block jobs.
///
/// A job is `fn(ctx, block)` for block in [0, total): blocks are claimed
/// dynamically (an atomic cursor), so any thread may run any block — callers
/// needing determinism must make block outputs a function of the block index
/// alone (parallel_for's contiguous ranges are). Multiple threads may submit
/// jobs concurrently; jobs drain in FIFO order.
class ThreadPool {
 public:
  /// `threads` pool workers (0 is valid: run() then executes entirely on the
  /// submitting thread).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const noexcept { return workers_.size(); }

  /// Process-wide pool, created on first use with default_workers() − 1
  /// workers (the submitting thread is the remaining lane).
  static ThreadPool& shared();

  /// Execute `fn(ctx, block)` for every block in [0, blocks). The calling
  /// thread participates; returns when every block has finished, rethrowing
  /// the first exception any block threw.
  void run(std::size_t blocks, void (*fn)(void*, std::size_t), void* ctx);

 private:
  struct Job;
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Job*> queue_;  ///< submitted, not-yet-exhausted jobs (FIFO)
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Block-wise parallel loop: body(block_begin, block_end) per contiguous
/// chunk. `workers == 0` means default_workers(). Blocks are the same
/// contiguous ranges for every pool size, so results are reproducible
/// whenever the body writes only to block-indexed outputs.
template <typename Body>
void parallel_for_blocks(std::size_t begin, std::size_t end, Body&& body,
                         std::size_t workers = 0) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  std::size_t lanes = workers == 0 ? default_workers() : workers;
  lanes = std::min(lanes, n);
  if (lanes <= 1) {
    body(begin, end);
    return;
  }
  struct Ctx {
    std::remove_reference_t<Body>* body;
    std::size_t begin, end, chunk;
  };
  Ctx ctx{&body, begin, end, (n + lanes - 1) / lanes};
  ThreadPool::shared().run(
      lanes,
      [](void* raw, std::size_t block) {
        const Ctx& c = *static_cast<const Ctx*>(raw);
        const std::size_t lo = c.begin + block * c.chunk;
        const std::size_t hi = std::min(c.end, lo + c.chunk);
        if (lo < hi) (*c.body)(lo, hi);
      },
      &ctx);
}

/// Apply `body(i)` for every i in [begin, end). `workers == 0` means
/// default_workers(). The body must be safe to run concurrently for
/// distinct indices.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t workers = 0) {
  parallel_for_blocks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      workers);
}

}  // namespace madpipe::par
