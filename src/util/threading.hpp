// Tiny thread-level parallelism substrate (no external dependency).
//
// parallel_for splits [begin, end) into contiguous blocks, one per worker
// thread. On a single-core host it degrades to a plain serial loop with no
// thread creation. Exceptions thrown by the body are captured and the first
// one is rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>

namespace madpipe::par {

/// Number of workers parallel_for will use by default (hardware threads,
/// at least 1).
std::size_t default_workers() noexcept;

/// Apply `body(i)` for every i in [begin, end). `workers == 0` means
/// default_workers(). The body must be safe to run concurrently for
/// distinct indices.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers = 0);

/// Block-wise variant: body(block_begin, block_end) per contiguous chunk.
void parallel_for_blocks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t workers = 0);

}  // namespace madpipe::par
