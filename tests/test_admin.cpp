// AdminServer loopback tests: the read-only telemetry endpoint must serve
// /metrics (Prometheus text of the live registry), /healthz (drain-aware),
// /slow (madpipe-admin-v1 tail-sampler document), /tracez (Chrome trace)
// and the index, answer HEAD without a body, and reject unknown paths,
// non-GET methods and malformed/oversized request lines — all from its own
// thread, never blocking the data plane it observes.
#include "serve/net/admin.hpp"

#include <unistd.h>

#include <atomic>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/net.hpp"

namespace madpipe::serve::net {
namespace {

/// One blocking HTTP exchange: send `request` verbatim, read to EOF.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  madpipe::net::FdGuard fd = madpipe::net::connect_tcp("127.0.0.1", port);
  if (!fd.valid()) return {};
  if (!madpipe::net::write_all(fd.get(), request.data(), request.size())) {
    return {};
  }
  std::string out;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd.get(), buffer, sizeof(buffer))) > 0) {
    out.append(buffer, static_cast<std::size_t>(n));
  }
  return out;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string status_line(const std::string& response) {
  const std::size_t eol = response.find("\r\n");
  return eol == std::string::npos ? response : response.substr(0, eol);
}

std::string body_of(const std::string& response) {
  const std::size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

AdminServerOptions loopback() {
  AdminServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  return options;
}

TEST(ServeAdmin, MetricsServesPrometheusTextOfTheLiveRegistry) {
  // Materialize at least one known metric before scraping.
  (void)obs::spans_dropped_total();
  AdminServer admin(loopback());
  ASSERT_NE(admin.port(), 0);

  const std::string response = http_get(admin.port(), "/metrics");
  EXPECT_EQ(status_line(response), "HTTP/1.0 200 OK");
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(body_of(response).find("madpipe_spans_dropped_total"),
            std::string::npos);
  EXPECT_EQ(admin.stats().requests, 1);
}

TEST(ServeAdmin, HealthzFollowsTheDrainProbe) {
  std::atomic<bool> draining{false};
  AdminServerOptions options = loopback();
  options.draining = [&draining] { return draining.load(); };
  AdminServer admin(options);

  std::string response = http_get(admin.port(), "/healthz");
  EXPECT_EQ(status_line(response), "HTTP/1.0 200 OK");
  EXPECT_EQ(body_of(response), "ok\n");

  draining.store(true);
  response = http_get(admin.port(), "/healthz");
  EXPECT_EQ(status_line(response), "HTTP/1.0 503 Service Unavailable");
  EXPECT_EQ(body_of(response), "draining\n");
}

TEST(ServeAdmin, SlowServesTheTailSamplersAdminV1Document) {
  obs::arm_tail_sampling({});
  const std::uint64_t id = obs::next_trace_id();
  obs::tail_sampler().begin(id, obs::now_ns());
  {
    obs::TraceContextScope scope(id);
    obs::Span span("admin_test_span", obs::kCatServe);
  }
  obs::SampledRequest done;
  done.trace_id = id;
  done.request_id = "admin-slow";
  done.status = "ok";
  done.cache = "miss";
  done.latency_seconds = 0.5;
  obs::tail_sampler().end(std::move(done));
  obs::disarm_tail_sampling();

  AdminServer admin(loopback());
  const std::string response = http_get(admin.port(), "/slow");
  EXPECT_EQ(status_line(response), "HTTP/1.0 200 OK");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  const json::ParseResult parsed = json::parse(body_of(response));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("schema", ""), "madpipe-admin-v1");
  const json::Value* slow = parsed.value.find("slow");
  ASSERT_NE(slow, nullptr);
  ASSERT_FALSE(slow->items().empty());
  EXPECT_EQ(slow->items()[0].string_or("trace_id", ""),
            obs::format_trace_id(id));
  EXPECT_EQ(slow->items()[0].string_or("id", ""), "admin-slow");
}

TEST(ServeAdmin, TracezServesAChromeTraceDocument) {
  AdminServer admin(loopback());
  const std::string response = http_get(admin.port(), "/tracez");
  EXPECT_EQ(status_line(response), "HTTP/1.0 200 OK");
  const json::ParseResult parsed = json::parse(body_of(response));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_NE(parsed.value.find("traceEvents"), nullptr);
}

TEST(ServeAdmin, IndexNotFoundAndMethodChecks) {
  AdminServer admin(loopback());

  const std::string index = http_get(admin.port(), "/");
  EXPECT_EQ(status_line(index), "HTTP/1.0 200 OK");
  EXPECT_NE(body_of(index).find("/metrics"), std::string::npos);

  const std::string missing = http_get(admin.port(), "/nope");
  EXPECT_EQ(status_line(missing), "HTTP/1.0 404 Not Found");

  const std::string post =
      http_exchange(admin.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(status_line(post), "HTTP/1.0 405 Method Not Allowed");

  const std::string malformed = http_exchange(admin.port(), "garbage\r\n");
  EXPECT_EQ(status_line(malformed), "HTTP/1.0 400 Bad Request");

  const AdminServerStats stats = admin.stats();
  EXPECT_EQ(stats.requests, 3);  // index + 404 + 405; 400 is counted apart
  EXPECT_EQ(stats.not_found, 1);
  EXPECT_EQ(stats.bad_requests, 1);
}

TEST(ServeAdmin, HeadAnswersHeadersWithoutABody) {
  AdminServer admin(loopback());
  const std::string response =
      http_exchange(admin.port(), "HEAD /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.0 200 OK");
  EXPECT_NE(response.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(body_of(response), "");
}

TEST(ServeAdmin, QueryStringsAreIgnoredInRouting) {
  AdminServer admin(loopback());
  const std::string response = http_get(admin.port(), "/healthz?probe=lb");
  EXPECT_EQ(status_line(response), "HTTP/1.0 200 OK");
  EXPECT_EQ(body_of(response), "ok\n");
}

}  // namespace
}  // namespace madpipe::serve::net
