#include "cyclic/bb_scheduler.hpp"

#include <gtest/gtest.h>

#include <random>

#include "cyclic/period_search.hpp"
#include "schedule/one_f_one_b.hpp"

namespace madpipe {
namespace {

Chain random_chain(unsigned seed, int length) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dur(1.0, 15.0);
  std::uniform_real_distribution<double> size(5.0, 80.0);
  std::vector<Layer> layers;
  for (int i = 0; i < length; ++i) {
    layers.push_back(Layer{"r" + std::to_string(i), ms(dur(rng)),
                           ms(dur(rng)), size(rng) * MB, size(rng) * MB});
  }
  return Chain("random" + std::to_string(seed), size(rng) * MB,
               std::move(layers));
}

std::vector<Stage> even_split(const Chain& chain, int stages) {
  std::vector<Stage> result;
  const int per = (chain.length() + stages - 1) / stages;
  for (int first = 1; first <= chain.length(); first += per) {
    result.push_back({first, std::min(chain.length(), first + per - 1)});
  }
  return result;
}

TEST(CyclicProblem, OpCountAndLoads) {
  const Chain c = random_chain(1, 6);
  const Platform p{3, 10 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 3), 3);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  // 3 stages → 6 compute ops + 2 cut boundaries → 4 comm ops.
  EXPECT_EQ(problem.ops.size(), 10u);
  EXPECT_GT(problem.min_period, 0.0);
  EXPECT_GT(problem.serial_period, problem.min_period);
}

TEST(CyclicProblem, NonContiguousSharedProcessor) {
  const Chain c = random_chain(2, 6);
  const Platform p{2, 10 * GB, 12 * GB};
  Allocation a(Partitioning(c, {{1, 2}, {3, 4}, {5, 6}}), {0, 1, 0}, 2);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  // 6 compute + 2 cut boundaries × 2 = 10; both links are (0,1).
  EXPECT_EQ(problem.ops.size(), 10u);
  int link_ops = 0;
  for (const CyclicOp& op : problem.ops) {
    if (op.resource.kind == ResourceId::Kind::Link) {
      EXPECT_EQ(op.resource, ResourceId::link(0, 1));
      ++link_ops;
    }
  }
  EXPECT_EQ(link_ops, 4);
}

TEST(BBScheduler, FeasibleAtSerialPeriod) {
  const Chain c = random_chain(3, 8);
  const Platform p{3, 100 * GB, 12 * GB};
  Allocation a(Partitioning(c, {{1, 2}, {3, 5}, {6, 7}, {8, 8}}), {0, 1, 2, 0},
               3);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  const BBResult result =
      bb_schedule(problem, a, c, p, problem.serial_period);
  ASSERT_TRUE(result.feasible);
  const auto check = validate_pattern(result.pattern, a, c, p);
  EXPECT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST(BBScheduler, InfeasibleBelowResourceBound) {
  const Chain c = random_chain(4, 6);
  const Platform p{3, 100 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 3), 3);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  const BBResult result =
      bb_schedule(problem, a, c, p, problem.min_period * 0.9);
  EXPECT_FALSE(result.feasible);
}

TEST(BBScheduler, InfeasibleWhenActivationFloorExceedsMemory) {
  // Two stages forced onto one processor whose single-batch activations
  // already exceed memory: no period can ever work.
  const Chain c = make_uniform_chain(4, ms(5), ms(5), MB, 600 * MB, 600 * MB);
  const Platform p{2, 2 * GB, 12 * GB};
  Allocation a(Partitioning(c, {{1, 1}, {2, 3}, {4, 4}}), {0, 1, 0}, 2);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  const BBResult result =
      bb_schedule(problem, a, c, p, problem.serial_period);
  EXPECT_FALSE(result.feasible);
}

class BBMatchesOneFOneB : public ::testing::TestWithParam<unsigned> {};

// On contiguous allocations 1F1B* gives the provably minimal feasible
// period; the generic search must reproduce it (within its bisection
// precision). This is the strongest evidence that the phase-2 engine does
// not lose quality against the paper's ILP.
TEST_P(BBMatchesOneFOneB, MinPeriodsAgree) {
  const unsigned seed = GetParam();
  const Chain c = random_chain(seed, 6 + seed % 5);
  const int procs = 2 + seed % 3;
  if (c.length() < procs) GTEST_SKIP();
  const Platform p{procs, (1.0 + seed % 5) * GB, 12 * GB};
  const Allocation a =
      make_contiguous_allocation(c, even_split(c, procs), procs);

  const auto exact = plan_one_f_one_b(a, c, p);
  PeriodSearchOptions options;
  options.relative_precision = 5e-4;
  const PeriodSearchResult search = find_min_period(a, c, p, 0.0, options);

  ASSERT_EQ(exact.has_value(), search.feasible);
  if (!exact) return;
  EXPECT_LE(search.period, exact->period() * (1.0 + 2e-3));
  EXPECT_GE(search.period, exact->period() * (1.0 - 2e-3));
  const auto check = validate_pattern(search.pattern, a, c, p);
  EXPECT_TRUE(check.valid);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BBMatchesOneFOneB, ::testing::Range(20u, 45u));

TEST(PeriodSearch, NonContiguousProducesValidPattern) {
  const Chain c = random_chain(9, 8);
  const Platform p{3, 4 * GB, 12 * GB};
  Allocation a(Partitioning(c, {{1, 2}, {3, 5}, {6, 7}, {8, 8}}), {0, 1, 2, 0},
               3);
  const PeriodSearchResult result = find_min_period(a, c, p);
  ASSERT_TRUE(result.feasible);
  const auto check = validate_pattern(result.pattern, a, c, p);
  EXPECT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_GE(result.period, a.period_lower_bound(c, p) - 1e-12);
}

TEST(PeriodSearch, LowerHintIsRespected) {
  const Chain c = random_chain(10, 6);
  const Platform p{3, 100 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 3), 3);
  const Seconds hint = c.total_compute();  // deliberately too high
  const PeriodSearchResult result = find_min_period(a, c, p, hint);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.period, hint * (1.0 - 1e-9));
}

}  // namespace
}  // namespace madpipe
