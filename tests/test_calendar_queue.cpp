// CalendarQueue golden tests: the multi-scale engine must pop in exactly
// the order a naive std::priority_queue over (time, seq) would — on
// randomized streams that hit every structural path (same-timestamp ties,
// far-future overflow past the coarse horizon, inserts during dispatch) —
// and the whole dispatch sequence must be a pure function of the seed.
#include "fleet/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace madpipe::fleet {
namespace {

/// The reference: strictly-ordered (time, seq) min-heap. seq is assigned
/// here in push order, mirroring what CalendarQueue::push does.
class NaiveQueue {
 public:
  void push(double time, std::uint64_t seq) { heap_.push({time, seq}); }
  bool empty() const { return heap_.empty(); }
  std::pair<double, std::uint64_t> pop() {
    auto top = heap_.top();
    heap_.pop();
    return top;
  }

 private:
  using Key = std::pair<double, std::uint64_t>;
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> heap_;
};

Event at(double time) {
  Event event;
  event.time = time;
  return event;
}

/// Drain both queues together and require identical (time, seq) at every
/// step. Assumes both already hold the same events.
void expect_identical_drain(CalendarQueue& queue, NaiveQueue& naive) {
  while (!naive.empty()) {
    ASSERT_FALSE(queue.empty());
    const Event event = queue.pop();
    const auto [time, seq] = naive.pop();
    ASSERT_EQ(event.time, time);
    ASSERT_EQ(event.seq, seq);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, GoldenEquivalenceOnRandomizedStreams) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    CalendarQueue queue;
    NaiveQueue naive;
    std::uint64_t seq = 0;
    // Mixed spread: mostly near (within the fine window), some in the
    // coarse window, a tail far beyond the coarse horizon (512*512/64 s
    // = 4096 s), plus exact duplicates for the tie path.
    double last_time = 0.0;
    for (int i = 0; i < 4000; ++i) {
      double time;
      const double pick = rng.uniform();
      if (pick < 0.70) {
        time = rng.uniform(0.0, 8.0);            // fine window
      } else if (pick < 0.90) {
        time = rng.uniform(8.0, 4000.0);         // coarse window
      } else if (pick < 0.97) {
        time = rng.uniform(5000.0, 100'000.0);   // far list
      } else {
        time = last_time;                        // exact tie
      }
      last_time = time;
      queue.push(at(time));
      naive.push(time, seq++);
    }
    EXPECT_GT(queue.far_inserts(), 0u) << "stream must exercise the far list";
    expect_identical_drain(queue, naive);
  }
}

TEST(CalendarQueue, SameTimestampTiesPopInInsertionOrder) {
  CalendarQueue queue;
  for (int i = 0; i < 100; ++i) queue.push(at(1.5));
  for (std::uint64_t expected = 0; expected < 100; ++expected) {
    const Event event = queue.pop();
    EXPECT_EQ(event.time, 1.5);
    EXPECT_EQ(event.seq, expected);
  }
}

TEST(CalendarQueue, InsertDuringDispatchInterleavesCorrectly) {
  // The simulator's shape: pop an event, schedule new ones (completions,
  // re-placements) relative to `now`, keep popping. The reference heap
  // sees the same interleaved pushes.
  util::Rng rng(4242);
  CalendarQueue queue;
  NaiveQueue naive;
  std::uint64_t seq = 0;
  for (int i = 0; i < 64; ++i) {
    const double time = rng.uniform(0.0, 4.0);
    queue.push(at(time));
    naive.push(time, seq++);
  }
  int dispatched = 0;
  while (!naive.empty()) {
    ASSERT_FALSE(queue.empty());
    const Event event = queue.pop();
    const auto [time, gold_seq] = naive.pop();
    ASSERT_EQ(event.time, time);
    ASSERT_EQ(event.seq, gold_seq);
    ++dispatched;
    if (dispatched < 2000 && rng.chance(0.6)) {
      // Sometimes at the current instant exactly (must pop before the
      // engine moves on), sometimes near-future, sometimes far.
      const double pick = rng.uniform();
      const double next_time = pick < 0.2   ? event.time
                               : pick < 0.9 ? event.time + rng.exponential(2.0)
                                            : event.time + 10'000.0;
      queue.push(at(next_time));
      naive.push(next_time, seq++);
    }
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_GT(dispatched, 64);
}

TEST(CalendarQueue, PastInsertsAreClampedToNowNotLost) {
  CalendarQueue queue;
  queue.push(at(5.0));
  queue.push(at(10.0));
  EXPECT_EQ(queue.pop().time, 5.0);
  // 2.0 is in the past now; the engine never travels backwards, so it is
  // clamped to now()=5.0 and dispatched before the 10.0 event.
  queue.push(at(2.0));
  const Event clamped = queue.pop();
  EXPECT_EQ(clamped.time, 5.0);
  EXPECT_EQ(queue.pop().time, 10.0);
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, FarFutureOnlyStreamStillOrders) {
  // Everything beyond the coarse horizon: the far list must re-bucket as
  // the rings advance, not just dump in insertion order.
  util::Rng rng(77);
  CalendarQueue queue;
  NaiveQueue naive;
  std::uint64_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    const double time = rng.uniform(50'000.0, 1'000'000.0);
    queue.push(at(time));
    naive.push(time, seq++);
  }
  EXPECT_EQ(queue.far_inserts(), 500u);
  expect_identical_drain(queue, naive);
}

TEST(CalendarQueue, DispatchSequenceIsAPureFunctionOfTheSeed) {
  // Determinism property at the engine level: same seed -> bit-identical
  // (time, seq) dispatch sequence, including interleaved inserts.
  auto run = [](std::uint64_t seed) {
    util::Rng rng(seed);
    CalendarQueue queue;
    std::vector<std::pair<double, std::uint64_t>> dispatched;
    for (int i = 0; i < 256; ++i) queue.push(at(rng.exponential(3.0)));
    while (!queue.empty()) {
      const Event event = queue.pop();
      dispatched.push_back({event.time, event.seq});
      if (dispatched.size() < 2048 && rng.chance(0.5)) {
        queue.push(at(event.time + rng.exponential(5.0)));
      }
    }
    return dispatched;
  };
  const auto a = run(2024), b = run(2024), c = run(2025);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(CalendarQueue, SizeAndCountersTrackTraffic) {
  CalendarQueue queue;
  EXPECT_TRUE(queue.empty());
  for (int i = 0; i < 10; ++i) queue.push(at(0.5 * i));
  EXPECT_EQ(queue.size(), 10u);
  queue.pop();
  EXPECT_EQ(queue.size(), 9u);
  while (!queue.empty()) queue.pop();
  EXPECT_EQ(queue.now(), 4.5);
  EXPECT_EQ(queue.far_inserts(), 0u);  // all within the fine window
}

}  // namespace
}  // namespace madpipe::fleet
