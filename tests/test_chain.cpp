#include "core/chain.hpp"

#include <gtest/gtest.h>

#include "core/types.hpp"
#include "util/expect.hpp"

namespace madpipe {
namespace {

Chain three_layer_chain() {
  std::vector<Layer> layers{
      {"l1", ms(2), ms(4), 10 * MB, 100 * MB},
      {"l2", ms(3), ms(6), 20 * MB, 50 * MB},
      {"l3", ms(1), ms(2), 30 * MB, 10 * MB},
  };
  return Chain("test", 80 * MB, std::move(layers));
}

TEST(Chain, LengthAndLayerAccess) {
  const Chain c = three_layer_chain();
  EXPECT_EQ(c.length(), 3);
  EXPECT_EQ(c.layer(1).name, "l1");
  EXPECT_EQ(c.layer(3).name, "l3");
}

TEST(Chain, LayerIndexIsOneBased) {
  const Chain c = three_layer_chain();
  EXPECT_THROW(c.layer(0), ContractViolation);
  EXPECT_THROW(c.layer(4), ContractViolation);
}

TEST(Chain, ActivationsIncludeInput) {
  const Chain c = three_layer_chain();
  EXPECT_DOUBLE_EQ(c.activation(0), 80 * MB);
  EXPECT_DOUBLE_EQ(c.activation(1), 100 * MB);
  EXPECT_DOUBLE_EQ(c.activation(3), 10 * MB);
  EXPECT_THROW(c.activation(4), ContractViolation);
}

TEST(Chain, ComputeLoadRanges) {
  const Chain c = three_layer_chain();
  EXPECT_DOUBLE_EQ(c.compute_load(1, 1), ms(6));
  EXPECT_DOUBLE_EQ(c.compute_load(1, 3), ms(18));
  EXPECT_DOUBLE_EQ(c.compute_load(2, 3), ms(12));
  EXPECT_DOUBLE_EQ(c.total_compute(), ms(18));
}

TEST(Chain, EmptyRangeIsZero) {
  const Chain c = three_layer_chain();
  EXPECT_DOUBLE_EQ(c.compute_load(3, 2), 0.0);
  EXPECT_DOUBLE_EQ(c.weight_sum(2, 1), 0.0);
}

TEST(Chain, ForwardBackwardSplit) {
  const Chain c = three_layer_chain();
  EXPECT_DOUBLE_EQ(c.forward_load(1, 3), ms(6));
  EXPECT_DOUBLE_EQ(c.backward_load(1, 3), ms(12));
}

TEST(Chain, WeightSums) {
  const Chain c = three_layer_chain();
  EXPECT_DOUBLE_EQ(c.weight_sum(1, 3), 60 * MB);
  EXPECT_DOUBLE_EQ(c.weight_sum(2, 2), 20 * MB);
}

TEST(Chain, StoredActivationSumUsesLayerInputs) {
  const Chain c = three_layer_chain();
  // Layers 2..3 store their inputs: a_1 + a_2 = 100 + 50 MB.
  EXPECT_DOUBLE_EQ(c.stored_activation_sum(2, 3), 150 * MB);
  // Layer 1 stores the network input a_0.
  EXPECT_DOUBLE_EQ(c.stored_activation_sum(1, 1), 80 * MB);
}

TEST(Chain, TotalActivations) {
  const Chain c = three_layer_chain();
  EXPECT_DOUBLE_EQ(c.total_activations(), (80 + 100 + 50 + 10) * MB);
}

TEST(Chain, RejectsEmpty) {
  EXPECT_THROW(Chain("bad", 0.0, {}), ContractViolation);
}

TEST(Chain, RejectsNegativeDurations) {
  std::vector<Layer> layers{{"l", -1.0, 1.0, 0.0, 0.0}};
  EXPECT_THROW(Chain("bad", 0.0, std::move(layers)), ContractViolation);
}

TEST(Chain, RejectsZeroComputeLayer) {
  std::vector<Layer> layers{{"l", 0.0, 0.0, 1.0, 1.0}};
  EXPECT_THROW(Chain("bad", 0.0, std::move(layers)), ContractViolation);
}

TEST(Chain, UniformBuilder) {
  const Chain c = make_uniform_chain(5, ms(1), ms(2), MB, 2 * MB, 3 * MB);
  EXPECT_EQ(c.length(), 5);
  EXPECT_DOUBLE_EQ(c.total_compute(), ms(15));
  EXPECT_DOUBLE_EQ(c.activation(0), 3 * MB);
  EXPECT_DOUBLE_EQ(c.activation(5), 2 * MB);
  EXPECT_DOUBLE_EQ(c.weight_sum(1, 5), 5 * MB);
}

TEST(Chain, UniformBuilderRejectsZeroLength) {
  EXPECT_THROW(make_uniform_chain(0, ms(1), ms(1), 0, 0, 0),
               ContractViolation);
}

TEST(Chain, EqualityIsStructural) {
  EXPECT_EQ(three_layer_chain(), three_layer_chain());
  const Chain other = make_uniform_chain(3, ms(1), ms(1), MB, MB, MB);
  EXPECT_FALSE(three_layer_chain() == other);
}

}  // namespace
}  // namespace madpipe
