// End-to-end exit-code tests for the `madpipe` binary. MADPIPE_CLI_BIN is
// injected by the build (tests/CMakeLists.txt) and points at the real
// executable; each test drives it through a shell like a user would.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "models/profile_io.hpp"
#include "models/zoo.hpp"
#include "util/json.hpp"

namespace madpipe {
namespace {

/// Run the CLI with `arguments`, capture combined stdout+stderr, and return
/// the process exit code (-1 if it did not exit normally).
int run_cli(const std::string& arguments, std::string* output) {
  const std::string command =
      std::string(MADPIPE_CLI_BIN) + " " + arguments + " 2>&1";
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  const int status = ::pclose(pipe);
  if (status < 0 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

std::string write_tiny_profile() {
  const Chain chain = make_uniform_chain(4, ms(2), ms(4), MB, 8 * MB, MB);
  // Per-process path: ctest runs each Cli test as its own process, and a
  // shared fixed name lets one test's cleanup delete the profile while
  // another's spawned CLI is still reading it.
  const std::string path = ::testing::TempDir() + "/cli_tiny." +
                           std::to_string(::getpid()) + ".profile";
  models::save_profile(chain, path);
  return path;
}

TEST(Cli, VersionExitsZeroAndPrintsVersion) {
  std::string output;
  EXPECT_EQ(run_cli("--version", &output), 0);
  EXPECT_NE(output.find("madpipe 0.3.0"), std::string::npos) << output;
}

TEST(Cli, NoArgumentsPrintsUsageAndExitsTwo) {
  std::string output;
  EXPECT_EQ(run_cli("", &output), 2);
  EXPECT_NE(output.find("usage: madpipe"), std::string::npos) << output;
  EXPECT_NE(output.find("serve"), std::string::npos) << output;  // documented
}

TEST(Cli, UnknownCommandExitsTwo) {
  std::string output;
  EXPECT_EQ(run_cli("frobnicate", &output), 2);
  EXPECT_NE(output.find("unknown command frobnicate"), std::string::npos)
      << output;
}

TEST(Cli, UnknownFlagExitsTwo) {
  std::string output;
  EXPECT_EQ(run_cli("plan whatever --bogus", &output), 2);
  EXPECT_NE(output.find("unknown option --bogus"), std::string::npos)
      << output;
}

TEST(Cli, MissingFlagValueExitsTwo) {
  std::string output;
  EXPECT_EQ(run_cli("plan whatever --gpus", &output), 2);
  EXPECT_NE(output.find("missing value for --gpus"), std::string::npos)
      << output;
}

TEST(Cli, MissingProfileFileExitsOne) {
  std::string output;
  EXPECT_EQ(run_cli("plan /nonexistent/definitely/missing.profile", &output),
            1);
  EXPECT_NE(output.find("error:"), std::string::npos) << output;
}

TEST(Cli, PlanOnTinyProfileSucceeds) {
  const std::string profile = write_tiny_profile();
  std::string output;
  EXPECT_EQ(run_cli("plan " + profile + " --gpus 2 --memory-gb 2", &output),
            0);
  EXPECT_NE(output.find("period"), std::string::npos) << output;
  std::remove(profile.c_str());
}

// End-to-end `madpipe explain`: human report on stdout, strict explain-v1
// JSON and an unrolled Chrome-trace timeline on disk. Deliberately mixes
// the `--opt=value` and `--opt value` spellings — both go through the
// shared util/cli.hpp parser.
TEST(Cli, ExplainWritesReportJsonAndTimeline) {
  const std::string profile = write_tiny_profile();
  const std::string json_path = ::testing::TempDir() + "/cli_explain.json";
  const std::string timeline_path =
      ::testing::TempDir() + "/cli_timeline.json";
  std::string output;
  ASSERT_EQ(run_cli("explain " + profile + " --gpus=2 --memory-gb 2" +
                        " --periods 3 --json=" + json_path +
                        " --timeline-out " + timeline_path,
                    &output),
            0)
      << output;
  EXPECT_NE(output.find("critical resource"), std::string::npos) << output;
  EXPECT_NE(output.find("headroom"), std::string::npos) << output;

  std::ifstream json_in(json_path);
  ASSERT_TRUE(json_in.good());
  const std::string json_text((std::istreambuf_iterator<char>(json_in)),
                              std::istreambuf_iterator<char>());
  const json::ParseResult report = json::parse(json_text);
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.value.string_or("schema", ""), "madpipe-explain-v1");
  const json::Value* memory = report.value.find("memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(memory->items().size(), 2u);

  std::ifstream timeline_in(timeline_path);
  ASSERT_TRUE(timeline_in.good());
  const std::string timeline_text(
      (std::istreambuf_iterator<char>(timeline_in)),
      std::istreambuf_iterator<char>());
  const json::ParseResult timeline = json::parse(timeline_text);
  ASSERT_TRUE(timeline.ok()) << timeline.error;
  const json::Value* events = timeline.value.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int processes = 0, slices = 0;
  for (const json::Value& event : events->items()) {
    if (event.string_or("ph", "") == "M") ++processes;
    if (event.string_or("ph", "") == "X") ++slices;
  }
  EXPECT_GE(processes, 3) << "2 GPUs + at least one link";  // one M each
  EXPECT_GT(slices, 0);
  std::remove(timeline_path.c_str());
  std::remove(json_path.c_str());
  std::remove(profile.c_str());
}

// `madpipe stats FILE` renders quantile estimates from the dumped buckets;
// --buckets adds the raw cumulative bucket lines.
TEST(Cli, StatsRendersQuantilesAndOptionalBuckets) {
  const std::string profile = write_tiny_profile();
  const std::string metrics_path =
      ::testing::TempDir() + "/cli_metrics.json";
  std::string output;
  ASSERT_EQ(run_cli("explain " + profile + " --gpus 2 --memory-gb 2" +
                        " --metrics-out=" + metrics_path,
                    &output),
            0)
      << output;

  ASSERT_EQ(run_cli("stats " + metrics_path, &output), 0) << output;
  EXPECT_NE(output.find("madpipe_planner_phase1_seconds_p50"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("_p95"), std::string::npos) << output;
  EXPECT_NE(output.find("_p99"), std::string::npos) << output;
  EXPECT_EQ(output.find("_bucket"), std::string::npos) << output;

  ASSERT_EQ(run_cli("stats " + metrics_path + " --buckets", &output), 0)
      << output;
  EXPECT_NE(output.find("_p50"), std::string::npos) << output;
  EXPECT_NE(output.find("_bucket"), std::string::npos) << output;
  std::remove(metrics_path.c_str());
  std::remove(profile.c_str());
}

TEST(Cli, ServeBatchRoundTrip) {
  const std::string profile = write_tiny_profile();
  const std::string requests = ::testing::TempDir() + "/cli_requests.json";
  {
    std::ofstream out(requests);
    out << R"({"requests":[
      {"id":"a","profile_file":")" << profile << R"(","gpus":2,"memory_gb":2},
      {"id":"b","profile_file":")" << profile << R"(","gpus":2,"memory_gb":2},
      {"id":"bad","gpus":2,"memory_gb":2}
    ]})";
  }
  std::string output;
  ASSERT_EQ(run_cli("serve --requests " + requests + " --workers 1", &output),
            0)
      << output;
  const json::ParseResult parsed = json::parse(output);
  ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << output;
  EXPECT_EQ(parsed.value.string_or("schema", ""), "madpipe-serve-v1");
  const json::Value* responses = parsed.value.find("responses");
  ASSERT_NE(responses, nullptr);
  ASSERT_EQ(responses->items().size(), 3u);
  EXPECT_EQ(responses->items()[0].string_or("status", ""), "ok");
  EXPECT_EQ(responses->items()[1].string_or("status", ""), "ok");
  EXPECT_EQ(responses->items()[2].string_or("status", ""), "error");
  EXPECT_EQ(responses->items()[2].string_or("id", ""), "bad");
  std::remove(requests.c_str());
  std::remove(profile.c_str());
}

TEST(Cli, ServeStdinLoopAnswersLineByLine) {
  const std::string profile = write_tiny_profile();
  const std::string request = "{\"id\":\"s\",\"profile_file\":\"" + profile +
                              "\",\"gpus\":2,\"memory_gb\":2}";
  std::string output;
  const std::string command = "printf '%s\\n' '" + request + "' | " +
                              std::string(MADPIPE_CLI_BIN) + " serve --stdin";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(status >= 0 && WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << output;
  const json::ParseResult parsed = json::parse(output);
  ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << output;
  EXPECT_EQ(parsed.value.string_or("id", ""), "s");
  EXPECT_EQ(parsed.value.string_or("status", ""), "ok");
  std::remove(profile.c_str());
}

// The observability acceptance path: a cold request served through
// `madpipe serve --stdin --trace-out=...` must produce a valid Chrome
// trace containing spans from all three categories — serve (request
// lifecycle), planner (bisection + DP probes) and solver (phase-2
// scheduler probes). Uses the committed examples/serve_request.json.
// Excluded from the sanitizer CI jobs (CliTrace.*) — it plans the real
// ResNet-50 workload, which is seconds in Release but minutes under ASan.
TEST(CliTrace, ServeStdinTraceOutHasAllCategories) {
  const std::string requests =
      std::string(MADPIPE_SOURCE_DIR) + "/examples/serve_request.json";
  const std::string trace_path = ::testing::TempDir() + "/cli_trace.json";
  const std::string command = std::string(MADPIPE_CLI_BIN) +
                              " serve --stdin --trace-out=" + trace_path +
                              " < " + requests + " 2>/dev/null";
  std::string output;
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(status >= 0 && WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << output;
  // Both responses (cold + hit) answered ok, with the requested phase
  // timings present.
  EXPECT_NE(output.find("\"status\":\"ok\""), std::string::npos) << output;
  EXPECT_NE(output.find("\"phases\""), std::string::npos) << output;

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << trace_path;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const json::ParseResult parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const json::Value* events = parsed.value.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_serve = false, saw_planner = false, saw_solver = false;
  for (const json::Value& event : events->items()) {
    if (event.string_or("ph", "") != "X") continue;
    const std::string cat = event.string_or("cat", "");
    saw_serve = saw_serve || cat == "serve";
    saw_planner = saw_planner || cat == "planner";
    saw_solver = saw_solver || cat == "solver";
  }
  EXPECT_TRUE(saw_serve) << text.substr(0, 2000);
  EXPECT_TRUE(saw_planner) << text.substr(0, 2000);
  EXPECT_TRUE(saw_solver) << text.substr(0, 2000);
  std::remove(trace_path.c_str());
}

TEST(Cli, ProfileFormatJsonMatchesTextBitForBit) {
  // `profile --format json` and `--format text` must serialize the same
  // chain, and both must load back bit-identically — the contract that lets
  // either file feed plan/explain/serve interchangeably.
  const std::string base = ::testing::TempDir() + "/cli_fmt." +
                           std::to_string(::getpid());
  std::string output;
  ASSERT_EQ(run_cli("profile gpt2-xl --length 8 --batch 1 --format json" +
                        std::string(" --output ") + base + ".json",
                    &output),
            0)
      << output;
  ASSERT_EQ(run_cli("profile gpt2-xl --length 8 --batch 1 --format text" +
                        std::string(" --output ") + base + ".txt",
                    &output),
            0)
      << output;
  const models::ProfileParseResult from_json =
      models::try_load_profile(base + ".json");
  const models::ProfileParseResult from_text =
      models::try_load_profile(base + ".txt");
  ASSERT_TRUE(from_json.ok()) << from_json.error;
  ASSERT_TRUE(from_text.ok()) << from_text.error;
  EXPECT_EQ(*from_json.chain, *from_text.chain);
  EXPECT_EQ(from_json.chain->length(), 8);

  // The JSON file plans just like the text one.
  EXPECT_EQ(run_cli("plan " + base + ".json --gpus 2 --memory-gb 8", &output),
            0)
      << output;
  std::remove((base + ".json").c_str());
  std::remove((base + ".txt").c_str());
}

TEST(Cli, ProfileRejectsUnknownFormat) {
  std::string output;
  EXPECT_EQ(run_cli("profile resnet50 --format yaml", &output), 2);
  EXPECT_NE(output.find("--format must be text or json"), std::string::npos)
      << output;
}

TEST(Cli, ValidateAcceptsEveryCommittedExample) {
  // The committed examples/ documents are the quickstart surface; all of
  // them must stay parseable (tools/check_docs.py --validate runs this same
  // command in CI).
  const std::string dir = std::string(MADPIPE_SOURCE_DIR) + "/examples/";
  std::string output;
  ASSERT_EQ(run_cli("validate " + dir + "explain_resnet50_p2.json " + dir +
                        "fleet_trace.json " + dir +
                        "profile_transformer_small.json " + dir +
                        "profile_transformer_small.profile " + dir +
                        "serve_llm_request.json " + dir +
                        "serve_request.json " + dir +
                        "timeline_resnet50_p2.json",
                    &output),
            0)
      << output;
  EXPECT_NE(output.find("madpipe-profile-v2, 12 layers"), std::string::npos)
      << output;
  EXPECT_NE(output.find("madpipe-profile-v1, 12 layers"), std::string::npos)
      << output;
  EXPECT_NE(output.find("madpipe-fleet-trace-v1"), std::string::npos)
      << output;
  EXPECT_NE(output.find("serve request lines"), std::string::npos) << output;
}

TEST(Cli, ValidateFailsOnBrokenDocumentsAndMissingFiles) {
  const std::string bad = ::testing::TempDir() + "/cli_bad." +
                          std::to_string(::getpid()) + ".json";
  std::ofstream(bad) << "{\"schema\":\"madpipe-profile-v2\",\"layers\":[]}";
  std::string output;
  EXPECT_EQ(run_cli("validate " + bad, &output), 1);
  EXPECT_NE(output.find("error:"), std::string::npos) << output;
  EXPECT_NE(output.find("input_bytes"), std::string::npos) << output;
  EXPECT_EQ(run_cli("validate /nonexistent/missing.json", &output), 1);
  EXPECT_NE(output.find("cannot read file"), std::string::npos) << output;
  // A good file does not mask a bad one in the same invocation.
  const std::string good = write_tiny_profile();
  EXPECT_EQ(run_cli("validate " + good + " " + bad, &output), 1);
  EXPECT_NE(output.find("ok (madpipe-profile-v1"), std::string::npos)
      << output;
  std::remove(bad.c_str());
  std::remove(good.c_str());
}

TEST(Cli, FleetRunsCommittedExampleTraceDeterministically) {
  const std::string trace =
      std::string(MADPIPE_SOURCE_DIR) + "/examples/fleet_trace.json";
  const std::string log_a = ::testing::TempDir() + "/cli_fleet_a.log";
  const std::string log_b = ::testing::TempDir() + "/cli_fleet_b.log";
  std::string output;
  ASSERT_EQ(run_cli("fleet " + trace + " --policy fifo --log-out " + log_a,
                    &output),
            0)
      << output;
  EXPECT_NE(output.find("completed"), std::string::npos);
  EXPECT_NE(output.find("event-log hash"), std::string::npos);
  ASSERT_EQ(run_cli("fleet " + trace + " --policy fifo --log-out " + log_b,
                    &output),
            0)
      << output;
  // The CLI-level acceptance criterion: two runs, bit-identical logs.
  std::ifstream a_in(log_a), b_in(log_b);
  const std::string a((std::istreambuf_iterator<char>(a_in)),
                      std::istreambuf_iterator<char>());
  const std::string b((std::istreambuf_iterator<char>(b_in)),
                      std::istreambuf_iterator<char>());
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(log_a.c_str());
  std::remove(log_b.c_str());
}

TEST(Cli, FleetWritesReportJsonFromSeededTrace) {
  const std::string json_path = ::testing::TempDir() + "/cli_fleet.json";
  std::string output;
  ASSERT_EQ(run_cli("fleet --seed 7 --jobs 6 --policy deadline --json " +
                        json_path,
                    &output),
            0)
      << output;
  std::ifstream in(json_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const json::ParseResult parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("schema", ""), "madpipe-fleet-report-v1");
  EXPECT_EQ(parsed.value.string_or("policy", ""), "deadline");
  const json::Value* accounting = parsed.value.find("accounting");
  ASSERT_NE(accounting, nullptr);
  EXPECT_DOUBLE_EQ(accounting->number_or("jobs_in", 0.0), 6.0);
  EXPECT_TRUE(accounting->bool_or("exact", false));
  std::remove(json_path.c_str());
}

TEST(Cli, FleetRejectsUnknownPolicyAndMissingTrace) {
  std::string output;
  EXPECT_EQ(run_cli("fleet --policy frobnicate", &output), 1);
  EXPECT_NE(output.find("frobnicate"), std::string::npos);
  EXPECT_EQ(run_cli("fleet /nonexistent/missing_trace.json", &output), 1);
}

}  // namespace
}  // namespace madpipe
