// End-to-end exit-code tests for the `madpipe` binary. MADPIPE_CLI_BIN is
// injected by the build (tests/CMakeLists.txt) and points at the real
// executable; each test drives it through a shell like a user would.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "models/profile_io.hpp"
#include "models/zoo.hpp"
#include "util/json.hpp"

namespace madpipe {
namespace {

/// Run the CLI with `arguments`, capture combined stdout+stderr, and return
/// the process exit code (-1 if it did not exit normally).
int run_cli(const std::string& arguments, std::string* output) {
  const std::string command =
      std::string(MADPIPE_CLI_BIN) + " " + arguments + " 2>&1";
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  const int status = ::pclose(pipe);
  if (status < 0 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

std::string write_tiny_profile() {
  const Chain chain = make_uniform_chain(4, ms(2), ms(4), MB, 8 * MB, MB);
  const std::string path = ::testing::TempDir() + "/cli_tiny.profile";
  models::save_profile(chain, path);
  return path;
}

TEST(Cli, VersionExitsZeroAndPrintsVersion) {
  std::string output;
  EXPECT_EQ(run_cli("--version", &output), 0);
  EXPECT_NE(output.find("madpipe 0.3.0"), std::string::npos) << output;
}

TEST(Cli, NoArgumentsPrintsUsageAndExitsTwo) {
  std::string output;
  EXPECT_EQ(run_cli("", &output), 2);
  EXPECT_NE(output.find("usage: madpipe"), std::string::npos) << output;
  EXPECT_NE(output.find("serve"), std::string::npos) << output;  // documented
}

TEST(Cli, UnknownCommandExitsTwo) {
  std::string output;
  EXPECT_EQ(run_cli("frobnicate", &output), 2);
  EXPECT_NE(output.find("unknown command frobnicate"), std::string::npos)
      << output;
}

TEST(Cli, UnknownFlagExitsTwo) {
  std::string output;
  EXPECT_EQ(run_cli("plan whatever --bogus", &output), 2);
  EXPECT_NE(output.find("unknown option --bogus"), std::string::npos)
      << output;
}

TEST(Cli, MissingFlagValueExitsTwo) {
  std::string output;
  EXPECT_EQ(run_cli("plan whatever --gpus", &output), 2);
  EXPECT_NE(output.find("missing value for --gpus"), std::string::npos)
      << output;
}

TEST(Cli, MissingProfileFileExitsOne) {
  std::string output;
  EXPECT_EQ(run_cli("plan /nonexistent/definitely/missing.profile", &output),
            1);
  EXPECT_NE(output.find("error:"), std::string::npos) << output;
}

TEST(Cli, PlanOnTinyProfileSucceeds) {
  const std::string profile = write_tiny_profile();
  std::string output;
  EXPECT_EQ(run_cli("plan " + profile + " --gpus 2 --memory-gb 2", &output),
            0);
  EXPECT_NE(output.find("period"), std::string::npos) << output;
  std::remove(profile.c_str());
}

TEST(Cli, ServeBatchRoundTrip) {
  const std::string profile = write_tiny_profile();
  const std::string requests = ::testing::TempDir() + "/cli_requests.json";
  {
    std::ofstream out(requests);
    out << R"({"requests":[
      {"id":"a","profile_file":")" << profile << R"(","gpus":2,"memory_gb":2},
      {"id":"b","profile_file":")" << profile << R"(","gpus":2,"memory_gb":2},
      {"id":"bad","gpus":2,"memory_gb":2}
    ]})";
  }
  std::string output;
  ASSERT_EQ(run_cli("serve --requests " + requests + " --workers 1", &output),
            0)
      << output;
  const json::ParseResult parsed = json::parse(output);
  ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << output;
  EXPECT_EQ(parsed.value.string_or("schema", ""), "madpipe-serve-v1");
  const json::Value* responses = parsed.value.find("responses");
  ASSERT_NE(responses, nullptr);
  ASSERT_EQ(responses->items().size(), 3u);
  EXPECT_EQ(responses->items()[0].string_or("status", ""), "ok");
  EXPECT_EQ(responses->items()[1].string_or("status", ""), "ok");
  EXPECT_EQ(responses->items()[2].string_or("status", ""), "error");
  EXPECT_EQ(responses->items()[2].string_or("id", ""), "bad");
  std::remove(requests.c_str());
  std::remove(profile.c_str());
}

TEST(Cli, ServeStdinLoopAnswersLineByLine) {
  const std::string profile = write_tiny_profile();
  const std::string request = "{\"id\":\"s\",\"profile_file\":\"" + profile +
                              "\",\"gpus\":2,\"memory_gb\":2}";
  std::string output;
  const std::string command = "printf '%s\\n' '" + request + "' | " +
                              std::string(MADPIPE_CLI_BIN) + " serve --stdin";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(status >= 0 && WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << output;
  const json::ParseResult parsed = json::parse(output);
  ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << output;
  EXPECT_EQ(parsed.value.string_or("id", ""), "s");
  EXPECT_EQ(parsed.value.string_or("status", ""), "ok");
  std::remove(profile.c_str());
}

}  // namespace
}  // namespace madpipe
