#include "schedule/comm_transform.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace madpipe {
namespace {

TEST(CommTransform, AlternatesComputeAndComm) {
  const Chain c = make_uniform_chain(6, ms(1), ms(2), MB, 12 * MB, MB);
  const Platform p{3, GB, 12 * GB};
  const Allocation a =
      make_contiguous_allocation(c, {{1, 2}, {3, 4}, {5, 6}}, 3);
  const auto pseudo = comm_transform(a, c, p);
  ASSERT_EQ(pseudo.size(), 5u);  // 3 compute + 2 comm = 2P−1
  EXPECT_EQ(pseudo[0].kind, PseudoStage::Kind::Compute);
  EXPECT_EQ(pseudo[1].kind, PseudoStage::Kind::Comm);
  EXPECT_EQ(pseudo[2].kind, PseudoStage::Kind::Compute);
  EXPECT_EQ(pseudo[3].kind, PseudoStage::Kind::Comm);
  EXPECT_EQ(pseudo[4].kind, PseudoStage::Kind::Compute);
}

TEST(CommTransform, ComputeDurationsMatchStageLoads) {
  const Chain c = make_uniform_chain(6, ms(1), ms(2), MB, 12 * MB, MB);
  const Platform p{3, GB, 12 * GB};
  const Allocation a =
      make_contiguous_allocation(c, {{1, 2}, {3, 4}, {5, 6}}, 3);
  const auto pseudo = comm_transform(a, c, p);
  EXPECT_DOUBLE_EQ(pseudo[0].forward_duration, ms(2));
  EXPECT_DOUBLE_EQ(pseudo[0].backward_duration, ms(4));
  EXPECT_DOUBLE_EQ(pseudo[0].total(), ms(6));
}

TEST(CommTransform, CommDurationsSymmetric) {
  const Chain c = make_uniform_chain(6, ms(1), ms(2), MB, 12 * MB, MB);
  const Platform p{3, GB, 12 * GB};
  const Allocation a =
      make_contiguous_allocation(c, {{1, 2}, {3, 4}, {5, 6}}, 3);
  const auto pseudo = comm_transform(a, c, p);
  // 12 MB / 12 GB/s = 1 ms each direction.
  EXPECT_DOUBLE_EQ(pseudo[1].forward_duration, ms(1));
  EXPECT_DOUBLE_EQ(pseudo[1].backward_duration, ms(1));
  EXPECT_EQ(pseudo[1].stage, 0);  // boundary after stage 0
}

TEST(CommTransform, SingleStageHasNoComm) {
  const Chain c = make_uniform_chain(4, ms(1), ms(1), MB, MB, MB);
  const Platform p{1, GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, {{1, 4}}, 1);
  const auto pseudo = comm_transform(a, c, p);
  EXPECT_EQ(pseudo.size(), 1u);
}

TEST(CommTransform, RejectsNonContiguous) {
  const Chain c = make_uniform_chain(4, ms(1), ms(1), MB, MB, MB);
  const Platform p{2, GB, 12 * GB};
  Allocation a(Partitioning(c, {{1, 1}, {2, 3}, {4, 4}}), {0, 1, 0}, 2);
  EXPECT_THROW(comm_transform(a, c, p), ContractViolation);
}

}  // namespace
}  // namespace madpipe
