#include "madpipe/discretization.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace madpipe {
namespace {

TEST(Grid, ValuesSpanRange) {
  const Grid grid(10.0, 11);
  EXPECT_DOUBLE_EQ(grid.value(0), 0.0);
  EXPECT_DOUBLE_EQ(grid.value(10), 10.0);
  EXPECT_DOUBLE_EQ(grid.value(5), 5.0);
}

TEST(Grid, ValueClampsIndex) {
  const Grid grid(10.0, 11);
  EXPECT_DOUBLE_EQ(grid.value(-3), 0.0);
  EXPECT_DOUBLE_EQ(grid.value(99), 10.0);
}

TEST(Grid, NearestRounding) {
  const Grid grid(10.0, 11);
  EXPECT_EQ(grid.index(2.4), 2);
  EXPECT_EQ(grid.index(2.6), 3);
  EXPECT_EQ(grid.index(2.5), 3);  // round half away from zero
}

TEST(Grid, UpRounding) {
  const Grid grid(10.0, 11);
  EXPECT_EQ(grid.index(2.01, RoundingMode::Up), 3);
  EXPECT_EQ(grid.index(3.0, RoundingMode::Up), 3);  // exact values stay
}

TEST(Grid, ClampsBeyondMax) {
  const Grid grid(10.0, 11);
  EXPECT_EQ(grid.index(42.0), 10);
  EXPECT_DOUBLE_EQ(grid.snap(42.0), 10.0);
}

TEST(Grid, SnapRoundTrips) {
  const Grid grid(7.0, 29);
  for (double v = 0.0; v <= 7.0; v += 0.11) {
    const double snapped = grid.snap(v);
    EXPECT_EQ(grid.index(snapped), grid.index(snapped));
    EXPECT_NEAR(snapped, v, 7.0 / 28.0 / 2.0 + 1e-12);
  }
}

TEST(Grid, UpRoundingNeverDecreases) {
  const Grid grid(5.0, 17);
  for (double v = 0.0; v <= 5.0; v += 0.07) {
    EXPECT_GE(grid.snap(v, RoundingMode::Up), v - 1e-9);
  }
}

TEST(Grid, RejectsDegenerate) {
  EXPECT_THROW(Grid(10.0, 1), ContractViolation);
  EXPECT_THROW(Grid(0.0, 5), ContractViolation);
}

TEST(Grid, RejectsNegativeValues) {
  const Grid grid(10.0, 11);
  EXPECT_THROW(grid.index(-1.0), ContractViolation);
}

TEST(Discretization, PresetsAreOrdered) {
  const Discretization coarse = Discretization::coarse();
  const Discretization paper = Discretization::paper();
  EXPECT_LT(coarse.load_points, paper.load_points);
  EXPECT_LE(coarse.memory_points, paper.memory_points);
  EXPECT_LT(coarse.delay_points, paper.delay_points);
  EXPECT_EQ(paper.load_points, 101);   // §5.1 of the paper
  EXPECT_EQ(paper.memory_points, 11);
  EXPECT_EQ(paper.delay_points, 51);
}

}  // namespace
}  // namespace madpipe
