#include "schedule/eager.hpp"

#include <gtest/gtest.h>

#include "schedule/one_f_one_b.hpp"
#include "util/expect.hpp"

namespace madpipe {
namespace {

Chain chain8() {
  return make_uniform_chain(8, ms(5), ms(10), 2 * MB, 20 * MB, 10 * MB);
}

Allocation alloc4(const Chain& c) {
  return make_contiguous_allocation(c, {{1, 2}, {3, 4}, {5, 6}, {7, 8}}, 4);
}

TEST(Eager, ReachesBottleneckThroughput) {
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e6 * GB};  // free comm, ample memory
  const auto result = simulate_eager(alloc4(c), c, p, {0, 64, true});
  // Balanced stages of 30 ms each: steady period = 30 ms.
  EXPECT_NEAR(result.steady_period, ms(30), ms(0.01));
}

TEST(Eager, MakespanCoversAllBatches) {
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e6 * GB};
  const auto result = simulate_eager(alloc4(c), c, p, {0, 16, true});
  EXPECT_GE(result.makespan, 16 * ms(30) - 1e-9);
}

TEST(Eager, InflightBoundedByDepth) {
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e6 * GB};
  const auto result = simulate_eager(alloc4(c), c, p, {0, 32, true});
  for (int s = 0; s < 4; ++s) {
    EXPECT_LE(result.stage_max_inflight[s], 4 - s) << s;
    EXPECT_GE(result.stage_max_inflight[s], 1) << s;
  }
}

TEST(Eager, FlatDepthStoresMore) {
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e6 * GB};
  const auto decreasing = simulate_eager(alloc4(c), c, p, {0, 32, true});
  const auto flat = simulate_eager(alloc4(c), c, p, {0, 32, false});
  for (int s = 1; s < 4; ++s) {
    EXPECT_GE(flat.stage_max_inflight[s], decreasing.stage_max_inflight[s]);
  }
}

TEST(Eager, DepthOneSerializes) {
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e6 * GB};
  const auto result = simulate_eager(alloc4(c), c, p, {1, 16, false});
  // One batch in flight at a time: period = full round trip = U(1,L).
  EXPECT_NEAR(result.steady_period, c.total_compute(), ms(0.01));
  for (int s = 0; s < 4; ++s) EXPECT_EQ(result.stage_max_inflight[s], 1);
}

TEST(Eager, MemoryAtLeastOneFOneBStar) {
  // Proposition 1: at (at least) the same throughput, no schedule stores
  // fewer activations than 1F1B*. The eager policy reaches the same steady
  // period here, so its peaks must dominate the 1F1B* peaks.
  //
  // Communication must be *truly* negligible (below the group-construction
  // tolerance): with merely-small comm times the eager round trip runs at
  // 30 ms + ε while 1F1B* at exactly 30 ms must splinter every comm
  // pseudo-stage into its own group (storing up to 2P−1 copies), and the
  // comparison would be made at two different effective periods.
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e21 * GB};
  const Allocation a = alloc4(c);
  const auto eager = simulate_eager(a, c, p, {0, 64, true});
  const auto plan = plan_one_f_one_b(a, c, p);
  ASSERT_TRUE(plan.has_value());
  ASSERT_LE(plan->period(), eager.steady_period * (1.0 + 1e-9));
  const auto check = validate_pattern(plan->pattern, a, c, p);
  ASSERT_TRUE(check.valid);
  for (int proc = 0; proc < 4; ++proc) {
    EXPECT_GE(eager.processor_memory_peak[proc],
              check.processor_memory_peak[proc] * (1.0 - 1e-9))
        << proc;
  }
}

TEST(Eager, RejectsNonContiguous) {
  const Chain c = chain8();
  const Platform p{2, 100 * GB, 1e6 * GB};
  Allocation a(Partitioning(c, {{1, 2}, {3, 6}, {7, 8}}), {0, 1, 0}, 2);
  EXPECT_THROW(simulate_eager(a, c, p, {}), ContractViolation);
}

TEST(Eager, RejectsTooFewBatches) {
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e6 * GB};
  EXPECT_THROW(simulate_eager(alloc4(c), c, p, {0, 1, true}),
               ContractViolation);
}

}  // namespace
}  // namespace madpipe
